//! Offline vendored shim of the `rand` 0.8 API surface used by this
//! workspace. The build environment has no access to crates.io, so instead
//! of the real crate we provide a small, self-contained implementation with
//! the same module layout (`rand::Rng`, `rand::SeedableRng`,
//! `rand::rngs::{StdRng, SmallRng}`, `rand::seq::SliceRandom`).
//!
//! The generators are xoshiro256++ (for [`rngs::StdRng`]) and xoshiro256+
//! (for [`rngs::SmallRng`]), both seeded through SplitMix64 exactly as the
//! reference implementations recommend. Value streams differ from the real
//! `rand` crate; workspace code only relies on seeded determinism and
//! statistical quality, not on a specific stream.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Value types [`Rng::gen_range`] can produce. The generic
/// `SampleRange` impls below delegate here; keeping the range impls
/// generic over `T: SampleUniform` (as the real rand does) is what lets
/// inference resolve call sites like `v + rng.gen_range(-0.1..0.1)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let u = <$t as Standard>::from_rng(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_uniform!(f64, f32);

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::{SmallRng, StdRng};
    use crate::seq::SliceRandom;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
            let i = rng.gen_range(5usize..9);
            assert!((5..9).contains(&i));
            let j = rng.gen_range(0..=4u64);
            assert!(j <= 4);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
