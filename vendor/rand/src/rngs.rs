//! Concrete generators mirroring `rand::rngs`.

use crate::{splitmix64, RngCore, SeedableRng};

fn seed_state(seed: u64) -> [u64; 4] {
    let mut sm = seed;
    [
        splitmix64(&mut sm),
        splitmix64(&mut sm),
        splitmix64(&mut sm),
        splitmix64(&mut sm),
    ]
}

/// Default generator: xoshiro256++ (fast, 256-bit state, passes BigCrush).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self {
            s: seed_state(seed),
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Small/fast generator: xoshiro256+ (lowest bits are weaker; we only hand
/// out the top bits through `next_u32`/float conversion anyway).
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self {
            s: seed_state(seed),
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
