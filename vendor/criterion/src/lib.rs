//! Offline vendored shim of the `criterion` API surface used by this
//! workspace: `Criterion::default().sample_size(n)`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so this replaces the
//! real crate with a minimal wall-clock harness: each benchmark is warmed
//! up briefly, then timed over `sample_size` samples, and the per-iteration
//! median is printed. No statistical analysis, plots, or baselines.

use std::hint::black_box as std_black_box;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        b.report(id);
        self
    }
}

pub struct Bencher {
    samples_ns: Vec<f64>,
    target_samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: find an iteration count that makes a
        // single sample take ~1ms so Instant overhead stays negligible.
        let t0 = Instant::now();
        std_black_box(routine());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((1e-3 / once).ceil() as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<32} (no samples)");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(f64::total_cmp);
        let median = s[s.len() / 2];
        let lo = s[0];
        let hi = s[s.len() - 1];
        println!("{id:<32} time: [{lo:>12.1} ns {median:>12.1} ns {hi:>12.1} ns]");
    }
}

/// Declares a function that runs a list of benchmark targets against a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
