//! Offline vendored shim of the `proptest` API surface used by this
//! workspace: the `proptest! { #[test] fn f(x in strategy, ..) { .. } }`
//! macro, numeric range strategies, `proptest::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` assertions.
//!
//! The build environment has no access to crates.io, so this replaces the
//! real crate. Differences from real proptest: inputs are sampled from a
//! deterministic per-test RNG (seeded from the test name) rather than an
//! entropy source, there is no shrinking, and failed assertions panic
//! immediately with the standard assert messages. Each property runs
//! [`test_runner::CASES`] cases.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Property-style assertion; in this shim it panics immediately (no
/// shrinking), which still fails the surrounding `#[test]`.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```
/// proptest::proptest! {
///     // In real code this carries `#[test]`; elided here so the doctest
///     // (compiled without the test harness) keeps the function.
///     fn sum_in_range(a in 0.0..1.0f64, b in 0.0..1.0f64) {
///         proptest::prop_assert!((0.0..2.0).contains(&(a + b)));
///     }
/// }
/// # fn main() { sum_in_range(); }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::test_runner::CASES {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}
