//! Value-generation strategies. Only what the workspace uses: numeric
//! ranges (half-open and inclusive) and `Vec` via [`crate::collection`].

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}
float_strategy!(f64, f32);

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                let span = (hi - lo) as u128 + 1;
                (lo + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, isize, i64, i32);
