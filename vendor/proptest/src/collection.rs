//! `proptest::collection::vec` — Vec strategy with fixed or ranged length.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize, // exclusive
}

/// Accepted as the size argument of [`vec()`]: an exact length or a
/// half-open/inclusive range of lengths.
pub trait SizeRange {
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    assert!(min_len < max_len, "empty vec size range");
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.max_len - self.min_len) as u64;
        let len = self.min_len + (rng.next_u64() % span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
