//! Deterministic case generation for the shim runner.

/// Number of cases each property runs.
pub const CASES: usize = 64;

/// SplitMix64 stream seeded from the test name, so every property gets a
/// distinct but fully reproducible input sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
