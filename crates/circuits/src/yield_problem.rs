//! Monte-Carlo yield estimation as a [`SizingProblem`]: pass-rate over
//! mismatch samples × PVT corners, with a deterministic early-abort
//! contract.
//!
//! [`YieldProblem`] is the local-mismatch sibling of the worst-case corner
//! wrapper in `kato` (core): where that wrapper folds one design's metrics
//! across the corner sweep, this one additionally sweeps Pelgrom mismatch
//! samples (see [`crate::mismatch`]) and reports the fraction of samples
//! that meet the circuit's spec table at **every** corner — the sign-off
//! yield. One candidate therefore costs up to `corners × samples`
//! simulations, which is exactly the workload that justifies streaming
//! populations through the evaluation pool with early abort instead of a
//! synchronous all-or-nothing batch barrier.
//!
//! # The estimator and the abort contract
//!
//! Samples are scanned in a fixed order: sample `0` is the nominal
//! (unperturbed) draw, samples `1..N-1` attach [`MismatchStream`] draws
//! keyed on `(seed, candidate, sample index)`. The recorded yield is a
//! **censored** prefix estimator:
//!
//! 1. If the nominal sample violates the base spec table (worst case
//!    across corners), the candidate is infeasible regardless of the
//!    remaining samples; scanning stops counting and the recorded yield is
//!    `passes/N` at that point (= 0).
//! 2. Otherwise samples accumulate pass/fail until either the scan
//!    completes or so many samples have failed that `yield ≥ threshold`
//!    is impossible; from that point the recorded yield is frozen at
//!    `passes/N`.
//!
//! Crucially, the censoring rule is part of the *estimator definition*,
//! not of the scheduler: with early abort enabled the remaining samples
//! are simply not simulated, with it disabled they are simulated and
//! discarded — the recorded metric vector, feasibility classification and
//! therefore the entire seeded optimizer trajectory are **bitwise
//! identical** either way (`tests/integration_pipeline.rs` pins this for
//! every registered scenario). Early abort is purely a wall-clock
//! optimisation, and its win grows with the infeasible fraction of the
//! population.
//!
//! Within a sample (for sample ≥ 1), corners are evaluated in sweep order
//! and may short-circuit at the first spec kill: only the sample's
//! pass/fail *bit* is recorded, and that bit is already determined. The
//! nominal sample always runs every corner, because its worst-case fold is
//! recorded as the problem's base metrics.

use crate::corner::Corner;
use crate::mismatch::MismatchStream;
use crate::problem::{Goal, Metrics, SizingProblem, Spec, SpecKind, VarSpec};
use crate::registry::{Scenario, ScenarioError};
use crate::tech::{Backend, TechNode};

/// Configuration of a [`YieldProblem`] build.
#[derive(Debug, Clone)]
pub struct YieldSettings {
    /// Total Monte-Carlo samples per candidate, `≥ 1` (sample 0 is the
    /// nominal draw).
    pub samples: usize,
    /// Pass-rate bound of the appended `yield ≥ threshold` constraint,
    /// in `(0, 1]`.
    pub threshold: f64,
    /// Mismatch seed — pass the run seed so yield estimates share the
    /// run's seeded-reproducibility envelope.
    pub seed: u64,
    /// Whether candidates stop consuming samples once their fate is
    /// sealed. Never changes recorded results (see the module docs);
    /// disable only to measure the scheduling win.
    pub early_abort: bool,
    /// Restrict the sweep to these corners instead of the scenario's
    /// registered sweep (e.g. a TT-only yield estimate).
    pub corners: Option<Vec<Corner>>,
}

impl Default for YieldSettings {
    fn default() -> Self {
        YieldSettings {
            samples: 16,
            threshold: 0.7,
            seed: 0,
            early_abort: true,
            corners: None,
        }
    }
}

/// A [`SizingProblem`] that scores each design by its mismatch yield on
/// top of the worst-case corner fold. See the module docs for the
/// estimator and the early-abort contract.
///
/// Metric vector: the wrapped circuit's metrics, worst-case folded across
/// corners **of the nominal sample**, with one extra `"yield"` metric
/// appended. Spec table: the circuit's own objective and constraint rows
/// (on the folded nominal metrics) plus `yield ≥ threshold` — so a
/// feasible design is nominal-robust *and* yields across mismatch, and
/// `Kato::run` optimises the combination directly.
pub struct YieldProblem {
    name: String,
    corners: Vec<Corner>,
    cards: Vec<TechNode>,
    nominal: Vec<Box<dyn SizingProblem>>,
    build: fn(TechNode) -> Box<dyn SizingProblem>,
    samples: usize,
    threshold: f64,
    seed: u64,
    early_abort: bool,
    metric_names: Vec<&'static str>,
    specs: Vec<Spec>,
}

impl YieldProblem {
    /// Builds the wrapper on a named tech node over `settings.corners`
    /// (the scenario's registered sweep when `None`), with an explicit
    /// device backend (`None` = the scenario's default).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownTech`] for an unregistered tech node,
    /// [`ScenarioError::BadCorner`] for an empty corner set and
    /// [`ScenarioError::BadYield`] for an out-of-range sample count or
    /// threshold.
    pub fn new(
        scenario: &Scenario,
        tech: &str,
        backend: Option<Backend>,
        settings: YieldSettings,
    ) -> Result<Self, ScenarioError> {
        if settings.samples < 1 {
            return Err(ScenarioError::BadYield {
                scenario: scenario.name.to_string(),
                reason: "sample count must be at least 1".to_string(),
            });
        }
        if !(settings.threshold > 0.0 && settings.threshold <= 1.0) {
            return Err(ScenarioError::BadYield {
                scenario: scenario.name.to_string(),
                reason: format!("threshold {} outside (0, 1]", settings.threshold),
            });
        }
        let corners = settings.corners.unwrap_or_else(|| scenario.corners.clone());
        if corners.is_empty() {
            return Err(ScenarioError::BadCorner {
                scenario: scenario.name.to_string(),
                reason: "yield sweep has no corners".to_string(),
            });
        }
        if !scenario.tech_names.contains(&tech) {
            return Err(ScenarioError::UnknownTech {
                scenario: scenario.name.to_string(),
                tech: tech.to_string(),
                available: scenario
                    .tech_names
                    .iter()
                    .map(ToString::to_string)
                    .collect(),
            });
        }
        let base = TechNode::by_name(tech)
            .ok_or_else(|| ScenarioError::UnknownTech {
                scenario: scenario.name.to_string(),
                tech: tech.to_string(),
                available: scenario
                    .tech_names
                    .iter()
                    .map(ToString::to_string)
                    .collect(),
            })?
            .with_backend(backend.unwrap_or(scenario.default_backend));
        let build = scenario.builder();
        let cards: Vec<TechNode> = corners.iter().map(|c| base.at_corner(c)).collect();
        let nominal: Vec<Box<dyn SizingProblem>> =
            cards.iter().map(|card| build(card.clone())).collect();

        let mut metric_names: Vec<&'static str> = nominal[0].metric_names().to_vec();
        debug_assert!(!metric_names.contains(&"yield"));
        metric_names.push("yield");
        let mut specs = nominal[0].specs().to_vec();
        specs.push(Spec {
            metric: metric_names.len() - 1,
            kind: SpecKind::GreaterEq(settings.threshold),
        });
        Ok(YieldProblem {
            name: format!("{}_yield{}", nominal[0].name(), settings.samples),
            corners,
            cards,
            nominal,
            build,
            samples: settings.samples,
            threshold: settings.threshold,
            seed: settings.seed,
            early_abort: settings.early_abort,
            metric_names,
            specs,
        })
    }

    /// Monte-Carlo samples drawn per candidate.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The pass-rate bound of the yield constraint row.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of corners each sample is checked at.
    #[must_use]
    pub fn corner_count(&self) -> usize {
        self.corners.len()
    }

    /// Whether sealed-fate candidates stop consuming samples.
    #[must_use]
    pub fn early_abort(&self) -> bool {
        self.early_abort
    }

    /// This wrapper with early abort switched on/off. Recorded results are
    /// contractually identical either way; only wall clock changes.
    #[must_use]
    pub fn with_early_abort(mut self, on: bool) -> Self {
        self.early_abort = on;
        self
    }

    /// Index of the appended `"yield"` metric.
    #[must_use]
    pub fn yield_metric(&self) -> usize {
        self.metric_names.len() - 1
    }

    /// Convenience: the yield estimate of one design (the last metric of
    /// [`SizingProblem::evaluate`]).
    #[must_use]
    pub fn yield_estimate(&self, x: &[f64]) -> f64 {
        self.evaluate(x).get(self.yield_metric())
    }

    /// The wrapped circuit's spec rows (everything except the yield row).
    fn inner_specs(&self) -> &[Spec] {
        &self.specs[..self.specs.len() - 1]
    }

    /// Minimum number of passing samples for `passes/samples ≥ threshold`.
    /// The `1e-9` nudge keeps binary floating-point round-up (e.g.
    /// `0.7 × 10 → 7.000000000000001`) from demanding one pass too many.
    fn passes_needed(&self) -> usize {
        (self.threshold * self.samples as f64 - 1e-9)
            .ceil()
            .max(1.0) as usize
    }

    fn larger_is_worse(&self, metric: usize) -> bool {
        self.inner_specs().iter().any(|s| {
            s.metric == metric
                && matches!(
                    s.kind,
                    SpecKind::Objective(Goal::Minimize) | SpecKind::LessEq(_)
                )
        })
    }

    /// Worst-case fold across corners, in each metric's spec direction —
    /// the same rule the core worst-case corner wrapper applies: a
    /// non-finite value at any corner surfaces as ±∞ in the "worse"
    /// direction instead of being dropped by the fold.
    fn fold_worst(&self, per_corner: &[Metrics]) -> Vec<f64> {
        let n = self.nominal[0].metric_names().len();
        let mut worst = Vec::with_capacity(n + 1);
        for j in 0..n {
            let larger_is_worse = self.larger_is_worse(j);
            let v = if per_corner.iter().any(|m| !m.get(j).is_finite()) {
                if larger_is_worse {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                }
            } else {
                let vals = per_corner.iter().map(|m| m.get(j));
                if larger_is_worse {
                    vals.fold(f64::NEG_INFINITY, f64::max)
                } else {
                    vals.fold(f64::INFINITY, f64::min)
                }
            };
            worst.push(v);
        }
        worst
    }

    fn finite_and_feasible(&self, m: &Metrics) -> bool {
        m.values().iter().all(|v| v.is_finite()) && m.feasible(self.inner_specs())
    }

    /// Whether mismatch sample `sample ≥ 1` of candidate `x` passes spec at
    /// every corner. With `short_circuit` the corner loop stops at the
    /// first kill — the returned bit is identical either way.
    fn mismatch_sample_passes(&self, x: &[f64], sample: u64, short_circuit: bool) -> bool {
        let stream = MismatchStream::for_candidate(self.seed, x, sample);
        let mut all_ok = true;
        for card in &self.cards {
            let problem = (self.build)(card.clone().with_mismatch(stream));
            let m = problem.evaluate(x);
            if !self.finite_and_feasible(&m) {
                all_ok = false;
                if short_circuit {
                    break;
                }
            }
        }
        all_ok
    }
}

impl SizingProblem for YieldProblem {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn variables(&self) -> &[VarSpec] {
        self.nominal[0].variables()
    }

    fn metric_names(&self) -> &[&'static str] {
        &self.metric_names
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Metrics {
        // Nominal sample: every corner, worst-case fold → base metrics.
        let per_corner: Vec<Metrics> = self.nominal.iter().map(|p| p.evaluate(x)).collect();
        let mut values = self.fold_worst(&per_corner);
        let base_ok = {
            let folded = Metrics::new(values.clone());
            self.finite_and_feasible(&folded)
        };

        // Censored yield scan (see module docs). `settled` means the
        // candidate's feasibility can no longer change: nominal failure is
        // terminal, and so is exceeding the failure allowance.
        let max_fail = self.samples - self.passes_needed();
        let mut passes = usize::from(base_ok);
        let mut fails = usize::from(!base_ok);
        for k in 1..self.samples {
            let settled = !base_ok || fails > max_fail;
            if settled {
                if self.early_abort {
                    break;
                }
                // Full-sample mode: simulate for wall-clock parity, but the
                // estimator has already stopped counting.
                let _ = self.mismatch_sample_passes(x, k as u64, false);
                continue;
            }
            if self.mismatch_sample_passes(x, k as u64, self.early_abort) {
                passes += 1;
            } else {
                fails += 1;
            }
        }
        values.push(passes as f64 / self.samples as f64);
        Metrics::new(values)
    }

    fn expert_design(&self) -> Vec<f64> {
        self.nominal[0].expert_design()
    }

    fn streaming_hint(&self) -> bool {
        // Per-candidate cost varies by an order of magnitude between a
        // first-sample kill and a full corners×samples sweep: stream
        // candidates through the pool instead of pre-sharding.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ScenarioRegistry;

    fn settings(samples: usize, threshold: f64) -> YieldSettings {
        YieldSettings {
            samples,
            threshold,
            seed: 11,
            ..YieldSettings::default()
        }
    }

    #[test]
    fn shape_appends_yield_metric_and_spec_row() {
        let reg = ScenarioRegistry::standard();
        let s = reg.get("opamp2").unwrap();
        let y = YieldProblem::new(s, "180nm", None, settings(4, 0.5)).unwrap();
        let base = s.build_default();
        assert_eq!(y.dim(), base.dim());
        assert_eq!(y.metric_names().len(), base.metric_names().len() + 1);
        assert_eq!(y.metric_names().last(), Some(&"yield"));
        assert_eq!(y.specs().len(), base.specs().len() + 1);
        assert_eq!(y.yield_metric(), base.metric_names().len());
        assert!(y.name().contains("yield4"), "{}", y.name());
        assert!(y.streaming_hint());
        assert_eq!(y.corner_count(), s.corners.len());
    }

    #[test]
    fn expert_yield_at_tt_meets_nominal_baseline() {
        let reg = ScenarioRegistry::standard();
        let s = reg.get("opamp2").unwrap();
        let tt = YieldSettings {
            corners: Some(vec![Corner::tt()]),
            ..settings(8, 0.5)
        };
        let y = YieldProblem::new(s, "180nm", None, tt).unwrap();
        let x = y.expert_design();
        let m = y.evaluate(&x);
        let yv = m.get(y.yield_metric());
        // The expert design is TT-feasible, so the nominal draw passes and
        // the censored yield is at least 1/N.
        assert!(yv >= 1.0 / 8.0, "{yv}");
        assert!((0.0..=1.0).contains(&yv));
    }

    #[test]
    fn early_abort_records_identical_metrics() {
        let reg = ScenarioRegistry::standard();
        let s = reg.get("opamp2").unwrap();
        let fast = YieldProblem::new(s, "180nm", None, settings(6, 0.9)).unwrap();
        let slow = YieldProblem::new(
            s,
            "180nm",
            None,
            YieldSettings {
                early_abort: false,
                ..settings(6, 0.9)
            },
        )
        .unwrap();
        // A mix of (mostly infeasible) random-ish designs and the expert.
        let mut xs: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                (0..fast.dim())
                    .map(|j| ((i * 17 + j * 7) % 10) as f64 / 10.0)
                    .collect()
            })
            .collect();
        xs.push(fast.expert_design());
        for x in &xs {
            assert_eq!(fast.evaluate(x), slow.evaluate(x));
        }
    }

    #[test]
    fn censoring_freezes_the_estimate_once_settled() {
        let reg = ScenarioRegistry::standard();
        let s = reg.get("switch").unwrap();
        // threshold 1.0: one failed sample seals the fate.
        let y = YieldProblem::new(s, "180nm", None, settings(8, 1.0)).unwrap();
        assert_eq!(y.passes_needed(), 8);
        let x = vec![0.02; y.dim()]; // tiny device: should fail somewhere
        let m = y.evaluate(&x);
        let yv = m.get(y.yield_metric());
        assert!((0.0..=1.0).contains(&yv));
        // Infeasible designs keep a well-defined (censored) yield metric.
        assert!(m.values().iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn passes_needed_resists_fp_round_up() {
        let reg = ScenarioRegistry::standard();
        let s = reg.get("opamp2").unwrap();
        let y = YieldProblem::new(s, "180nm", None, settings(10, 0.7)).unwrap();
        assert_eq!(y.passes_needed(), 7);
        let y = YieldProblem::new(s, "180nm", None, settings(16, 0.75)).unwrap();
        assert_eq!(y.passes_needed(), 12);
        let y = YieldProblem::new(s, "180nm", None, settings(3, 1.0)).unwrap();
        assert_eq!(y.passes_needed(), 3);
    }

    #[test]
    fn bad_settings_are_rejected() {
        let reg = ScenarioRegistry::standard();
        let s = reg.get("opamp2").unwrap();
        assert!(matches!(
            YieldProblem::new(s, "180nm", None, settings(0, 0.5)),
            Err(ScenarioError::BadYield { .. })
        ));
        assert!(matches!(
            YieldProblem::new(s, "180nm", None, settings(4, 0.0)),
            Err(ScenarioError::BadYield { .. })
        ));
        assert!(matches!(
            YieldProblem::new(s, "180nm", None, settings(4, 1.5)),
            Err(ScenarioError::BadYield { .. })
        ));
        assert!(matches!(
            YieldProblem::new(s, "7nm", None, settings(4, 0.5)),
            Err(ScenarioError::UnknownTech { .. })
        ));
        let empty = YieldSettings {
            corners: Some(Vec::new()),
            ..settings(4, 0.5)
        };
        assert!(matches!(
            YieldProblem::new(s, "180nm", None, empty),
            Err(ScenarioError::BadCorner { .. })
        ));
    }

    #[test]
    fn registry_build_yield_uses_preset_plumbing() {
        let reg = ScenarioRegistry::standard();
        let s = reg.get("varactor").unwrap();
        let preset = s.yield_preset;
        let y = s
            .build_yield(
                "180nm",
                None,
                YieldSettings {
                    samples: preset.samples,
                    threshold: preset.threshold,
                    seed: 3,
                    ..YieldSettings::default()
                },
            )
            .unwrap();
        assert_eq!(y.samples(), preset.samples);
        assert_eq!(y.threshold(), preset.threshold);
    }
}
