//! Scenario registry: every sizing problem in the workspace, registered by
//! name with its technology nodes and corner sweep.
//!
//! The registry is the single place a new circuit has to be added to become
//! available everywhere — the `kato` CLI, the corner audit in `kato`
//! (core), the integration tests and the benchmark binaries all enumerate
//! scenarios through [`ScenarioRegistry::standard`] instead of hard-wiring
//! problem constructors.

use crate::corner::Corner;
use crate::problem::SizingProblem;
use crate::tech::{Backend, TechNode};
use crate::yield_problem::{YieldProblem, YieldSettings};
use crate::{
    Bandgap, FoldedCascodeOpAmp, Ldo, Switch, TelescopicOpAmp, ThreeStageOpAmp, TwoStageOpAmp,
    Varactor,
};
use std::fmt;

/// Error returned by registry lookups and builds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// No scenario registered under this name.
    UnknownScenario {
        /// The name that failed to resolve.
        name: String,
        /// Every registered scenario name, for the error message.
        available: Vec<String>,
    },
    /// The scenario exists but is not registered on this technology node.
    UnknownTech {
        /// The scenario that was found.
        scenario: String,
        /// The tech-node name that failed to resolve.
        tech: String,
        /// Nodes the scenario is registered on.
        available: Vec<String>,
    },
    /// The corner name was malformed (or a corner set was empty).
    BadCorner {
        /// The scenario that was found.
        scenario: String,
        /// Why the corner was rejected.
        reason: String,
    },
    /// A Monte-Carlo yield configuration was rejected (sample count or
    /// pass-rate threshold out of range).
    BadYield {
        /// The scenario that was found.
        scenario: String,
        /// Why the yield configuration was rejected.
        reason: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownScenario { name, available } => {
                write!(
                    f,
                    "unknown scenario '{name}' (available: {})",
                    available.join(", ")
                )
            }
            ScenarioError::UnknownTech {
                scenario,
                tech,
                available,
            } => write!(
                f,
                "scenario '{scenario}' has no tech node '{tech}' (available: {})",
                available.join(", ")
            ),
            ScenarioError::BadCorner { scenario, reason } => {
                write!(f, "bad corner for scenario '{scenario}': {reason}")
            }
            ScenarioError::BadYield { scenario, reason } => {
                write!(f, "bad yield config for scenario '{scenario}': {reason}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One registered sizing scenario: a circuit family, the technology nodes
/// it is characterised on, and its PVT corner sweep.
///
/// The spec preset (objective + constraint table) lives inside the circuit
/// constructor and is tech-node dependent (e.g. the op-amp gain bounds
/// relax at 40 nm); [`Scenario::build`] returns the fully specified
/// [`SizingProblem`].
pub struct Scenario {
    /// Registry key, e.g. `"folded_cascode"` (no tech suffix).
    pub name: &'static str,
    /// One-line description for `kato list` and docs.
    pub summary: &'static str,
    /// Tech nodes this scenario is registered on.
    pub tech_names: &'static [&'static str],
    /// Node used when the caller does not specify one.
    pub default_tech: &'static str,
    /// PVT corners the scenario is swept over.
    pub corners: Vec<Corner>,
    /// Device backend used when the caller does not select one. The op-amp
    /// family defaults to the square-law reference; the device-level
    /// `switch`/`varactor` families are LUT-native.
    pub default_backend: Backend,
    /// Monte-Carlo yield preset (sample count + pass-rate threshold) used
    /// when a caller requests yield mode without explicit numbers. The
    /// tech-node half of the preset lives on the card itself (each
    /// [`TechNode`] carries its own Pelgrom coefficients).
    pub yield_preset: YieldPreset,
    build: fn(TechNode) -> Box<dyn SizingProblem>,
}

/// Per-scenario Monte-Carlo yield defaults: how many mismatch samples a
/// yield estimate draws and the pass-rate the yield constraint demands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldPreset {
    /// Mismatch samples per candidate (sample 0 is the nominal draw).
    pub samples: usize,
    /// Pass-rate bound of the `yield ≥ threshold` constraint row.
    pub threshold: f64,
}

impl Default for YieldPreset {
    fn default() -> Self {
        YieldPreset {
            samples: 16,
            threshold: 0.7,
        }
    }
}

impl Scenario {
    /// Registers a new scenario from its parts. `build` receives the tech
    /// card already shifted to the requested corner.
    #[must_use]
    pub fn new(
        name: &'static str,
        summary: &'static str,
        tech_names: &'static [&'static str],
        default_tech: &'static str,
        corners: Vec<Corner>,
        build: fn(TechNode) -> Box<dyn SizingProblem>,
    ) -> Self {
        Scenario {
            name,
            summary,
            tech_names,
            default_tech,
            corners,
            default_backend: Backend::SquareLaw,
            yield_preset: YieldPreset::default(),
            build,
        }
    }

    /// This scenario with a different default device backend.
    #[must_use]
    pub fn with_default_backend(mut self, backend: Backend) -> Self {
        self.default_backend = backend;
        self
    }

    /// Builds the problem on a named tech node at a corner, on the
    /// scenario's default backend.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownTech`] when `tech` is not registered for
    /// this scenario.
    pub fn build(
        &self,
        tech: &str,
        corner: &Corner,
    ) -> Result<Box<dyn SizingProblem>, ScenarioError> {
        self.build_at(tech, corner, None)
    }

    /// Like [`Scenario::build`] with an explicit device backend; `None`
    /// uses the scenario's [`Scenario::default_backend`].
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownTech`] when `tech` is not registered for
    /// this scenario.
    pub fn build_at(
        &self,
        tech: &str,
        corner: &Corner,
        backend: Option<Backend>,
    ) -> Result<Box<dyn SizingProblem>, ScenarioError> {
        if !self.tech_names.contains(&tech) {
            return Err(ScenarioError::UnknownTech {
                scenario: self.name.to_string(),
                tech: tech.to_string(),
                available: self.tech_names.iter().map(ToString::to_string).collect(),
            });
        }
        let node = TechNode::by_name(tech).ok_or_else(|| ScenarioError::UnknownTech {
            scenario: self.name.to_string(),
            tech: tech.to_string(),
            available: self.tech_names.iter().map(ToString::to_string).collect(),
        })?;
        let node = node.with_backend(backend.unwrap_or(self.default_backend));
        Ok((self.build)(node.at_corner(corner)))
    }

    /// Builds the problem on its default tech node at the nominal corner.
    #[must_use]
    pub fn build_default(&self) -> Box<dyn SizingProblem> {
        self.build(self.default_tech, &Corner::tt())
            .expect("default tech is always registered")
    }

    /// Builds the problem directly on a fully prepared card — already
    /// backend-selected, corner-shifted and (optionally) carrying a
    /// mismatch sample. This is the hook yield evaluation uses to
    /// instantiate per-sample testbenches without re-resolving tech or
    /// corner state.
    #[must_use]
    pub fn build_on_card(&self, node: TechNode) -> Box<dyn SizingProblem> {
        (self.build)(node)
    }

    /// The raw problem constructor, for wrappers that rebuild the circuit
    /// on many prepared cards (one per corner × mismatch sample).
    #[must_use]
    pub fn builder(&self) -> fn(TechNode) -> Box<dyn SizingProblem> {
        self.build
    }

    /// Builds a [`YieldProblem`] over this scenario's corner sweep on a
    /// named tech node. `None` entries in `settings` fall back to the
    /// scenario's [`Scenario::yield_preset`]; the mismatch seed should be
    /// the caller's run seed so yield estimates share the run's
    /// reproducibility envelope.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioError`] for an unknown tech node, an empty
    /// corner set, or an out-of-range sample count / threshold.
    pub fn build_yield(
        &self,
        tech: &str,
        backend: Option<Backend>,
        settings: YieldSettings,
    ) -> Result<YieldProblem, ScenarioError> {
        YieldProblem::new(self, tech, backend, settings)
    }

    /// Parses a corner name for this scenario. Any well-formed corner is
    /// accepted — the registered sweep is the characterisation set, not a
    /// whitelist, so `"tt"`-style bare process names (27 °C) and
    /// off-sweep probe corners like `ss_85c` both build.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::BadCorner`] when the name is malformed.
    pub fn corner(&self, name: &str) -> Result<Corner, ScenarioError> {
        Corner::parse(name).map_err(|reason| ScenarioError::BadCorner {
            scenario: self.name.to_string(),
            reason,
        })
    }
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("tech_names", &self.tech_names)
            .field("corners", &self.corners.len())
            .finish_non_exhaustive()
    }
}

/// The registry: an ordered collection of [`Scenario`]s addressable by
/// name.
#[derive(Debug)]
pub struct ScenarioRegistry {
    scenarios: Vec<Scenario>,
}

impl ScenarioRegistry {
    /// The standard registry: every circuit in the workspace, each on both
    /// tech cards (except the bandgap, which the paper characterises at
    /// 180 nm only), each with the standard five-corner PVT sweep.
    #[must_use]
    pub fn standard() -> Self {
        let both: &'static [&'static str] = &["180nm", "40nm"];
        let scenarios = vec![
            Scenario {
                name: "opamp2",
                summary: "Miller two-stage OTA: min I s.t. gain/PM/GBW (paper Eq. 15)",
                tech_names: both,
                default_tech: "180nm",
                corners: Corner::standard_sweep(),
                default_backend: Backend::SquareLaw,
                yield_preset: YieldPreset {
                    samples: 16,
                    threshold: 0.7,
                },
                build: |node| Box::new(TwoStageOpAmp::new(node)),
            },
            Scenario {
                name: "opamp3",
                summary: "nested-Miller three-stage OTA: min I s.t. gain/PM/GBW (paper Eq. 16)",
                tech_names: both,
                default_tech: "180nm",
                corners: Corner::standard_sweep(),
                default_backend: Backend::SquareLaw,
                yield_preset: YieldPreset {
                    samples: 16,
                    threshold: 0.7,
                },
                build: |node| Box::new(ThreeStageOpAmp::new(node)),
            },
            Scenario {
                name: "bandgap",
                summary: "ΔVBE/R bandgap reference: min TC s.t. I/PSRR (paper Eq. 17)",
                tech_names: &["180nm"],
                default_tech: "180nm",
                // Process corners only: the bandgap's figure of merit is
                // already a −40…125 °C sweep internally, so ambient-
                // temperature corners would just duplicate the TT rows.
                corners: Corner::process_sweep(),
                default_backend: Backend::SquareLaw,
                // The bandgap runs a full −40…125 °C Newton sweep per
                // evaluation, so its yield preset draws fewer samples.
                yield_preset: YieldPreset {
                    samples: 8,
                    threshold: 0.6,
                },
                build: |node| Box::new(Bandgap::new(node)),
            },
            Scenario {
                name: "folded_cascode",
                summary: "single-stage folded-cascode OTA: min I s.t. gain/PM/GBW",
                tech_names: both,
                default_tech: "180nm",
                corners: Corner::standard_sweep(),
                default_backend: Backend::SquareLaw,
                yield_preset: YieldPreset {
                    samples: 16,
                    threshold: 0.7,
                },
                build: |node| Box::new(FoldedCascodeOpAmp::new(node)),
            },
            Scenario {
                name: "telescopic",
                summary: "telescopic-cascode OTA: min I s.t. gain/PM/GBW (headroom-bound)",
                tech_names: both,
                default_tech: "180nm",
                corners: Corner::standard_sweep(),
                default_backend: Backend::SquareLaw,
                yield_preset: YieldPreset {
                    samples: 16,
                    threshold: 0.7,
                },
                build: |node| Box::new(TelescopicOpAmp::new(node)),
            },
            Scenario {
                name: "ldo",
                summary: "PMOS low-dropout regulator: min I_q s.t. dropout/PSRR/PM",
                tech_names: both,
                default_tech: "180nm",
                corners: Corner::standard_sweep(),
                default_backend: Backend::SquareLaw,
                yield_preset: YieldPreset {
                    samples: 16,
                    threshold: 0.7,
                },
                build: |node| Box::new(Ldo::new(node)),
            },
            // Device-level gm/ID-flow families: no AC macromodel, every
            // metric is a direct device-backend query, so they run on the
            // LUT backend by default.
            Scenario {
                name: "switch",
                summary: "NMOS pass switch: min area s.t. Ron/Cgg (LUT-native)",
                tech_names: both,
                default_tech: "180nm",
                corners: Corner::standard_sweep(),
                default_backend: Backend::Lut,
                // Device-level families: cheap evaluations, tighter bar.
                yield_preset: YieldPreset {
                    samples: 16,
                    threshold: 0.8,
                },
                build: |node| Box::new(Switch::new(node)),
            },
            Scenario {
                name: "varactor",
                summary: "MOS varactor: max C-tuning ratio s.t. Cmax/Q (LUT-native)",
                tech_names: both,
                default_tech: "180nm",
                corners: Corner::standard_sweep(),
                default_backend: Backend::Lut,
                // Device-level families: cheap evaluations, tighter bar.
                yield_preset: YieldPreset {
                    samples: 16,
                    threshold: 0.8,
                },
                build: |node| Box::new(Varactor::new(node)),
            },
        ];
        ScenarioRegistry { scenarios }
    }

    /// Adds a scenario to the registry (appended after the standard set).
    ///
    /// # Panics
    ///
    /// Panics if a scenario with the same name is already registered.
    pub fn register(&mut self, scenario: Scenario) {
        assert!(
            self.scenarios.iter().all(|s| s.name != scenario.name),
            "scenario '{}' registered twice",
            scenario.name
        );
        self.scenarios.push(scenario);
    }

    /// Registered scenario names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.scenarios.iter().map(|s| s.name).collect()
    }

    /// All scenarios, in registration order.
    #[must_use]
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Looks a scenario up by name.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownScenario`] listing every registered name.
    pub fn get(&self, name: &str) -> Result<&Scenario, ScenarioError> {
        self.scenarios
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| ScenarioError::UnknownScenario {
                name: name.to_string(),
                available: self.names().iter().map(ToString::to_string).collect(),
            })
    }

    /// Convenience: lookup + build in one call. `tech`/`corner` of `None`
    /// use the scenario's default tech node and the nominal TT corner.
    ///
    /// # Errors
    ///
    /// Any [`ScenarioError`] from the lookup, tech resolution or corner
    /// parse.
    pub fn build(
        &self,
        name: &str,
        tech: Option<&str>,
        corner: Option<&str>,
    ) -> Result<Box<dyn SizingProblem>, ScenarioError> {
        self.build_with(name, tech, corner, None)
    }

    /// Like [`ScenarioRegistry::build`] with an explicit device backend
    /// (`None` = the scenario's default).
    ///
    /// # Errors
    ///
    /// Any [`ScenarioError`] from the lookup, tech resolution or corner
    /// parse.
    pub fn build_with(
        &self,
        name: &str,
        tech: Option<&str>,
        corner: Option<&str>,
        backend: Option<Backend>,
    ) -> Result<Box<dyn SizingProblem>, ScenarioError> {
        let scenario = self.get(name)?;
        let corner = match corner {
            Some(c) => scenario.corner(c)?,
            None => Corner::tt(),
        };
        scenario.build_at(tech.unwrap_or(scenario.default_tech), &corner, backend)
    }
}

impl Default for ScenarioRegistry {
    fn default() -> Self {
        ScenarioRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_at_least_six_scenarios() {
        let reg = ScenarioRegistry::standard();
        assert!(reg.names().len() >= 6, "{:?}", reg.names());
        for expected in [
            "opamp2",
            "opamp3",
            "bandgap",
            "folded_cascode",
            "telescopic",
            "ldo",
        ] {
            assert!(reg.names().contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn unknown_names_error_with_available_list() {
        let reg = ScenarioRegistry::standard();
        let err = reg.get("opamp9").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("opamp9") && msg.contains("opamp2"), "{msg}");

        let err = reg
            .build("bandgap", Some("40nm"), None)
            .map(|p| p.name())
            .unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownTech { .. }), "{err}");

        let err = reg
            .build("ldo", None, Some("sf_27c"))
            .map(|p| p.name())
            .unwrap_err();
        assert!(matches!(err, ScenarioError::BadCorner { .. }), "{err}");
    }

    #[test]
    fn build_produces_named_problems_on_both_techs() {
        let reg = ScenarioRegistry::standard();
        let p = reg.build("ldo", None, None).unwrap();
        assert_eq!(p.name(), "ldo_180nm");
        let p = reg.build("ldo", Some("40nm"), None).unwrap();
        assert_eq!(p.name(), "ldo_40nm");
    }

    #[test]
    fn corner_build_changes_the_evaluation() {
        let reg = ScenarioRegistry::standard();
        let nom = reg.build("opamp2", None, None).unwrap();
        let ss_hot = reg.build("opamp2", None, Some("ss_125c")).unwrap();
        let x = vec![0.5; nom.dim()];
        assert_ne!(
            nom.evaluate(&x),
            ss_hot.evaluate(&x),
            "corner must shift the physics"
        );
    }

    #[test]
    fn every_scenario_default_build_evaluates_finite_metrics() {
        let reg = ScenarioRegistry::standard();
        for s in reg.scenarios() {
            let p = s.build_default();
            let m = p.evaluate(&p.expert_design());
            assert!(
                m.values().iter().all(|v| v.is_finite()),
                "{}: {m}",
                p.name()
            );
        }
    }
}
