use crate::problem::{Goal, Metrics, SizingProblem, Spec, SpecKind, VarSpec};
use crate::tech::TechNode;

/// MOS varactor sizing (gm/ID-flow device-level problem).
///
/// An NMOS gate capacitance used as a voltage-tuned capacitor: sweeping
/// the gate from 0 V to `VDD` moves `Cgg` from its depletion floor to the
/// full oxide capacitance, and the ratio of those two is the oscillator
/// designer's tuning range. Like [`crate::Switch`] this is LUT-native —
/// every metric is a direct device-backend query (the gostpy
/// `varactor_sizing` flow evaluated against precomputed C–V tables), no
/// simulator in the loop.
///
/// The tension: tuning ratio improves with gate area (the bias-independent
/// overlap capacitance dilutes it), but the distributed channel resistance
/// grows as `L²` for a fixed capacitance, collapsing the quality factor.
///
/// Design variables (mapped from the unit cube):
///
/// | # | name  | scale | meaning        |
/// |---|-------|-------|----------------|
/// | 0 | `w_m` | log   | gate width     |
/// | 1 | `l_m` | lin   | gate length    |
///
/// Specification: maximise the C_max/C_min tuning ratio subject to
/// `C_max ≥` bound (the tank needs enough capacitance) and `Q ≥` bound at
/// 1 GHz.
#[derive(Debug, Clone)]
pub struct Varactor {
    node: TechNode,
    vars: Vec<VarSpec>,
    specs: Vec<Spec>,
}

pub(crate) const M_TUNE: usize = 0;
pub(crate) const M_CMAX: usize = 1;
pub(crate) const M_Q: usize = 2;
// Report-only (no spec references it), so the index only matters to tests.
#[cfg(test)]
pub(crate) const M_AREA: usize = 3;

/// Q is quoted at this frequency, Hz.
const F_Q: f64 = 1e9;
/// Drain probe voltage for the channel-resistance measurement, V.
const VDS_PROBE: f64 = 0.05;

impl Varactor {
    /// Creates the problem on a technology node.
    #[must_use]
    pub fn new(node: TechNode) -> Self {
        let vars = vec![
            VarSpec::logarithmic("w_m", 5.0 * node.l_min, 2000.0 * node.l_min),
            VarSpec::lin("l_m", node.l_min, node.l_max),
        ];
        let (cmax_bound, q_bound) = if node.name == "40nm" {
            (50.0, 30.0)
        } else {
            (100.0, 20.0)
        };
        let specs = vec![
            Spec {
                metric: M_TUNE,
                kind: SpecKind::Objective(Goal::Maximize),
            },
            Spec {
                metric: M_CMAX,
                kind: SpecKind::GreaterEq(cmax_bound),
            },
            Spec {
                metric: M_Q,
                kind: SpecKind::GreaterEq(q_bound),
            },
        ];
        Varactor { node, vars, specs }
    }

    /// The technology node this instance is built on.
    #[must_use]
    pub fn tech(&self) -> &TechNode {
        &self.node
    }

    fn metrics_for(&self, w: f64, l: f64) -> Metrics {
        let node = &self.node;
        let cmax = node.mos_cgg(&node.nmos, w, l, node.vdd);
        let cmin = node.mos_cgg(&node.nmos, w, l, 0.0);
        let tune_ratio = cmax / cmin;
        // Distributed gate resistance of an on channel ≈ Ron/12.
        let (i_on, _, _) = node.mos_iv(&node.nmos, w, l, node.vdd, VDS_PROBE);
        let q = if i_on > 0.0 {
            let r_gate = VDS_PROBE / i_on / 12.0;
            1.0 / (2.0 * std::f64::consts::PI * F_Q * r_gate * cmax)
        } else {
            0.0
        };
        Metrics::new(vec![tune_ratio, cmax * 1e15, q, w * l * 1e12])
    }
}

impl SizingProblem for Varactor {
    fn name(&self) -> String {
        format!("varactor_{}", self.node.name)
    }

    fn variables(&self) -> &[VarSpec] {
        &self.vars
    }

    fn metric_names(&self) -> &[&'static str] {
        &["tune_ratio", "cmax_ff", "q_1ghz", "area_um2"]
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Metrics {
        assert_eq!(x.len(), self.dim(), "design vector length mismatch");
        self.metrics_for(
            self.vars[0].denormalize(x[0]),
            self.vars[1].denormalize(x[1]),
        )
    }

    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<Metrics> {
        // The C–V queries stay scalar (two table probes each); the Ron
        // probes behind Q sweep the population through the backend in one
        // batched call. Bitwise identical to the scalar loop.
        let node = &self.node;
        let geoms: Vec<(f64, f64)> = xs
            .iter()
            .map(|x| {
                assert_eq!(x.len(), self.dim(), "design vector length mismatch");
                (
                    self.vars[0].denormalize(x[0]),
                    self.vars[1].denormalize(x[1]),
                )
            })
            .collect();
        let points: Vec<(f64, f64, f64, f64)> = geoms
            .iter()
            .map(|&(w, l)| (w, l, node.vdd, VDS_PROBE))
            .collect();
        let ivs = node.mos_iv_batch(&node.nmos, &points);
        geoms
            .iter()
            .zip(&ivs)
            .map(|(&(w, l), &(i_on, _, _))| {
                let cmax = node.mos_cgg(&node.nmos, w, l, node.vdd);
                let cmin = node.mos_cgg(&node.nmos, w, l, 0.0);
                let q = if i_on > 0.0 {
                    let r_gate = VDS_PROBE / i_on / 12.0;
                    1.0 / (2.0 * std::f64::consts::PI * F_Q * r_gate * cmax)
                } else {
                    0.0
                };
                Metrics::new(vec![cmax / cmin, cmax * 1e15, q, w * l * 1e12])
            })
            .collect()
    }

    fn expert_design(&self) -> Vec<f64> {
        // Mid-length gate big enough for the C_max bound with ~25% margin.
        match self.node.name {
            "40nm" => vec![0.68, 0.60],
            _ => vec![0.45, 0.55],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Backend;

    #[test]
    fn longer_gate_better_ratio_worse_q() {
        let p = Varactor::new(TechNode::n180());
        let short = p.evaluate(&[0.6, 0.1]);
        let long = p.evaluate(&[0.6, 0.9]);
        assert!(long.get(M_TUNE) > short.get(M_TUNE), "{long} vs {short}");
        assert!(long.get(M_Q) < short.get(M_Q), "{long} vs {short}");
    }

    #[test]
    fn tuning_ratio_is_physical() {
        let p = Varactor::new(TechNode::n180());
        for x in [[0.2, 0.2], [0.5, 0.5], [0.9, 0.9]] {
            let m = p.evaluate(&x);
            assert!(
                m.get(M_TUNE) > 1.0 && m.get(M_TUNE) < 3.0,
                "C ratio must sit between 1 and the depletion-floor limit: {m}"
            );
            assert!(m.get(M_AREA) > 0.0, "area must be positive: {m}");
        }
    }

    #[test]
    fn expert_design_is_feasible_on_both_backends() {
        for node in [TechNode::n180(), TechNode::n40()] {
            for backend in [Backend::SquareLaw, Backend::Lut] {
                let p = Varactor::new(node.clone().with_backend(backend));
                let m = p.evaluate(&p.expert_design());
                assert!(
                    m.feasible(p.specs()),
                    "{} expert on {:?} got {m}",
                    p.name(),
                    backend
                );
            }
        }
    }

    #[test]
    fn batch_is_bitwise_identical_to_scalar_loop() {
        for backend in [Backend::SquareLaw, Backend::Lut] {
            let p = Varactor::new(TechNode::n40().with_backend(backend));
            let xs: Vec<Vec<f64>> = vec![vec![0.2, 0.7], vec![0.5, 0.5], vec![0.8, 0.3]];
            let batch = p.evaluate_batch(&xs);
            let scalar: Vec<Metrics> = xs.iter().map(|x| p.evaluate(x)).collect();
            assert_eq!(batch, scalar, "{backend:?}");
        }
    }
}
