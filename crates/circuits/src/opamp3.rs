use crate::problem::{Goal, Metrics, SizingProblem, Spec, SpecKind, VarSpec};
use crate::tech::TechNode;
use kato_mna::{phase_margin_deg, unity_gain_freq, AcSweep, Circuit};

/// Nested-Miller-compensated three-stage operational amplifier
/// (paper Fig. 3b).
///
/// Three transconductance stages (`+gm1`, `+gm2`, `−gm3`) with the outer
/// Miller capacitor `Cm1` from the output back to the first-stage output and
/// the inner capacitor `Cm2` from the output to the second-stage output —
/// the classic NMC pole-splitting arrangement. Evaluation follows the same
/// operating-point → macromodel → MNA AC pipeline as
/// [`crate::TwoStageOpAmp`].
///
/// Design variables (note: *different dimensionality* from the two-stage
/// problem — 9 vs 8 — which is exactly the situation KAT-GP's encoder must
/// bridge in the cross-topology transfer experiments):
///
/// | # | name    | scale | meaning                        |
/// |---|---------|-------|--------------------------------|
/// | 0 | `l1`    | lin   | first-stage channel length     |
/// | 1 | `w_in`  | log   | input-pair width               |
/// | 2 | `w2`    | log   | second-stage width             |
/// | 3 | `w3`    | log   | output-stage width             |
/// | 4 | `cm1`   | log   | outer Miller capacitor         |
/// | 5 | `cm2`   | log   | inner Miller capacitor         |
/// | 6 | `ib1`   | log   | first-stage tail current       |
/// | 7 | `ib2`   | log   | second-stage bias current      |
/// | 8 | `ib3`   | log   | output-stage bias current      |
///
/// Specification (paper Eq. 16): minimise `I_total` subject to `PM > 60°`,
/// `GBW > 2 MHz`, `Gain > 80 dB` (70 dB at 40 nm per Table 2).
#[derive(Debug, Clone)]
pub struct ThreeStageOpAmp {
    node: TechNode,
    vars: Vec<VarSpec>,
    specs: Vec<Spec>,
}

pub(crate) const M_ITOTAL: usize = 0;
pub(crate) const M_GAIN: usize = 1;
pub(crate) const M_PM: usize = 2;
pub(crate) const M_GBW: usize = 3;

impl ThreeStageOpAmp {
    /// Creates the problem on a technology node with the paper's spec table.
    #[must_use]
    pub fn new(node: TechNode) -> Self {
        let w_lo = 5.0 * node.l_min;
        let w_hi = 1000.0 * node.l_min;
        let vars = vec![
            VarSpec::lin("l1_m", node.l_min, node.l_max),
            VarSpec::logarithmic("w_in_m", w_lo, w_hi),
            VarSpec::logarithmic("w2_m", w_lo, w_hi),
            VarSpec::logarithmic("w3_m", 2.0 * w_lo, 4.0 * w_hi),
            VarSpec::logarithmic("cm1_f", 0.2e-12, 10e-12),
            VarSpec::logarithmic("cm2_f", 0.1e-12, 5e-12),
            VarSpec::logarithmic("ib1_a", 2e-6, 2e-4),
            VarSpec::logarithmic("ib2_a", 2e-6, 2e-4),
            VarSpec::logarithmic("ib3_a", 1e-5, 1e-3),
        ];
        let gain_bound = if node.name == "40nm" { 70.0 } else { 80.0 };
        let specs = vec![
            Spec {
                metric: M_ITOTAL,
                kind: SpecKind::Objective(Goal::Minimize),
            },
            Spec {
                metric: M_GAIN,
                kind: SpecKind::GreaterEq(gain_bound),
            },
            Spec {
                metric: M_PM,
                kind: SpecKind::GreaterEq(60.0),
            },
            Spec {
                metric: M_GBW,
                kind: SpecKind::GreaterEq(20.0),
            },
        ];
        ThreeStageOpAmp { node, vars, specs }
    }

    /// The technology node this instance is built on.
    #[must_use]
    pub fn tech(&self) -> &TechNode {
        &self.node
    }

    fn failed() -> Metrics {
        Metrics::new(vec![1e4, 0.0, 0.0, 1e-3])
    }
}

impl SizingProblem for ThreeStageOpAmp {
    fn name(&self) -> String {
        format!("opamp3_{}", self.node.name)
    }

    fn variables(&self) -> &[VarSpec] {
        &self.vars
    }

    fn metric_names(&self) -> &[&'static str] {
        &["i_total_ua", "gain_db", "pm_deg", "gbw_mhz"]
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Metrics {
        assert_eq!(x.len(), self.dim(), "design vector length mismatch");
        let p: Vec<f64> = self
            .vars
            .iter()
            .zip(x)
            .map(|(v, &u)| v.denormalize(u))
            .collect();
        let (l1, w_in, w2, w3, cm1, cm2, ib1, ib2, ib3) =
            (p[0], p[1], p[2], p[3], p[4], p[5], p[6], p[7], p[8]);
        let node = &self.node;
        let vdd = node.vdd;
        let l23 = 2.0 * node.l_min;

        // Stage 1: PMOS diff pair, NMOS mirror load (length l1 for gain).
        let id1 = ib1 / 2.0;
        let vds1 = vdd / 3.0;
        let vgs_in = node.vgs_for_id(&node.pmos, w_in, l1, vds1, id1);
        let (_, gm1, gds_in) = node.mos_iv(&node.pmos, w_in, l1, vgs_in, vds1);
        // Mirror load reuses the input-pair width (common practice).
        let vgs_ld = node.vgs_for_id(&node.nmos, w_in, l1, vds1, id1);
        let (_, _, gds_ld) = node.mos_iv(&node.nmos, w_in, l1, vgs_ld, vds1);
        let mut r1 = 1.0 / (gds_in + gds_ld);

        // Stage 2: NMOS common source, longer-than-minimum length for gain.
        let l_mid = (2.0 * l1).min(node.l_max);
        let vds2 = vdd / 2.0;
        let vgs2 = node.vgs_for_id(&node.nmos, w2, l_mid, vds2, ib2);
        let (_, gm2, gds2) = node.mos_iv(&node.nmos, w2, l_mid, vgs2, vds2);
        let wl_p = 2.0 * node.pmos.n_sub * ib2 / (node.pmos.kp * 0.04);
        let vgs_p2 = node.vgs_for_id(&node.pmos, (wl_p * l23).max(l23), l23, vds2, ib2);
        let (_, _, gds_p2) = node.mos_iv(&node.pmos, (wl_p * l23).max(l23), l23, vgs_p2, vds2);
        let mut r2 = 1.0 / (gds2 + gds_p2);

        // Stage 3: output NMOS common source.
        let vds3 = vdd / 2.0;
        let vgs3 = node.vgs_for_id(&node.nmos, w3, l23, vds3, ib3);
        let (_, gm3, gds3) = node.mos_iv(&node.nmos, w3, l23, vgs3, vds3);
        let wl_p3 = 2.0 * node.pmos.n_sub * ib3 / (node.pmos.kp * 0.04);
        let w_p3 = (wl_p3 * l23).max(l23);
        let vgs_p3 = node.vgs_for_id(&node.pmos, w_p3, l23, vds3, ib3);
        let (_, _, gds_p3) = node.mos_iv(&node.pmos, w_p3, l23, vgs_p3, vds3);
        let mut r3 = 1.0 / (gds3 + gds_p3);

        // Headroom soft-collapse.
        let vov_in = (vgs_in - node.pmos.vth).max(0.05);
        let margin1 = vdd - (0.2 + vov_in + vgs_ld + 0.10);
        if margin1 < 0.0 {
            r1 *= (10.0 * margin1).exp();
        }
        let vov2 = (vgs2 - node.nmos.vth).max(0.05);
        let margin2 = vdd - (vov2 + 0.2 + 0.15);
        if margin2 < 0.0 {
            r2 *= (10.0 * margin2).exp();
        }
        let vov3 = (vgs3 - node.nmos.vth).max(0.05);
        let margin3 = vdd - (vov3 + 0.2 + 0.15);
        if margin3 < 0.0 {
            r3 *= (10.0 * margin3).exp();
        }

        // Parasitics.
        let cgs2 = 2.0 / 3.0 * w2 * l_mid * node.nmos.cox + 0.3e-9 * w2;
        let c1 = cgs2 + 0.5e-9 * (2.0 * w_in);
        let cgs3 = 2.0 / 3.0 * w3 * l23 * node.nmos.cox + 0.3e-9 * w3;
        let c2 = cgs3 + 0.5e-9 * w2;
        let cl = node.c_load + 0.5e-9 * (w3 + w_p3);

        // Macromodel: +gm1 → n1, +gm2 → n2, −gm3 → out; Cm1 out→n1,
        // Cm2 out→n2 (nested Miller).
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        let nout = ckt.node("out");
        ckt.vsource_ac(vin, Circuit::GND, 0.0, 1.0);
        ckt.vccs(Circuit::GND, n1, vin, Circuit::GND, gm1);
        ckt.resistor(n1, Circuit::GND, r1.max(1.0));
        ckt.capacitor(n1, Circuit::GND, c1);
        ckt.vccs(Circuit::GND, n2, n1, Circuit::GND, gm2);
        ckt.resistor(n2, Circuit::GND, r2.max(1.0));
        ckt.capacitor(n2, Circuit::GND, c2);
        ckt.vccs(nout, Circuit::GND, n2, Circuit::GND, gm3); // inverting
        ckt.resistor(nout, Circuit::GND, r3.max(1.0));
        ckt.capacitor(nout, Circuit::GND, cl);
        ckt.capacitor(n1, nout, cm1);
        ckt.capacitor(n2, nout, cm2);

        let sweep = AcSweep::log(10.0, 20e9, 280);
        let Ok(bode) = ckt.ac_transfer(nout, &sweep) else {
            return Self::failed();
        };

        let gain_db = bode.dc_gain_db();
        let gbw_mhz = unity_gain_freq(&bode).map_or(1e-3, |f| f / 1e6);
        let pm_deg = phase_margin_deg(&bode).unwrap_or(0.0);
        let i_total_ua = 1.1 * (ib1 + ib2 + ib3) * 1e6;

        Metrics::new(vec![i_total_ua, gain_db, pm_deg, gbw_mhz])
    }

    fn expert_design(&self) -> Vec<f64> {
        // Calibrated competent manual designs (see DESIGN.md):
        // 180 nm: I ≈ 419 µA, gain 118 dB, PM 74°, GBW 25 MHz.
        // 40 nm:  I ≈ 231 µA, gain 81 dB, PM 82°, GBW 37 MHz.
        match self.node.name {
            "40nm" => vec![
                0.406, 0.726, 0.976, 0.723, 0.454, 0.263, 0.601, 0.912, 0.323,
            ],
            _ => vec![0.662, 0.827, 0.628, 0.7, 0.78, 0.895, 0.809, 0.996, 0.503],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midpoint_metrics_are_sane() {
        let p = ThreeStageOpAmp::new(TechNode::n180());
        let m = p.evaluate(&vec![0.5; p.dim()]);
        assert!(m.get(M_GAIN) > 40.0 && m.get(M_GAIN) < 180.0, "{m}");
        assert!(m.get(M_ITOTAL) > 5.0 && m.get(M_ITOTAL) < 2000.0, "{m}");
    }

    #[test]
    fn three_stage_beats_two_stage_gain() {
        use crate::TwoStageOpAmp;
        let x2 = vec![0.5; 8];
        let x3 = vec![0.5; 9];
        let g2 = TwoStageOpAmp::new(TechNode::n180()).evaluate(&x2).get(1);
        let g3 = ThreeStageOpAmp::new(TechNode::n180())
            .evaluate(&x3)
            .get(M_GAIN);
        assert!(
            g3 > g2 + 10.0,
            "an extra gain stage must add gain: {g2} vs {g3}"
        );
    }

    #[test]
    fn dimensionality_differs_from_two_stage() {
        use crate::TwoStageOpAmp;
        let p3 = ThreeStageOpAmp::new(TechNode::n180());
        let p2 = TwoStageOpAmp::new(TechNode::n180());
        assert_ne!(p3.dim(), p2.dim());
    }

    #[test]
    fn nested_miller_stabilises() {
        // Without Miller caps (tiny cm1/cm2) a 3-stage amp should have worse
        // phase margin than with proper compensation.
        let p = ThreeStageOpAmp::new(TechNode::n180());
        let mut uncomp = vec![0.5; 9];
        uncomp[4] = 0.0;
        uncomp[5] = 0.0;
        let mut comp = vec![0.5; 9];
        comp[4] = 0.7;
        comp[5] = 0.4;
        let pm_u = p.evaluate(&uncomp).get(M_PM);
        let pm_c = p.evaluate(&comp).get(M_PM);
        assert!(pm_c > pm_u, "compensation must help PM: {pm_u} vs {pm_c}");
    }

    #[test]
    fn expert_design_is_feasible() {
        let p = ThreeStageOpAmp::new(TechNode::n180());
        let m = p.evaluate(&p.expert_design());
        assert!(m.feasible(p.specs()), "expert got {m}");
    }

    #[test]
    fn deterministic() {
        let p = ThreeStageOpAmp::new(TechNode::n40());
        let x = vec![0.3; 9];
        assert_eq!(p.evaluate(&x), p.evaluate(&x));
    }
}
