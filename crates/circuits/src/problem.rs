use rand::Rng;
use std::fmt;

/// Direction of an objective metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Goal {
    /// Smaller is better (e.g. supply current, temperature coefficient).
    Minimize,
    /// Larger is better (e.g. gain).
    Maximize,
}

/// What a specification demands of one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecKind {
    /// This metric is the optimisation objective.
    Objective(Goal),
    /// Constraint `metric ≥ bound`.
    GreaterEq(f64),
    /// Constraint `metric ≤ bound`.
    LessEq(f64),
}

/// One row of a sizing specification table (paper Eq. 15–17).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spec {
    /// Index into the problem's metric vector.
    pub metric: usize,
    /// Requirement on that metric.
    pub kind: SpecKind,
}

impl Spec {
    /// Margin by which `value` satisfies this spec: positive = satisfied.
    /// Objectives always report `0.0` (they are not constraints).
    #[must_use]
    pub fn margin(&self, value: f64) -> f64 {
        match self.kind {
            SpecKind::Objective(_) => 0.0,
            SpecKind::GreaterEq(b) => value - b,
            SpecKind::LessEq(b) => b - value,
        }
    }
}

/// One design variable: physical range plus scaling.
#[derive(Debug, Clone, PartialEq)]
pub struct VarSpec {
    /// Human-readable name ("l1_m", "ib1_a", ...).
    pub name: &'static str,
    /// Lower physical bound.
    pub lo: f64,
    /// Upper physical bound.
    pub hi: f64,
    /// `true` → map the unit interval geometrically (decades), the natural
    /// scaling for currents, resistances and capacitances.
    pub log: bool,
}

impl VarSpec {
    /// Linear-scaled variable.
    #[must_use]
    pub fn lin(name: &'static str, lo: f64, hi: f64) -> Self {
        VarSpec {
            name,
            lo,
            hi,
            log: false,
        }
    }

    /// Log-scaled variable (`lo` must be positive).
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0` or `hi < lo`.
    #[must_use]
    pub fn logarithmic(name: &'static str, lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && hi >= lo, "bad log-scaled range for {name}");
        VarSpec {
            name,
            lo,
            hi,
            log: true,
        }
    }

    /// Maps a unit-interval coordinate to the physical value (clamping to
    /// `[0,1]` first, so optimizer overshoot cannot leave the space).
    #[must_use]
    pub fn denormalize(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        if self.log {
            (self.lo.ln() + u * (self.hi.ln() - self.lo.ln())).exp()
        } else {
            self.lo + u * (self.hi - self.lo)
        }
    }

    /// Inverse of [`VarSpec::denormalize`].
    #[must_use]
    pub fn normalize(&self, v: f64) -> f64 {
        let u = if self.log {
            (v.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln())
        } else {
            (v - self.lo) / (self.hi - self.lo)
        };
        u.clamp(0.0, 1.0)
    }
}

/// Metric vector produced by one circuit evaluation ("simulation").
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    values: Vec<f64>,
}

impl Metrics {
    /// Wraps a metric vector.
    #[must_use]
    pub fn new(values: Vec<f64>) -> Self {
        Metrics { values }
    }

    /// Value of metric `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// All metric values in problem order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `true` when every constraint in `specs` is met.
    #[must_use]
    pub fn feasible(&self, specs: &[Spec]) -> bool {
        specs.iter().all(|s| s.margin(self.values[s.metric]) >= 0.0)
    }

    /// Total constraint violation (sum of negative margins, ≥ 0).
    #[must_use]
    pub fn violation(&self, specs: &[Spec]) -> f64 {
        specs
            .iter()
            .map(|s| (-s.margin(self.values[s.metric])).max(0.0))
            .sum()
    }

    /// The objective value signed so that **larger is always better**
    /// (minimise-objectives are negated). Returns `None` if `specs` contains
    /// no objective.
    #[must_use]
    pub fn objective(&self, specs: &[Spec]) -> Option<f64> {
        specs.iter().find_map(|s| match s.kind {
            SpecKind::Objective(Goal::Maximize) => Some(self.values[s.metric]),
            SpecKind::Objective(Goal::Minimize) => Some(-self.values[s.metric]),
            _ => None,
        })
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4e}")?;
        }
        write!(f, "]")
    }
}

/// A transistor-sizing problem: `[0,1]^d` design space, simulator-backed
/// metric vector, and a specification table.
///
/// Implementations must be deterministic: the same design vector always
/// yields the same metrics.
pub trait SizingProblem: Send + Sync {
    /// Short unique name, e.g. `"opamp2_180nm"`.
    fn name(&self) -> String;

    /// Design-space dimensionality.
    fn dim(&self) -> usize {
        self.variables().len()
    }

    /// Per-variable physical ranges.
    fn variables(&self) -> &[VarSpec];

    /// Names of the metrics in evaluation order.
    fn metric_names(&self) -> &[&'static str];

    /// Specification table (objective + constraints), paper Eq. 15–17.
    fn specs(&self) -> &[Spec];

    /// Runs the "simulation" for a unit-cube design vector.
    ///
    /// Never fails: simulator breakdowns are mapped to heavily penalised
    /// metrics (mirroring how SPICE failures are treated in practice).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    fn evaluate(&self, x: &[f64]) -> Metrics;

    /// Evaluates a whole population of design vectors.
    ///
    /// The contract is strict: the result must be **bitwise identical** to
    /// the scalar loop `xs.iter().map(|x| self.evaluate(x))`, in order —
    /// batching is a throughput optimisation, never a semantic one. The
    /// default implementation is exactly that loop; backends with cheaper
    /// amortised population paths (shared device tables, vectorised
    /// operating-point sweeps) may override it, and wrapper problems must
    /// forward it so the optimisation survives composition.
    ///
    /// # Panics
    ///
    /// Panics if any `xs[i].len() != self.dim()`.
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<Metrics> {
        xs.iter().map(|x| self.evaluate(x)).collect()
    }

    /// A competent fixed reference design (the "Human Expert" rows of paper
    /// Tables 1–2).
    fn expert_design(&self) -> Vec<f64>;

    /// Whether per-candidate evaluation cost varies enough that population
    /// evaluation should *stream* candidates through the worker pool
    /// (dynamic work-claiming) rather than pre-shard them into equal
    /// contiguous chunks.
    ///
    /// Plain testbenches cost the same per candidate, so the default is
    /// `false` and the batch layer uses chunking (better locality, one
    /// sync point). Wrappers whose cost per candidate is data-dependent —
    /// e.g. Monte-Carlo yield with early abort, where an infeasible
    /// candidate stops after a handful of samples while a feasible one
    /// consumes the full budget — return `true` so a few expensive
    /// candidates cannot serialise a whole shard behind them. The hint
    /// is purely a scheduling choice: either path must produce results
    /// bitwise identical to the scalar loop.
    fn streaming_hint(&self) -> bool {
        false
    }

    /// Index of a metric by name.
    fn metric_index(&self, name: &str) -> Option<usize> {
        self.metric_names().iter().position(|m| *m == name)
    }

    /// Maps a unit design vector to named physical values (for reporting).
    fn physical(&self, x: &[f64]) -> Vec<(String, f64)> {
        self.variables()
            .iter()
            .zip(x)
            .map(|(v, &u)| (v.name.to_string(), v.denormalize(u)))
            .collect()
    }
}

/// A [`SizingProblem`] whose constraint bounds have been overridden by
/// name — the mechanism behind per-request spec overrides in sizing
/// requests (`katod`) and anywhere else a caller needs the stock circuit
/// under a tightened or relaxed spec table.
///
/// Only the *bound* of an existing `≥`/`≤` constraint can be overridden;
/// the constraint's direction and the objective row are fixed by the
/// circuit. The wrapped problem keeps its physics and variables untouched.
pub struct OverriddenProblem {
    inner: Box<dyn SizingProblem>,
    specs: Vec<Spec>,
    name: String,
}

impl fmt::Debug for OverriddenProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OverriddenProblem")
            .field("name", &self.name)
            .field("specs", &self.specs)
            .finish_non_exhaustive()
    }
}

impl OverriddenProblem {
    /// Wraps `inner` with the constraint bounds in `overrides` replaced,
    /// where each entry is `(metric name, new bound)`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending metric when it does not
    /// exist or carries no constraint (objectives cannot be overridden).
    pub fn new(inner: Box<dyn SizingProblem>, overrides: &[(String, f64)]) -> Result<Self, String> {
        let mut specs = inner.specs().to_vec();
        for (metric, bound) in overrides {
            if !bound.is_finite() {
                return Err(format!("override for '{metric}' must be finite"));
            }
            let idx = inner.metric_index(metric).ok_or_else(|| {
                format!(
                    "unknown metric '{metric}' (available: {})",
                    inner.metric_names().join(", ")
                )
            })?;
            let row = specs
                .iter_mut()
                .find(|s| s.metric == idx && !matches!(s.kind, SpecKind::Objective(_)))
                .ok_or_else(|| format!("metric '{metric}' has no constraint to override"))?;
            row.kind = match row.kind {
                SpecKind::GreaterEq(_) => SpecKind::GreaterEq(*bound),
                SpecKind::LessEq(_) => SpecKind::LessEq(*bound),
                SpecKind::Objective(_) => unreachable!("objective rows are filtered above"),
            };
        }
        let name = if overrides.is_empty() {
            inner.name()
        } else {
            format!("{}_custom", inner.name())
        };
        Ok(OverriddenProblem { inner, specs, name })
    }
}

impl SizingProblem for OverriddenProblem {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn variables(&self) -> &[VarSpec] {
        self.inner.variables()
    }
    fn metric_names(&self) -> &[&'static str] {
        self.inner.metric_names()
    }
    fn specs(&self) -> &[Spec] {
        &self.specs
    }
    fn evaluate(&self, x: &[f64]) -> Metrics {
        self.inner.evaluate(x)
    }
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<Metrics> {
        // Forward so the inner problem's batched fast path survives the
        // spec-override wrapper (overrides only change the spec table).
        self.inner.evaluate_batch(xs)
    }
    fn expert_design(&self) -> Vec<f64> {
        self.inner.expert_design()
    }
    fn streaming_hint(&self) -> bool {
        // A spec override never changes evaluation cost; keep the inner
        // problem's scheduling preference.
        self.inner.streaming_hint()
    }
}

/// Draws a uniform random design vector in the unit cube.
pub fn random_design<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Vec<f64> {
    (0..dim).map(|_| rng.gen::<f64>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn var_spec_roundtrip_linear_and_log() {
        let lin = VarSpec::lin("l", 1.0, 3.0);
        assert_eq!(lin.denormalize(0.5), 2.0);
        assert!((lin.normalize(2.0) - 0.5).abs() < 1e-12);

        let log = VarSpec::logarithmic("r", 1e3, 1e7);
        assert!((log.denormalize(0.5) - 1e5).abs() / 1e5 < 1e-9);
        assert!((log.normalize(1e5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn denormalize_clamps_overshoot() {
        let v = VarSpec::lin("x", 0.0, 10.0);
        assert_eq!(v.denormalize(-0.5), 0.0);
        assert_eq!(v.denormalize(1.5), 10.0);
    }

    #[test]
    #[should_panic(expected = "bad log-scaled range")]
    fn log_var_rejects_nonpositive_lo() {
        let _ = VarSpec::logarithmic("bad", 0.0, 1.0);
    }

    #[test]
    fn spec_margins() {
        let ge = Spec {
            metric: 0,
            kind: SpecKind::GreaterEq(60.0),
        };
        assert_eq!(ge.margin(70.0), 10.0);
        assert_eq!(ge.margin(50.0), -10.0);
        let le = Spec {
            metric: 0,
            kind: SpecKind::LessEq(6.0),
        };
        assert_eq!(le.margin(5.0), 1.0);
        let obj = Spec {
            metric: 0,
            kind: SpecKind::Objective(Goal::Minimize),
        };
        assert_eq!(obj.margin(123.0), 0.0);
    }

    #[test]
    fn metrics_feasibility_and_objective() {
        let specs = [
            Spec {
                metric: 0,
                kind: SpecKind::Objective(Goal::Minimize),
            },
            Spec {
                metric: 1,
                kind: SpecKind::GreaterEq(60.0),
            },
            Spec {
                metric: 2,
                kind: SpecKind::LessEq(6.0),
            },
        ];
        let good = Metrics::new(vec![100.0, 75.0, 4.0]);
        assert!(good.feasible(&specs));
        assert_eq!(good.violation(&specs), 0.0);
        assert_eq!(good.objective(&specs), Some(-100.0));

        let bad = Metrics::new(vec![100.0, 50.0, 8.0]);
        assert!(!bad.feasible(&specs));
        assert!((bad.violation(&specs) - 12.0).abs() < 1e-12);
    }

    struct FixedToy;
    impl SizingProblem for FixedToy {
        fn name(&self) -> String {
            "fixed_toy".into()
        }
        fn variables(&self) -> &[VarSpec] {
            const V: [VarSpec; 1] = [VarSpec {
                name: "a",
                lo: 0.0,
                hi: 1.0,
                log: false,
            }];
            &V
        }
        fn metric_names(&self) -> &[&'static str] {
            &["i_total", "gain_db"]
        }
        fn specs(&self) -> &[Spec] {
            const S: [Spec; 2] = [
                Spec {
                    metric: 0,
                    kind: SpecKind::Objective(Goal::Minimize),
                },
                Spec {
                    metric: 1,
                    kind: SpecKind::GreaterEq(60.0),
                },
            ];
            &S
        }
        fn evaluate(&self, x: &[f64]) -> Metrics {
            Metrics::new(vec![x[0], 100.0 * x[0]])
        }
        fn expert_design(&self) -> Vec<f64> {
            vec![0.8]
        }
    }

    #[test]
    fn overridden_problem_replaces_bounds_only() {
        let over =
            OverriddenProblem::new(Box::new(FixedToy), &[("gain_db".to_string(), 80.0)]).unwrap();
        assert_eq!(over.name(), "fixed_toy_custom");
        assert_eq!(over.dim(), 1);
        // 0.7 meets the stock 60 dB bound but not the overridden 80 dB one.
        let m = over.evaluate(&[0.7]);
        assert!(m.feasible(FixedToy.specs()));
        assert!(!m.feasible(over.specs()));
        assert!(over.evaluate(&[0.9]).feasible(over.specs()));
        // Empty override list keeps the stock name and table.
        let plain = OverriddenProblem::new(Box::new(FixedToy), &[]).unwrap();
        assert_eq!(plain.name(), "fixed_toy");
        assert_eq!(plain.specs(), FixedToy.specs());
    }

    #[test]
    fn overridden_problem_rejects_bad_metrics() {
        let unknown = OverriddenProblem::new(Box::new(FixedToy), &[("psrr_db".to_string(), 50.0)]);
        assert!(unknown.unwrap_err().contains("unknown metric"));
        let objective = OverriddenProblem::new(Box::new(FixedToy), &[("i_total".to_string(), 1.0)]);
        assert!(objective.unwrap_err().contains("no constraint"));
        let non_finite =
            OverriddenProblem::new(Box::new(FixedToy), &[("gain_db".to_string(), f64::NAN)]);
        assert!(non_finite.unwrap_err().contains("finite"));
    }

    #[test]
    fn default_evaluate_batch_matches_scalar_loop() {
        let xs: Vec<Vec<f64>> = vec![vec![0.1], vec![0.5], vec![0.9]];
        let batch = FixedToy.evaluate_batch(&xs);
        assert_eq!(batch.len(), xs.len());
        for (x, m) in xs.iter().zip(&batch) {
            assert_eq!(m, &FixedToy.evaluate(x));
        }
        // The override wrapper forwards batching to the inner problem.
        let over =
            OverriddenProblem::new(Box::new(FixedToy), &[("gain_db".to_string(), 80.0)]).unwrap();
        assert_eq!(over.evaluate_batch(&xs), batch);
    }

    #[test]
    fn random_designs_in_unit_cube() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = random_design(5, &mut rng);
            assert_eq!(x.len(), 5);
            assert!(x.iter().all(|&u| (0.0..1.0).contains(&u)));
        }
    }
}
