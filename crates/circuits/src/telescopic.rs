use crate::problem::{Goal, Metrics, SizingProblem, Spec, SpecKind, VarSpec};
use crate::tech::TechNode;
use kato_mna::{phase_margin_deg, unity_gain_freq, AcSweep, Circuit};

/// Single-stage telescopic-cascode OTA.
///
/// An NMOS differential pair stacked directly under NMOS cascodes, loaded
/// by a cascoded PMOS mirror: five devices in one vertical stack. The
/// topology buys the highest gain-per-ampere of the registry's amplifier
/// family (both stacks are cascoded and the signal current never leaves
/// its branch), but every device's overdrive eats supply headroom — at the
/// 1.1 V 40 nm node the stack barely fits, so the feasible region is
/// dramatically smaller than at 180 nm. That strong node dependence is what
/// makes the telescopic a stress test for cross-technology transfer.
///
/// Evaluation: operating points → small-signal macromodel → MNA AC sweep,
/// as in [`crate::TwoStageOpAmp`].
///
/// Design variables (all mapped from the unit cube):
///
/// | # | name      | scale | meaning                          |
/// |---|-----------|-------|----------------------------------|
/// | 0 | `l1`      | lin   | channel length (whole stack)     |
/// | 1 | `w_in`    | log   | input-pair width                 |
/// | 2 | `w_cas`   | log   | NMOS cascode width               |
/// | 3 | `w_pcas`  | log   | PMOS load/cascode width          |
/// | 4 | `ib_tail` | log   | tail current                     |
///
/// Specification: minimise `I_total` subject to `PM > 60°`,
/// `GBW > 20 MHz`, `Gain > 70 dB` (55 dB at 40 nm, where the stack's
/// headroom makes the nominal 70 dB unreachable at realistic currents).
#[derive(Debug, Clone)]
pub struct TelescopicOpAmp {
    node: TechNode,
    vars: Vec<VarSpec>,
    specs: Vec<Spec>,
}

pub(crate) const M_ITOTAL: usize = 0;
pub(crate) const M_GAIN: usize = 1;
pub(crate) const M_PM: usize = 2;
pub(crate) const M_GBW: usize = 3;

impl TelescopicOpAmp {
    /// Creates the problem on a technology node.
    #[must_use]
    pub fn new(node: TechNode) -> Self {
        let w_lo = 5.0 * node.l_min;
        let w_hi = 1000.0 * node.l_min;
        let vars = vec![
            VarSpec::lin("l1_m", node.l_min, node.l_max),
            VarSpec::logarithmic("w_in_m", w_lo, w_hi),
            VarSpec::logarithmic("w_cas_m", w_lo, w_hi),
            VarSpec::logarithmic("w_pcas_m", w_lo, w_hi),
            VarSpec::logarithmic("ib_tail_a", 5e-6, 5e-4),
        ];
        let gain_bound = if node.name == "40nm" { 55.0 } else { 70.0 };
        let specs = vec![
            Spec {
                metric: M_ITOTAL,
                kind: SpecKind::Objective(Goal::Minimize),
            },
            Spec {
                metric: M_GAIN,
                kind: SpecKind::GreaterEq(gain_bound),
            },
            Spec {
                metric: M_PM,
                kind: SpecKind::GreaterEq(60.0),
            },
            Spec {
                metric: M_GBW,
                kind: SpecKind::GreaterEq(20.0),
            },
        ];
        TelescopicOpAmp { node, vars, specs }
    }

    /// The technology node this instance is built on.
    #[must_use]
    pub fn tech(&self) -> &TechNode {
        &self.node
    }

    fn failed() -> Metrics {
        Metrics::new(vec![1e4, 0.0, 0.0, 1e-3])
    }
}

impl SizingProblem for TelescopicOpAmp {
    fn name(&self) -> String {
        format!("telescopic_{}", self.node.name)
    }

    fn variables(&self) -> &[VarSpec] {
        &self.vars
    }

    fn metric_names(&self) -> &[&'static str] {
        &["i_total_ua", "gain_db", "pm_deg", "gbw_mhz"]
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Metrics {
        assert_eq!(x.len(), self.dim(), "design vector length mismatch");
        let p: Vec<f64> = self
            .vars
            .iter()
            .zip(x)
            .map(|(v, &u)| v.denormalize(u))
            .collect();
        let (l1, w_in, w_cas, w_pcas, ib_tail) = (p[0], p[1], p[2], p[3], p[4]);
        let node = &self.node;
        let vdd = node.vdd;
        let id = ib_tail / 2.0;

        // --- Operating points (one branch, five-device stack) ------------
        let vds_mid = vdd / 5.0;
        let vgs_in = node.vgs_for_id(&node.nmos, w_in, l1, vds_mid, id);
        let (_, gm_in, gds_in) = node.mos_iv(&node.nmos, w_in, l1, vgs_in, vds_mid);

        let vgs_c = node.vgs_for_id(&node.nmos, w_cas, l1, vds_mid, id);
        let (_, gm_c, gds_c) = node.mos_iv(&node.nmos, w_cas, l1, vgs_c, vds_mid);

        let vgs_p = node.vgs_for_id(&node.pmos, w_pcas, l1, vds_mid, id);
        let (_, gm_p, gds_p) = node.mos_iv(&node.pmos, w_pcas, l1, vgs_p, vds_mid);

        // --- Output resistance: cascode boost on both stacks -------------
        let ro_down = (gm_c / gds_c) * (1.0 / gds_in);
        let ro_up = (gm_p / gds_p) * (1.0 / gds_p);
        let mut rout = ro_down * ro_up / (ro_down + ro_up);

        // --- Headroom: the whole stack must fit under VDD ----------------
        let vov_in = (vgs_in - node.nmos.vth).max(0.05);
        let vov_c = (vgs_c - node.nmos.vth).max(0.05);
        let vov_p = (vgs_p - node.pmos.vth).max(0.05);
        // Tail (0.2) + input + cascode + two PMOS devices + output swing
        // margin. This is the telescopic's defining constraint.
        let margin = vdd - (0.2 + vov_in + vov_c + 2.0 * vov_p + 0.2);
        if margin < 0.0 {
            rout *= (10.0 * margin).exp();
        }

        // --- Parasitics ---------------------------------------------------
        let cgs_c = 2.0 / 3.0 * w_cas * l1 * node.nmos.cox + 0.3e-9 * w_cas;
        let c_mid = cgs_c + 0.5e-9 * w_in;
        let cl = node.c_load + 0.5e-9 * (w_cas + w_pcas);

        // --- Small-signal macromodel to MNA -------------------------------
        // Input gm into the cascode source node (impedance ≈ 1/gm_c), then
        // the cascode relays the current into the output.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let nm = ckt.node("mid");
        let nout = ckt.node("out");
        ckt.vsource_ac(vin, Circuit::GND, 0.0, 1.0);
        ckt.vccs(Circuit::GND, nm, vin, Circuit::GND, gm_in);
        ckt.resistor(nm, Circuit::GND, (1.0 / gm_c).max(1.0));
        ckt.capacitor(nm, Circuit::GND, c_mid);
        ckt.vccs(Circuit::GND, nout, nm, Circuit::GND, gm_c);
        ckt.resistor(nout, Circuit::GND, rout.max(1.0));
        ckt.capacitor(nout, Circuit::GND, cl);

        let sweep = AcSweep::log(10.0, 20e9, 280);
        let Ok(bode) = ckt.ac_transfer(nout, &sweep) else {
            return Self::failed();
        };

        let gain_db = bode.dc_gain_db();
        let gbw_mhz = unity_gain_freq(&bode).map_or(1e-3, |f| f / 1e6);
        let pm_deg = phase_margin_deg(&bode).unwrap_or(0.0);
        // Both branches run off the single tail: no extra legs.
        let i_total_ua = 1.1 * ib_tail * 1e6;

        Metrics::new(vec![i_total_ua, gain_db, pm_deg, gbw_mhz])
    }

    fn expert_design(&self) -> Vec<f64> {
        // Calibrated competent manual designs (feasible with margin;
        // found by random search + local refinement).
        //
        // 180 nm: I ≈ 87 µA, gain 86 dB, PM 89°, GBW 24 MHz.
        // 40 nm:  I ≈ 87 µA, gain 56 dB, PM 90°, GBW 26 MHz.
        match self.node.name {
            "40nm" => vec![0.20, 0.90, 0.40, 0.70, 0.60],
            _ => vec![0.10, 0.80, 0.50, 0.80, 0.60],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midpoint_metrics_are_sane() {
        let p = TelescopicOpAmp::new(TechNode::n180());
        let m = p.evaluate(&vec![0.5; p.dim()]);
        assert!(m.get(M_GAIN) > 40.0 && m.get(M_GAIN) < 150.0, "{m}");
        assert!(m.get(M_ITOTAL) > 5.0 && m.get(M_ITOTAL) < 1000.0, "{m}");
    }

    #[test]
    fn beats_folded_cascode_gain_per_current_at_180nm() {
        use crate::FoldedCascodeOpAmp;
        // Same midpoint sizing intent: the telescopic re-uses its branch
        // current end to end, the folded cascode pays for extra legs.
        let t = TelescopicOpAmp::new(TechNode::n180());
        let f = FoldedCascodeOpAmp::new(TechNode::n180());
        let mt = t.evaluate(&vec![0.5; t.dim()]);
        let mf = f.evaluate(&vec![0.5; f.dim()]);
        let eff_t = mt.get(M_GAIN) / mt.get(M_ITOTAL);
        let eff_f = mf.get(1) / mf.get(0);
        assert!(
            eff_t > eff_f,
            "telescopic must win gain/µA: {eff_t} vs {eff_f}"
        );
    }

    #[test]
    fn headroom_collapse_hits_40nm_harder() {
        // The same mid-range design loses far more gain to the stack's
        // headroom at 1.1 V than at 1.8 V — the node dependence that
        // motivates transfer.
        let x = vec![0.5; 5];
        let g180 = TelescopicOpAmp::new(TechNode::n180()).evaluate(&x).get(1);
        let g40 = TelescopicOpAmp::new(TechNode::n40()).evaluate(&x).get(1);
        assert!(
            g180 > g40 + 10.0,
            "stack must struggle at 1.1 V: {g180} vs {g40}"
        );
    }

    #[test]
    fn longer_channel_more_gain() {
        // Wide devices keep overdrives low so the headroom collapse stays
        // out of the way of the ro ∝ L trend.
        let p = TelescopicOpAmp::new(TechNode::n180());
        let mut short = vec![0.5, 0.8, 0.8, 0.8, 0.5];
        let mut long = short.clone();
        short[0] = 0.05;
        long[0] = 0.8;
        let g_s = p.evaluate(&short).get(M_GAIN);
        let g_l = p.evaluate(&long).get(M_GAIN);
        assert!(g_l > g_s + 3.0, "cascode ro ∝ L: {g_s} vs {g_l}");
    }

    #[test]
    fn expert_design_is_feasible() {
        for node in [TechNode::n180(), TechNode::n40()] {
            let p = TelescopicOpAmp::new(node);
            let m = p.evaluate(&p.expert_design());
            assert!(m.feasible(p.specs()), "{} expert got {m}", p.name());
        }
    }

    #[test]
    fn deterministic() {
        let p = TelescopicOpAmp::new(TechNode::n40());
        let x = vec![0.3, 0.6, 0.4, 0.7, 0.5];
        assert_eq!(p.evaluate(&x), p.evaluate(&x));
    }
}
