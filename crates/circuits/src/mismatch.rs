//! Local (per-device) mismatch: Pelgrom-law random variation of `Vth`/`KP`.
//!
//! Global PVT corners ([`crate::Corner`]) move every device on the die
//! together; *local* mismatch is the residual device-to-device randomness
//! left after that shift — dopant fluctuation and edge roughness — and is
//! what limits offset, matching-critical bias networks and ultimately
//! yield. The classic Pelgrom area law says the standard deviation of a
//! matched-pair parameter difference shrinks with the square root of gate
//! area:
//!
//! ```text
//! σ(ΔVth)    = A_vth / √(W·L)         [V,  A_vth in V·m]
//! σ(ΔKP/KP)  = A_kp  / √(W·L)         [–,  A_kp  in m]
//! ```
//!
//! # Deterministic sampling
//!
//! A Monte-Carlo *sample* of a candidate design is identified by the triple
//! `(seed, candidate design vector, sample index)`. [`MismatchStream`]
//! hashes that triple through the SplitMix64 finaliser into one 64-bit
//! stream key; each *device* then derives its own sub-stream from the key
//! plus its identity (polarity tag, `W`, `L`) and converts two uniform
//! draws into two standard normals via Box–Muller. The whole chain is a
//! pure function with no global state, so the perturbation applied to a
//! device is **bitwise identical** regardless of `KATO_THREADS`, of the
//! order candidates are evaluated in, or of which worker thread runs the
//! testbench — the property every seeded-reproducibility contract in this
//! workspace leans on.
//!
//! Two devices of the same polarity and identical `(W, L)` inside one
//! sample receive identical perturbations — the "common-centroid matched
//! pair" reading, which is also what keeps the sampling scheme independent
//! of testbench evaluation order.
//!
//! The perturbation itself is applied by [`crate::TechNode`]'s device-query
//! routing as an exact *query remap*: in this model family `id`, `gm` and
//! `gds` depend on `vgs` only through `vgs − vth` and are exactly linear in
//! `KP`, so a `Vth` shift is a `vgs`-shift of the query and a `KP` scale is
//! an output scale. That keeps one LUT per nominal model card (no
//! per-sample table generation) while remaining exact for both backends.

/// SplitMix64 finaliser: avalanche-mixes `seed` with one `stream` word.
/// The same construction the KAT-GP seed derivation uses — cheap, stateless
/// and well distributed, which is all a reproducible sampler needs.
#[must_use]
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps 64 random bits to a uniform draw in the half-open interval `(0, 1]`
/// (never 0, so `ln(u)` stays finite in the Box–Muller transform).
#[must_use]
fn unit_open(bits: u64) -> f64 {
    ((bits >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Pelgrom area-law mismatch coefficients of a technology card.
///
/// Units put `W` and `L` in metres: `a_vth` is in V·m (5 mV·µm ⇒ `5e-9`),
/// `a_kp` in m (1 %·µm ⇒ `1e-8`). A coefficient of zero disables that
/// component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pelgrom {
    /// `A_Vth`: σ(ΔVth)·√(W·L), V·m.
    pub a_vth: f64,
    /// `A_KP`: σ(ΔKP/KP)·√(W·L), m.
    pub a_kp: f64,
}

impl Pelgrom {
    /// σ(ΔVth) in volts for a device of gate area `w·l` (metres).
    #[must_use]
    pub fn sigma_vth(&self, w: f64, l: f64) -> f64 {
        self.a_vth / (w * l).sqrt()
    }

    /// σ(ΔKP/KP) (relative) for a device of gate area `w·l` (metres).
    #[must_use]
    pub fn sigma_kp_rel(&self, w: f64, l: f64) -> f64 {
        self.a_kp / (w * l).sqrt()
    }
}

/// The perturbation one device receives in one Monte-Carlo sample,
/// expressed in the exact query-remap form the [`crate::TechNode`] routing
/// applies: shift every `vgs` by `dvth`, scale `id`/`gm`/`gds` by
/// `kp_ratio`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MismatchDeltas {
    /// Threshold-voltage shift, V.
    pub dvth: f64,
    /// Multiplicative `KP` factor (clamped to stay positive).
    pub kp_ratio: f64,
}

impl MismatchDeltas {
    /// The identity perturbation (what the nominal sample applies).
    #[must_use]
    pub fn none() -> Self {
        MismatchDeltas {
            dvth: 0.0,
            kp_ratio: 1.0,
        }
    }
}

/// One Monte-Carlo mismatch sample: the per-candidate SplitMix64 stream
/// every device of that sample draws its perturbation from.
///
/// Copyable and 8 bytes — attaching it to a [`crate::TechNode`] card is
/// free, and two cards carrying the same key are bitwise-equal perturbed
/// cards by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MismatchStream {
    key: u64,
}

impl MismatchStream {
    /// Derives the stream for Monte-Carlo sample `sample` of the candidate
    /// with unit-cube design vector `x` under run seed `seed`.
    ///
    /// The key folds in the exact bit patterns of every coordinate, so the
    /// stream identifies the *candidate*, not its position in a population
    /// — evaluating the same design alone, inside a batch, or on a
    /// different thread count yields the same stream.
    #[must_use]
    pub fn for_candidate(seed: u64, x: &[f64], sample: u64) -> Self {
        let mut key = mix(seed, sample);
        key = mix(key, x.len() as u64);
        for &xi in x {
            key = mix(key, xi.to_bits());
        }
        MismatchStream { key }
    }

    /// Builds a stream directly from a raw key (tests and tooling).
    #[must_use]
    pub fn from_key(key: u64) -> Self {
        MismatchStream { key }
    }

    /// The raw stream key.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The perturbation of the device identified by `device` (a polarity
    /// tag) with geometry `(w, l)` in metres, under coefficients `pelgrom`.
    ///
    /// Two standard normals come from one Box–Muller transform of two
    /// uniform draws derived from `(key, device, w, l)` — a pure function,
    /// so repeated queries for the same device (e.g. an operating-point
    /// inversion followed by an I–V evaluation) see one consistent device.
    #[must_use]
    pub fn deltas(&self, device: u64, w: f64, l: f64, pelgrom: &Pelgrom) -> MismatchDeltas {
        let mut s = mix(self.key, device);
        s = mix(s, w.to_bits());
        s = mix(s, l.to_bits());
        let u1 = unit_open(mix(s, 1));
        let u2 = unit_open(mix(s, 2));
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        let (z1, z2) = (r * theta.cos(), r * theta.sin());
        let dvth = pelgrom.sigma_vth(w, l) * z1;
        // A deep-negative KP draw is unphysical; clamp far below any
        // realistic σ so the estimator stays well-defined for tiny devices.
        let kp_ratio = (1.0 + pelgrom.sigma_kp_rel(w, l) * z2).max(0.05);
        MismatchDeltas { dvth, kp_ratio }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PELGROM: Pelgrom = Pelgrom {
        a_vth: 5e-9,
        a_kp: 1e-8,
    };

    #[test]
    fn stream_is_a_pure_function_of_its_inputs() {
        let x = [0.25, 0.5, 0.75];
        let a = MismatchStream::for_candidate(7, &x, 3);
        let b = MismatchStream::for_candidate(7, &x, 3);
        assert_eq!(a, b);
        assert_eq!(
            a.deltas(0, 10e-6, 0.5e-6, &PELGROM),
            b.deltas(0, 10e-6, 0.5e-6, &PELGROM)
        );
        // Seed, candidate and sample index all separate streams.
        assert_ne!(a, MismatchStream::for_candidate(8, &x, 3));
        assert_ne!(a, MismatchStream::for_candidate(7, &x, 4));
        assert_ne!(a, MismatchStream::for_candidate(7, &[0.25, 0.5, 0.76], 3));
    }

    #[test]
    fn devices_draw_independently_but_consistently() {
        let s = MismatchStream::for_candidate(1, &[0.5], 1);
        let d_n = s.deltas(0, 10e-6, 0.5e-6, &PELGROM);
        let d_p = s.deltas(1, 10e-6, 0.5e-6, &PELGROM);
        let d_other_geom = s.deltas(0, 11e-6, 0.5e-6, &PELGROM);
        assert_ne!(d_n, d_p, "polarity must separate draws");
        assert_ne!(d_n, d_other_geom, "geometry must separate draws");
        // Same device queried twice: identical (matched-pair consistency).
        assert_eq!(d_n, s.deltas(0, 10e-6, 0.5e-6, &PELGROM));
    }

    #[test]
    fn sigma_follows_the_area_law() {
        // σ(Vth) at 1 µm² gate area with A = 5 mV·µm is 5 mV.
        let s = PELGROM.sigma_vth(1e-6, 1e-6);
        assert!((s - 5e-3).abs() < 1e-12, "{s}");
        // Quadrupling the area halves σ.
        let s4 = PELGROM.sigma_vth(2e-6, 2e-6);
        assert!((s4 - 2.5e-3).abs() < 1e-12, "{s4}");
    }

    #[test]
    fn draws_are_zero_mean_at_scale() {
        let s = MismatchStream::from_key(42);
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|i| s.deltas(i, 1e-6, 1e-6, &PELGROM).dvth)
            .sum::<f64>()
            / f64::from(n as u32);
        // σ/√n ≈ 79 µV; allow 4 standard errors.
        assert!(
            mean.abs() < 4.0 * 5e-3 / f64::from(n as u32).sqrt(),
            "{mean}"
        );
    }

    #[test]
    fn unit_open_stays_in_half_open_interval() {
        for bits in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000] {
            let u = unit_open(bits);
            assert!(u > 0.0 && u <= 1.0, "{u}");
        }
    }
}
