use crate::problem::{Goal, Metrics, SizingProblem, Spec, SpecKind, VarSpec};
use crate::tech::TechNode;
use kato_mna::{phase_margin_deg, psrr_db, AcSweep, Circuit};

/// Low-dropout (LDO) linear regulator — the registry's first non-amplifier
/// scenario, modelled on the regulator benchmarks used by the broader
/// sizing literature (GCN-RL's LDO, the transformer-LUT suite's
/// regulators).
///
/// Topology: a single-stage error amplifier drives a wide PMOS pass device
/// from the supply; a resistive divider feeds the output voltage back to
/// the error amplifier against a behavioural 0.5 V reference. The load is
/// a fixed 1 mA DC sink plus 100 pF of on-chip capacitance (a "cap-less"
/// LDO — output-pole compensation comes from the Miller capacitor `cc`
/// across the pass device, not from a board-level microfarad).
///
/// Each evaluation runs **two** MNA analyses:
///
/// 1. **Closed-loop AC** with a unit ripple on the supply: PSRR at 1 kHz
///    (the pass device's `g_ds`/`C_gs` couple the ripple in; the loop gain
///    suppresses it — both paths are in the netlist).
/// 2. **Open-loop AC** with the feedback path broken at the error-amp
///    input: loop-gain Bode data for the phase margin.
///
/// Dropout is measured on the DC device model: the pass device's triode
/// on-resistance at full gate drive (`V_GS = VDD`) times the load current —
/// the industry definition (`V_do = I_load · R_on`).
///
/// Design variables (all mapped from the unit cube):
///
/// | # | name     | scale | meaning                                 |
/// |---|----------|-------|-----------------------------------------|
/// | 0 | `l_ea`   | lin   | error-amp input channel length          |
/// | 1 | `w_ea`   | log   | error-amp input width                   |
/// | 2 | `w_pass` | log   | pass-device width                       |
/// | 3 | `ib_ea`  | log   | error-amp bias current                  |
/// | 4 | `cc`     | log   | Miller compensation capacitor           |
/// | 5 | `r_fb`   | log   | total feedback-divider resistance       |
///
/// Specification: minimise quiescent current `I_q` subject to
/// `dropout < 50 mV`, `PSRR > 40 dB @ 1 kHz`, `PM > 45°`. The PSRR bound
/// relaxes to 30 dB at 40 nm, where the short-channel error amplifier
/// cannot buy the same loop gain — the same per-node spec-preset pattern
/// as the op-amp gain bounds.
#[derive(Debug, Clone)]
pub struct Ldo {
    node: TechNode,
    vars: Vec<VarSpec>,
    specs: Vec<Spec>,
}

pub(crate) const M_IQ: usize = 0;
pub(crate) const M_DROPOUT: usize = 1;
pub(crate) const M_PSRR: usize = 2;
pub(crate) const M_PM: usize = 3;

/// Fixed DC load current, A.
const I_LOAD: f64 = 1e-3;
/// Fixed on-chip output capacitance, F.
const C_OUT: f64 = 100e-12;
/// Behavioural reference voltage, V.
const V_REF: f64 = 0.5;

impl Ldo {
    /// Creates the problem on a technology node. The regulation target is
    /// `VDD − 0.3 V`, so both cards run with 300 mV of nominal headroom.
    #[must_use]
    pub fn new(node: TechNode) -> Self {
        let w_lo = 5.0 * node.l_min;
        let w_hi = 1000.0 * node.l_min;
        let vars = vec![
            VarSpec::lin("l_ea_m", node.l_min, node.l_max),
            VarSpec::logarithmic("w_ea_m", w_lo, w_hi),
            VarSpec::logarithmic("w_pass_m", 50.0 * node.l_min, 20_000.0 * node.l_min),
            VarSpec::logarithmic("ib_ea_a", 1e-6, 1e-4),
            VarSpec::logarithmic("cc_f", 0.5e-12, 20e-12),
            VarSpec::logarithmic("r_fb_ohm", 1e5, 1e7),
        ];
        let psrr_bound = if node.name == "40nm" { 30.0 } else { 40.0 };
        let specs = vec![
            Spec {
                metric: M_IQ,
                kind: SpecKind::Objective(Goal::Minimize),
            },
            Spec {
                metric: M_DROPOUT,
                kind: SpecKind::LessEq(50.0),
            },
            Spec {
                metric: M_PSRR,
                kind: SpecKind::GreaterEq(psrr_bound),
            },
            Spec {
                metric: M_PM,
                kind: SpecKind::GreaterEq(45.0),
            },
        ];
        Ldo { node, vars, specs }
    }

    /// The technology node this instance is built on.
    #[must_use]
    pub fn tech(&self) -> &TechNode {
        &self.node
    }

    /// Regulated output voltage for this card, V.
    #[must_use]
    pub fn vout_nominal(&self) -> f64 {
        self.node.vdd - 0.3
    }

    fn failed() -> Metrics {
        Metrics::new(vec![1e3, 1e4, 0.0, 0.0])
    }
}

impl SizingProblem for Ldo {
    fn name(&self) -> String {
        format!("ldo_{}", self.node.name)
    }

    fn variables(&self) -> &[VarSpec] {
        &self.vars
    }

    fn metric_names(&self) -> &[&'static str] {
        &["i_q_ua", "dropout_mv", "psrr_db", "pm_deg"]
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Metrics {
        assert_eq!(x.len(), self.dim(), "design vector length mismatch");
        let p: Vec<f64> = self
            .vars
            .iter()
            .zip(x)
            .map(|(v, &u)| v.denormalize(u))
            .collect();
        let (l_ea, w_ea, w_pass, ib_ea, cc, r_fb) = (p[0], p[1], p[2], p[3], p[4], p[5]);
        let node = &self.node;
        let vdd = node.vdd;
        let vout = self.vout_nominal();
        let beta = V_REF / vout;
        let l_pass = 2.0 * node.l_min;

        // --- Error-amp operating point ------------------------------------
        let id_ea = ib_ea / 2.0;
        let vds_ea = vdd / 3.0;
        let vgs_ea = node.vgs_for_id(&node.nmos, w_ea, l_ea, vds_ea, id_ea);
        let (_, gm_ea, gds_ean) = node.mos_iv(&node.nmos, w_ea, l_ea, vgs_ea, vds_ea);
        // PMOS mirror load sized for V_ov ≈ 0.2 V at the same length.
        let wl_eap = 2.0 * node.pmos.n_sub * id_ea / (node.pmos.kp * 0.04);
        let w_eap = (wl_eap * l_ea).max(l_ea);
        let vgs_eap = node.vgs_for_id(&node.pmos, w_eap, l_ea, vds_ea, id_ea);
        let (_, _, gds_eap) = node.mos_iv(&node.pmos, w_eap, l_ea, vgs_eap, vds_ea);
        let r_ea = 1.0 / (gds_ean + gds_eap);

        // --- Pass-device operating point -----------------------------------
        // Regulating: the gate must bias `I_LOAD` with the gate inside the
        // rails. If even a grounded gate cannot sustain the load in
        // saturation, the device is in dropout at the nominal point —
        // simulator failure, like the real regulator falling out of
        // regulation.
        let vsg_p = node.vgs_for_id(&node.pmos, w_pass, l_pass, vdd - vout, I_LOAD);
        if vsg_p > vdd - 0.02 {
            return Self::failed();
        }
        let (_, gm_p, gds_p) = node.mos_iv(&node.pmos, w_pass, l_pass, vsg_p, vdd - vout);

        // Dropout: triode on-resistance at full gate drive (V_SG = VDD).
        let (i_on, _, _) = node.mos_iv(&node.pmos, w_pass, l_pass, vdd, 0.05);
        if i_on <= 0.0 {
            return Self::failed();
        }
        let r_on = 0.05 / i_on;
        let dropout_mv = I_LOAD * r_on * 1e3;

        // --- Shared small-signal pieces ------------------------------------
        let cgs_pass = 2.0 / 3.0 * w_pass * l_pass * node.pmos.cox + 0.3e-9 * w_pass;
        let r_load = vout / I_LOAD;
        let r1 = r_fb * (1.0 - beta);
        let r2 = r_fb * beta;

        // --- Closed-loop PSRR: unit ripple on the supply -------------------
        let mut ckt = Circuit::new();
        let nvin = ckt.node("vin");
        let ng = ckt.node("gate");
        let nout = ckt.node("out");
        let nfb = ckt.node("fb");
        ckt.vsource_ac(nvin, Circuit::GND, vdd, 1.0);
        // Error amp: + input is the quiet reference (AC ground), − input is
        // the divider tap; output drives the gate. `v(fb) ↑ → v(gate) ↑ →
        // V_SG ↓ → pass current ↓` closes the loop negatively.
        ckt.vccs(Circuit::GND, ng, nfb, Circuit::GND, gm_ea);
        ckt.resistor(ng, Circuit::GND, r_ea);
        // Gate-source capacitance couples the ripple into the gate.
        ckt.capacitor(ng, nvin, cgs_pass);
        // Pass device: channel current ∝ V_SG from supply into the output,
        // plus its output conductance straight across.
        ckt.vccs(nvin, nout, nvin, ng, gm_p);
        ckt.resistor(nvin, nout, 1.0 / gds_p);
        ckt.capacitor(ng, nout, cc);
        // Load, output cap, feedback divider.
        ckt.resistor(nout, Circuit::GND, r_load);
        ckt.capacitor(nout, Circuit::GND, C_OUT);
        ckt.resistor(nout, nfb, r1);
        ckt.resistor(nfb, Circuit::GND, r2);

        let sweep = AcSweep::log(10.0, 1e9, 181);
        let Ok(bode_cl) = ckt.ac_transfer(nout, &sweep) else {
            return Self::failed();
        };
        let psrr = psrr_db(&bode_cl, 1e3);

        // --- Open-loop stability: break the loop at the error-amp input ----
        let mut ol = Circuit::new();
        let nin = ol.node("in");
        let ng = ol.node("gate");
        let nout = ol.node("out");
        let nfb = ol.node("fb");
        ol.vsource_ac(nin, Circuit::GND, 0.0, 1.0);
        ol.vccs(Circuit::GND, ng, nin, Circuit::GND, gm_ea);
        ol.resistor(ng, Circuit::GND, r_ea);
        // Quiet supply is AC ground in the open-loop testbench.
        ol.capacitor(ng, Circuit::GND, cgs_pass);
        ol.vccs(nout, Circuit::GND, ng, Circuit::GND, gm_p); // inverting
        ol.resistor(nout, Circuit::GND, 1.0 / gds_p);
        ol.capacitor(ng, nout, cc);
        ol.resistor(nout, Circuit::GND, r_load);
        ol.capacitor(nout, Circuit::GND, C_OUT);
        ol.resistor(nout, nfb, r1);
        ol.resistor(nfb, Circuit::GND, r2);

        let Ok(bode_ol) = ol.ac_transfer(nfb, &sweep) else {
            return Self::failed();
        };
        let pm_deg = phase_margin_deg(&bode_ol).unwrap_or(0.0);

        // --- Quiescent current ---------------------------------------------
        // Error-amp tail + its mirror legs (≈ 1.25×) plus the divider.
        let i_q_ua = (1.25 * ib_ea + vout / r_fb) * 1e6;

        Metrics::new(vec![i_q_ua, dropout_mv, psrr, pm_deg])
    }

    fn expert_design(&self) -> Vec<f64> {
        // Calibrated competent manual designs (feasible with margin on
        // every constraint; found by random search + local refinement).
        //
        // 180 nm: I_q ≈ 2.2 µA, dropout 26 mV, PSRR 46 dB, PM 85°.
        // 40 nm:  I_q ≈ 2.1 µA, dropout 14 mV, PSRR 34 dB, PM 86°.
        vec![0.70, 0.90, 0.50, 0.10, 0.20, 0.90]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midpoint_metrics_are_sane() {
        let p = Ldo::new(TechNode::n180());
        let m = p.evaluate(&vec![0.5; p.dim()]);
        assert!(m.get(M_IQ) > 0.5 && m.get(M_IQ) < 500.0, "{m}");
        assert!(m.get(M_DROPOUT) > 0.01 && m.get(M_DROPOUT) < 1e4, "{m}");
        assert!(m.get(M_PSRR) > 0.0, "{m}");
        assert!(m.get(M_PM) >= 0.0 && m.get(M_PM) < 180.0, "{m}");
    }

    #[test]
    fn wider_pass_device_less_dropout() {
        let p = Ldo::new(TechNode::n180());
        let mut narrow = vec![0.5; 6];
        let mut wide = vec![0.5; 6];
        narrow[2] = 0.1;
        wide[2] = 0.9;
        let d_n = p.evaluate(&narrow).get(M_DROPOUT);
        let d_w = p.evaluate(&wide).get(M_DROPOUT);
        assert!(d_w < d_n, "R_on ∝ 1/W: {d_n} vs {d_w}");
    }

    #[test]
    fn more_loop_gain_more_psrr() {
        // A longer error-amp channel raises its output resistance, hence
        // the loop gain, hence supply rejection at 1 kHz.
        let p = Ldo::new(TechNode::n180());
        let mut short = vec![0.5; 6];
        let mut long = vec![0.5; 6];
        short[0] = 0.05;
        long[0] = 0.95;
        let p_s = p.evaluate(&short).get(M_PSRR);
        let p_l = p.evaluate(&long).get(M_PSRR);
        assert!(p_l > p_s + 3.0, "loop gain must buy PSRR: {p_s} vs {p_l}");
    }

    #[test]
    fn quiescent_current_tracks_error_amp_bias() {
        let p = Ldo::new(TechNode::n180());
        let mut lo = vec![0.5; 6];
        let mut hi = vec![0.5; 6];
        lo[3] = 0.1;
        hi[3] = 0.9;
        let i_lo = p.evaluate(&lo).get(M_IQ);
        let i_hi = p.evaluate(&hi).get(M_IQ);
        assert!(i_hi > 3.0 * i_lo, "I_q ∝ ib_ea: {i_lo} vs {i_hi}");
    }

    #[test]
    fn smaller_divider_resistance_more_quiescent_current() {
        let p = Ldo::new(TechNode::n180());
        let mut small_r = vec![0.5; 6];
        let mut big_r = vec![0.5; 6];
        small_r[5] = 0.05;
        big_r[5] = 0.95;
        let i_small = p.evaluate(&small_r).get(M_IQ);
        let i_big = p.evaluate(&big_r).get(M_IQ);
        assert!(i_small > i_big, "divider burns I_q: {i_small} vs {i_big}");
    }

    #[test]
    fn ripple_is_actually_rejected() {
        // The closed loop must attenuate supply ripple at 1 kHz by a
        // meaningful factor for a mid-range design — if the feedback sign
        // were wrong this would amplify instead.
        let p = Ldo::new(TechNode::n180());
        let m = p.evaluate(&p.expert_design());
        assert!(m.get(M_PSRR) > 20.0, "ripple must be suppressed: {m}");
    }

    #[test]
    fn expert_design_is_feasible() {
        for node in [TechNode::n180(), TechNode::n40()] {
            let p = Ldo::new(node);
            let m = p.evaluate(&p.expert_design());
            assert!(m.feasible(p.specs()), "{} expert got {m}", p.name());
        }
    }

    #[test]
    fn deterministic() {
        let p = Ldo::new(TechNode::n40());
        let x = vec![0.4, 0.6, 0.7, 0.5, 0.6, 0.4];
        assert_eq!(p.evaluate(&x), p.evaluate(&x));
    }

    #[test]
    fn name_embeds_node() {
        assert_eq!(Ldo::new(TechNode::n180()).name(), "ldo_180nm");
    }
}
