use crate::corner::Corner;
use crate::mismatch::{MismatchDeltas, MismatchStream, Pelgrom};
use kato_mna::device::{BiasPoint, VgsRequest};
use kato_mna::{lut_for, DeviceError, DeviceModel, MosModel, SquareLaw};

/// Which DC device-model backend a [`TechNode`] answers device queries
/// with. Part of the node card (and therefore of serving cache keys): the
/// same design evaluated under different backends yields different metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Closed-form EKV square-law model, evaluated directly. The historical
    /// (and bitwise-reference) path.
    #[default]
    SquareLaw,
    /// gm/ID lookup tables ([`kato_mna::DeviceLut`]) generated from the
    /// closed-form model per `(model, temperature, length-range)` on first
    /// use, trilinearly interpolated.
    Lut,
}

impl Backend {
    /// Parses the wire/CLI spelling (`"square_law"` or `"lut"`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "square_law" => Some(Backend::SquareLaw),
            "lut" => Some(Backend::Lut),
            _ => None,
        }
    }

    /// The wire/CLI spelling of this backend.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::SquareLaw => "square_law",
            Backend::Lut => "lut",
        }
    }
}

/// Technology-node parameter card: the PDK substitute.
///
/// Two cards are provided, loosely modelled on textbook long-channel 180 nm
/// and short-channel 40 nm CMOS data. For the transfer-learning experiments
/// the exact values matter less than the qualitative relationships the real
/// nodes exhibit:
///
/// * 40 nm has a lower supply (1.1 V vs 1.8 V), lower `Vth`, higher `KP`,
///   and drastically worse channel-length modulation (lower intrinsic gain
///   per stage) — so optima shift but the design landscape stays correlated,
///   which is precisely the setting KAT-GP exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct TechNode {
    /// Short display name ("180nm", "40nm").
    pub name: &'static str,
    /// Supply voltage, V.
    pub vdd: f64,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
    /// Minimum channel length, m.
    pub l_min: f64,
    /// Maximum practical channel length for the sizing space, m.
    pub l_max: f64,
    /// Output load capacitance the amplifiers must drive, F.
    pub c_load: f64,
    /// Ambient temperature the testbenches evaluate at, °C. `27.0` on the
    /// nominal cards; [`TechNode::at_corner`] overrides it.
    pub temp_c: f64,
    /// Device-model backend the testbenches evaluate with.
    pub backend: Backend,
    /// Pelgrom local-mismatch coefficients of this node (see
    /// [`Pelgrom`]). Only consulted when a [`MismatchStream`] is
    /// attached; the nominal card evaluates unperturbed.
    pub pelgrom: Pelgrom,
    /// Monte-Carlo mismatch sample this card evaluates under, or `None`
    /// for the nominal (unperturbed) card. Attached via
    /// [`TechNode::with_mismatch`]; when present, every instance-routed
    /// device query (`mos_iv`, `mos_cgg`, `vgs_for_id` and their batch
    /// forms) is remapped by that device's Pelgrom draw. The static
    /// 27 °C helpers (`vgs_for_current*`) stay nominal.
    pub mismatch: Option<MismatchStream>,
}

impl TechNode {
    /// The 180 nm card (VDD = 1.8 V).
    #[must_use]
    pub fn n180() -> Self {
        TechNode {
            name: "180nm",
            vdd: 1.8,
            nmos: MosModel {
                kp: 170e-6,
                vth: 0.50,
                lambda_l: 0.02e-6,
                n_sub: 1.35,
                cox: 8.5e-3,
                vth_tc: -1.0e-3,
            },
            pmos: MosModel {
                kp: 60e-6,
                vth: 0.50,
                lambda_l: 0.04e-6,
                n_sub: 1.40,
                cox: 8.5e-3,
                vth_tc: -1.2e-3,
            },
            l_min: 0.18e-6,
            l_max: 2.0e-6,
            c_load: 5e-12,
            temp_c: 27.0,
            backend: Backend::SquareLaw,
            // Textbook 180 nm matching: A_Vth ≈ 5 mV·µm, A_KP ≈ 1 %·µm.
            pelgrom: Pelgrom {
                a_vth: 5e-9,
                a_kp: 1e-8,
            },
            mismatch: None,
        }
    }

    /// The 40 nm card (VDD = 1.1 V).
    #[must_use]
    pub fn n40() -> Self {
        TechNode {
            name: "40nm",
            vdd: 1.1,
            nmos: MosModel {
                kp: 420e-6,
                vth: 0.35,
                lambda_l: 0.055e-6,
                n_sub: 1.45,
                cox: 17e-3,
                vth_tc: -0.8e-3,
            },
            pmos: MosModel {
                kp: 190e-6,
                vth: 0.35,
                lambda_l: 0.085e-6,
                n_sub: 1.50,
                cox: 17e-3,
                vth_tc: -1.0e-3,
            },
            l_min: 0.04e-6,
            l_max: 0.6e-6,
            c_load: 5e-12,
            temp_c: 27.0,
            backend: Backend::SquareLaw,
            // Thinner oxide improves per-area matching (A_Vth ≈ 2.5 mV·µm),
            // but the far smaller minimum devices mean larger σ in practice.
            pelgrom: Pelgrom {
                a_vth: 2.5e-9,
                a_kp: 1.2e-8,
            },
            mismatch: None,
        }
    }

    /// Looks a nominal card up by its display name (`"180nm"`, `"40nm"`).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "180nm" => Some(TechNode::n180()),
            "40nm" => Some(TechNode::n40()),
            _ => None,
        }
    }

    /// This card shifted to a PVT corner: every MOS model's `KP` is scaled
    /// and `Vth` shifted per [`crate::Process`], and the evaluation
    /// temperature is set to the corner's. The supply voltage and geometry
    /// limits are unchanged (supply corners are a testbench property, not a
    /// device-card one).
    #[must_use]
    pub fn at_corner(&self, corner: &Corner) -> Self {
        let shift = |m: &MosModel| MosModel {
            kp: m.kp * corner.process.kp_scale(),
            vth: m.vth + corner.process.vth_shift(),
            ..*m
        };
        TechNode {
            nmos: shift(&self.nmos),
            pmos: shift(&self.pmos),
            temp_c: corner.temp_c,
            ..self.clone()
        }
    }

    /// This card with a different device-model [`Backend`].
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// This card evaluating under Monte-Carlo mismatch sample `stream`:
    /// every instance-routed device query is remapped by the device's
    /// Pelgrom draw. Bitwise-deterministic: the perturbed card is a pure
    /// function of `(stream, device identity, geometry)`.
    #[must_use]
    pub fn with_mismatch(mut self, stream: MismatchStream) -> Self {
        self.mismatch = Some(stream);
        self
    }

    /// Polarity tag for the mismatch sub-stream: NMOS and PMOS devices of
    /// one sample draw independently, but the *same* physical device
    /// queried repeatedly sees one consistent draw.
    fn device_tag(&self, model: &MosModel) -> u64 {
        if *model == self.nmos {
            1
        } else if *model == self.pmos {
            2
        } else {
            // A model card that is neither polarity of this node (tests,
            // exotic callers): identify it by its own bit pattern.
            model.kp.to_bits() ^ model.vth.to_bits().rotate_left(17)
        }
    }

    /// The local-mismatch perturbation this card applies to queries of
    /// `model` at geometry `(w, l)` — [`MismatchDeltas::none`] on nominal
    /// cards. Exposed so tests and wrappers can reason about the exact
    /// remap the routing below performs.
    #[must_use]
    pub fn local_deltas(&self, model: &MosModel, w: f64, l: f64) -> MismatchDeltas {
        match &self.mismatch {
            None => MismatchDeltas::none(),
            Some(stream) => stream.deltas(self.device_tag(model), w, l, &self.pelgrom),
        }
    }

    /// The [`DeviceModel`] this card routes device queries of `model`
    /// through (at the card's temperature). Mostly useful for backend-
    /// generic code and tests; the hot paths use the direct
    /// [`TechNode::mos_iv`] / [`TechNode::vgs_for_id`] methods below, which
    /// avoid the allocation. Always answers for the *nominal* model card:
    /// local-mismatch remapping is a property of the instance-routed
    /// methods, not of the backend object.
    #[must_use]
    pub fn device_model(&self, model: &MosModel) -> Box<dyn DeviceModel> {
        match self.backend {
            Backend::SquareLaw => Box::new(SquareLaw::new(*model, self.temp_c)),
            Backend::Lut => Box::new((*self.lut(model)).clone()),
        }
    }

    fn lut(&self, model: &MosModel) -> std::sync::Arc<kato_mna::DeviceLut> {
        lut_for(model, self.temp_c, self.l_min, self.l_max)
    }

    /// Backend dispatch for `(id, gm, gds)` on the *nominal* model — the
    /// historical (bitwise-reference) path; mismatch remapping happens in
    /// [`TechNode::mos_iv`] above it.
    fn raw_iv(&self, model: &MosModel, w: f64, l: f64, vgs: f64, vds: f64) -> (f64, f64, f64) {
        match self.backend {
            Backend::SquareLaw => kato_mna::mos_iv_public(model, w, l, vgs, vds, self.temp_c),
            Backend::Lut => self.lut(model).iv(w, l, vgs, vds),
        }
    }

    /// Backend-routed `(id, gm, gds)` at bias `(vgs, vds)`, evaluated at
    /// the card's temperature.
    ///
    /// When a mismatch sample is attached, the device's Pelgrom draw is
    /// applied as an exact query remap: the model family depends on `vgs`
    /// only through `vgs − vth` and is linear in `KP`, so the perturbed
    /// answer is the nominal model queried at `vgs − ΔVth` with all three
    /// outputs scaled by the `KP` ratio — identical physics to perturbing
    /// the card, without generating per-sample LUTs.
    #[must_use]
    pub fn mos_iv(&self, model: &MosModel, w: f64, l: f64, vgs: f64, vds: f64) -> (f64, f64, f64) {
        if self.mismatch.is_none() {
            return self.raw_iv(model, w, l, vgs, vds);
        }
        let d = self.local_deltas(model, w, l);
        let (id, gm, gds) = self.raw_iv(model, w, l, vgs - d.dvth, vds);
        (id * d.kp_ratio, gm * d.kp_ratio, gds * d.kp_ratio)
    }

    /// Backend-routed batched `(id, gm, gds)` over a population of
    /// `(w, l, vgs, vds)` bias points (mismatch-remapped per point when a
    /// sample is attached, like [`TechNode::mos_iv`]).
    #[must_use]
    pub fn mos_iv_batch(&self, model: &MosModel, points: &[BiasPoint]) -> Vec<(f64, f64, f64)> {
        if self.mismatch.is_none() {
            return match self.backend {
                Backend::SquareLaw => SquareLaw::new(*model, self.temp_c).iv_batch(points),
                Backend::Lut => self.lut(model).iv_batch(points),
            };
        }
        let deltas: Vec<MismatchDeltas> = points
            .iter()
            .map(|&(w, l, _, _)| self.local_deltas(model, w, l))
            .collect();
        let remapped: Vec<BiasPoint> = points
            .iter()
            .zip(&deltas)
            .map(|(&(w, l, vgs, vds), d)| (w, l, vgs - d.dvth, vds))
            .collect();
        let raw = match self.backend {
            Backend::SquareLaw => SquareLaw::new(*model, self.temp_c).iv_batch(&remapped),
            Backend::Lut => self.lut(model).iv_batch(&remapped),
        };
        raw.into_iter()
            .zip(&deltas)
            .map(|((id, gm, gds), d)| (id * d.kp_ratio, gm * d.kp_ratio, gds * d.kp_ratio))
            .collect()
    }

    /// Backend-routed total gate capacitance at gate bias `vgs`, F. A
    /// mismatch sample shifts the query by the device's ΔVth (`Cgg`
    /// depends on `vgs` only through `vgs − vth`; `KP` does not enter).
    #[must_use]
    pub fn mos_cgg(&self, model: &MosModel, w: f64, l: f64, vgs: f64) -> f64 {
        let vgs = vgs - self.local_deltas(model, w, l).dvth;
        match self.backend {
            Backend::SquareLaw => kato_mna::mos_cgg(model, w, l, vgs, self.temp_c),
            Backend::Lut => self.lut(model).cgg(w, l, vgs),
        }
    }

    /// Backend-routed operating-point inversion: the `vgs` at which the
    /// device carries `id_target`, clamped to the search bracket edge when
    /// the target is unreachable (see [`TechNode::try_vgs_for_id`]).
    ///
    /// Under mismatch the remap runs in reverse: solve the nominal model
    /// for `id_target / kp_ratio`, then shift the answer by `+ΔVth`.
    #[must_use]
    pub fn vgs_for_id(&self, model: &MosModel, w: f64, l: f64, vds: f64, id_target: f64) -> f64 {
        let d = self.local_deltas(model, w, l);
        let target = id_target / d.kp_ratio;
        let raw = match self.backend {
            Backend::SquareLaw => SquareLaw::new(*model, self.temp_c).vgs_for_id(w, l, vds, target),
            Backend::Lut => self.lut(model).vgs_for_id(w, l, vds, target),
        };
        raw + d.dvth
    }

    /// Fallible [`TechNode::vgs_for_id`]: reports a [`DeviceError`] when no
    /// `vgs` in the search bracket reaches `id_target`.
    pub fn try_vgs_for_id(
        &self,
        model: &MosModel,
        w: f64,
        l: f64,
        vds: f64,
        id_target: f64,
    ) -> Result<f64, DeviceError> {
        let d = self.local_deltas(model, w, l);
        let target = id_target / d.kp_ratio;
        let raw = match self.backend {
            Backend::SquareLaw => {
                SquareLaw::new(*model, self.temp_c).try_vgs_for_id(w, l, vds, target)
            }
            Backend::Lut => self.lut(model).try_vgs_for_id(w, l, vds, target),
        };
        raw.map(|vgs| vgs + d.dvth)
    }

    /// Backend-routed batched operating-point inversion over
    /// `(w, l, vds, id_target)` requests — a whole population swept through
    /// the device model (for the LUT backend, through the grid) in one call
    /// (mismatch-remapped per request when a sample is attached).
    #[must_use]
    pub fn vgs_for_id_batch(&self, model: &MosModel, requests: &[VgsRequest]) -> Vec<f64> {
        if self.mismatch.is_none() {
            return match self.backend {
                Backend::SquareLaw => {
                    SquareLaw::new(*model, self.temp_c).vgs_for_id_batch(requests)
                }
                Backend::Lut => self.lut(model).vgs_for_id_batch(requests),
            };
        }
        let deltas: Vec<MismatchDeltas> = requests
            .iter()
            .map(|&(w, l, _, _)| self.local_deltas(model, w, l))
            .collect();
        let remapped: Vec<VgsRequest> = requests
            .iter()
            .zip(&deltas)
            .map(|(&(w, l, vds, id), d)| (w, l, vds, id / d.kp_ratio))
            .collect();
        let raw = match self.backend {
            Backend::SquareLaw => SquareLaw::new(*model, self.temp_c).vgs_for_id_batch(&remapped),
            Backend::Lut => self.lut(model).vgs_for_id_batch(&remapped),
        };
        raw.into_iter()
            .zip(&deltas)
            .map(|(vgs, d)| vgs + d.dvth)
            .collect()
    }

    /// Strong-inversion overdrive voltage for a device carrying `id` amps at
    /// aspect ratio `w/l`: `V_ov = sqrt(2·n·Id/(KP·W/L))`.
    #[must_use]
    pub fn overdrive(model: &MosModel, w_over_l: f64, id: f64) -> f64 {
        (2.0 * model.n_sub * id / (model.kp * w_over_l)).sqrt()
    }

    /// Numerically inverts the DC model: the `Vgs` at which a device of size
    /// `(w, l)` biased at `vds` conducts `id_target`. Used to place
    /// macromodel devices at their intended operating points.
    ///
    /// Evaluates at 27 °C; corner-aware testbenches use
    /// [`TechNode::vgs_for_current_at`] with the card's `temp_c`.
    #[must_use]
    pub fn vgs_for_current(model: &MosModel, w: f64, l: f64, vds: f64, id_target: f64) -> f64 {
        Self::vgs_for_current_at(model, w, l, vds, id_target, 27.0)
    }

    /// Like [`TechNode::vgs_for_current`] at an explicit temperature.
    ///
    /// An unreachable `id_target` clamps to the bracket edge; use
    /// [`TechNode::try_vgs_for_current_at`] to observe that as an error
    /// instead. (For a too-high target the historical unchecked bisection
    /// already converged to exactly the upper bracket bound, so clamping is
    /// bitwise-compatible with the old behaviour.)
    #[must_use]
    pub fn vgs_for_current_at(
        model: &MosModel,
        w: f64,
        l: f64,
        vds: f64,
        id_target: f64,
        temp_c: f64,
    ) -> f64 {
        SquareLaw::new(*model, temp_c).vgs_for_id(w, l, vds, id_target)
    }

    /// Fallible [`TechNode::vgs_for_current_at`]: reports a clean
    /// [`DeviceError`] when `id_target` is unreachable inside the bisection
    /// bracket (above the device's maximum current, or below its leakage).
    pub fn try_vgs_for_current_at(
        model: &MosModel,
        w: f64,
        l: f64,
        vds: f64,
        id_target: f64,
        temp_c: f64,
    ) -> Result<f64, DeviceError> {
        SquareLaw::new(*model, temp_c).try_vgs_for_id(w, l, vds, id_target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_cards_are_distinct_and_physical() {
        let n180 = TechNode::n180();
        let n40 = TechNode::n40();
        assert!(n40.vdd < n180.vdd);
        assert!(n40.nmos.vth < n180.nmos.vth);
        assert!(n40.nmos.kp > n180.nmos.kp);
        assert!(n40.l_min < n180.l_min);
        // Worse CLM per metre of length at the short node.
        assert!(n40.nmos.lambda_l > n180.nmos.lambda_l);
    }

    #[test]
    fn overdrive_scales_with_current() {
        let n = TechNode::n180();
        let v1 = TechNode::overdrive(&n.nmos, 10.0, 10e-6);
        let v2 = TechNode::overdrive(&n.nmos, 10.0, 40e-6);
        assert!((v2 / v1 - 2.0).abs() < 1e-9); // sqrt(4) = 2
    }

    #[test]
    fn corner_cards_shift_as_specified() {
        use crate::corner::{Corner, Process};
        let nom = TechNode::n180();
        let ss_hot = nom.at_corner(&Corner::new(Process::Ss, 125.0));
        assert!(ss_hot.nmos.vth > nom.nmos.vth);
        assert!(ss_hot.nmos.kp < nom.nmos.kp);
        assert_eq!(ss_hot.temp_c, 125.0);
        assert_eq!(ss_hot.vdd, nom.vdd);
        let tt = nom.at_corner(&Corner::tt());
        assert_eq!(tt, nom);
    }

    #[test]
    fn by_name_finds_both_cards() {
        assert_eq!(TechNode::by_name("180nm").unwrap().name, "180nm");
        assert_eq!(TechNode::by_name("40nm").unwrap().name, "40nm");
        assert!(TechNode::by_name("7nm").is_none());
    }

    #[test]
    fn unreachable_vgs_inversion_errors_cleanly_and_clamps() {
        let n = TechNode::n180();
        // 1 A through a tiny device: unreachable even at vgs = 3 V.
        let err = TechNode::try_vgs_for_current_at(&n.nmos, 1e-6, 1e-6, 0.9, 1.0, 27.0)
            .expect_err("1 A must be unreachable");
        assert!(matches!(err, DeviceError::TargetAboveRange { .. }));
        assert!(!err.to_string().is_empty());
        // The infallible path clamps to the bracket edge — which is also
        // what the historical unchecked bisection converged to.
        let vgs = TechNode::vgs_for_current_at(&n.nmos, 1e-6, 1e-6, 0.9, 1.0, 27.0);
        assert_eq!(vgs, 3.0);
        // A target below leakage clamps to 0 V.
        let err = TechNode::try_vgs_for_current_at(&n.nmos, 1e-6, 1e-6, 0.9, 1e-30, 27.0)
            .expect_err("below leakage");
        assert!(matches!(err, DeviceError::TargetBelowRange { .. }));
        assert_eq!(
            TechNode::vgs_for_current_at(&n.nmos, 1e-6, 1e-6, 0.9, 1e-30, 27.0),
            0.0
        );
    }

    #[test]
    fn backend_parses_and_defaults_to_square_law() {
        assert_eq!(Backend::parse("square_law"), Some(Backend::SquareLaw));
        assert_eq!(Backend::parse("lut"), Some(Backend::Lut));
        assert_eq!(Backend::parse("spice"), None);
        assert_eq!(Backend::default().name(), "square_law");
        let n = TechNode::n180();
        assert_eq!(n.backend, Backend::SquareLaw);
        let lut = n.clone().with_backend(Backend::Lut);
        assert_eq!(lut.backend, Backend::Lut);
        assert_ne!(lut, n);
        // Corner shifts preserve the selected backend.
        assert_eq!(
            lut.at_corner(&Corner::new(crate::Process::Ss, 125.0))
                .backend,
            Backend::Lut
        );
    }

    #[test]
    fn lut_backend_tracks_square_law_closely() {
        let sq = TechNode::n180();
        let lut = sq.clone().with_backend(Backend::Lut);
        let (w, l, vds) = (20e-6, 0.5e-6, 0.9);
        for vgs in [0.4, 0.65, 0.9, 1.2] {
            let (id_s, gm_s, gds_s) = sq.mos_iv(&sq.nmos, w, l, vgs, vds);
            let (id_l, gm_l, gds_l) = lut.mos_iv(&lut.nmos, w, l, vgs, vds);
            assert!(
                (id_l - id_s).abs() <= 0.05 * id_s.abs() + 1e-9,
                "id @ {vgs}"
            );
            assert!(
                (gm_l - gm_s).abs() <= 0.05 * gm_s.abs() + 1e-9,
                "gm @ {vgs}"
            );
            assert!(
                (gds_l - gds_s).abs() <= 0.08 * gds_s.abs() + 1e-9,
                "gds @ {vgs}"
            );
        }
        // Inversion consistency: the LUT's vgs-for-id answers its own iv.
        let vgs = lut.vgs_for_id(&lut.nmos, w, l, vds, 50e-6);
        let (id, _, _) = lut.mos_iv(&lut.nmos, w, l, vgs, vds);
        assert!((id - 50e-6).abs() / 50e-6 < 1e-6, "lut id {id:.3e}");
    }

    #[test]
    fn mismatch_remap_matches_perturbed_model_card() {
        use crate::mismatch::MismatchStream;
        let nom = TechNode::n180();
        let card = nom.clone().with_mismatch(MismatchStream::from_key(99));
        let (w, l, vgs, vds) = (20e-6, 0.5e-6, 0.9, 0.9);
        let d = card.local_deltas(&card.nmos, w, l);
        assert!(d.dvth != 0.0 && d.kp_ratio != 1.0, "{d:?}");
        // The query remap must equal evaluating the explicitly perturbed
        // model card directly (same physics, different algebra → allow ulps).
        let (id_r, gm_r, gds_r) = card.mos_iv(&card.nmos, w, l, vgs, vds);
        let pert = card.nmos.perturbed(d.dvth, d.kp_ratio);
        let (id_p, gm_p, gds_p) = kato_mna::mos_iv_public(&pert, w, l, vgs, vds, card.temp_c);
        assert!((id_r - id_p).abs() <= 1e-12 * id_p.abs(), "{id_r} {id_p}");
        assert!((gm_r - gm_p).abs() <= 1e-12 * gm_p.abs(), "{gm_r} {gm_p}");
        assert!(
            (gds_r - gds_p).abs() <= 1e-12 * gds_p.abs(),
            "{gds_r} {gds_p}"
        );
        // Inversion round-trips through the perturbed device.
        let vgs_inv = card.vgs_for_id(&card.nmos, w, l, vds, 50e-6);
        let (id, _, _) = card.mos_iv(&card.nmos, w, l, vgs_inv, vds);
        assert!((id - 50e-6).abs() / 50e-6 < 1e-3, "{id:.3e}");
        // The nominal card is untouched.
        let (id_n, _, _) = nom.mos_iv(&nom.nmos, w, l, vgs, vds);
        assert_ne!(id_r, id_n);
        assert_eq!(nom.local_deltas(&nom.nmos, w, l), MismatchDeltas::none());
    }

    #[test]
    fn mismatch_batch_paths_match_scalar_remap() {
        use crate::mismatch::MismatchStream;
        let card = TechNode::n180().with_mismatch(MismatchStream::from_key(7));
        let points: Vec<BiasPoint> = vec![
            (20e-6, 0.5e-6, 0.9, 0.9),
            (5e-6, 0.18e-6, 0.7, 0.5),
            (80e-6, 1.0e-6, 1.2, 1.0),
        ];
        let batch = card.mos_iv_batch(&card.nmos, &points);
        for (&(w, l, vgs, vds), got) in points.iter().zip(&batch) {
            assert_eq!(*got, card.mos_iv(&card.nmos, w, l, vgs, vds));
        }
        let requests: Vec<VgsRequest> =
            vec![(20e-6, 0.5e-6, 0.9, 50e-6), (5e-6, 0.18e-6, 0.5, 5e-6)];
        let batch = card.vgs_for_id_batch(&card.nmos, &requests);
        for (&(w, l, vds, id), got) in requests.iter().zip(&batch) {
            assert_eq!(*got, card.vgs_for_id(&card.nmos, w, l, vds, id));
        }
    }

    #[test]
    fn mismatch_survives_corner_shift_and_lut_backend() {
        use crate::corner::{Corner, Process};
        use crate::mismatch::MismatchStream;
        let stream = MismatchStream::from_key(3);
        let card = TechNode::n180().with_mismatch(stream);
        let at_ss = card.at_corner(&Corner::new(Process::Ss, 125.0));
        assert_eq!(at_ss.mismatch, Some(stream));
        assert_eq!(at_ss.pelgrom, card.pelgrom);
        // The LUT backend applies the same remap around its nominal table:
        // close to the square-law answer, and != its own nominal answer.
        let lut = card.clone().with_backend(Backend::Lut);
        let (w, l, vgs, vds) = (20e-6, 0.5e-6, 0.9, 0.9);
        let (id_sq, _, _) = card.mos_iv(&card.nmos, w, l, vgs, vds);
        let (id_lut, _, _) = lut.mos_iv(&lut.nmos, w, l, vgs, vds);
        assert!(
            (id_lut - id_sq).abs() <= 0.05 * id_sq.abs(),
            "{id_lut} {id_sq}"
        );
        let nominal_lut = TechNode::n180().with_backend(Backend::Lut);
        let (id_lut_nom, _, _) = nominal_lut.mos_iv(&nominal_lut.nmos, w, l, vgs, vds);
        assert_ne!(id_lut, id_lut_nom);
    }

    #[test]
    fn vgs_inversion_matches_forward_model() {
        let n = TechNode::n180();
        let vgs = TechNode::vgs_for_current(&n.nmos, 20e-6, 0.5e-6, 0.9, 50e-6);
        let (id, _, _) = kato_mna::mos_iv_public(&n.nmos, 20e-6, 0.5e-6, vgs, 0.9, 27.0);
        assert!((id - 50e-6).abs() / 50e-6 < 1e-3, "id {id:.3e}");
        assert!(vgs > n.nmos.vth, "should be above threshold for 50 µA");
    }
}
