use crate::corner::Corner;
use kato_mna::device::{BiasPoint, VgsRequest};
use kato_mna::{lut_for, DeviceError, DeviceModel, MosModel, SquareLaw};

/// Which DC device-model backend a [`TechNode`] answers device queries
/// with. Part of the node card (and therefore of serving cache keys): the
/// same design evaluated under different backends yields different metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Closed-form EKV square-law model, evaluated directly. The historical
    /// (and bitwise-reference) path.
    #[default]
    SquareLaw,
    /// gm/ID lookup tables ([`kato_mna::DeviceLut`]) generated from the
    /// closed-form model per `(model, temperature, length-range)` on first
    /// use, trilinearly interpolated.
    Lut,
}

impl Backend {
    /// Parses the wire/CLI spelling (`"square_law"` or `"lut"`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "square_law" => Some(Backend::SquareLaw),
            "lut" => Some(Backend::Lut),
            _ => None,
        }
    }

    /// The wire/CLI spelling of this backend.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::SquareLaw => "square_law",
            Backend::Lut => "lut",
        }
    }
}

/// Technology-node parameter card: the PDK substitute.
///
/// Two cards are provided, loosely modelled on textbook long-channel 180 nm
/// and short-channel 40 nm CMOS data. For the transfer-learning experiments
/// the exact values matter less than the qualitative relationships the real
/// nodes exhibit:
///
/// * 40 nm has a lower supply (1.1 V vs 1.8 V), lower `Vth`, higher `KP`,
///   and drastically worse channel-length modulation (lower intrinsic gain
///   per stage) — so optima shift but the design landscape stays correlated,
///   which is precisely the setting KAT-GP exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct TechNode {
    /// Short display name ("180nm", "40nm").
    pub name: &'static str,
    /// Supply voltage, V.
    pub vdd: f64,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
    /// Minimum channel length, m.
    pub l_min: f64,
    /// Maximum practical channel length for the sizing space, m.
    pub l_max: f64,
    /// Output load capacitance the amplifiers must drive, F.
    pub c_load: f64,
    /// Ambient temperature the testbenches evaluate at, °C. `27.0` on the
    /// nominal cards; [`TechNode::at_corner`] overrides it.
    pub temp_c: f64,
    /// Device-model backend the testbenches evaluate with.
    pub backend: Backend,
}

impl TechNode {
    /// The 180 nm card (VDD = 1.8 V).
    #[must_use]
    pub fn n180() -> Self {
        TechNode {
            name: "180nm",
            vdd: 1.8,
            nmos: MosModel {
                kp: 170e-6,
                vth: 0.50,
                lambda_l: 0.02e-6,
                n_sub: 1.35,
                cox: 8.5e-3,
                vth_tc: -1.0e-3,
            },
            pmos: MosModel {
                kp: 60e-6,
                vth: 0.50,
                lambda_l: 0.04e-6,
                n_sub: 1.40,
                cox: 8.5e-3,
                vth_tc: -1.2e-3,
            },
            l_min: 0.18e-6,
            l_max: 2.0e-6,
            c_load: 5e-12,
            temp_c: 27.0,
            backend: Backend::SquareLaw,
        }
    }

    /// The 40 nm card (VDD = 1.1 V).
    #[must_use]
    pub fn n40() -> Self {
        TechNode {
            name: "40nm",
            vdd: 1.1,
            nmos: MosModel {
                kp: 420e-6,
                vth: 0.35,
                lambda_l: 0.055e-6,
                n_sub: 1.45,
                cox: 17e-3,
                vth_tc: -0.8e-3,
            },
            pmos: MosModel {
                kp: 190e-6,
                vth: 0.35,
                lambda_l: 0.085e-6,
                n_sub: 1.50,
                cox: 17e-3,
                vth_tc: -1.0e-3,
            },
            l_min: 0.04e-6,
            l_max: 0.6e-6,
            c_load: 5e-12,
            temp_c: 27.0,
            backend: Backend::SquareLaw,
        }
    }

    /// Looks a nominal card up by its display name (`"180nm"`, `"40nm"`).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "180nm" => Some(TechNode::n180()),
            "40nm" => Some(TechNode::n40()),
            _ => None,
        }
    }

    /// This card shifted to a PVT corner: every MOS model's `KP` is scaled
    /// and `Vth` shifted per [`crate::Process`], and the evaluation
    /// temperature is set to the corner's. The supply voltage and geometry
    /// limits are unchanged (supply corners are a testbench property, not a
    /// device-card one).
    #[must_use]
    pub fn at_corner(&self, corner: &Corner) -> Self {
        let shift = |m: &MosModel| MosModel {
            kp: m.kp * corner.process.kp_scale(),
            vth: m.vth + corner.process.vth_shift(),
            ..*m
        };
        TechNode {
            nmos: shift(&self.nmos),
            pmos: shift(&self.pmos),
            temp_c: corner.temp_c,
            ..self.clone()
        }
    }

    /// This card with a different device-model [`Backend`].
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The [`DeviceModel`] this card routes device queries of `model`
    /// through (at the card's temperature). Mostly useful for backend-
    /// generic code and tests; the hot paths use the direct
    /// [`TechNode::mos_iv`] / [`TechNode::vgs_for_id`] methods below, which
    /// avoid the allocation.
    #[must_use]
    pub fn device_model(&self, model: &MosModel) -> Box<dyn DeviceModel> {
        match self.backend {
            Backend::SquareLaw => Box::new(SquareLaw::new(*model, self.temp_c)),
            Backend::Lut => Box::new((*self.lut(model)).clone()),
        }
    }

    fn lut(&self, model: &MosModel) -> std::sync::Arc<kato_mna::DeviceLut> {
        lut_for(model, self.temp_c, self.l_min, self.l_max)
    }

    /// Backend-routed `(id, gm, gds)` at bias `(vgs, vds)`, evaluated at
    /// the card's temperature.
    #[must_use]
    pub fn mos_iv(&self, model: &MosModel, w: f64, l: f64, vgs: f64, vds: f64) -> (f64, f64, f64) {
        match self.backend {
            Backend::SquareLaw => kato_mna::mos_iv_public(model, w, l, vgs, vds, self.temp_c),
            Backend::Lut => self.lut(model).iv(w, l, vgs, vds),
        }
    }

    /// Backend-routed batched `(id, gm, gds)` over a population of
    /// `(w, l, vgs, vds)` bias points.
    #[must_use]
    pub fn mos_iv_batch(&self, model: &MosModel, points: &[BiasPoint]) -> Vec<(f64, f64, f64)> {
        match self.backend {
            Backend::SquareLaw => SquareLaw::new(*model, self.temp_c).iv_batch(points),
            Backend::Lut => self.lut(model).iv_batch(points),
        }
    }

    /// Backend-routed total gate capacitance at gate bias `vgs`, F.
    #[must_use]
    pub fn mos_cgg(&self, model: &MosModel, w: f64, l: f64, vgs: f64) -> f64 {
        match self.backend {
            Backend::SquareLaw => kato_mna::mos_cgg(model, w, l, vgs, self.temp_c),
            Backend::Lut => self.lut(model).cgg(w, l, vgs),
        }
    }

    /// Backend-routed operating-point inversion: the `vgs` at which the
    /// device carries `id_target`, clamped to the search bracket edge when
    /// the target is unreachable (see [`TechNode::try_vgs_for_id`]).
    #[must_use]
    pub fn vgs_for_id(&self, model: &MosModel, w: f64, l: f64, vds: f64, id_target: f64) -> f64 {
        match self.backend {
            Backend::SquareLaw => {
                SquareLaw::new(*model, self.temp_c).vgs_for_id(w, l, vds, id_target)
            }
            Backend::Lut => self.lut(model).vgs_for_id(w, l, vds, id_target),
        }
    }

    /// Fallible [`TechNode::vgs_for_id`]: reports a [`DeviceError`] when no
    /// `vgs` in the search bracket reaches `id_target`.
    pub fn try_vgs_for_id(
        &self,
        model: &MosModel,
        w: f64,
        l: f64,
        vds: f64,
        id_target: f64,
    ) -> Result<f64, DeviceError> {
        match self.backend {
            Backend::SquareLaw => {
                SquareLaw::new(*model, self.temp_c).try_vgs_for_id(w, l, vds, id_target)
            }
            Backend::Lut => self.lut(model).try_vgs_for_id(w, l, vds, id_target),
        }
    }

    /// Backend-routed batched operating-point inversion over
    /// `(w, l, vds, id_target)` requests — a whole population swept through
    /// the device model (for the LUT backend, through the grid) in one call.
    #[must_use]
    pub fn vgs_for_id_batch(&self, model: &MosModel, requests: &[VgsRequest]) -> Vec<f64> {
        match self.backend {
            Backend::SquareLaw => SquareLaw::new(*model, self.temp_c).vgs_for_id_batch(requests),
            Backend::Lut => self.lut(model).vgs_for_id_batch(requests),
        }
    }

    /// Strong-inversion overdrive voltage for a device carrying `id` amps at
    /// aspect ratio `w/l`: `V_ov = sqrt(2·n·Id/(KP·W/L))`.
    #[must_use]
    pub fn overdrive(model: &MosModel, w_over_l: f64, id: f64) -> f64 {
        (2.0 * model.n_sub * id / (model.kp * w_over_l)).sqrt()
    }

    /// Numerically inverts the DC model: the `Vgs` at which a device of size
    /// `(w, l)` biased at `vds` conducts `id_target`. Used to place
    /// macromodel devices at their intended operating points.
    ///
    /// Evaluates at 27 °C; corner-aware testbenches use
    /// [`TechNode::vgs_for_current_at`] with the card's `temp_c`.
    #[must_use]
    pub fn vgs_for_current(model: &MosModel, w: f64, l: f64, vds: f64, id_target: f64) -> f64 {
        Self::vgs_for_current_at(model, w, l, vds, id_target, 27.0)
    }

    /// Like [`TechNode::vgs_for_current`] at an explicit temperature.
    ///
    /// An unreachable `id_target` clamps to the bracket edge; use
    /// [`TechNode::try_vgs_for_current_at`] to observe that as an error
    /// instead. (For a too-high target the historical unchecked bisection
    /// already converged to exactly the upper bracket bound, so clamping is
    /// bitwise-compatible with the old behaviour.)
    #[must_use]
    pub fn vgs_for_current_at(
        model: &MosModel,
        w: f64,
        l: f64,
        vds: f64,
        id_target: f64,
        temp_c: f64,
    ) -> f64 {
        SquareLaw::new(*model, temp_c).vgs_for_id(w, l, vds, id_target)
    }

    /// Fallible [`TechNode::vgs_for_current_at`]: reports a clean
    /// [`DeviceError`] when `id_target` is unreachable inside the bisection
    /// bracket (above the device's maximum current, or below its leakage).
    pub fn try_vgs_for_current_at(
        model: &MosModel,
        w: f64,
        l: f64,
        vds: f64,
        id_target: f64,
        temp_c: f64,
    ) -> Result<f64, DeviceError> {
        SquareLaw::new(*model, temp_c).try_vgs_for_id(w, l, vds, id_target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_cards_are_distinct_and_physical() {
        let n180 = TechNode::n180();
        let n40 = TechNode::n40();
        assert!(n40.vdd < n180.vdd);
        assert!(n40.nmos.vth < n180.nmos.vth);
        assert!(n40.nmos.kp > n180.nmos.kp);
        assert!(n40.l_min < n180.l_min);
        // Worse CLM per metre of length at the short node.
        assert!(n40.nmos.lambda_l > n180.nmos.lambda_l);
    }

    #[test]
    fn overdrive_scales_with_current() {
        let n = TechNode::n180();
        let v1 = TechNode::overdrive(&n.nmos, 10.0, 10e-6);
        let v2 = TechNode::overdrive(&n.nmos, 10.0, 40e-6);
        assert!((v2 / v1 - 2.0).abs() < 1e-9); // sqrt(4) = 2
    }

    #[test]
    fn corner_cards_shift_as_specified() {
        use crate::corner::{Corner, Process};
        let nom = TechNode::n180();
        let ss_hot = nom.at_corner(&Corner::new(Process::Ss, 125.0));
        assert!(ss_hot.nmos.vth > nom.nmos.vth);
        assert!(ss_hot.nmos.kp < nom.nmos.kp);
        assert_eq!(ss_hot.temp_c, 125.0);
        assert_eq!(ss_hot.vdd, nom.vdd);
        let tt = nom.at_corner(&Corner::tt());
        assert_eq!(tt, nom);
    }

    #[test]
    fn by_name_finds_both_cards() {
        assert_eq!(TechNode::by_name("180nm").unwrap().name, "180nm");
        assert_eq!(TechNode::by_name("40nm").unwrap().name, "40nm");
        assert!(TechNode::by_name("7nm").is_none());
    }

    #[test]
    fn unreachable_vgs_inversion_errors_cleanly_and_clamps() {
        let n = TechNode::n180();
        // 1 A through a tiny device: unreachable even at vgs = 3 V.
        let err = TechNode::try_vgs_for_current_at(&n.nmos, 1e-6, 1e-6, 0.9, 1.0, 27.0)
            .expect_err("1 A must be unreachable");
        assert!(matches!(err, DeviceError::TargetAboveRange { .. }));
        assert!(!err.to_string().is_empty());
        // The infallible path clamps to the bracket edge — which is also
        // what the historical unchecked bisection converged to.
        let vgs = TechNode::vgs_for_current_at(&n.nmos, 1e-6, 1e-6, 0.9, 1.0, 27.0);
        assert_eq!(vgs, 3.0);
        // A target below leakage clamps to 0 V.
        let err = TechNode::try_vgs_for_current_at(&n.nmos, 1e-6, 1e-6, 0.9, 1e-30, 27.0)
            .expect_err("below leakage");
        assert!(matches!(err, DeviceError::TargetBelowRange { .. }));
        assert_eq!(
            TechNode::vgs_for_current_at(&n.nmos, 1e-6, 1e-6, 0.9, 1e-30, 27.0),
            0.0
        );
    }

    #[test]
    fn backend_parses_and_defaults_to_square_law() {
        assert_eq!(Backend::parse("square_law"), Some(Backend::SquareLaw));
        assert_eq!(Backend::parse("lut"), Some(Backend::Lut));
        assert_eq!(Backend::parse("spice"), None);
        assert_eq!(Backend::default().name(), "square_law");
        let n = TechNode::n180();
        assert_eq!(n.backend, Backend::SquareLaw);
        let lut = n.clone().with_backend(Backend::Lut);
        assert_eq!(lut.backend, Backend::Lut);
        assert_ne!(lut, n);
        // Corner shifts preserve the selected backend.
        assert_eq!(
            lut.at_corner(&Corner::new(crate::Process::Ss, 125.0))
                .backend,
            Backend::Lut
        );
    }

    #[test]
    fn lut_backend_tracks_square_law_closely() {
        let sq = TechNode::n180();
        let lut = sq.clone().with_backend(Backend::Lut);
        let (w, l, vds) = (20e-6, 0.5e-6, 0.9);
        for vgs in [0.4, 0.65, 0.9, 1.2] {
            let (id_s, gm_s, gds_s) = sq.mos_iv(&sq.nmos, w, l, vgs, vds);
            let (id_l, gm_l, gds_l) = lut.mos_iv(&lut.nmos, w, l, vgs, vds);
            assert!(
                (id_l - id_s).abs() <= 0.05 * id_s.abs() + 1e-9,
                "id @ {vgs}"
            );
            assert!(
                (gm_l - gm_s).abs() <= 0.05 * gm_s.abs() + 1e-9,
                "gm @ {vgs}"
            );
            assert!(
                (gds_l - gds_s).abs() <= 0.08 * gds_s.abs() + 1e-9,
                "gds @ {vgs}"
            );
        }
        // Inversion consistency: the LUT's vgs-for-id answers its own iv.
        let vgs = lut.vgs_for_id(&lut.nmos, w, l, vds, 50e-6);
        let (id, _, _) = lut.mos_iv(&lut.nmos, w, l, vgs, vds);
        assert!((id - 50e-6).abs() / 50e-6 < 1e-6, "lut id {id:.3e}");
    }

    #[test]
    fn vgs_inversion_matches_forward_model() {
        let n = TechNode::n180();
        let vgs = TechNode::vgs_for_current(&n.nmos, 20e-6, 0.5e-6, 0.9, 50e-6);
        let (id, _, _) = kato_mna::mos_iv_public(&n.nmos, 20e-6, 0.5e-6, vgs, 0.9, 27.0);
        assert!((id - 50e-6).abs() / 50e-6 < 1e-3, "id {id:.3e}");
        assert!(vgs > n.nmos.vth, "should be above threshold for 50 µA");
    }
}
