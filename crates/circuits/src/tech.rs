use crate::corner::Corner;
use kato_mna::MosModel;

/// Technology-node parameter card: the PDK substitute.
///
/// Two cards are provided, loosely modelled on textbook long-channel 180 nm
/// and short-channel 40 nm CMOS data. For the transfer-learning experiments
/// the exact values matter less than the qualitative relationships the real
/// nodes exhibit:
///
/// * 40 nm has a lower supply (1.1 V vs 1.8 V), lower `Vth`, higher `KP`,
///   and drastically worse channel-length modulation (lower intrinsic gain
///   per stage) — so optima shift but the design landscape stays correlated,
///   which is precisely the setting KAT-GP exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct TechNode {
    /// Short display name ("180nm", "40nm").
    pub name: &'static str,
    /// Supply voltage, V.
    pub vdd: f64,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
    /// Minimum channel length, m.
    pub l_min: f64,
    /// Maximum practical channel length for the sizing space, m.
    pub l_max: f64,
    /// Output load capacitance the amplifiers must drive, F.
    pub c_load: f64,
    /// Ambient temperature the testbenches evaluate at, °C. `27.0` on the
    /// nominal cards; [`TechNode::at_corner`] overrides it.
    pub temp_c: f64,
}

impl TechNode {
    /// The 180 nm card (VDD = 1.8 V).
    #[must_use]
    pub fn n180() -> Self {
        TechNode {
            name: "180nm",
            vdd: 1.8,
            nmos: MosModel {
                kp: 170e-6,
                vth: 0.50,
                lambda_l: 0.02e-6,
                n_sub: 1.35,
                cox: 8.5e-3,
                vth_tc: -1.0e-3,
            },
            pmos: MosModel {
                kp: 60e-6,
                vth: 0.50,
                lambda_l: 0.04e-6,
                n_sub: 1.40,
                cox: 8.5e-3,
                vth_tc: -1.2e-3,
            },
            l_min: 0.18e-6,
            l_max: 2.0e-6,
            c_load: 5e-12,
            temp_c: 27.0,
        }
    }

    /// The 40 nm card (VDD = 1.1 V).
    #[must_use]
    pub fn n40() -> Self {
        TechNode {
            name: "40nm",
            vdd: 1.1,
            nmos: MosModel {
                kp: 420e-6,
                vth: 0.35,
                lambda_l: 0.055e-6,
                n_sub: 1.45,
                cox: 17e-3,
                vth_tc: -0.8e-3,
            },
            pmos: MosModel {
                kp: 190e-6,
                vth: 0.35,
                lambda_l: 0.085e-6,
                n_sub: 1.50,
                cox: 17e-3,
                vth_tc: -1.0e-3,
            },
            l_min: 0.04e-6,
            l_max: 0.6e-6,
            c_load: 5e-12,
            temp_c: 27.0,
        }
    }

    /// Looks a nominal card up by its display name (`"180nm"`, `"40nm"`).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "180nm" => Some(TechNode::n180()),
            "40nm" => Some(TechNode::n40()),
            _ => None,
        }
    }

    /// This card shifted to a PVT corner: every MOS model's `KP` is scaled
    /// and `Vth` shifted per [`crate::Process`], and the evaluation
    /// temperature is set to the corner's. The supply voltage and geometry
    /// limits are unchanged (supply corners are a testbench property, not a
    /// device-card one).
    #[must_use]
    pub fn at_corner(&self, corner: &Corner) -> Self {
        let shift = |m: &MosModel| MosModel {
            kp: m.kp * corner.process.kp_scale(),
            vth: m.vth + corner.process.vth_shift(),
            ..*m
        };
        TechNode {
            nmos: shift(&self.nmos),
            pmos: shift(&self.pmos),
            temp_c: corner.temp_c,
            ..self.clone()
        }
    }

    /// Strong-inversion overdrive voltage for a device carrying `id` amps at
    /// aspect ratio `w/l`: `V_ov = sqrt(2·n·Id/(KP·W/L))`.
    #[must_use]
    pub fn overdrive(model: &MosModel, w_over_l: f64, id: f64) -> f64 {
        (2.0 * model.n_sub * id / (model.kp * w_over_l)).sqrt()
    }

    /// Numerically inverts the DC model: the `Vgs` at which a device of size
    /// `(w, l)` biased at `vds` conducts `id_target`. Used to place
    /// macromodel devices at their intended operating points.
    ///
    /// Evaluates at 27 °C; corner-aware testbenches use
    /// [`TechNode::vgs_for_current_at`] with the card's `temp_c`.
    #[must_use]
    pub fn vgs_for_current(model: &MosModel, w: f64, l: f64, vds: f64, id_target: f64) -> f64 {
        Self::vgs_for_current_at(model, w, l, vds, id_target, 27.0)
    }

    /// Like [`TechNode::vgs_for_current`] at an explicit temperature.
    #[must_use]
    pub fn vgs_for_current_at(
        model: &MosModel,
        w: f64,
        l: f64,
        vds: f64,
        id_target: f64,
        temp_c: f64,
    ) -> f64 {
        // Bisection on the monotone Id(Vgs) curve.
        let mut lo = 0.0;
        let mut hi = 3.0;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            let (id, _, _) = kato_mna::mos_iv_public(model, w, l, mid, vds, temp_c);
            if id < id_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_cards_are_distinct_and_physical() {
        let n180 = TechNode::n180();
        let n40 = TechNode::n40();
        assert!(n40.vdd < n180.vdd);
        assert!(n40.nmos.vth < n180.nmos.vth);
        assert!(n40.nmos.kp > n180.nmos.kp);
        assert!(n40.l_min < n180.l_min);
        // Worse CLM per metre of length at the short node.
        assert!(n40.nmos.lambda_l > n180.nmos.lambda_l);
    }

    #[test]
    fn overdrive_scales_with_current() {
        let n = TechNode::n180();
        let v1 = TechNode::overdrive(&n.nmos, 10.0, 10e-6);
        let v2 = TechNode::overdrive(&n.nmos, 10.0, 40e-6);
        assert!((v2 / v1 - 2.0).abs() < 1e-9); // sqrt(4) = 2
    }

    #[test]
    fn corner_cards_shift_as_specified() {
        use crate::corner::{Corner, Process};
        let nom = TechNode::n180();
        let ss_hot = nom.at_corner(&Corner::new(Process::Ss, 125.0));
        assert!(ss_hot.nmos.vth > nom.nmos.vth);
        assert!(ss_hot.nmos.kp < nom.nmos.kp);
        assert_eq!(ss_hot.temp_c, 125.0);
        assert_eq!(ss_hot.vdd, nom.vdd);
        let tt = nom.at_corner(&Corner::tt());
        assert_eq!(tt, nom);
    }

    #[test]
    fn by_name_finds_both_cards() {
        assert_eq!(TechNode::by_name("180nm").unwrap().name, "180nm");
        assert_eq!(TechNode::by_name("40nm").unwrap().name, "40nm");
        assert!(TechNode::by_name("7nm").is_none());
    }

    #[test]
    fn vgs_inversion_matches_forward_model() {
        let n = TechNode::n180();
        let vgs = TechNode::vgs_for_current(&n.nmos, 20e-6, 0.5e-6, 0.9, 50e-6);
        let (id, _, _) = kato_mna::mos_iv_public(&n.nmos, 20e-6, 0.5e-6, vgs, 0.9, 27.0);
        assert!((id - 50e-6).abs() / 50e-6 < 1e-3, "id {id:.3e}");
        assert!(vgs > n.nmos.vth, "should be above threshold for 50 µA");
    }
}
