use crate::problem::{Goal, Metrics, SizingProblem, Spec, SpecKind, VarSpec};
use crate::tech::TechNode;
use kato_mna::{phase_margin_deg, unity_gain_freq, AcSweep, Circuit};

/// Miller-compensated two-stage operational amplifier (paper Fig. 3a).
///
/// Stage 1 is a PMOS differential pair with an NMOS current-mirror load;
/// stage 2 is an NMOS common-source driver with a PMOS current-source load.
/// Frequency compensation uses a Miller capacitor `Cc` with a series nulling
/// resistor `Rz`.
///
/// The evaluation pipeline mirrors a SPICE testbench:
///
/// 1. every device's operating point (`gm`, `gds`) is computed from the
///    technology card's EKV model at the bias implied by the design vector;
/// 2. supply-headroom violations collapse the stage output resistances
///    (soft "device left saturation" failure, like the real circuit);
/// 3. the small-signal macromodel (VCCS + R + C, Miller network, load) is
///    handed to the MNA simulator for an AC sweep;
/// 4. Gain / GBW / PM are extracted from the Bode data.
///
/// Design variables (all mapped from the unit cube):
///
/// | # | name     | scale | meaning                                |
/// |---|----------|-------|----------------------------------------|
/// | 0 | `l1`     | lin   | first-stage channel length             |
/// | 1 | `w_in`   | log   | input-pair width                       |
/// | 2 | `w_load` | log   | mirror-load width                      |
/// | 3 | `w2`     | log   | second-stage driver width              |
/// | 4 | `cc`     | log   | Miller capacitor                       |
/// | 5 | `rz`     | log   | nulling resistor                       |
/// | 6 | `ib1`    | log   | first-stage tail current               |
/// | 7 | `ib2`    | log   | second-stage bias current              |
///
/// Specification (paper Eq. 15): minimise `I_total` subject to
/// `PM > 60°`, `GBW > 4 MHz`, `Gain > 60 dB` (the gain bound drops to
/// 50 dB at 40 nm, Table 2).
#[derive(Debug, Clone)]
pub struct TwoStageOpAmp {
    node: TechNode,
    vars: Vec<VarSpec>,
    specs: Vec<Spec>,
}

/// Metric indices for [`TwoStageOpAmp`].
pub(crate) const M_ITOTAL: usize = 0;
pub(crate) const M_GAIN: usize = 1;
pub(crate) const M_PM: usize = 2;
pub(crate) const M_GBW: usize = 3;

impl TwoStageOpAmp {
    /// Creates the problem on a technology node with the paper's spec table.
    #[must_use]
    pub fn new(node: TechNode) -> Self {
        let l_lo = node.l_min;
        let l_hi = node.l_max;
        let w_lo = 5.0 * node.l_min;
        let w_hi = 1000.0 * node.l_min;
        let vars = vec![
            VarSpec::lin("l1_m", l_lo, l_hi),
            VarSpec::logarithmic("w_in_m", w_lo, w_hi),
            VarSpec::logarithmic("w_load_m", w_lo, w_hi),
            VarSpec::logarithmic("w2_m", 2.0 * w_lo, 4.0 * w_hi),
            VarSpec::logarithmic("cc_f", 0.5e-12, 10e-12),
            VarSpec::logarithmic("rz_ohm", 100.0, 5e4),
            VarSpec::logarithmic("ib1_a", 5e-6, 5e-4),
            VarSpec::logarithmic("ib2_a", 1e-5, 1e-3),
        ];
        let gain_bound = if node.name == "40nm" { 50.0 } else { 60.0 };
        let specs = vec![
            Spec {
                metric: M_ITOTAL,
                kind: SpecKind::Objective(Goal::Minimize),
            },
            Spec {
                metric: M_GAIN,
                kind: SpecKind::GreaterEq(gain_bound),
            },
            Spec {
                metric: M_PM,
                kind: SpecKind::GreaterEq(60.0),
            },
            Spec {
                metric: M_GBW,
                kind: SpecKind::GreaterEq(40.0),
            },
        ];
        TwoStageOpAmp { node, vars, specs }
    }

    /// The technology node this instance is built on.
    #[must_use]
    pub fn tech(&self) -> &TechNode {
        &self.node
    }

    /// Penalised metrics for designs that break the simulator.
    fn failed() -> Metrics {
        Metrics::new(vec![1e4, 0.0, 0.0, 1e-3])
    }
}

impl SizingProblem for TwoStageOpAmp {
    fn name(&self) -> String {
        format!("opamp2_{}", self.node.name)
    }

    fn variables(&self) -> &[VarSpec] {
        &self.vars
    }

    fn metric_names(&self) -> &[&'static str] {
        &["i_total_ua", "gain_db", "pm_deg", "gbw_mhz"]
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Metrics {
        assert_eq!(x.len(), self.dim(), "design vector length mismatch");
        let p: Vec<f64> = self
            .vars
            .iter()
            .zip(x)
            .map(|(v, &u)| v.denormalize(u))
            .collect();
        let (l1, w_in, w_load, w2, cc, rz, ib1, ib2) =
            (p[0], p[1], p[2], p[3], p[4], p[5], p[6], p[7]);
        let node = &self.node;
        let vdd = node.vdd;
        let l2 = 2.0 * node.l_min;

        // --- Stage 1 operating point -----------------------------------
        let id1 = ib1 / 2.0;
        let vds1 = vdd / 3.0;
        let vgs_in = node.vgs_for_id(&node.pmos, w_in, l1, vds1, id1);
        let (_, gm1, gds_in) = node.mos_iv(&node.pmos, w_in, l1, vgs_in, vds1);
        let vgs_ld = node.vgs_for_id(&node.nmos, w_load, l1, vds1, id1);
        let (_, _, gds_ld) = node.mos_iv(&node.nmos, w_load, l1, vgs_ld, vds1);
        let mut r1 = 1.0 / (gds_in + gds_ld);

        // --- Stage 2 operating point ------------------------------------
        let vds2 = vdd / 2.0;
        let vgs2 = node.vgs_for_id(&node.nmos, w2, l2, vds2, ib2);
        let (_, gm2, gds2) = node.mos_iv(&node.nmos, w2, l2, vgs2, vds2);
        // PMOS current-source load sized for V_ov ≈ 0.2 V.
        let wl_p2 = 2.0 * node.pmos.n_sub * ib2 / (node.pmos.kp * 0.04);
        let w_p2 = wl_p2 * l2;
        let vgs_p2 = node.vgs_for_id(&node.pmos, w_p2.max(l2), l2, vds2, ib2);
        let (_, _, gds_p2) = node.mos_iv(&node.pmos, w_p2.max(l2), l2, vgs_p2, vds2);
        let mut r2 = 1.0 / (gds2 + gds_p2);

        // --- Headroom feasibility (soft gain collapse) -------------------
        let vov_in = (vgs_in - node.pmos.vth).max(0.05);
        let vov_tail = 0.20;
        let margin1 = vdd - (vov_tail + vov_in + vgs_ld + 0.10);
        if margin1 < 0.0 {
            r1 *= (10.0 * margin1).exp();
        }
        let vov2 = (vgs2 - node.nmos.vth).max(0.05);
        let margin2 = vdd - (vov2 + 0.2 + 0.15);
        if margin2 < 0.0 {
            r2 *= (10.0 * margin2).exp();
        }

        // --- Parasitics ---------------------------------------------------
        let cgs2 = 2.0 / 3.0 * w2 * l2 * node.nmos.cox + 0.3e-9 * w2;
        let cdb1 = 0.5e-9 * (w_in + w_load); // junction, 0.5 fF/µm
        let c1 = cgs2 + cdb1;
        let cdb2 = 0.5e-9 * (w2 + w_p2);
        let cl = node.c_load + cdb2;

        // --- Small-signal macromodel to MNA -------------------------------
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let n1 = ckt.node("n1");
        let nout = ckt.node("out");
        let nc = ckt.node("nc");
        ckt.vsource_ac(vin, Circuit::GND, 0.0, 1.0);
        // Stage 1 (non-inverting into n1 for measurement convenience).
        ckt.vccs(Circuit::GND, n1, vin, Circuit::GND, gm1);
        ckt.resistor(n1, Circuit::GND, r1.max(1.0));
        ckt.capacitor(n1, Circuit::GND, c1);
        // Stage 2 (inverting).
        ckt.vccs(nout, Circuit::GND, n1, Circuit::GND, gm2);
        ckt.resistor(nout, Circuit::GND, r2.max(1.0));
        ckt.capacitor(nout, Circuit::GND, cl);
        // Miller compensation Cc + Rz between n1 and out.
        ckt.capacitor(n1, nc, cc);
        ckt.resistor(nc, nout, rz);

        let sweep = AcSweep::log(10.0, 20e9, 280);
        let Ok(bode) = ckt.ac_transfer(nout, &sweep) else {
            return Self::failed();
        };

        let gain_db = bode.dc_gain_db();
        let gbw_mhz = unity_gain_freq(&bode).map_or(1e-3, |f| f / 1e6);
        let pm_deg = phase_margin_deg(&bode).unwrap_or(0.0);
        let i_total_ua = 1.1 * (ib1 + ib2) * 1e6;

        Metrics::new(vec![i_total_ua, gain_db, pm_deg, gbw_mhz])
    }

    fn expert_design(&self) -> Vec<f64> {
        // Calibrated competent manual designs (feasible with margin,
        // noticeably above the achievable current optimum — mirroring the
        // expert rows of paper Tables 1–2).
        //
        // 180 nm: I ≈ 186 µA, gain 70 dB, PM 84°, GBW 80 MHz.
        // 40 nm:  I ≈ 256 µA, gain 59 dB, PM 86°, GBW 152 MHz.
        match self.node.name {
            "40nm" => vec![0.709, 0.857, 0.995, 0.989, 0.383, 0.578, 0.548, 0.615],
            _ => vec![0.387, 0.364, 0.322, 0.142, 0.771, 1.0, 0.33, 0.582],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(problem: &TwoStageOpAmp) -> Metrics {
        problem.evaluate(&vec![0.5; problem.dim()])
    }

    #[test]
    fn midpoint_design_produces_sane_metrics() {
        let p = TwoStageOpAmp::new(TechNode::n180());
        let m = mid(&p);
        let gain = m.get(M_GAIN);
        let pm = m.get(M_PM);
        let gbw = m.get(M_GBW);
        let i = m.get(M_ITOTAL);
        assert!(gain > 20.0 && gain < 130.0, "gain {gain}");
        assert!(pm > -90.0 && pm < 180.0, "pm {pm}");
        assert!(gbw > 0.01 && gbw < 10_000.0, "gbw {gbw}");
        assert!(i > 10.0 && i < 3000.0, "i {i}");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let p = TwoStageOpAmp::new(TechNode::n180());
        let x = vec![0.3, 0.7, 0.2, 0.8, 0.5, 0.4, 0.6, 0.1];
        assert_eq!(p.evaluate(&x), p.evaluate(&x));
    }

    #[test]
    fn more_current_more_gbw() {
        let p = TwoStageOpAmp::new(TechNode::n180());
        let mut lo = vec![0.5; 8];
        let mut hi = vec![0.5; 8];
        lo[6] = 0.2; // small ib1
        hi[6] = 0.9; // large ib1
        let gbw_lo = p.evaluate(&lo).get(M_GBW);
        let gbw_hi = p.evaluate(&hi).get(M_GBW);
        assert!(
            gbw_hi > gbw_lo,
            "gm1 ∝ √Ib1 must raise GBW: {gbw_lo} vs {gbw_hi}"
        );
    }

    #[test]
    fn longer_channel_more_gain() {
        let p = TwoStageOpAmp::new(TechNode::n180());
        let mut short = vec![0.5; 8];
        let mut long = vec![0.5; 8];
        short[0] = 0.05;
        long[0] = 0.95;
        let g_short = p.evaluate(&short).get(M_GAIN);
        let g_long = p.evaluate(&long).get(M_GAIN);
        assert!(
            g_long > g_short + 3.0,
            "λ ∝ 1/L must raise gain: {g_short} vs {g_long}"
        );
    }

    #[test]
    fn bigger_cc_lower_gbw() {
        let p = TwoStageOpAmp::new(TechNode::n180());
        let mut small = vec![0.5; 8];
        let mut big = vec![0.5; 8];
        small[4] = 0.1;
        big[4] = 0.9;
        let g_small = p.evaluate(&small).get(M_GBW);
        let g_big = p.evaluate(&big).get(M_GBW);
        assert!(g_small > g_big, "GBW ≈ gm1/Cc: {g_small} vs {g_big}");
    }

    #[test]
    fn node_40nm_has_less_gain_than_180nm() {
        let x = vec![0.5; 8];
        let g180 = TwoStageOpAmp::new(TechNode::n180())
            .evaluate(&x)
            .get(M_GAIN);
        let g40 = TwoStageOpAmp::new(TechNode::n40()).evaluate(&x).get(M_GAIN);
        assert!(
            g180 > g40,
            "short-channel node must have less intrinsic gain: {g180} vs {g40}"
        );
    }

    #[test]
    fn expert_design_is_feasible() {
        let p = TwoStageOpAmp::new(TechNode::n180());
        let m = p.evaluate(&p.expert_design());
        assert!(
            m.feasible(p.specs()),
            "expert design must meet spec, got {m}"
        );
    }

    #[test]
    fn name_embeds_node() {
        assert_eq!(TwoStageOpAmp::new(TechNode::n180()).name(), "opamp2_180nm");
        assert_eq!(TwoStageOpAmp::new(TechNode::n40()).name(), "opamp2_40nm");
    }

    #[test]
    #[should_panic(expected = "design vector length mismatch")]
    fn wrong_dim_panics() {
        let p = TwoStageOpAmp::new(TechNode::n180());
        let _ = p.evaluate(&[0.5; 3]);
    }
}
