use crate::problem::{Goal, Metrics, SizingProblem, Spec, SpecKind, VarSpec};
use crate::tech::TechNode;
use kato_mna::{phase_margin_deg, unity_gain_freq, AcSweep, Circuit};

/// Single-stage folded-cascode OTA — the first of the registry's extended
/// circuit family (GCN-RL and the transformer-LUT OTA sizers validate on
/// this topology; the KATO paper itself stops at the two/three-stage
/// Miller amplifiers).
///
/// A PMOS differential pair injects its signal current into the folding
/// nodes, where NMOS cascodes relay it into a fully cascoded PMOS mirror
/// load. One high-impedance node (the output) sets the dominant pole, the
/// low-impedance folding node (`≈ 1/gm` of the cascode) contributes the
/// first non-dominant pole — so the amplifier is intrinsically stable and
/// its sizing problem trades gain (cascode output resistance) against
/// bandwidth and current, a qualitatively different landscape from the
/// Miller op-amps that makes it a useful cross-topology transfer target.
///
/// The evaluation pipeline is the same operating-point → small-signal
/// macromodel → MNA AC sweep used by [`crate::TwoStageOpAmp`].
///
/// Design variables (all mapped from the unit cube):
///
/// | # | name      | scale | meaning                               |
/// |---|-----------|-------|---------------------------------------|
/// | 0 | `l1`      | lin   | input/cascode channel length          |
/// | 1 | `w_in`    | log   | input-pair width                      |
/// | 2 | `w_cas`   | log   | NMOS cascode width                    |
/// | 3 | `w_mir`   | log   | PMOS mirror/cascode width             |
/// | 4 | `ib_tail` | log   | input-pair tail current               |
/// | 5 | `ib_fold` | log   | folding-branch current (per branch)   |
///
/// Specification: minimise `I_total` subject to `PM > 60°`,
/// `GBW > 20 MHz`, `Gain > 60 dB` (50 dB at 40 nm).
#[derive(Debug, Clone)]
pub struct FoldedCascodeOpAmp {
    node: TechNode,
    vars: Vec<VarSpec>,
    specs: Vec<Spec>,
}

pub(crate) const M_ITOTAL: usize = 0;
pub(crate) const M_GAIN: usize = 1;
pub(crate) const M_PM: usize = 2;
pub(crate) const M_GBW: usize = 3;

impl FoldedCascodeOpAmp {
    /// Creates the problem on a technology node.
    #[must_use]
    pub fn new(node: TechNode) -> Self {
        let w_lo = 5.0 * node.l_min;
        let w_hi = 1000.0 * node.l_min;
        let vars = vec![
            VarSpec::lin("l1_m", node.l_min, node.l_max),
            VarSpec::logarithmic("w_in_m", w_lo, w_hi),
            VarSpec::logarithmic("w_cas_m", w_lo, w_hi),
            VarSpec::logarithmic("w_mir_m", w_lo, w_hi),
            VarSpec::logarithmic("ib_tail_a", 5e-6, 5e-4),
            VarSpec::logarithmic("ib_fold_a", 1e-5, 1e-3),
        ];
        let gain_bound = if node.name == "40nm" { 50.0 } else { 60.0 };
        let specs = vec![
            Spec {
                metric: M_ITOTAL,
                kind: SpecKind::Objective(Goal::Minimize),
            },
            Spec {
                metric: M_GAIN,
                kind: SpecKind::GreaterEq(gain_bound),
            },
            Spec {
                metric: M_PM,
                kind: SpecKind::GreaterEq(60.0),
            },
            Spec {
                metric: M_GBW,
                kind: SpecKind::GreaterEq(20.0),
            },
        ];
        FoldedCascodeOpAmp { node, vars, specs }
    }

    /// The technology node this instance is built on.
    #[must_use]
    pub fn tech(&self) -> &TechNode {
        &self.node
    }

    fn failed() -> Metrics {
        Metrics::new(vec![1e4, 0.0, 0.0, 1e-3])
    }
}

impl SizingProblem for FoldedCascodeOpAmp {
    fn name(&self) -> String {
        format!("folded_cascode_{}", self.node.name)
    }

    fn variables(&self) -> &[VarSpec] {
        &self.vars
    }

    fn metric_names(&self) -> &[&'static str] {
        &["i_total_ua", "gain_db", "pm_deg", "gbw_mhz"]
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Metrics {
        assert_eq!(x.len(), self.dim(), "design vector length mismatch");
        let p: Vec<f64> = self
            .vars
            .iter()
            .zip(x)
            .map(|(v, &u)| v.denormalize(u))
            .collect();
        let (l1, w_in, w_cas, w_mir, ib_tail, ib_fold) = (p[0], p[1], p[2], p[3], p[4], p[5]);
        let node = &self.node;
        let vdd = node.vdd;

        // The bottom current sources sink `ib_fold` per branch; the input
        // pair injects `ib_tail/2` into each folding node, so the cascode
        // carries the difference. A starved cascode (tail current ≥ fold
        // current) has no branch left to relay the signal — simulator
        // failure, like the real circuit losing its output branch.
        let id_in = ib_tail / 2.0;
        let id_c = ib_fold - id_in;
        if id_c < 0.05 * ib_fold {
            return Self::failed();
        }

        // --- Operating points -------------------------------------------
        let vds_mid = vdd / 3.0;
        let vgs_in = node.vgs_for_id(&node.pmos, w_in, l1, vds_mid, id_in);
        let (_, gm_in, gds_in) = node.mos_iv(&node.pmos, w_in, l1, vgs_in, vds_mid);

        let vgs_c = node.vgs_for_id(&node.nmos, w_cas, l1, vds_mid, id_c);
        let (_, gm_c, gds_c) = node.mos_iv(&node.nmos, w_cas, l1, vgs_c, vds_mid);

        // Bottom NMOS current source sized for V_ov ≈ 0.2 V at `ib_fold`.
        let wl_src = 2.0 * node.nmos.n_sub * ib_fold / (node.nmos.kp * 0.04);
        let w_src = (wl_src * l1).max(l1);
        let vgs_src = node.vgs_for_id(&node.nmos, w_src, l1, vds_mid, ib_fold);
        let (_, _, gds_src) = node.mos_iv(&node.nmos, w_src, l1, vgs_src, vds_mid);

        // Cascoded PMOS mirror load, both devices `w_mir`, carrying `id_c`.
        let vgs_mp = node.vgs_for_id(&node.pmos, w_mir, l1, vds_mid, id_c);
        let (_, gm_mp, gds_mp) = node.mos_iv(&node.pmos, w_mir, l1, vgs_mp, vds_mid);

        // --- Output resistance: cascode boost on both stacks -------------
        let ro_down = (gm_c / gds_c) * (1.0 / (gds_src + gds_in));
        let ro_up = (gm_mp / gds_mp) * (1.0 / gds_mp);
        let mut rout = ro_down * ro_up / (ro_down + ro_up);

        // --- Headroom feasibility (soft gain collapse) -------------------
        let vov_in = (vgs_in - node.pmos.vth).max(0.05);
        let vov_c = (vgs_c - node.nmos.vth).max(0.05);
        let vov_mp = (vgs_mp - node.pmos.vth).max(0.05);
        // Output swing path: bottom source (0.2) + cascode + both mirror
        // devices must stay saturated around the output common mode.
        let margin = vdd - (0.2 + vov_c + 2.0 * vov_mp + 0.15);
        if margin < 0.0 {
            rout *= (10.0 * margin).exp();
        }
        let margin_in = vdd - (0.2 + vov_in + 0.25);
        if margin_in < 0.0 {
            rout *= (10.0 * margin_in).exp();
        }

        // --- Parasitics ---------------------------------------------------
        let cgs_c = 2.0 / 3.0 * w_cas * l1 * node.nmos.cox + 0.3e-9 * w_cas;
        let c_fold = cgs_c + 0.5e-9 * (w_in + w_src);
        let cl = node.c_load + 0.5e-9 * (w_cas + w_mir);

        // --- Small-signal macromodel to MNA -------------------------------
        // vin → gm_in into the folding node (impedance ≈ 1/gm_c, cap
        // c_fold); the cascode relays the current into the output node.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let nf = ckt.node("fold");
        let nout = ckt.node("out");
        ckt.vsource_ac(vin, Circuit::GND, 0.0, 1.0);
        ckt.vccs(Circuit::GND, nf, vin, Circuit::GND, gm_in);
        ckt.resistor(nf, Circuit::GND, (1.0 / gm_c).max(1.0));
        ckt.capacitor(nf, Circuit::GND, c_fold);
        ckt.vccs(Circuit::GND, nout, nf, Circuit::GND, gm_c);
        ckt.resistor(nout, Circuit::GND, rout.max(1.0));
        ckt.capacitor(nout, Circuit::GND, cl);

        let sweep = AcSweep::log(10.0, 20e9, 280);
        let Ok(bode) = ckt.ac_transfer(nout, &sweep) else {
            return Self::failed();
        };

        let gain_db = bode.dc_gain_db();
        let gbw_mhz = unity_gain_freq(&bode).map_or(1e-3, |f| f / 1e6);
        let pm_deg = phase_margin_deg(&bode).unwrap_or(0.0);
        // Supply current: tail + the two mirror legs (each `id_c`), i.e.
        // `2·ib_fold` total, with the usual 10 % bias-tree overhead.
        let i_total_ua = 1.1 * 2.0 * ib_fold * 1e6;

        Metrics::new(vec![i_total_ua, gain_db, pm_deg, gbw_mhz])
    }

    fn expert_design(&self) -> Vec<f64> {
        // Calibrated competent manual designs (feasible with margin, well
        // above the achievable current optimum; found by random search +
        // local refinement).
        //
        // 180 nm: I ≈ 220 µA, gain 87 dB, PM 87°, GBW 24 MHz.
        // 40 nm:  I ≈ 175 µA, gain 53 dB, PM 89°, GBW 23 MHz.
        match self.node.name {
            "40nm" => vec![0.40, 0.85, 0.90, 0.25, 0.65, 0.45],
            _ => vec![0.30, 0.90, 0.30, 0.90, 0.70, 0.50],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midpoint_metrics_are_sane() {
        let p = FoldedCascodeOpAmp::new(TechNode::n180());
        let m = p.evaluate(&vec![0.5; p.dim()]);
        assert!(m.get(M_GAIN) > 30.0 && m.get(M_GAIN) < 130.0, "{m}");
        assert!(m.get(M_ITOTAL) > 5.0 && m.get(M_ITOTAL) < 3000.0, "{m}");
        assert!(m.get(M_PM) > 0.0 && m.get(M_PM) < 180.0, "{m}");
        assert!(m.get(M_GBW) > 0.01, "{m}");
    }

    #[test]
    fn single_stage_has_high_phase_margin() {
        // One high-impedance node: the midpoint design must be far more
        // stable than a two-stage amp without compensation.
        let p = FoldedCascodeOpAmp::new(TechNode::n180());
        let m = p.evaluate(&vec![0.5; p.dim()]);
        assert!(m.get(M_PM) > 60.0, "folded cascode should be stable: {m}");
    }

    #[test]
    fn starved_fold_branch_fails() {
        let p = FoldedCascodeOpAmp::new(TechNode::n180());
        // Max tail current, min fold current → cascode starved.
        let m = p.evaluate(&[0.5, 0.5, 0.5, 0.5, 1.0, 0.0]);
        assert_eq!(m, FoldedCascodeOpAmp::failed());
    }

    #[test]
    fn more_tail_current_more_gbw() {
        let p = FoldedCascodeOpAmp::new(TechNode::n180());
        let mut lo = vec![0.5; 6];
        let mut hi = vec![0.5; 6];
        lo[4] = 0.2;
        hi[4] = 0.6;
        let g_lo = p.evaluate(&lo).get(M_GBW);
        let g_hi = p.evaluate(&hi).get(M_GBW);
        assert!(g_hi > g_lo, "gm_in ∝ √Ib raises GBW: {g_lo} vs {g_hi}");
    }

    #[test]
    fn longer_channel_more_gain() {
        // Wide devices keep every overdrive low, so lengthening the
        // channel buys cascode output resistance without tripping the
        // headroom collapse.
        let p = FoldedCascodeOpAmp::new(TechNode::n180());
        let mut short = vec![0.5, 0.8, 0.8, 0.8, 0.5, 0.5];
        let mut long = short.clone();
        short[0] = 0.05;
        long[0] = 0.8;
        let g_s = p.evaluate(&short).get(M_GAIN);
        let g_l = p.evaluate(&long).get(M_GAIN);
        assert!(g_l > g_s + 3.0, "cascode ro ∝ L: {g_s} vs {g_l}");
    }

    #[test]
    fn expert_design_is_feasible() {
        for node in [TechNode::n180(), TechNode::n40()] {
            let p = FoldedCascodeOpAmp::new(node);
            let m = p.evaluate(&p.expert_design());
            assert!(m.feasible(p.specs()), "{} expert got {m}", p.name());
        }
    }

    #[test]
    fn deterministic() {
        let p = FoldedCascodeOpAmp::new(TechNode::n40());
        let x = vec![0.3, 0.6, 0.4, 0.7, 0.5, 0.6];
        assert_eq!(p.evaluate(&x), p.evaluate(&x));
    }

    #[test]
    fn name_embeds_node() {
        assert_eq!(
            FoldedCascodeOpAmp::new(TechNode::n180()).name(),
            "folded_cascode_180nm"
        );
    }
}
