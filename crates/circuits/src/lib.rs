#![deny(missing_docs)]

//! Benchmark analog circuits and sizing problems for KATO.
//!
//! The KATO paper (DAC 2024) evaluates on three circuits, each implemented
//! here on top of the [`kato-mna`](kato_mna) simulator:
//!
//! * [`TwoStageOpAmp`] — Miller-compensated two-stage OTA
//!   (paper Eq. 15: minimise `I_total` s.t. PM > 60°, GBW > 4 MHz,
//!   Gain > 60 dB at 180 nm).
//! * [`ThreeStageOpAmp`] — nested-Miller three-stage OTA
//!   (paper Eq. 16: minimise `I_total` s.t. PM > 60°, GBW > 2 MHz,
//!   Gain > 80 dB at 180 nm).
//! * [`Bandgap`] — ΔVBE/R bandgap reference with a behavioural error
//!   amplifier, solved by full nonlinear Newton DC over a temperature sweep
//!   (paper Eq. 17: minimise TC s.t. `I_total` < 6 µA, PSRR > 50 dB).
//!
//! Circuits are parameterised by a [`TechNode`] (180 nm and 40 nm cards are
//! provided), so the same topology can be instantiated on either node — the
//! substrate for the paper's cross-technology transfer experiments.
//!
//! Every circuit implements [`SizingProblem`]: design vectors live in the
//! unit cube `[0,1]^d` and are mapped to physical values (log-scaled where
//! appropriate) internally. Evaluation never panics and never fails: a
//! design that breaks the simulator (e.g. no DC convergence) is reported
//! with strongly penalised metrics, exactly how a SPICE failure is treated
//! in production sizing loops.
//!
//! # Example
//!
//! ```
//! use kato_circuits::{SizingProblem, TechNode, TwoStageOpAmp};
//!
//! let problem = TwoStageOpAmp::new(TechNode::n180());
//! let x = vec![0.5; problem.dim()];
//! let metrics = problem.evaluate(&x);
//! // Metric order: [i_total, gain_db, pm_deg, gbw_hz]
//! assert!(metrics.get(problem.metric_index("gain_db").unwrap()) > 0.0);
//! ```

mod bandgap;
mod corner;
mod folded_cascode;
mod fom;
mod ldo;
mod mismatch;
mod opamp2;
mod opamp3;
mod problem;
mod registry;
mod switch;
mod tech;
mod telescopic;
mod varactor;
mod yield_problem;

pub use bandgap::Bandgap;
pub use corner::{Corner, Process};
pub use folded_cascode::FoldedCascodeOpAmp;
pub use fom::{FomNormalization, FomSpec};
pub use ldo::Ldo;
pub use mismatch::{MismatchDeltas, MismatchStream, Pelgrom};
pub use opamp2::TwoStageOpAmp;
pub use opamp3::ThreeStageOpAmp;
pub use problem::{
    random_design, Goal, Metrics, OverriddenProblem, SizingProblem, Spec, SpecKind, VarSpec,
};
pub use registry::{Scenario, ScenarioError, ScenarioRegistry, YieldPreset};
pub use switch::Switch;
pub use tech::{Backend, TechNode};
pub use telescopic::TelescopicOpAmp;
pub use varactor::Varactor;
pub use yield_problem::{YieldProblem, YieldSettings};
