use std::fmt;

/// Process corner of a technology card's device models.
///
/// Corners shift every MOS model of a [`crate::TechNode`] the way foundry
/// corner cards do: the fast corner has lower thresholds and stronger
/// transconductance, the slow corner the opposite. The shifts are applied
/// multiplicatively/additively by [`crate::TechNode::at_corner`], so a
/// single nominal card yields the whole corner family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Process {
    /// Typical/typical — the nominal card, unshifted.
    Tt,
    /// Fast/fast — `Vth` −40 mV, `KP` +15 %.
    Ff,
    /// Slow/slow — `Vth` +40 mV, `KP` −15 %.
    Ss,
}

impl Process {
    /// Multiplicative shift applied to every `KP` at this corner.
    #[must_use]
    pub fn kp_scale(self) -> f64 {
        match self {
            Process::Tt => 1.0,
            Process::Ff => 1.15,
            Process::Ss => 0.85,
        }
    }

    /// Additive shift applied to every `Vth` at this corner, volts.
    #[must_use]
    pub fn vth_shift(self) -> f64 {
        match self {
            Process::Tt => 0.0,
            Process::Ff => -0.04,
            Process::Ss => 0.04,
        }
    }

    /// Canonical lower-case name ("tt", "ff", "ss").
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Process::Tt => "tt",
            Process::Ff => "ff",
            Process::Ss => "ss",
        }
    }

    /// Parses a process name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input when it is not one of `tt`/`ff`/`ss`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "tt" => Ok(Process::Tt),
            "ff" => Ok(Process::Ff),
            "ss" => Ok(Process::Ss),
            other => Err(format!("unknown process corner '{other}' (tt/ff/ss)")),
        }
    }
}

/// One PVT corner: a process shift plus an ambient temperature.
///
/// Corner names follow the `<process>_<temp>c` convention used by the CLI
/// and the scenario registry: `tt_27c`, `ss_125c`, `ff_m40c` (the `m`
/// prefix spells a negative temperature, since `-` is awkward in file
/// names and shell arguments; a literal `-40` is also accepted on parse).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Process shift applied to the device models.
    pub process: Process,
    /// Ambient temperature, °C.
    pub temp_c: f64,
}

impl Corner {
    /// The nominal corner: TT, 27 °C.
    #[must_use]
    pub fn tt() -> Self {
        Corner {
            process: Process::Tt,
            temp_c: 27.0,
        }
    }

    /// A corner at an explicit process and temperature.
    #[must_use]
    pub fn new(process: Process, temp_c: f64) -> Self {
        Corner { process, temp_c }
    }

    /// Canonical name, e.g. `tt_27c`, `ff_m40c`, `ss_125c`.
    #[must_use]
    pub fn name(&self) -> String {
        let t = self.temp_c.round() as i64;
        if t < 0 {
            format!("{}_m{}c", self.process.name(), -t)
        } else {
            format!("{}_{}c", self.process.name(), t)
        }
    }

    /// Parses a corner name.
    ///
    /// Accepts the canonical `<process>_<temp>c` form (`ss_125c`,
    /// `ff_m40c`, `ff_-40c`) and a bare process (`tt`), which implies
    /// 27 °C.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed component.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.to_ascii_lowercase();
        let Some((proc_part, temp_part)) = s.split_once('_') else {
            return Ok(Corner::new(Process::parse(&s)?, 27.0));
        };
        let process = Process::parse(proc_part)?;
        let t = temp_part.trim_end_matches('c');
        let t = if let Some(neg) = t.strip_prefix('m') {
            format!("-{neg}")
        } else {
            t.to_string()
        };
        let temp_c: f64 = t
            .parse()
            .map_err(|_| format!("unparsable corner temperature '{temp_part}' in '{s}'"))?;
        if !(-60.0..=200.0).contains(&temp_c) {
            return Err(format!("corner temperature {temp_c} °C out of range"));
        }
        Ok(Corner::new(process, temp_c))
    }

    /// The standard sweep registered for most scenarios: TT at room plus
    /// the four aggressive PVT combinations (fast-cold, fast-hot,
    /// slow-cold, slow-hot).
    #[must_use]
    pub fn standard_sweep() -> Vec<Corner> {
        vec![
            Corner::new(Process::Tt, 27.0),
            Corner::new(Process::Ff, -40.0),
            Corner::new(Process::Ff, 125.0),
            Corner::new(Process::Ss, -40.0),
            Corner::new(Process::Ss, 125.0),
        ]
    }

    /// Process-only sweep (all at 27 °C ambient) for testbenches whose
    /// evaluation already sweeps temperature internally (the bandgap).
    #[must_use]
    pub fn process_sweep() -> Vec<Corner> {
        vec![
            Corner::new(Process::Tt, 27.0),
            Corner::new(Process::Ff, 27.0),
            Corner::new(Process::Ss, 27.0),
        ]
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_names_round_trip() {
        for c in Corner::standard_sweep() {
            let parsed = Corner::parse(&c.name()).unwrap();
            assert_eq!(parsed, c, "round trip of {}", c.name());
        }
    }

    #[test]
    fn bare_process_implies_room_temperature() {
        let c = Corner::parse("ff").unwrap();
        assert_eq!(c.process, Process::Ff);
        assert!((c.temp_c - 27.0).abs() < 1e-12);
    }

    #[test]
    fn negative_temperature_spellings() {
        assert_eq!(Corner::parse("ss_m40c").unwrap().temp_c, -40.0);
        assert_eq!(Corner::parse("ss_-40c").unwrap().temp_c, -40.0);
        assert_eq!(Corner::parse("ss_m40c").unwrap().name(), "ss_m40c");
    }

    #[test]
    fn malformed_corners_are_rejected() {
        assert!(Corner::parse("sf_27c").is_err());
        assert!(Corner::parse("tt_abc").is_err());
        assert!(Corner::parse("tt_999c").is_err());
    }

    #[test]
    fn process_shifts_are_directionally_correct() {
        assert!(Process::Ff.kp_scale() > 1.0 && Process::Ff.vth_shift() < 0.0);
        assert!(Process::Ss.kp_scale() < 1.0 && Process::Ss.vth_shift() > 0.0);
        assert_eq!(Process::Tt.kp_scale(), 1.0);
        assert_eq!(Process::Tt.vth_shift(), 0.0);
    }
}
