use crate::problem::{Goal, Metrics, SizingProblem, Spec, SpecKind};
use crate::random_design;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-metric normalisation ranges for the Figure-of-Merit (paper Eq. 2),
/// obtained from random sampling of the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct FomNormalization {
    /// Per-metric minimum over the sample.
    pub f_min: Vec<f64>,
    /// Per-metric maximum over the sample.
    pub f_max: Vec<f64>,
}

/// Figure of Merit evaluator implementing paper Eq. 2:
///
/// `FOM(x) = Σ_i w_i · (clampᵢ(fᵢ(x)) − fᵢ_min) / (fᵢ_max − fᵢ_min)`
///
/// with `w_i = +1` for maximised metrics and `−1` for minimised ones, and
/// the contribution of constrained metrics *capped at the spec bound* so no
/// reward is given for over-satisfying a constraint. (The paper writes
/// `min(f, bound)` for all metrics; for minimised metrics the symmetric
/// `max(f, bound)` is the meaningful cap and is what we use — documented in
/// DESIGN.md.)
///
/// # Example
///
/// ```
/// use kato_circuits::{FomSpec, TechNode, TwoStageOpAmp, SizingProblem};
///
/// let problem = TwoStageOpAmp::new(TechNode::n180());
/// let fom = FomSpec::calibrate(&problem, 64, 42);
/// let value = fom.fom(&problem.evaluate(&vec![0.5; problem.dim()]));
/// assert!(value.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct FomSpec {
    specs: Vec<Spec>,
    norm: FomNormalization,
}

impl FomSpec {
    /// Builds a FOM evaluator by sampling `n_samples` random designs with a
    /// deterministic `seed` (the paper uses 10 000 samples; smaller values
    /// are fine for tests).
    ///
    /// # Panics
    ///
    /// Panics if `n_samples == 0`.
    #[must_use]
    pub fn calibrate(problem: &dyn SizingProblem, n_samples: usize, seed: u64) -> Self {
        assert!(n_samples > 0, "need at least one calibration sample");
        let mut rng = StdRng::seed_from_u64(seed);
        let n_metrics = problem.metric_names().len();
        let mut f_min = vec![f64::INFINITY; n_metrics];
        let mut f_max = vec![f64::NEG_INFINITY; n_metrics];
        for _ in 0..n_samples {
            let x = random_design(problem.dim(), &mut rng);
            let m = problem.evaluate(&x);
            for (i, v) in m.values().iter().enumerate() {
                f_min[i] = f_min[i].min(*v);
                f_max[i] = f_max[i].max(*v);
            }
        }
        // Guard against degenerate (constant) metrics.
        for i in 0..n_metrics {
            if f_max[i] - f_min[i] < 1e-12 {
                f_max[i] = f_min[i] + 1.0;
            }
        }
        FomSpec {
            specs: problem.specs().to_vec(),
            norm: FomNormalization { f_min, f_max },
        }
    }

    /// Builds a FOM evaluator from precomputed normalisation ranges.
    #[must_use]
    pub fn from_normalization(specs: Vec<Spec>, norm: FomNormalization) -> Self {
        FomSpec { specs, norm }
    }

    /// The normalisation ranges in use.
    #[must_use]
    pub fn normalization(&self) -> &FomNormalization {
        &self.norm
    }

    /// Evaluates the FOM of a metric vector. Larger is better.
    #[must_use]
    pub fn fom(&self, metrics: &Metrics) -> f64 {
        let mut total = 0.0;
        for spec in &self.specs {
            let i = spec.metric;
            let f = metrics.get(i);
            let lo = self.norm.f_min[i];
            let hi = self.norm.f_max[i];
            let (w, clamped) = match spec.kind {
                SpecKind::Objective(Goal::Maximize) => (1.0, f),
                SpecKind::Objective(Goal::Minimize) => (-1.0, f),
                // Constraint ≥ bound: maximised metric, reward capped at the
                // bound.
                SpecKind::GreaterEq(b) => (1.0, f.min(b)),
                // Constraint ≤ bound: minimised metric, reward capped at the
                // bound.
                SpecKind::LessEq(b) => (-1.0, f.max(b)),
            };
            total += w * (clamped - lo) / (hi - lo);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::VarSpec;

    /// Tiny synthetic problem: f0 = Σx (minimise), f1 = x0·10 (≥ 4).
    struct Toy {
        vars: Vec<VarSpec>,
        specs: Vec<Spec>,
    }

    impl Toy {
        fn new() -> Self {
            Toy {
                vars: vec![VarSpec::lin("a", 0.0, 1.0), VarSpec::lin("b", 0.0, 1.0)],
                specs: vec![
                    Spec {
                        metric: 0,
                        kind: SpecKind::Objective(Goal::Minimize),
                    },
                    Spec {
                        metric: 1,
                        kind: SpecKind::GreaterEq(4.0),
                    },
                ],
            }
        }
    }

    impl SizingProblem for Toy {
        fn name(&self) -> String {
            "toy".into()
        }
        fn variables(&self) -> &[VarSpec] {
            &self.vars
        }
        fn metric_names(&self) -> &[&'static str] {
            &["sum", "tenx"]
        }
        fn specs(&self) -> &[Spec] {
            &self.specs
        }
        fn evaluate(&self, x: &[f64]) -> Metrics {
            Metrics::new(vec![x[0] + x[1], 10.0 * x[0]])
        }
        fn expert_design(&self) -> Vec<f64> {
            vec![0.5, 0.0]
        }
    }

    #[test]
    fn calibration_brackets_metric_ranges() {
        let toy = Toy::new();
        let fom = FomSpec::calibrate(&toy, 256, 1);
        let n = fom.normalization();
        assert!(n.f_min[0] >= 0.0 && n.f_max[0] <= 2.0);
        assert!(n.f_min[1] >= 0.0 && n.f_max[1] <= 10.0);
        assert!(n.f_max[0] > n.f_min[0]);
    }

    #[test]
    fn fom_prefers_lower_objective() {
        let toy = Toy::new();
        let fom = FomSpec::calibrate(&toy, 256, 1);
        // Same constraint satisfaction (both above bound → capped), lower sum.
        let better = fom.fom(&toy.evaluate(&[0.6, 0.0]));
        let worse = fom.fom(&toy.evaluate(&[0.6, 0.4]));
        assert!(better > worse);
    }

    #[test]
    fn constraint_reward_caps_at_bound() {
        let toy = Toy::new();
        let fom = FomSpec::calibrate(&toy, 256, 1);
        // x0 = 0.4 → tenx = 4.0 (at bound); x0 = 0.9 → tenx = 9 (capped).
        // The extra 0.5 on the sum objective must dominate.
        let at_bound = fom.fom(&toy.evaluate(&[0.4, 0.0]));
        let over = fom.fom(&toy.evaluate(&[0.9, 0.0]));
        assert!(
            at_bound > over,
            "over-satisfying the constraint must not pay: {at_bound} vs {over}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let toy = Toy::new();
        let a = FomSpec::calibrate(&toy, 64, 9);
        let b = FomSpec::calibrate(&toy, 64, 9);
        assert_eq!(a.normalization(), b.normalization());
    }
}
