use crate::problem::{Goal, Metrics, SizingProblem, Spec, SpecKind, VarSpec};
use crate::tech::TechNode;

/// Analog transmission-switch sizing (gm/ID-flow device-level problem).
///
/// Sizes a single NMOS pass switch against the two quantities a switch
/// designer actually trades: on-resistance (settling) and gate capacitance
/// (clock load / charge injection). There is no AC macromodel here — every
/// metric comes straight from the device backend, which makes the problem
/// *LUT-native*: the registry builds it on the gm/ID table backend by
/// default, mirroring how industrial switch-sizing flows (e.g. gostpy's
/// `switch_sizing`) sweep precomputed device tables instead of invoking a
/// simulator.
///
/// Operating point: gate driven to `VDD`, drain at a 50 mV probe (deep
/// triode, the bias a sampling switch actually sees at settling).
///
/// Design variables (mapped from the unit cube):
///
/// | # | name  | scale | meaning        |
/// |---|-------|-------|----------------|
/// | 0 | `w_m` | log   | switch width   |
/// | 1 | `l_m` | lin   | channel length |
///
/// Specification: minimise area subject to `Ron ≤` bound and `Cgg ≤`
/// bound (bounds per node; the 40 nm switch is faster, so it gets the
/// tighter capacitance budget).
#[derive(Debug, Clone)]
pub struct Switch {
    node: TechNode,
    vars: Vec<VarSpec>,
    specs: Vec<Spec>,
}

pub(crate) const M_AREA: usize = 0;
pub(crate) const M_RON: usize = 1;
pub(crate) const M_CGG: usize = 2;

/// Drain probe voltage for the on-resistance measurement, V.
const VDS_PROBE: f64 = 0.05;

impl Switch {
    /// Creates the problem on a technology node.
    #[must_use]
    pub fn new(node: TechNode) -> Self {
        let vars = vec![
            VarSpec::logarithmic("w_m", 5.0 * node.l_min, 2000.0 * node.l_min),
            VarSpec::lin("l_m", node.l_min, node.l_max),
        ];
        let (ron_bound, cgg_bound) = if node.name == "40nm" {
            (100.0, 20.0)
        } else {
            (150.0, 50.0)
        };
        let specs = vec![
            Spec {
                metric: M_AREA,
                kind: SpecKind::Objective(Goal::Minimize),
            },
            Spec {
                metric: M_RON,
                kind: SpecKind::LessEq(ron_bound),
            },
            Spec {
                metric: M_CGG,
                kind: SpecKind::LessEq(cgg_bound),
            },
        ];
        Switch { node, vars, specs }
    }

    /// The technology node this instance is built on.
    #[must_use]
    pub fn tech(&self) -> &TechNode {
        &self.node
    }
}

impl SizingProblem for Switch {
    fn name(&self) -> String {
        format!("switch_{}", self.node.name)
    }

    fn variables(&self) -> &[VarSpec] {
        &self.vars
    }

    fn metric_names(&self) -> &[&'static str] {
        &["area_um2", "ron_ohm", "cgg_ff"]
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Metrics {
        assert_eq!(x.len(), self.dim(), "design vector length mismatch");
        let w = self.vars[0].denormalize(x[0]);
        let l = self.vars[1].denormalize(x[1]);
        let node = &self.node;
        // Deep-triode on-resistance with the gate at the rail.
        let (i_on, _, _) = node.mos_iv(&node.nmos, w, l, node.vdd, VDS_PROBE);
        let ron_ohm = if i_on > 0.0 { VDS_PROBE / i_on } else { 1e12 };
        let cgg_ff = node.mos_cgg(&node.nmos, w, l, node.vdd) * 1e15;
        let area_um2 = w * l * 1e12;
        Metrics::new(vec![area_um2, ron_ohm, cgg_ff])
    }

    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<Metrics> {
        // One population sweep through the device backend: all Ron probes
        // are issued as a single batched I–V call. Bitwise identical to the
        // scalar loop — the backend's batch path evaluates the same model
        // at the same points in the same order.
        let node = &self.node;
        let geoms: Vec<(f64, f64)> = xs
            .iter()
            .map(|x| {
                assert_eq!(x.len(), self.dim(), "design vector length mismatch");
                (
                    self.vars[0].denormalize(x[0]),
                    self.vars[1].denormalize(x[1]),
                )
            })
            .collect();
        let points: Vec<(f64, f64, f64, f64)> = geoms
            .iter()
            .map(|&(w, l)| (w, l, node.vdd, VDS_PROBE))
            .collect();
        let ivs = node.mos_iv_batch(&node.nmos, &points);
        geoms
            .iter()
            .zip(&ivs)
            .map(|(&(w, l), &(i_on, _, _))| {
                let ron_ohm = if i_on > 0.0 { VDS_PROBE / i_on } else { 1e12 };
                let cgg_ff = node.mos_cgg(&node.nmos, w, l, node.vdd) * 1e15;
                Metrics::new(vec![w * l * 1e12, ron_ohm, cgg_ff])
            })
            .collect()
    }

    fn expert_design(&self) -> Vec<f64> {
        // Near-minimum length, width set for Ron at roughly half the bound.
        match self.node.name {
            "40nm" => vec![0.55, 0.0],
            _ => vec![0.45, 0.0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Backend;

    #[test]
    fn wider_switch_lower_ron_higher_cgg() {
        let p = Switch::new(TechNode::n180());
        let narrow = p.evaluate(&[0.3, 0.0]);
        let wide = p.evaluate(&[0.8, 0.0]);
        assert!(wide.get(M_RON) < narrow.get(M_RON));
        assert!(wide.get(M_CGG) > narrow.get(M_CGG));
    }

    #[test]
    fn expert_design_is_feasible_on_both_backends() {
        for node in [TechNode::n180(), TechNode::n40()] {
            for backend in [Backend::SquareLaw, Backend::Lut] {
                let p = Switch::new(node.clone().with_backend(backend));
                let m = p.evaluate(&p.expert_design());
                assert!(
                    m.feasible(p.specs()),
                    "{} expert on {:?} got {m}",
                    p.name(),
                    backend
                );
            }
        }
    }

    #[test]
    fn batch_is_bitwise_identical_to_scalar_loop() {
        for backend in [Backend::SquareLaw, Backend::Lut] {
            let p = Switch::new(TechNode::n180().with_backend(backend));
            let xs: Vec<Vec<f64>> = vec![vec![0.1, 0.2], vec![0.5, 0.5], vec![0.9, 0.8]];
            let batch = p.evaluate_batch(&xs);
            let scalar: Vec<Metrics> = xs.iter().map(|x| p.evaluate(x)).collect();
            assert_eq!(batch, scalar, "{backend:?}");
        }
    }
}
