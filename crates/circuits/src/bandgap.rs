use crate::problem::{Goal, Metrics, SizingProblem, Spec, SpecKind, VarSpec};
use crate::tech::TechNode;
use kato_mna::{mos_iv_public, AcSweep, Circuit, DcOptions, DiodeModel, MosType, NodeId};

/// ΔVBE/R bandgap voltage reference (paper Fig. 3c, condensed core).
///
/// Unlike the op-amps (small-signal macromodels), the bandgap is simulated
/// with the **full nonlinear Newton DC solver** across a −40…125 °C
/// temperature sweep, because its figure of merit — the temperature
/// coefficient — is inherently a large-signal quantity.
///
/// Topology (each evaluation builds this netlist):
///
/// * PMOS current mirror `MP1/MP2` (width `w_b1`) from VDD into the two
///   bandgap branches, plus output device `MP3` (width `w_b2`).
/// * Branch A: diode `Q1` (1×). Branch B: resistor `R1` in series with
///   `Q2` (8×). The error amplifier (behavioural VCCS whose `gm` is derived
///   from an input device of length `l_in`) servoes the branch voltages
///   equal, so `I = ΔV_BE/R1` is PTAT.
/// * Output branch: `I₃·R2 + V_BE(Q3)` sums a PTAT and a CTAT term —
///   the bandgap voltage.
/// * `R3` loads the error amplifier; `C1`, `C2` are fixed bypass caps.
///
/// Design variables: `[l_in, w_b1, w_b2, r1, r2, r3]` (length of the input
/// transistor, widths of the bias transistors, resistances — matching the
/// paper's description).
///
/// Specification (paper Eq. 17): minimise `TC` subject to
/// `I_total < 6 µA`, `PSRR > 50 dB @ 100 Hz`.
#[derive(Debug, Clone)]
pub struct Bandgap {
    node: TechNode,
    vars: Vec<VarSpec>,
    specs: Vec<Spec>,
}

pub(crate) const M_TC: usize = 0;
pub(crate) const M_ITOTAL: usize = 1;
pub(crate) const M_PSRR: usize = 2;

/// Temperatures for the TC sweep, °C.
const TEMPS: [f64; 12] = [
    -40.0, -25.0, -10.0, 5.0, 20.0, 27.0, 35.0, 50.0, 65.0, 80.0, 105.0, 125.0,
];

impl Bandgap {
    /// Creates the problem on a technology node (the paper evaluates the
    /// bandgap at 180 nm only; 40 nm instantiation is allowed but the 1.1 V
    /// supply leaves little headroom, as in reality).
    #[must_use]
    pub fn new(node: TechNode) -> Self {
        let vars = vec![
            VarSpec::lin("l_in_m", node.l_min, node.l_max),
            VarSpec::logarithmic("w_b1_m", 1e-6, 5e-5),
            VarSpec::logarithmic("w_b2_m", 1e-6, 5e-5),
            VarSpec::logarithmic("r1_ohm", 2e4, 4e5),
            VarSpec::logarithmic("r2_ohm", 2e5, 2.5e6),
            VarSpec::logarithmic("r3_ohm", 5e5, 1e7),
        ];
        let specs = vec![
            Spec {
                metric: M_TC,
                kind: SpecKind::Objective(Goal::Minimize),
            },
            Spec {
                metric: M_ITOTAL,
                kind: SpecKind::LessEq(6.0),
            },
            Spec {
                metric: M_PSRR,
                kind: SpecKind::GreaterEq(50.0),
            },
        ];
        Bandgap { node, vars, specs }
    }

    /// The technology node this instance is built on.
    #[must_use]
    pub fn tech(&self) -> &TechNode {
        &self.node
    }

    fn failed() -> Metrics {
        Metrics::new(vec![1e3, 100.0, 0.0])
    }

    /// Debug helper: formats key DC node voltages at 27 °C for a design
    /// (used by examples and calibration tooling; not part of the metric
    /// pipeline).
    #[must_use]
    pub fn debug_dc(&self, x: &[f64]) -> Option<String> {
        self.debug_dc_at(x, 27.0)
    }

    /// Debug helper: raw DC result (including the error) at one temperature.
    ///
    /// # Errors
    ///
    /// Propagates the solver error for calibration tooling.
    pub fn debug_dc_err(&self, x: &[f64], temp_c: f64) -> Result<String, kato_mna::MnaError> {
        let p: Vec<f64> = self
            .vars
            .iter()
            .zip(x)
            .map(|(v, &u)| v.denormalize(u))
            .collect();
        let (mut ckt, _, _) = self.build(&p);
        ckt.set_temperature(temp_c);
        let opts = kato_mna::DcOptions {
            initial: Some(self.dc_guess(temp_c)),
            ..kato_mna::DcOptions::default()
        };
        let sol = ckt.dc_with(&opts)?;
        let mut out = String::new();
        for name in ["ne", "na", "nb", "nxa", "nx", "vref", "nm"] {
            let id = ckt.node(name);
            out.push_str(&format!("{name}={:.3} ", sol.voltage(id)));
        }
        Ok(out)
    }

    /// Debug helper: small-signal supply-to-node transfer magnitude at
    /// 100 Hz (calibration tooling).
    #[must_use]
    pub fn debug_psrr_path(&self, x: &[f64], node_name: &str) -> Option<f64> {
        let p: Vec<f64> = self
            .vars
            .iter()
            .zip(x)
            .map(|(v, &u)| v.denormalize(u))
            .collect();
        let (mut ckt, _, _) = self.build(&p);
        ckt.set_temperature(27.0);
        let target = ckt.node(node_name);
        let bode = ckt
            .ac_transfer(target, &AcSweep::log(50.0, 200.0, 5))
            .ok()?;
        Some(10f64.powf(bode.interpolate_mag_db(100.0) / 20.0))
    }

    /// Debug helper: like [`Bandgap::debug_dc`] at an arbitrary temperature.
    #[must_use]
    pub fn debug_dc_at(&self, x: &[f64], temp_c: f64) -> Option<String> {
        let p: Vec<f64> = self
            .vars
            .iter()
            .zip(x)
            .map(|(v, &u)| v.denormalize(u))
            .collect();
        let (mut ckt, _, _) = self.build(&p);
        ckt.set_temperature(temp_c);
        let opts = kato_mna::DcOptions {
            initial: Some(self.dc_guess(temp_c)),
            ..kato_mna::DcOptions::default()
        };
        let sol = ckt.dc_with(&opts).ok()?;
        let mut out = String::new();
        for name in ["ne", "na", "nb", "nx", "vref", "nm"] {
            let id = ckt.node(name);
            out.push_str(&format!("{name}={:.3} ", sol.voltage(id)));
        }
        Some(out)
    }

    /// Bias current of the behavioural error amplifier, A (added to the
    /// reported supply current).
    const I_ERR: f64 = 1e-6;

    /// Builds the bandgap netlist for one parameter set. Returns the circuit
    /// plus (vdd source handle, vref node).
    fn build(&self, p: &[f64]) -> (Circuit, kato_mna::ElementHandle, NodeId) {
        let (l_in, w_b1, w_b2, r1, r2, r3) = (p[0], p[1], p[2], p[3], p[4], p[5]);
        let node = &self.node;
        let l_p = 6.0 * node.l_min;

        // Behavioural error-amp transconductance: input differential pair
        // (device of length `l_in`) followed by a fixed ×8 current preamp —
        // a two-stage error amplifier condensed into one effective gm.
        let w_err = 40e-6;
        let vgs_err = TechNode::vgs_for_current(&node.nmos, w_err, l_in, 0.5, Self::I_ERR);
        let (_, gm_in, _) = mos_iv_public(&node.nmos, w_err, l_in, vgs_err, 0.5, 27.0);
        let gm_err = 8.0 * gm_in;

        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let ne = ckt.node("ne");
        let na = ckt.node("na");
        let nb = ckt.node("nb");
        let nq = ckt.node("nq");
        let nx = ckt.node("nx");
        let vref = ckt.node("vref");
        let nm = ckt.node("nm");
        let nbias = ckt.node("nbias");
        let ncas = ckt.node("ncas");

        let vs = ckt.vsource_ac(vdd, Circuit::GND, node.vdd, 1.0);
        // Error-amp output bias: level shifted from VDD so the mirror is on
        // by default (no degenerate zero-current state).
        ckt.vsource(vdd, nbias, 1.0_f64.min(node.vdd * 0.8));
        ckt.resistor(nbias, ne, r3);
        // Startup: a small current injected into branch A unbalances the
        // error amp towards "on" whenever the core is dark — the classic
        // bandgap startup problem (the circuit otherwise has a stable
        // zero-current equilibrium that cold-temperature Newton solves land
        // in). 30 nA is ~3% of the branch current, a realistic startup leak.
        ckt.isource(Circuit::GND, na, 30e-9);
        // Cascode gate bias, also referenced to VDD.
        ckt.vsource(vdd, ncas, (0.95 * node.vdd / 1.8).min(node.vdd - 0.1));

        // Fully cascoded PMOS mirror (as in the paper's stacked-PMOS
        // schematic). Cascoding every leg matters: with only the output leg
        // cascoded, the mirror's vsg self-correction against its own
        // channel-length modulation over-corrects the clean output device
        // and PSRR collapses to `gds_p·R2`.
        let nxa = ckt.node("nxa");
        let nxb = ckt.node("nxb");
        ckt.mos(MosType::Pmos, nxa, ne, vdd, node.pmos, w_b1, l_p);
        ckt.mos(MosType::Pmos, na, ncas, nxa, node.pmos, w_b1, l_p);
        ckt.mos(MosType::Pmos, nxb, ne, vdd, node.pmos, w_b1, l_p);
        ckt.mos(MosType::Pmos, nb, ncas, nxb, node.pmos, w_b1, l_p);
        ckt.mos(MosType::Pmos, nx, ne, vdd, node.pmos, w_b2, l_p);
        ckt.mos(MosType::Pmos, vref, ncas, nx, node.pmos, w_b2, l_p);

        // Bandgap core.
        let unit = DiodeModel::silicon();
        ckt.diode(na, Circuit::GND, unit);
        ckt.resistor_tc(nb, nq, r1, 5e-4);
        ckt.diode(nq, Circuit::GND, unit.with_mult(8.0));

        // Error amplifier: i = gm·(v(na) − v(nb)) pulled out of ne.
        ckt.vccs(ne, Circuit::GND, na, nb, gm_err);

        // Output branch: Vref = I3·R2 + VBE3.
        ckt.resistor_tc(vref, nm, r2, 5e-4);
        ckt.diode(nm, Circuit::GND, unit);

        // Bypass caps (fixed, per the schematic's C1/C2).
        ckt.capacitor(ne, Circuit::GND, 2e-12);
        ckt.capacitor(vref, Circuit::GND, 5e-12);

        (ckt, vs, vref)
    }

    /// Physics-based initial guess for the Newton solve at temperature
    /// `temp_c`, indexed by node id (order of creation in
    /// [`Bandgap::build`]). Seeding the solver near the intended operating
    /// point — with the diode voltages shifted by their ≈ −1.9 mV/K slope —
    /// sidesteps the gmin-continuation folds a cascoded feedback loop can
    /// produce from a cold start.
    fn dc_guess(&self, temp_c: f64) -> Vec<f64> {
        let vdd = self.node.vdd;
        let vbe = 0.62 - 1.9e-3 * (temp_c - 27.0);
        vec![
            0.0,                                     // ground
            vdd,                                     // vdd
            vdd - 0.55,                              // ne (mirror gates)
            vbe,                                     // na
            vbe,                                     // nb
            vbe - 0.05,                              // nq
            vdd - 0.20,                              // nx
            vbe + 0.5,                               // vref
            vbe,                                     // nm
            vdd - 1.0_f64.min(vdd * 0.8),            // nbias
            vdd - (0.95 * vdd / 1.8).min(vdd - 0.1), // ncas
            vdd - 0.20,                              // nxa
            vdd - 0.20,                              // nxb
        ]
    }
}

impl SizingProblem for Bandgap {
    fn name(&self) -> String {
        format!("bandgap_{}", self.node.name)
    }

    fn variables(&self) -> &[VarSpec] {
        &self.vars
    }

    fn metric_names(&self) -> &[&'static str] {
        &["tc_ppm", "i_total_ua", "psrr_db"]
    }

    fn specs(&self) -> &[Spec] {
        &self.specs
    }

    fn evaluate(&self, x: &[f64]) -> Metrics {
        assert_eq!(x.len(), self.dim(), "design vector length mismatch");
        let p: Vec<f64> = self
            .vars
            .iter()
            .zip(x)
            .map(|(v, &u)| v.denormalize(u))
            .collect();
        let (mut ckt, vs, vref) = self.build(&p);

        // Temperature sweep for TC. Solve 27 °C first from the analytic
        // guess, then sweep outward (up to 125 °C, down to −40 °C) warm-
        // starting each solve from its neighbour — the robust ordering for
        // a circuit with a stable off-state at cold temperatures.
        let room_idx = TEMPS.iter().position(|&t| t == 27.0).expect("27C in sweep");
        let mut vrefs = vec![f64::NAN; TEMPS.len()];
        let solve_at = |ckt: &mut Circuit, t: f64, guess: &[f64]| -> Option<kato_mna::DcSolution> {
            ckt.set_temperature(t);
            let opts = DcOptions {
                initial: Some(guess.to_vec()),
                ..DcOptions::default()
            };
            ckt.dc_with(&opts).ok()
        };
        let Some(room_sol) = solve_at(&mut ckt, 27.0, &self.dc_guess(27.0)) else {
            return Self::failed();
        };
        vrefs[room_idx] = room_sol.voltage(vref);
        let i_room = room_sol.branch_current(&ckt, vs).map_or(f64::NAN, |i| -i);
        let dc_room = room_sol.clone();
        let mut guess = room_sol.voltages().to_vec();
        for i in (room_idx + 1)..TEMPS.len() {
            let Some(sol) = solve_at(&mut ckt, TEMPS[i], &guess) else {
                return Self::failed();
            };
            vrefs[i] = sol.voltage(vref);
            guess = sol.voltages().to_vec();
        }
        guess = dc_room.voltages().to_vec();
        for i in (0..room_idx).rev() {
            let Some(sol) = solve_at(&mut ckt, TEMPS[i], &guess) else {
                return Self::failed();
            };
            vrefs[i] = sol.voltage(vref);
            guess = sol.voltages().to_vec();
        }
        if !i_room.is_finite() || i_room <= 0.0 {
            return Self::failed();
        }

        let v_room = vrefs[TEMPS.iter().position(|&t| t == 27.0).expect("27C in sweep")];
        if v_room < 0.2 {
            // Reference collapsed — startup failed or mirror starved.
            return Self::failed();
        }
        if vrefs.iter().any(|&v| v > self.node.vdd - 0.25) {
            // Output rail-clamped somewhere in the sweep: the mirror is in
            // triode and the "reference" is just the supply minus a drop.
            // Flat-looking TC here is an artefact, not a bandgap.
            return Self::failed();
        }
        let vmax = vrefs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let vmin = vrefs.iter().copied().fold(f64::INFINITY, f64::min);
        let dt = TEMPS[TEMPS.len() - 1] - TEMPS[0];
        let tc_ppm = (vmax - vmin) / (v_room * dt) * 1e6;

        // PSRR from the VDD AC stimulus at room temperature.
        ckt.set_temperature(27.0);
        let sweep = AcSweep::log(10.0, 10e3, 31);
        let psrr_db = match ckt.ac_transfer_at(Some(&dc_room), vref, &sweep) {
            Ok(bode) => -bode.interpolate_mag_db(100.0),
            Err(_) => return Self::failed(),
        };

        Metrics::new(vec![tc_ppm, (i_room + Self::I_ERR) * 1e6, psrr_db])
    }

    fn expert_design(&self) -> Vec<f64> {
        // Calibrated competent manual design: TC ≈ 17 ppm/°C, I ≈ 4.4 µA,
        // PSRR ≈ 84 dB — feasible with visible headroom for the optimizers,
        // mirroring the expert-vs-KATO gap of paper Table 1.
        vec![0.285, 0.245, 0.547, 0.476, 0.099, 0.537]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midpoint_bandgap_produces_reference_voltage() {
        let p = Bandgap::new(TechNode::n180());
        let m = p.evaluate(&vec![0.5; p.dim()]);
        // Must produce a real reference: finite TC, µA-scale current, some
        // supply rejection.
        assert!(m.get(M_TC) > 0.0 && m.get(M_TC) < 1e3, "{m}");
        assert!(m.get(M_ITOTAL) > 0.1 && m.get(M_ITOTAL) < 100.0, "{m}");
        assert!(m.get(M_PSRR) > 10.0, "{m}");
    }

    #[test]
    fn r1_sets_current() {
        let p = Bandgap::new(TechNode::n180());
        let mut lo_r = vec![0.5; 6];
        let mut hi_r = vec![0.5; 6];
        lo_r[3] = 0.1; // small R1 → large PTAT current
        hi_r[3] = 0.9;
        let i_lo_r = p.evaluate(&lo_r).get(M_ITOTAL);
        let i_hi_r = p.evaluate(&hi_r).get(M_ITOTAL);
        assert!(
            i_lo_r > i_hi_r,
            "I = ΔVBE/R1: smaller R1 must draw more current ({i_lo_r} vs {i_hi_r})"
        );
    }

    #[test]
    fn tc_has_interior_optimum_in_r2() {
        // Sweep R2: too small → CTAT dominates, too big → PTAT dominates;
        // somewhere in between the TC dips. Check the ends are worse than
        // the best interior point.
        let p = Bandgap::new(TechNode::n180());
        let mut best_mid = f64::INFINITY;
        let mut x = vec![0.5; 6];
        for u in [0.3, 0.4, 0.5, 0.6, 0.7] {
            x[4] = u;
            best_mid = best_mid.min(p.evaluate(&x).get(M_TC));
        }
        x[4] = 0.0;
        let tc_low = p.evaluate(&x).get(M_TC);
        x[4] = 1.0;
        let tc_high = p.evaluate(&x).get(M_TC);
        assert!(
            best_mid < tc_low && best_mid < tc_high,
            "TC must dip between PTAT/CTAT extremes: mid {best_mid}, ends ({tc_low}, {tc_high})"
        );
    }

    #[test]
    fn expert_design_is_feasible() {
        let p = Bandgap::new(TechNode::n180());
        let m = p.evaluate(&p.expert_design());
        assert!(m.feasible(p.specs()), "expert got {m}");
    }

    #[test]
    fn deterministic() {
        let p = Bandgap::new(TechNode::n180());
        let x = vec![0.4, 0.6, 0.3, 0.5, 0.7, 0.2];
        assert_eq!(p.evaluate(&x), p.evaluate(&x));
    }
}
