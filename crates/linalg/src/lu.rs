use crate::{LinalgError, Matrix};

/// LU factorisation with partial pivoting, `P A = L U`.
///
/// Used by the MNA circuit simulator for the (unsymmetric) Jacobian solves of
/// Newton iterations and for real-valued transfer-function evaluation.
///
/// # Example
///
/// ```
/// use kato_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), kato_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?; // needs pivoting
/// let lu = Lu::new(&a)?;
/// let x = lu.solve(&[2.0, 2.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Parity of the permutation (+1.0 or -1.0), for determinants.
    sign: f64,
}

impl Lu {
    /// Relative pivot threshold below which the matrix is declared singular.
    const SINGULAR_TOL: f64 = 1e-13;

    /// Factorises `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::Singular`] if no acceptable pivot exists.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = lu.max_abs().max(1.0);

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at/under the diagonal.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < Self::SINGULAR_TOL * scale {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let update = factor * lu[(k, j)];
                    lu[(i, j)] -= update;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A x = b`.
    ///
    /// The right-hand-side length must equal the matrix dimension
    /// (debug-asserted, matching the [`crate::CholeskyFactor`] solve
    /// contract: shape errors are caller bugs, not runtime conditions).
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows();
        debug_assert_eq!(b.len(), n, "Lu::solve: rhs length mismatch");
        // Apply permutation, then forward substitution with unit-diagonal L.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut sum = y[i];
            for k in 0..i {
                sum -= self.lu[(i, k)] * y[k];
            }
            y[i] = sum;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.lu[(i, k)] * y[k];
            }
            y[i] = sum / self.lu[(i, i)];
        }
        y
    }

    /// Determinant of the factorised matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solve_requires_pivot() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[5.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn det_of_permutation_matrix() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn det_known_3x3() {
        let a = Matrix::from_rows(&[&[2.0, 0.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 1.0, 1.0]]).unwrap();
        // det = 2*(3-2) - 0 + 1*(1-3) = 0 ... pick another matrix with nonzero det.
        let lu = Lu::new(&a);
        // det actually: 2*(3*1-2*1) - 0*(1*1-2*1) + 1*(1*1-3*1) = 2*1 + 1*(-2) = 0 -> singular
        assert!(matches!(lu, Err(LinalgError::Singular)) || lu.unwrap().det().abs() < 1e-9);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular)));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let lu = Lu::new(&a).unwrap();
        let _ = lu.solve(&[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn prop_solve_roundtrip(vals in proptest::collection::vec(-3.0..3.0f64, 16), n in 2usize..5) {
            // Diagonally dominant => nonsingular.
            let mut a = Matrix::from_fn(n, n, |i, j| vals[(i * n + j) % vals.len()]);
            for i in 0..n {
                let rowsum: f64 = (0..n).map(|j| a[(i, j)].abs()).sum();
                a[(i, i)] = rowsum + 1.0;
            }
            let lu = Lu::new(&a).unwrap();
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 1.0).collect();
            let b = a.matvec(&x_true).unwrap();
            let x = lu.solve(&b);
            for (xi, ti) in x.iter().zip(&x_true) {
                prop_assert!((xi - ti).abs() < 1e-8);
            }
        }
    }
}
