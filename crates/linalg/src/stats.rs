//! Summary statistics used for data standardisation and experiment reporting.

/// Arithmetic mean; `0.0` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (`n-1` denominator); `0.0` when `n < 2`.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Minimum; `f64::INFINITY` for an empty slice.
#[must_use]
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum; `f64::NEG_INFINITY` for an empty slice.
#[must_use]
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Linear-interpolated quantile, `q ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(crate::cmp_nan_last);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median (the 0.5 quantile).
///
/// # Panics
///
/// Panics if `xs` is empty.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Empirical CDF value of `x` within `sample` (fraction of entries ≤ `x`),
/// clipped away from 0 and 1 for use inside Gaussian-copula transforms.
#[must_use]
pub fn ecdf(sample: &[f64], x: f64) -> f64 {
    if sample.is_empty() {
        return 0.5;
    }
    let count = sample.iter().filter(|&&s| s <= x).count();
    let n = sample.len() as f64;
    ((count as f64) / n).clamp(0.5 / n, 1.0 - 0.5 / n)
}

/// Inverse CDF of the standard normal distribution
/// (Acklam's rational approximation, |relative error| < 1.15e-9).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
#[must_use]
pub fn norm_inv_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_inv_cdf requires p in (0,1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard normal PDF.
#[must_use]
pub fn norm_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via `erf`-free Abramowitz–Stegun 7.1.26 approximation
/// (max absolute error ~1.5e-7, ample for acquisition functions).
#[must_use]
pub fn norm_cdf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs() / std::f64::consts::SQRT_2;
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    0.5 * (1.0 + sign * y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_std_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic dataset is sqrt(32/7).
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        assert_eq!(ecdf(&[], 1.0), 0.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_key_points() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(norm_cdf(-8.0) < 1e-10);
    }

    #[test]
    fn normal_inverse_cdf_roundtrip() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = norm_inv_cdf(p);
            assert!((norm_cdf(x) - p).abs() < 1e-5, "p={p}");
        }
    }

    #[test]
    fn pdf_peak_at_zero() {
        assert!((norm_pdf(0.0) - 0.398_942_280_401).abs() < 1e-9);
        assert!(norm_pdf(1.0) < norm_pdf(0.0));
    }

    proptest! {
        #[test]
        fn prop_quantile_within_bounds(xs in proptest::collection::vec(-100.0..100.0f64, 1..50), q in 0.0..=1.0f64) {
            let v = quantile(&xs, q);
            prop_assert!(v >= min(&xs) - 1e-12);
            prop_assert!(v <= max(&xs) + 1e-12);
        }

        #[test]
        fn prop_cdf_monotone(a in -5.0..5.0f64, b in -5.0..5.0f64) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(norm_cdf(lo) <= norm_cdf(hi) + 1e-12);
        }

        #[test]
        fn prop_ecdf_in_unit_interval(sample in proptest::collection::vec(-10.0..10.0f64, 1..40), x in -20.0..20.0f64) {
            let v = ecdf(&sample, x);
            prop_assert!(v > 0.0 && v < 1.0);
        }
    }
}
