use std::error::Error;
use std::fmt;

/// Errors produced by the dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand dimensions are incompatible (e.g. `2x3 * 4x2`).
    DimensionMismatch {
        /// Human-readable description of the offending operation.
        context: &'static str,
        /// Expected size (rows×cols or length, operation dependent).
        expected: usize,
        /// Actual size encountered.
        actual: usize,
    },
    /// A matrix expected to be positive definite was not, even after the
    /// maximum jitter was added to its diagonal.
    NotPositiveDefinite,
    /// A matrix was singular to working precision during LU factorisation.
    Singular,
    /// A matrix that must be square was rectangular.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// An input slice had the wrong length to form the requested matrix.
    BadShape {
        /// Human-readable description of the offending construction.
        context: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite (jitter exhausted)")
            }
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::BadShape { context } => {
                write!(f, "input has wrong shape for {context}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));
        let e = LinalgError::DimensionMismatch {
            context: "matmul",
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains("matmul"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
