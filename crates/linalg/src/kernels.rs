//! Shared inner loops for the dense kernels (`matmul`, Cholesky
//! factorisation and the triangular solves).
//!
//! Two build flavours:
//!
//! * **default** — straight-line loops with a fixed left-to-right
//!   accumulation order. Element-wise kernels (`axpy`) auto-vectorise; the
//!   reductions (`dot`) stay strictly sequential so results are
//!   bit-reproducible across compilers and match the scalar recurrences the
//!   factorisation routines are specified against.
//! * **`simd` feature** — manual 4-accumulator unrolling of the reduction
//!   kernels (the build is offline, so no `core::simd`; independent
//!   accumulator chains are what lets LLVM keep 4 FMA pipes busy). This
//!   changes floating-point association, so it is **opt-in**: enabling it
//!   trades the bitwise reproducibility of the default build (seeded runs
//!   still reproduce against *themselves* at any thread count — the
//!   association is fixed — just not against a default-build run).

/// `y[i] += a * x[i]` over equal-length slices.
///
/// The per-element operations are independent, so the default build already
/// auto-vectorises; the body is shared by both flavours.
#[inline]
pub(crate) fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Sequential dot product: one accumulator, strict left-to-right order.
#[cfg(not(feature = "simd"))]
#[inline]
pub(crate) fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for (xi, yi) in x.iter().zip(y) {
        acc += xi * yi;
    }
    acc
}

/// Unrolled dot product: four independent accumulator chains combined at
/// the end. Deterministic (the association is fixed), but rounded
/// differently from the sequential flavour.
#[cfg(feature = "simd")]
#[inline]
pub(crate) fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = [0.0_f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let b = c * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn dot_matches_reference() {
        let x: Vec<f64> = (0..11).map(|i| i as f64 * 0.37 - 1.0).collect();
        let y: Vec<f64> = (0..11).map(|i| 2.0 - i as f64 * 0.21).collect();
        let reference: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - reference).abs() < 1e-12);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}
