use crate::{LinalgError, Matrix};

/// Cholesky factorisation `A = L Lᵀ` of a symmetric positive-definite matrix,
/// with automatic diagonal jitter for numerically borderline Gram matrices.
///
/// Gaussian-process Gram matrices frequently sit on the edge of positive
/// definiteness (duplicated inputs, tiny noise). [`Cholesky::new`] therefore
/// retries with exponentially growing jitter (starting at `1e-10` times the
/// mean diagonal) before giving up.
///
/// # Example
///
/// ```
/// use kato_linalg::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), kato_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve(&[3.0, 3.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    jitter: f64,
}

impl Cholesky {
    /// Maximum number of jitter escalations before declaring failure.
    const MAX_TRIES: usize = 10;

    /// Factorises `a`, adding jitter to the diagonal if required.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::NotPositiveDefinite`] if factorisation keeps failing
    ///   after the maximum jitter escalation.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mean_diag = if n == 0 {
            1.0
        } else {
            (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64
        };
        let base = (mean_diag.max(1e-300)) * 1e-10;
        let mut jitter = 0.0;
        for attempt in 0..Self::MAX_TRIES {
            match Self::try_factor(a, jitter) {
                Some(l) => return Ok(Cholesky { l, jitter }),
                None => {
                    jitter = base * 10f64.powi(attempt as i32);
                }
            }
        }
        Err(LinalgError::NotPositiveDefinite)
    }

    fn try_factor(a: &Matrix, jitter: f64) -> Option<Matrix> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// The lower-triangular factor `L`.
    #[must_use]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Jitter that was added to the diagonal to achieve factorisation.
    #[must_use]
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Solves `A x = b` using forward then backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.forward_sub(b);
        self.backward_sub(&y)
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    #[must_use]
    pub fn forward_sub(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "forward_sub: rhs length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the matrix dimension.
    #[must_use]
    pub fn backward_sub(&self, y: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(y.len(), n, "backward_sub: rhs length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `L Y = B` for a whole right-hand-side matrix (forward
    /// substitution on every column at once) — the batched form of
    /// [`Cholesky::forward_sub`] used by `predict_batch`-style posterior
    /// inference, where `B` stacks one cross-covariance vector per query
    /// point as a column. Column `j` of the result is bit-for-bit the same
    /// as `forward_sub(&b.col(j))`.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows()` differs from the matrix dimension.
    #[must_use]
    pub fn forward_sub_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.l.rows();
        assert_eq!(b.rows(), n, "forward_sub_matrix: rhs row-count mismatch");
        let q = b.cols();
        let mut y = Matrix::zeros(n, q);
        for i in 0..n {
            for j in 0..q {
                let mut sum = b[(i, j)];
                for k in 0..i {
                    sum -= self.l[(i, k)] * y[(k, j)];
                }
                y[(i, j)] = sum / self.l[(i, i)];
            }
        }
        y
    }

    /// Solves `Lᵀ X = Y` column-wise (batched [`Cholesky::backward_sub`]).
    ///
    /// # Panics
    ///
    /// Panics if `y.rows()` differs from the matrix dimension.
    #[must_use]
    pub fn backward_sub_matrix(&self, y: &Matrix) -> Matrix {
        let n = self.l.rows();
        assert_eq!(y.rows(), n, "backward_sub_matrix: rhs row-count mismatch");
        let q = y.cols();
        let mut x = Matrix::zeros(n, q);
        for i in (0..n).rev() {
            for j in 0..q {
                let mut sum = y[(i, j)];
                for k in (i + 1)..n {
                    sum -= self.l[(k, i)] * x[(k, j)];
                }
                x[(i, j)] = sum / self.l[(i, i)];
            }
        }
        x
    }

    /// Solves `A X = B` for a whole right-hand-side matrix (forward then
    /// backward substitution on every column).
    ///
    /// # Panics
    ///
    /// Panics if `b.rows()` differs from the matrix dimension.
    #[must_use]
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        self.backward_sub_matrix(&self.forward_sub_matrix(b))
    }

    /// Log-determinant of `A`: `2 Σ log L_ii`.
    #[must_use]
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Explicit inverse `A⁻¹` (used for the GP B-matrix gradient trick, where
    /// every entry of the inverse is genuinely needed).
    #[must_use]
    pub fn inverse(&self) -> Matrix {
        let n = self.l.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        inv.symmetrize();
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd_from_seedish(vals: &[f64], n: usize) -> Matrix {
        // Build A = B Bᵀ + n I, guaranteed SPD.
        let b = Matrix::from_fn(n, n, |i, j| vals[(i * n + j) % vals.len()]);
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn factor_known_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let c = Cholesky::new(&a).unwrap();
        let l = c.l();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(c.jitter(), 0.0);
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd_from_seedish(&[0.3, -1.2, 0.7, 2.0, 0.05, -0.4], 5);
        let c = Cholesky::new(&a).unwrap();
        let x_true: Vec<f64> = (0..5).map(|i| (i as f64) - 2.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = c.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn log_det_matches_2x2() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]).unwrap();
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - 36.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd_from_seedish(&[1.0, 0.2, -0.3, 0.9], 4);
        let c = Cholesky::new(&a).unwrap();
        let prod = c.inverse().matmul(&a).unwrap();
        let err = (&prod - &Matrix::identity(4)).max_abs();
        assert!(err < 1e-9, "max deviation from identity: {err}");
    }

    #[test]
    fn near_singular_succeeds_with_finite_solve() {
        // Rank-1 matrix plus a tiny diagonal: must factor (with jitter if the
        // rounding falls the wrong way) and produce finite solves.
        let mut a = Matrix::from_fn(3, 3, |_, _| 1.0);
        a.add_diagonal(1e-14);
        let c = Cholesky::new(&a).unwrap();
        let x = c.solve(&[1.0, 1.0, 1.0]);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn exactly_singular_rank1_gets_jitter() {
        // Exactly rank-1: zero pivot forces at least one jitter escalation.
        let a = Matrix::from_fn(3, 3, |_, _| 1.0);
        let c = Cholesky::new(&a).unwrap();
        assert!(c.jitter() > 0.0);
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_negative_definite() {
        let a = Matrix::from_rows(&[&[-5.0, 0.0], &[0.0, -5.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn matrix_solves_match_columnwise_vector_solves() {
        let a = spd_from_seedish(&[0.4, -0.9, 1.3, 0.2, -0.6, 0.8], 5);
        let c = Cholesky::new(&a).unwrap();
        let b = Matrix::from_fn(5, 3, |i, j| (i as f64 * 0.7 - j as f64 * 1.1).sin());
        let fwd = c.forward_sub_matrix(&b);
        let full = c.solve_matrix(&b);
        for j in 0..3 {
            let col = b.col(j);
            let fwd_col = c.forward_sub(&col);
            let solve_col = c.solve(&col);
            for i in 0..5 {
                assert_eq!(fwd[(i, j)], fwd_col[i], "forward ({i},{j})");
                assert_eq!(full[(i, j)], solve_col[i], "solve ({i},{j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "rhs row-count mismatch")]
    fn matrix_solve_rejects_wrong_row_count() {
        let a = Matrix::identity(3);
        let c = Cholesky::new(&a).unwrap();
        let _ = c.forward_sub_matrix(&Matrix::zeros(2, 3));
    }

    proptest! {
        #[test]
        fn prop_solve_roundtrip(seed in proptest::collection::vec(-2.0..2.0f64, 9), n in 2usize..6) {
            let a = spd_from_seedish(&seed, n);
            let c = Cholesky::new(&a).unwrap();
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7) - 1.0).collect();
            let b = a.matvec(&x_true).unwrap();
            let x = c.solve(&b);
            for (xi, ti) in x.iter().zip(&x_true) {
                prop_assert!((xi - ti).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_l_lower_triangular(seed in proptest::collection::vec(-2.0..2.0f64, 9), n in 2usize..6) {
            let a = spd_from_seedish(&seed, n);
            let c = Cholesky::new(&a).unwrap();
            for i in 0..n {
                for j in (i+1)..n {
                    prop_assert_eq!(c.l()[(i, j)], 0.0);
                }
            }
        }
    }
}
