use crate::{kernels, LinalgError, Matrix};

/// Updatable Cholesky factorisation `A = L Lᵀ` of a symmetric
/// positive-definite matrix, with automatic diagonal jitter for numerically
/// borderline Gram matrices.
///
/// Gaussian-process Gram matrices frequently sit on the edge of positive
/// definiteness (duplicated inputs, tiny noise). [`CholeskyFactor::new`]
/// therefore retries with exponentially growing jitter (starting at `1e-10`
/// times the mean diagonal) before giving up.
///
/// Beyond the one-shot construction the factor is *persistent and
/// updatable* — the shape the KATO BO loop exploits, where the archive only
/// ever grows by a batch per iteration:
///
/// * [`CholeskyFactor::extend`] appends `k` rows/columns in `O(k·n²)`
///   without refactorising the `n×n` prefix,
/// * [`CholeskyFactor::downdate`] removes a rank-1 term with a
///   positive-definiteness guard,
/// * [`CholeskyFactor::shrink`] truncates to a leading principal block
///   exactly.
///
/// All three leave the factor untouched when they fail, so callers can fall
/// back to a full refactorisation on [`LinalgError::NotPositiveDefinite`].
///
/// # Example
///
/// ```
/// use kato_linalg::{CholeskyFactor, Matrix};
///
/// # fn main() -> Result<(), kato_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let chol = CholeskyFactor::new(&a)?;
/// let x = chol.solve(&[3.0, 3.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: Matrix,
    jitter: f64,
}

/// Runs the scalar Cholesky recurrence for rows `start..n` of `l`, reading
/// the source matrix through `a(i, j)` (only queried for `j <= i`,
/// `i >= start`) and adding `jitter` to diagonal entries.
///
/// Rows `0..start` of `l` must already hold a valid factor of the leading
/// block. Because the leading block of `L` depends only on the leading
/// block of `A`, running this with `start == 0` (fresh factorisation) or
/// `start == n_old` (extension) executes the *identical* sequence of
/// floating-point operations per entry — an extended factor is bitwise the
/// factor a from-scratch run at the same jitter would have produced.
///
/// The inner reduction is a slice dot product over row prefixes (row `i`
/// and row `j` of `L` are both finished up to column `j` when `l[i][j]` is
/// computed), which is the cache-friendly, vectorisable form of the
/// textbook `sum -= l[i][k]·l[j][k]` loop.
fn factor_rows<A>(l: &mut Matrix, a: A, start: usize, jitter: f64) -> Result<(), LinalgError>
where
    A: Fn(usize, usize) -> f64,
{
    let n = l.rows();
    for i in start..n {
        for j in 0..=i {
            let prod = {
                let (head, tail) = l.split_rows_at_mut(i);
                let row_i = &tail[..j];
                let row_j = if j == i {
                    row_i
                } else {
                    &head[j * n..j * n + j]
                };
                kernels::dot(row_i, row_j)
            };
            let mut sum = a(i, j);
            if i == j {
                sum += jitter;
            }
            sum -= prod;
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(())
}

impl CholeskyFactor {
    /// Maximum number of jitter escalations before declaring failure.
    const MAX_TRIES: usize = 10;

    /// Factorises `a`, adding jitter to the diagonal if required.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::NotPositiveDefinite`] if factorisation keeps failing
    ///   after the maximum jitter escalation.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mean_diag = if n == 0 {
            1.0
        } else {
            (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64
        };
        let base = (mean_diag.max(1e-300)) * 1e-10;
        let mut jitter = 0.0;
        for attempt in 0..Self::MAX_TRIES {
            let mut l = Matrix::zeros(n, n);
            match factor_rows(&mut l, |i, j| a[(i, j)], 0, jitter) {
                Ok(()) => return Ok(CholeskyFactor { l, jitter }),
                Err(_) => jitter = base * 10f64.powi(attempt as i32),
            }
        }
        Err(LinalgError::NotPositiveDefinite)
    }

    /// Dimension `n` of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    #[must_use]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Jitter that was added to the diagonal to achieve factorisation.
    #[must_use]
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Rank-`k` extension: appends `k` rows/columns to the factored matrix
    /// without refactorising the existing `n×n` prefix — `O(k·n²)` instead
    /// of `O(n³)`.
    ///
    /// `cross` is the `k×n` block of covariances between the new and the
    /// existing points (row `p` ↔ new point `p`); `corner` is the `k×k`
    /// block among the new points, *including* any noise/nugget already on
    /// its diagonal. The factor's own jitter is applied to the new diagonal
    /// entries, so the result is bitwise identical to what
    /// [`CholeskyFactor::new`]'s recurrence would produce on the full
    /// `(n+k)×(n+k)` matrix at this factor's jitter.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] for
    ///   shape violations.
    /// * [`LinalgError::NotPositiveDefinite`] when the Schur complement of
    ///   the new block is not positive definite. The factor is left
    ///   **untouched** in every error case — the caller's fallback is a
    ///   full refactorisation with jitter escalation.
    pub fn extend(&mut self, cross: &Matrix, corner: &Matrix) -> Result<(), LinalgError> {
        if !corner.is_square() {
            return Err(LinalgError::NotSquare {
                rows: corner.rows(),
                cols: corner.cols(),
            });
        }
        let n = self.l.rows();
        let k = corner.rows();
        if cross.rows() != k || cross.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "CholeskyFactor::extend (cross block)",
                expected: n,
                actual: cross.cols(),
            });
        }
        if k == 0 {
            return Ok(());
        }
        let m = n + k;
        let mut l = Matrix::zeros(m, m);
        for i in 0..n {
            l.row_mut(i)[..n].copy_from_slice(self.l.row(i));
        }
        factor_rows(
            &mut l,
            |i, j| {
                if j < n {
                    cross[(i - n, j)]
                } else {
                    corner[(i - n, j - n)]
                }
            },
            n,
            self.jitter,
        )?;
        self.l = l;
        Ok(())
    }

    /// Rank-1 downdate: replaces the factor of `A` with the factor of
    /// `A − v vᵀ` via hyperbolic rotations, guarded by a per-pivot
    /// positive-definiteness check.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `v.len()` differs from the
    ///   factor dimension.
    /// * [`LinalgError::NotPositiveDefinite`] when `A − v vᵀ` is not
    ///   positive definite (any rotation pivot goes non-positive). The
    ///   update runs on a copy, so the held factor is left **untouched** on
    ///   failure and the caller can refactorise the downdated matrix from
    ///   scratch (where jitter escalation may still rescue it).
    pub fn downdate(&mut self, v: &[f64]) -> Result<(), LinalgError> {
        let n = self.l.rows();
        if v.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "CholeskyFactor::downdate",
                expected: n,
                actual: v.len(),
            });
        }
        let mut l = self.l.clone();
        let mut w = v.to_vec();
        for k in 0..n {
            let lkk = l[(k, k)];
            let r2 = lkk * lkk - w[k] * w[k];
            if r2 <= 0.0 || !r2.is_finite() {
                return Err(LinalgError::NotPositiveDefinite);
            }
            let r = r2.sqrt();
            let c = r / lkk;
            let s = w[k] / lkk;
            l[(k, k)] = r;
            for i in (k + 1)..n {
                let lik = (l[(i, k)] - s * w[i]) / c;
                l[(i, k)] = lik;
                w[i] = c * w[i] - s * lik;
            }
        }
        self.l = l;
        Ok(())
    }

    /// Truncates the factor to its leading `new_dim × new_dim` principal
    /// block — the exact factor of the corresponding leading block of `A`
    /// (dropping trailing points never needs refactorisation).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::BadShape`] if `new_dim` exceeds the current
    /// dimension.
    pub fn shrink(&mut self, new_dim: usize) -> Result<(), LinalgError> {
        let n = self.l.rows();
        if new_dim > n {
            return Err(LinalgError::BadShape {
                context: "CholeskyFactor::shrink (new_dim > dim)",
            });
        }
        if new_dim == n {
            return Ok(());
        }
        let mut l = Matrix::zeros(new_dim, new_dim);
        for i in 0..new_dim {
            l.row_mut(i).copy_from_slice(&self.l.row(i)[..new_dim]);
        }
        self.l = l;
        Ok(())
    }

    /// Solves `A x = b` using forward then backward substitution.
    ///
    /// The right-hand-side length must equal the factor dimension
    /// (debug-asserted; callers sit behind shape-checked factorisations).
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.forward_sub(b);
        self.backward_sub(&y)
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// The right-hand-side length must equal the factor dimension
    /// (debug-asserted).
    #[must_use]
    pub fn forward_sub(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        debug_assert_eq!(b.len(), n, "forward_sub: rhs length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let row = &self.l.row(i)[..i];
            let sum = b[i] - kernels::dot(row, &y[..i]);
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    ///
    /// The right-hand-side length must equal the factor dimension
    /// (debug-asserted).
    #[must_use]
    pub fn backward_sub(&self, y: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        debug_assert_eq!(y.len(), n, "backward_sub: rhs length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `L Y = B` for a whole right-hand-side matrix (forward
    /// substitution on every column at once) — the batched form of
    /// [`CholeskyFactor::forward_sub`] used by `predict_batch`-style
    /// posterior inference, where `B` stacks one cross-covariance vector per
    /// query point as a column. Runs as row-level `axpy` updates (row `i`
    /// accumulates `−l[i][k]`·row `k` for `k < i`, then divides), which
    /// subtracts the same terms in the same order as the element-wise form —
    /// bitwise-identical results, but on contiguous slices the compiler can
    /// vectorise.
    ///
    /// `b.rows()` must equal the factor dimension (debug-asserted).
    #[must_use]
    pub fn forward_sub_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.l.rows();
        debug_assert_eq!(b.rows(), n, "forward_sub_matrix: rhs row-count mismatch");
        let q = b.cols();
        let mut y = b.clone();
        for i in 0..n {
            let l_row = self.l.row(i);
            let (head, tail) = y.split_rows_at_mut(i);
            let y_i = &mut tail[..q];
            for (k, &lik) in l_row.iter().enumerate().take(i) {
                kernels::axpy(-lik, &head[k * q..(k + 1) * q], y_i);
            }
            let inv_piv = l_row[i];
            for v in y_i.iter_mut() {
                *v /= inv_piv;
            }
        }
        y
    }

    /// Solves `Lᵀ X = Y` column-wise (batched
    /// [`CholeskyFactor::backward_sub`], same row-`axpy` scheme as
    /// [`CholeskyFactor::forward_sub_matrix`]).
    ///
    /// `y.rows()` must equal the factor dimension (debug-asserted).
    #[must_use]
    pub fn backward_sub_matrix(&self, y: &Matrix) -> Matrix {
        let n = self.l.rows();
        debug_assert_eq!(y.rows(), n, "backward_sub_matrix: rhs row-count mismatch");
        let q = y.cols();
        let mut x = y.clone();
        for i in (0..n).rev() {
            let (head, tail) = x.split_rows_at_mut(i + 1);
            let x_i = &mut head[i * q..];
            for k in (i + 1)..n {
                kernels::axpy(-self.l[(k, i)], &tail[(k - i - 1) * q..(k - i) * q], x_i);
            }
            let piv = self.l[(i, i)];
            for v in x_i.iter_mut() {
                *v /= piv;
            }
        }
        x
    }

    /// Solves `A X = B` for a whole right-hand-side matrix (forward then
    /// backward substitution on every column).
    ///
    /// `b.rows()` must equal the factor dimension (debug-asserted).
    #[must_use]
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        self.backward_sub_matrix(&self.forward_sub_matrix(b))
    }

    /// Log-determinant of `A`: `2 Σ log L_ii`.
    #[must_use]
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Explicit inverse `A⁻¹` (used for the GP B-matrix gradient trick, where
    /// every entry of the inverse is genuinely needed).
    #[must_use]
    pub fn inverse(&self) -> Matrix {
        let n = self.l.rows();
        let mut inv = self.solve_matrix(&Matrix::identity(n));
        inv.symmetrize();
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd_from_seedish(vals: &[f64], n: usize) -> Matrix {
        // Build A = B Bᵀ + n I, guaranteed SPD.
        let b = Matrix::from_fn(n, n, |i, j| vals[(i * n + j) % vals.len()]);
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn factor_known_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let c = CholeskyFactor::new(&a).unwrap();
        let l = c.l();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(c.jitter(), 0.0);
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd_from_seedish(&[0.3, -1.2, 0.7, 2.0, 0.05, -0.4], 5);
        let c = CholeskyFactor::new(&a).unwrap();
        let x_true: Vec<f64> = (0..5).map(|i| (i as f64) - 2.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = c.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn log_det_matches_2x2() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]).unwrap();
        let c = CholeskyFactor::new(&a).unwrap();
        assert!((c.log_det() - 36.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd_from_seedish(&[1.0, 0.2, -0.3, 0.9], 4);
        let c = CholeskyFactor::new(&a).unwrap();
        let prod = c.inverse().matmul(&a).unwrap();
        let err = (&prod - &Matrix::identity(4)).max_abs();
        assert!(err < 1e-9, "max deviation from identity: {err}");
    }

    #[test]
    fn near_singular_succeeds_with_finite_solve() {
        // Rank-1 matrix plus a tiny diagonal: must factor (with jitter if the
        // rounding falls the wrong way) and produce finite solves.
        let mut a = Matrix::from_fn(3, 3, |_, _| 1.0);
        a.add_diagonal(1e-14);
        let c = CholeskyFactor::new(&a).unwrap();
        let x = c.solve(&[1.0, 1.0, 1.0]);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn exactly_singular_rank1_gets_jitter() {
        // Exactly rank-1: zero pivot forces at least one jitter escalation.
        let a = Matrix::from_fn(3, 3, |_, _| 1.0);
        let c = CholeskyFactor::new(&a).unwrap();
        assert!(c.jitter() > 0.0);
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            CholeskyFactor::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_negative_definite() {
        let a = Matrix::from_rows(&[&[-5.0, 0.0], &[0.0, -5.0]]).unwrap();
        assert!(matches!(
            CholeskyFactor::new(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn matrix_solves_match_columnwise_vector_solves() {
        let a = spd_from_seedish(&[0.4, -0.9, 1.3, 0.2, -0.6, 0.8], 5);
        let c = CholeskyFactor::new(&a).unwrap();
        let b = Matrix::from_fn(5, 3, |i, j| (i as f64 * 0.7 - j as f64 * 1.1).sin());
        let fwd = c.forward_sub_matrix(&b);
        let full = c.solve_matrix(&b);
        for j in 0..3 {
            let col = b.col(j);
            let fwd_col = c.forward_sub(&col);
            let solve_col = c.solve(&col);
            for i in 0..5 {
                assert!(
                    (fwd[(i, j)] - fwd_col[i]).abs() < 1e-12,
                    "forward ({i},{j})"
                );
                assert!(
                    (full[(i, j)] - solve_col[i]).abs() < 1e-10,
                    "solve ({i},{j})"
                );
            }
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "rhs row-count mismatch")]
    fn matrix_solve_rejects_wrong_row_count() {
        let a = Matrix::identity(3);
        let c = CholeskyFactor::new(&a).unwrap();
        let _ = c.forward_sub_matrix(&Matrix::zeros(2, 3));
    }

    /// Splits an SPD matrix at `n`, factors the prefix, extends with the
    /// remainder, and returns `(extended, from_scratch)` factors.
    fn extend_vs_scratch(a: &Matrix, n: usize) -> (CholeskyFactor, CholeskyFactor) {
        let m = a.rows();
        let prefix = Matrix::from_fn(n, n, |i, j| a[(i, j)]);
        let mut c = CholeskyFactor::new(&prefix).unwrap();
        let cross = Matrix::from_fn(m - n, n, |p, j| a[(n + p, j)]);
        let corner = Matrix::from_fn(m - n, m - n, |p, q| a[(n + p, n + q)]);
        c.extend(&cross, &corner).unwrap();
        (c, CholeskyFactor::new(a).unwrap())
    }

    #[test]
    fn extend_matches_from_scratch_bitwise() {
        let a = spd_from_seedish(&[0.7, -0.4, 1.9, 0.3, -1.1, 0.6, 0.2], 6);
        let (ext, scratch) = extend_vs_scratch(&a, 4);
        // Strongly SPD input → both paths run at jitter 0 with the identical
        // scalar recurrence, so the factors agree to the bit.
        assert_eq!(ext.jitter(), scratch.jitter());
        assert_eq!(ext.l().as_slice(), scratch.l().as_slice());
    }

    #[test]
    fn extend_from_empty_factor() {
        let a = spd_from_seedish(&[1.4, -0.2, 0.8, 0.5], 3);
        let mut c = CholeskyFactor::new(&Matrix::zeros(0, 0)).unwrap();
        c.extend(&Matrix::zeros(3, 0), &a).unwrap();
        let scratch = CholeskyFactor::new(&a).unwrap();
        assert_eq!(c.l().as_slice(), scratch.l().as_slice());
    }

    #[test]
    fn extend_rejects_bad_shapes_and_keeps_factor() {
        let a = spd_from_seedish(&[0.9, 0.1, -0.5, 1.2], 3);
        let mut c = CholeskyFactor::new(&a).unwrap();
        let before = c.l().clone();
        assert!(matches!(
            c.extend(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            c.extend(&Matrix::zeros(2, 4), &Matrix::zeros(2, 2)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert_eq!(c.l().as_slice(), before.as_slice());
    }

    #[test]
    fn extend_rejects_non_pd_corner_then_full_refactor_recovers() {
        // Corner identical to an existing row → the Schur complement is
        // exactly singular; extend must refuse and leave the factor intact,
        // and the caller's fallback (full refactorisation with jitter
        // escalation) must still succeed.
        let a = spd_from_seedish(&[0.8, -0.3, 1.1, 0.4], 3);
        let mut c = CholeskyFactor::new(&a).unwrap();
        let before = c.l().clone();
        let dup_row = Matrix::from_fn(1, 3, |_, j| a[(0, j)]);
        let dup_corner = Matrix::from_fn(1, 1, |_, _| a[(0, 0)]);
        assert!(matches!(
            c.extend(&dup_row, &dup_corner),
            Err(LinalgError::NotPositiveDefinite)
        ));
        assert_eq!(c.l().as_slice(), before.as_slice());
        // Fallback path: refactorise the full matrix from scratch.
        let full = Matrix::from_fn(4, 4, |i, j| {
            let ii = if i == 3 { 0 } else { i };
            let jj = if j == 3 { 0 } else { j };
            a[(ii, jj)]
        });
        let refactored = CholeskyFactor::new(&full).unwrap();
        assert!(refactored.jitter() > 0.0);
        assert!(refactored.solve(&[1.0; 4]).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn downdate_matches_refactorisation() {
        let a = spd_from_seedish(&[1.3, -0.7, 0.2, 0.9, -0.1], 4);
        let mut c = CholeskyFactor::new(&a).unwrap();
        let v = [0.4, -0.3, 0.2, 0.1];
        c.downdate(&v).unwrap();
        let mut down = a.clone();
        for i in 0..4 {
            for j in 0..4 {
                down[(i, j)] -= v[i] * v[j];
            }
        }
        let scratch = CholeskyFactor::new(&down).unwrap();
        for i in 0..4 {
            for j in 0..=i {
                assert!(
                    (c.l()[(i, j)] - scratch.l()[(i, j)]).abs() < 1e-10,
                    "({i},{j}): {} vs {}",
                    c.l()[(i, j)],
                    scratch.l()[(i, j)]
                );
            }
        }
    }

    #[test]
    fn downdate_rejects_pd_loss_and_keeps_factor() {
        let a = Matrix::identity(3);
        let mut c = CholeskyFactor::new(&a).unwrap();
        let before = c.l().clone();
        // ‖v‖ > 1 destroys positive definiteness of I − vvᵀ.
        assert!(matches!(
            c.downdate(&[2.0, 0.0, 0.0]),
            Err(LinalgError::NotPositiveDefinite)
        ));
        assert!(matches!(
            c.downdate(&[1.0, 1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert_eq!(c.l().as_slice(), before.as_slice());
        let x = c.solve(&[1.0, 2.0, 3.0]);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn shrink_truncates_exactly() {
        let a = spd_from_seedish(&[0.6, 1.4, -0.8, 0.3, 0.9], 5);
        let mut c = CholeskyFactor::new(&a).unwrap();
        c.shrink(3).unwrap();
        let prefix = Matrix::from_fn(3, 3, |i, j| a[(i, j)]);
        let scratch = CholeskyFactor::new(&prefix).unwrap();
        assert_eq!(c.l().as_slice(), scratch.l().as_slice());
        assert!(c.shrink(4).is_err());
        c.shrink(3).unwrap(); // no-op at the current dimension
        assert_eq!(c.dim(), 3);
    }

    proptest! {
        #[test]
        fn prop_solve_roundtrip(seed in proptest::collection::vec(-2.0..2.0f64, 9), n in 2usize..6) {
            let a = spd_from_seedish(&seed, n);
            let c = CholeskyFactor::new(&a).unwrap();
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7) - 1.0).collect();
            let b = a.matvec(&x_true).unwrap();
            let x = c.solve(&b);
            for (xi, ti) in x.iter().zip(&x_true) {
                prop_assert!((xi - ti).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_l_lower_triangular(seed in proptest::collection::vec(-2.0..2.0f64, 9), n in 2usize..6) {
            let a = spd_from_seedish(&seed, n);
            let c = CholeskyFactor::new(&a).unwrap();
            for i in 0..n {
                for j in (i+1)..n {
                    prop_assert_eq!(c.l()[(i, j)], 0.0);
                }
            }
        }

        /// Random SPD growth sequences: factor a prefix, extend in one or
        /// two batches, and the result must match the from-scratch
        /// factorisation of the full matrix to 1e-10 (it is in fact
        /// bitwise-identical; the tolerance keeps the property honest if
        /// the recurrence is ever reordered).
        #[test]
        fn prop_extend_growth_matches_scratch(
            seed in proptest::collection::vec(-2.0..2.0f64, 12),
            n0 in 1usize..4,
            k1 in 1usize..4,
            k2 in 0usize..3,
        ) {
            let m = n0 + k1 + k2;
            let a = spd_from_seedish(&seed, m);
            let prefix = Matrix::from_fn(n0, n0, |i, j| a[(i, j)]);
            let mut c = CholeskyFactor::new(&prefix).unwrap();
            let mut grown = n0;
            for k in [k1, k2] {
                if k == 0 { continue; }
                let cross = Matrix::from_fn(k, grown, |p, j| a[(grown + p, j)]);
                let corner = Matrix::from_fn(k, k, |p, q| a[(grown + p, grown + q)]);
                c.extend(&cross, &corner).unwrap();
                grown += k;
            }
            let scratch = CholeskyFactor::new(&a).unwrap();
            prop_assert_eq!(c.jitter(), scratch.jitter());
            for i in 0..m {
                for j in 0..=i {
                    prop_assert!(
                        (c.l()[(i, j)] - scratch.l()[(i, j)]).abs() <= 1e-10,
                        "entry ({},{}) diverged", i, j
                    );
                }
            }
        }

        /// Downdating by a shrunk random vector matches refactorising the
        /// downdated matrix; scaling the vector up until positive
        /// definiteness breaks exercises the rejection + fallback path.
        #[test]
        fn prop_downdate_matches_or_rejects_cleanly(
            seed in proptest::collection::vec(-2.0..2.0f64, 10),
            vraw in proptest::collection::vec(-1.0..1.0f64, 4),
            n in 2usize..5,
        ) {
            let a = spd_from_seedish(&seed, n);
            let v: Vec<f64> = vraw.iter().take(n).copied().collect();
            let v: Vec<f64> = if v.len() < n {
                (0..n).map(|i| *vraw.get(i % vraw.len()).unwrap_or(&0.1) * 0.3).collect()
            } else {
                v.iter().map(|x| x * 0.3).collect()
            };
            let mut c = CholeskyFactor::new(&a).unwrap();
            let before = c.l().clone();
            let mut down = a.clone();
            for i in 0..n {
                for j in 0..n {
                    down[(i, j)] -= v[i] * v[j];
                }
            }
            match c.downdate(&v) {
                Ok(()) => {
                    let scratch = CholeskyFactor::new(&down).unwrap();
                    for i in 0..n {
                        for j in 0..=i {
                            prop_assert!(
                                (c.l()[(i, j)] - scratch.l()[(i, j)]).abs() <= 1e-8,
                                "entry ({},{}) diverged", i, j
                            );
                        }
                    }
                }
                Err(_) => {
                    // Rejection leaves the factor untouched and the caller's
                    // from-scratch fallback still gets a usable factor (the
                    // jitter ladder absorbs borderline cases).
                    prop_assert_eq!(c.l().as_slice(), before.as_slice());
                    if let Ok(refactored) = CholeskyFactor::new(&down) {
                        prop_assert!(refactored.solve(&vec![1.0; n]).iter().all(|x| x.is_finite()));
                    }
                }
            }
        }
    }
}
