use crate::LinalgError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Row-major dense `f64` matrix.
///
/// This is a deliberately small matrix type: the KATO workloads involve Gram
/// matrices of at most a few hundred rows and MNA systems of a few dozen
/// nodes. The hot products ([`Matrix::matmul`], the triangular solves in
/// [`crate::CholeskyFactor`]) run on cache-blocked, slice-based row kernels
/// (see the crate's internal `kernels` module and the optional `simd`
/// feature); everything else keeps the straightforward index form.
///
/// # Example
///
/// ```
/// use kato_linalg::Matrix;
///
/// # fn main() -> Result<(), kato_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c[(1, 0)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows`×`cols` matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::BadShape`] if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        if rows.iter().any(|row| row.len() != c) {
            return Err(LinalgError::BadShape {
                context: "Matrix::from_rows (ragged rows)",
            });
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::BadShape`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::BadShape {
                context: "Matrix::from_vec (length != rows*cols)",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Splits the storage at the start of row `r`: `(rows 0..r, rows r..)`,
    /// both as flat row-major slices. This is what lets the triangular
    /// solves update row `r` with slice kernels while reading the already-
    /// finished rows above (or below) it.
    pub(crate) fn split_rows_at_mut(&mut self, r: usize) -> (&mut [f64], &mut [f64]) {
        debug_assert!(r <= self.rows, "split_rows_at_mut: row {r} out of bounds");
        self.data.split_at_mut(r * self.cols)
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[must_use]
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major view of the data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Cache block (in `k`) for [`Matrix::matmul`]: 64 rows of the right
    /// operand ≈ 64·cols·8 bytes, sized so the active `rhs` panel stays in
    /// L1/L2 while every output row streams through it.
    const MATMUL_BLOCK: usize = 64;

    /// Matrix product `self * rhs`.
    ///
    /// Runs as a cache-blocked ikj loop: the inner kernel is a slice-level
    /// `axpy` of a `rhs` row onto an output row, with the `k` dimension
    /// blocked so the touched `rhs` panel stays cache-resident. For every
    /// output element the contributions still accumulate in ascending-`k`
    /// order, so results are bitwise independent of the block size.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "matmul",
                expected: self.cols,
                actual: rhs.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for kb in (0..self.cols).step_by(Self::MATMUL_BLOCK) {
            let k_end = (kb + Self::MATMUL_BLOCK).min(self.cols);
            for i in 0..self.rows {
                let a_row = self.row(i);
                let out_row = out.row_mut(i);
                for (k, &a) in a_row.iter().enumerate().take(k_end).skip(kb) {
                    if a == 0.0 {
                        continue;
                    }
                    crate::kernels::axpy(a, rhs.row(k), out_row);
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "matvec",
                expected: self.cols,
                actual: v.len(),
            });
        }
        Ok((0..self.rows).map(|i| crate::dot(self.row(i), v)).collect())
    }

    /// Scales every entry by `s` in place and returns `self` for chaining.
    #[must_use]
    pub fn scaled(mut self, s: f64) -> Matrix {
        for x in &mut self.data {
            *x *= s;
        }
        self
    }

    /// Maximum absolute entry (`0.0` for an empty matrix).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Symmetrises a square matrix in place: `A ← (A + Aᵀ)/2`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Adds `v` to the diagonal in place.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, v: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += v;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix addition shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix subtraction shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.clone().scaled(s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matvec_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetrize_and_diagonal() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]).unwrap();
        a.symmetrize();
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 1.5);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert_eq!((&a + &b)[(0, 1)], 6.0);
        assert_eq!((&b - &a)[(0, 0)], 2.0);
        assert_eq!((&a * 2.0)[(0, 1)], 4.0);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.max_abs(), 4.0);
    }
}
