use crate::LinalgError;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Minimal double-precision complex number for AC small-signal analysis.
///
/// Only the operations the MNA simulator needs are provided (arithmetic,
/// magnitude, phase, conjugate, reciprocal).
///
/// # Example
///
/// ```
/// use kato_linalg::Complex64;
///
/// let j = Complex64::new(0.0, 1.0);
/// assert!((j * j + Complex64::ONE).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates `re + im·j`.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real value.
    #[must_use]
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    #[must_use]
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Reciprocal `1/z`.
    ///
    /// Division by zero produces non-finite components, mirroring `f64`.
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.abs_sq();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// `true` if both components are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, o: Complex64) {
        *self = *self + o;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re - o.re, self.im - o.im)
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, o: Complex64) {
        *self = *self - o;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, s: f64) -> Complex64 {
        Complex64::new(self.re * s, self.im * s)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // Division by multiplying with the reciprocal is the intended formula.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, o: Complex64) -> Complex64 {
        self * o.recip()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

/// Dense complex LU solver with partial pivoting for AC analysis.
///
/// The AC MNA system `(G + jωC) v = b` is rebuilt per frequency point, so the
/// solver owns its data and is consumed per solve batch.
///
/// # Example
///
/// ```
/// use kato_linalg::{Complex64, ComplexLu};
///
/// # fn main() -> Result<(), kato_linalg::LinalgError> {
/// let a = vec![
///     vec![Complex64::new(1.0, 1.0), Complex64::ZERO],
///     vec![Complex64::ZERO, Complex64::new(2.0, 0.0)],
/// ];
/// let lu = ComplexLu::new(a)?;
/// let x = lu.solve(&[Complex64::new(2.0, 2.0), Complex64::new(4.0, 0.0)]);
/// assert!((x[0] - Complex64::new(2.0, 0.0)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ComplexLu {
    lu: Vec<Vec<Complex64>>,
    perm: Vec<usize>,
}

impl ComplexLu {
    /// Relative pivot threshold below which the system is declared singular.
    const SINGULAR_TOL: f64 = 1e-13;

    /// Factorises the square complex matrix given as rows.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for ragged/rectangular input.
    /// * [`LinalgError::Singular`] if no acceptable pivot exists.
    pub fn new(mut a: Vec<Vec<Complex64>>) -> Result<Self, LinalgError> {
        let n = a.len();
        if a.iter().any(|row| row.len() != n) {
            return Err(LinalgError::NotSquare {
                rows: n,
                cols: a.first().map_or(0, Vec::len),
            });
        }
        let scale = a
            .iter()
            .flat_map(|r| r.iter())
            .fold(0.0_f64, |m, z| m.max(z.abs()))
            .max(1.0);
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut p = k;
            let mut best = a[k][k].abs();
            for i in (k + 1)..n {
                let v = a[i][k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < Self::SINGULAR_TOL * scale {
                return Err(LinalgError::Singular);
            }
            if p != k {
                a.swap(k, p);
                perm.swap(k, p);
            }
            let pivot = a[k][k];
            for i in (k + 1)..n {
                let factor = a[i][k] / pivot;
                a[i][k] = factor;
                for j in (k + 1)..n {
                    let upd = factor * a[k][j];
                    a[i][j] -= upd;
                }
            }
        }
        Ok(ComplexLu { lu: a, perm })
    }

    /// Solves `A x = b`.
    ///
    /// The right-hand-side length must equal the matrix dimension
    /// (debug-asserted, matching the [`crate::CholeskyFactor`] solve
    /// contract).
    #[must_use]
    pub fn solve(&self, b: &[Complex64]) -> Vec<Complex64> {
        let n = self.lu.len();
        debug_assert_eq!(b.len(), n, "ComplexLu::solve: rhs length mismatch");
        let mut y: Vec<Complex64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut sum = y[i];
            for k in 0..i {
                sum -= self.lu[i][k] * y[k];
            }
            y[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.lu[i][k] * y[k];
            }
            y[i] = sum / self.lu[i][i];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj().im, 4.0);
        assert!((z * z.recip() - Complex64::ONE).abs() < 1e-15);
        assert_eq!((-z).re, -3.0);
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn division_matches_multiplication() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 0.25);
        let q = a / b;
        assert!((q * b - a).abs() < 1e-14);
    }

    #[test]
    fn arg_quadrants() {
        assert!((Complex64::new(1.0, 1.0).arg() - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
        assert!((Complex64::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
    }

    #[test]
    fn complex_lu_solves_with_pivot() {
        let a = vec![
            vec![Complex64::ZERO, Complex64::ONE],
            vec![Complex64::ONE, Complex64::I],
        ];
        let lu = ComplexLu::new(a).unwrap();
        let x = lu.solve(&[Complex64::new(2.0, 0.0), Complex64::new(1.0, 2.0)]);
        // x1 = 2 from first row; second row: x0 + j*2 = 1 + 2j => x0 = 1.
        assert!((x[1] - Complex64::new(2.0, 0.0)).abs() < 1e-12);
        assert!((x[0] - Complex64::new(1.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn complex_lu_rejects_singular() {
        let a = vec![
            vec![Complex64::ONE, Complex64::ONE],
            vec![Complex64::ONE, Complex64::ONE],
        ];
        assert!(matches!(ComplexLu::new(a), Err(LinalgError::Singular)));
    }

    proptest! {
        #[test]
        fn prop_complex_lu_roundtrip(vals in proptest::collection::vec(-2.0..2.0f64, 32), n in 2usize..5) {
            let mut a: Vec<Vec<Complex64>> = (0..n).map(|i| (0..n).map(|j| {
                Complex64::new(vals[(2*(i*n+j)) % vals.len()], vals[(2*(i*n+j)+1) % vals.len()])
            }).collect()).collect();
            // Diagonal dominance for nonsingularity.
            for (i, row) in a.iter_mut().enumerate() {
                let rowsum: f64 = row.iter().map(|z| z.abs()).sum();
                row[i] = Complex64::new(rowsum + 1.0, 0.5);
            }
            let x_true: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, -(i as f64) * 0.5)).collect();
            let b: Vec<Complex64> = (0..n).map(|i| {
                let mut s = Complex64::ZERO;
                for j in 0..n { s += a[i][j] * x_true[j]; }
                s
            }).collect();
            let lu = ComplexLu::new(a).unwrap();
            let x = lu.solve(&b);
            for (xi, ti) in x.iter().zip(&x_true) {
                prop_assert!((*xi - *ti).abs() < 1e-8);
            }
        }
    }
}
