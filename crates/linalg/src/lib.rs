//! Dense linear algebra substrate for the KATO transistor-sizing stack.
//!
//! The KATO reproduction deliberately avoids third-party numerics crates, so
//! this crate provides everything the rest of the workspace needs:
//!
//! * [`Matrix`] — a small row-major dense `f64` matrix with the usual
//!   arithmetic, products and views.
//! * [`Cholesky`] — jittered Cholesky factorisation used by the Gaussian
//!   process crates for Gram-matrix solves and log-determinants.
//! * [`Lu`] — partially-pivoted LU for the real Newton solves inside the MNA
//!   circuit simulator.
//! * [`Complex64`] / [`ComplexLu`] — minimal complex arithmetic and a complex
//!   LU solve for small-signal AC analysis.
//! * [`stats`] — summary statistics (mean/std/quantiles) used for output
//!   standardisation and experiment reporting.
//!
//! # Example
//!
//! ```
//! use kato_linalg::{Matrix, Cholesky};
//!
//! # fn main() -> Result<(), kato_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let chol = Cholesky::new(&a)?;
//! let x = chol.solve(&[1.0, 2.0]);
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod cholesky;
mod complex;
mod error;
mod lu;
mod matrix;
pub mod stats;

pub use cholesky::Cholesky;
pub use complex::{Complex64, ComplexLu};
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean norm of a slice.
#[must_use]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_basics() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn sq_dist_is_zero_on_identical_inputs() {
        let v = [0.3, -1.5, 2.0];
        assert_eq!(sq_dist(&v, &v), 0.0);
    }

    #[test]
    fn norm_matches_pythagoras() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
