#![warn(missing_docs)]

//! Dense linear algebra substrate for the KATO transistor-sizing stack.
//!
//! The KATO reproduction deliberately avoids third-party numerics crates, so
//! this crate provides everything the rest of the workspace needs:
//!
//! * [`Matrix`] — a small row-major dense `f64` matrix with the usual
//!   arithmetic, cache-blocked products and views.
//! * [`CholeskyFactor`] — persistent, updatable jittered Cholesky
//!   factorisation used by the Gaussian process crates: one-shot solves and
//!   log-determinants plus rank-k [`CholeskyFactor::extend`] /
//!   [`CholeskyFactor::downdate`] updates for the incremental-refit hot
//!   path.
//! * [`Lu`] — partially-pivoted LU for the real Newton solves inside the MNA
//!   circuit simulator.
//! * [`Complex64`] / [`ComplexLu`] — minimal complex arithmetic and a complex
//!   LU solve for small-signal AC analysis.
//! * [`stats`] — summary statistics (mean/std/quantiles) used for output
//!   standardisation and experiment reporting.
//!
//! # Example
//!
//! ```
//! use kato_linalg::{Matrix, CholeskyFactor};
//!
//! # fn main() -> Result<(), kato_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let chol = CholeskyFactor::new(&a)?;
//! let x = chol.solve(&[1.0, 2.0]);
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod cholesky;
mod complex;
mod error;
mod kernels;
mod lu;
mod matrix;
pub mod stats;

pub use cholesky::CholeskyFactor;
pub use complex::{Complex64, ComplexLu};
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;

/// Ascending total order over `f64` that ranks every NaN *below* `−∞`.
///
/// NaN is treated as the worst possible value: `max_by(cmp_nan_worst)`
/// never selects a NaN over a number, and a descending sort via
/// `|a, b| cmp_nan_worst(b, a)` pushes NaN to the end. This is the
/// NaN-tolerant replacement for the `partial_cmp(..).expect("NaN")`
/// pattern on "larger is better" scores: a misbehaving simulator degrades
/// the ranking instead of aborting the run.
#[must_use]
pub fn cmp_nan_worst(a: &f64, b: &f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => a.total_cmp(b),
    }
}

/// Ascending total order over `f64` that ranks every NaN *above* `+∞`, so
/// an ascending sort places NaN last regardless of its sign bit (plain
/// `total_cmp` would put negative-sign NaN first).
#[must_use]
pub fn cmp_nan_last(a: &f64, b: &f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => a.total_cmp(b),
    }
}

/// Dot product of two equal-length slices.
///
/// **Deprecation note:** this free helper predates the blocked kernels in
/// the `kernels` module and the [`CholeskyFactor`]/[`Matrix`] methods that
/// wrap them. Prefer those methods for linear-algebra work; this helper is
/// kept for feature-space callers (kernel distance computations) and will
/// not gain the `simd` fast paths.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// **Deprecation note:** see [`dot`] — kept for feature-space callers; not
/// part of the blocked-kernel fast path.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean norm of a slice.
///
/// **Deprecation note:** see [`dot`] — kept for feature-space callers; not
/// part of the blocked-kernel fast path.
#[must_use]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_basics() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn sq_dist_is_zero_on_identical_inputs() {
        let v = [0.3, -1.5, 2.0];
        assert_eq!(sq_dist(&v, &v), 0.0);
    }

    #[test]
    fn norm_matches_pythagoras() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn cmp_nan_worst_ranks_nan_below_everything() {
        let mut v = [2.0, f64::NAN, -1.0, f64::NEG_INFINITY, f64::INFINITY];
        v.sort_by(cmp_nan_worst);
        assert!(v[0].is_nan());
        assert_eq!(&v[1..], &[f64::NEG_INFINITY, -1.0, 2.0, f64::INFINITY]);
        // Descending via the reversed comparator: NaN ends up last.
        v.sort_by(|a, b| cmp_nan_worst(b, a));
        assert!(v[4].is_nan());
        assert_eq!(v[0], f64::INFINITY);
        // max_by never picks NaN over a number.
        let best = [f64::NAN, 0.5, f64::NAN]
            .iter()
            .copied()
            .max_by(cmp_nan_worst)
            .unwrap();
        assert_eq!(best, 0.5);
    }

    #[test]
    fn cmp_nan_last_sorts_nan_to_the_end() {
        let mut v = [f64::NAN, 1.0, -f64::NAN, 0.0, f64::INFINITY];
        v.sort_by(cmp_nan_last);
        assert_eq!(&v[..3], &[0.0, 1.0, f64::INFINITY]);
        assert!(v[3].is_nan() && v[4].is_nan());
    }
}
