use std::error::Error;
use std::fmt;

use kato_linalg::LinalgError;

/// Errors produced while fitting or evaluating Gaussian-process models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpError {
    /// Training inputs were empty or inconsistently sized.
    BadTrainingData {
        /// Human-readable description of the problem.
        what: &'static str,
    },
    /// The Gram matrix stayed non-positive-definite even after noise
    /// escalation.
    GramNotPd,
    /// Underlying linear-algebra failure.
    Linalg(LinalgError),
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::BadTrainingData { what } => write!(f, "bad training data: {what}"),
            GpError::GramNotPd => {
                write!(
                    f,
                    "gram matrix not positive definite despite noise escalation"
                )
            }
            GpError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for GpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for GpError {
    fn from(e: LinalgError) -> Self {
        GpError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = GpError::BadTrainingData { what: "empty" };
        assert!(e.to_string().contains("empty"));
        let e = GpError::from(LinalgError::Singular);
        assert!(std::error::Error::source(&e).is_some());
    }
}
