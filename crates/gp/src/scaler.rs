use kato_linalg::stats;

/// Per-column standardisation (zero mean, unit variance) for GP inputs and
/// outputs.
///
/// Columns with (near-)zero variance are given unit scale so transforms stay
/// finite.
///
/// # Example
///
/// ```
/// use kato_gp::Scaler;
///
/// let data = vec![vec![1.0, 10.0], vec![3.0, 30.0]];
/// let scaler = Scaler::fit(&data);
/// let z = scaler.transform(&data[0]);
/// assert!((z[0] + 1.0 / 2.0_f64.sqrt()).abs() < 1e-12); // (1−2)/√2
/// let back = scaler.inverse(&z);
/// assert!((back[1] - 10.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    /// Fits means and standard deviations per column.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    #[must_use]
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "Scaler::fit on empty data");
        let dim = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == dim),
            "Scaler::fit on ragged data"
        );
        let mut means = Vec::with_capacity(dim);
        let mut stds = Vec::with_capacity(dim);
        for j in 0..dim {
            let col: Vec<f64> = rows.iter().map(|r| r[j]).collect();
            means.push(stats::mean(&col));
            let s = stats::std_dev(&col);
            stds.push(if s > 1e-12 { s } else { 1.0 });
        }
        Scaler { means, stds }
    }

    /// Fits a scaler for a single output column.
    #[must_use]
    pub fn fit_scalar(ys: &[f64]) -> Self {
        let rows: Vec<Vec<f64>> = ys.iter().map(|&y| vec![y]).collect();
        Scaler::fit(&rows)
    }

    /// Input dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Standardises a row.
    #[must_use]
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Inverse transform.
    #[must_use]
    pub fn inverse(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&z, (&m, &s))| z * s + m)
            .collect()
    }

    /// Standardises a scalar with column `j`'s statistics.
    #[must_use]
    pub fn transform_scalar(&self, v: f64, j: usize) -> f64 {
        (v - self.means[j]) / self.stds[j]
    }

    /// Inverse of [`Scaler::transform_scalar`].
    #[must_use]
    pub fn inverse_scalar(&self, z: f64, j: usize) -> f64 {
        z * self.stds[j] + self.means[j]
    }

    /// The scale (standard deviation) of column `j` — needed to convert
    /// predictive variances back to raw units.
    #[must_use]
    pub fn scale(&self, j: usize) -> f64 {
        self.stds[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_column_gets_unit_scale() {
        let data = vec![vec![5.0], vec![5.0], vec![5.0]];
        let s = Scaler::fit(&data);
        assert_eq!(s.scale(0), 1.0);
        assert_eq!(s.transform(&[5.0])[0], 0.0);
    }

    #[test]
    fn scalar_helpers_roundtrip() {
        let s = Scaler::fit_scalar(&[1.0, 2.0, 3.0, 4.0]);
        let z = s.transform_scalar(3.0, 0);
        assert!((s.inverse_scalar(z, 0) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        let _ = Scaler::fit(&[]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(vals in proptest::collection::vec(-100.0..100.0f64, 6)) {
            let rows: Vec<Vec<f64>> = vals.chunks(2).map(|c| c.to_vec()).collect();
            let s = Scaler::fit(&rows);
            for r in &rows {
                let back = s.inverse(&s.transform(r));
                for (a, b) in back.iter().zip(r) {
                    prop_assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }
}
