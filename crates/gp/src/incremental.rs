//! Unified incremental-fit surface over the surrogate models.
//!
//! [`Gp`] and [`KatGp`] historically exposed drifting `refit` signatures
//! and no shared way to say "the archive grew by a batch — update
//! cheaply". [`IncrementalFit`] is the single documented contract both now
//! implement, and [`update_incremental`] is the one entry point the BO
//! loop calls per iteration: it appends through the held factorisation
//! when the new dataset is provably "stored data plus new rows", and falls
//! back to a full refit otherwise.

use crate::{Gp, GpConfig, GpError, KatConfig, KatGp};

/// Surrogates whose training set can grow in place.
///
/// # Contract
///
/// Implementors hold their training data and a fitted state. For a grown
/// dataset `(x, y)` with `x.len() >= training_len()`:
///
/// * [`matches_prefix`](IncrementalFit::matches_prefix) must return `true`
///   only if the first `training_len()` rows of `(x, y)` are *exactly*
///   (bitwise) the stored training set under the model's held
///   standardisation — the precondition for `append`.
/// * [`append`](IncrementalFit::append) ingests only the new rows,
///   reusing the held factorisation/alignment and *warm-starting*
///   hyperparameter optimisation from the previous optimum. The config's
///   `warm_tol` gates how much of the cold schedule survives: a [`Gp`]
///   whose held optimum still explains the grown data skips
///   re-optimisation entirely (conditioning alone absorbs the rows),
///   while a [`KatGp`] always trains at least one warm-started pass —
///   its posterior sees target data only through the alignment — and
///   escalates to the full restart schedule when the held optimum went
///   stale. Scalers are frozen. On `Err` the model may hold the grown
///   data but must remain usable; callers escalate to `refit_full`.
/// * [`refit_full`](IncrementalFit::refit_full) is the escape hatch:
///   re-standardise, re-optimise and re-condition on the complete dataset.
///
/// Both paths leave the model conditioned on every supplied point;
/// `append` merely does so in `O(k·n²)` instead of `O(n³)` work.
pub trait IncrementalFit {
    /// Training configuration type consumed by both update paths.
    type Config;

    /// Number of training points the model currently holds.
    fn training_len(&self) -> usize;

    /// Whether `(x, y)` is bitwise-identical to the stored training set
    /// (see the trait-level contract).
    fn matches_prefix(&self, x: &[Vec<f64>], y: &[f64]) -> bool;

    /// Ingests new rows through the held factorisation, warm-starting
    /// hyperparameter optimisation from the previous optimum.
    ///
    /// # Errors
    ///
    /// Implementation-specific; callers should fall back to
    /// [`refit_full`](IncrementalFit::refit_full).
    fn append(
        &mut self,
        x_new: &[Vec<f64>],
        y_new: &[f64],
        config: &Self::Config,
    ) -> Result<(), GpError>;

    /// Full refit on the complete dataset (re-standardising scalers).
    ///
    /// # Errors
    ///
    /// Implementation-specific factorisation/training failures.
    fn refit_full(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        config: &Self::Config,
    ) -> Result<(), GpError>;
}

impl IncrementalFit for Gp {
    type Config = GpConfig;

    fn training_len(&self) -> usize {
        self.len()
    }

    fn matches_prefix(&self, x: &[Vec<f64>], y: &[f64]) -> bool {
        self.matches_prefix_raw(x, y)
    }

    fn append(
        &mut self,
        x_new: &[Vec<f64>],
        y_new: &[f64],
        config: &GpConfig,
    ) -> Result<(), GpError> {
        Gp::append(self, x_new, y_new, config)
    }

    fn refit_full(&mut self, x: &[Vec<f64>], y: &[f64], config: &GpConfig) -> Result<(), GpError> {
        self.refit(x, y, config)
    }
}

impl IncrementalFit for KatGp {
    type Config = KatConfig;

    fn training_len(&self) -> usize {
        self.target_len()
    }

    fn matches_prefix(&self, x: &[Vec<f64>], y: &[f64]) -> bool {
        self.matches_prefix_raw(x, y)
    }

    fn append(
        &mut self,
        x_new: &[Vec<f64>],
        y_new: &[f64],
        config: &KatConfig,
    ) -> Result<(), GpError> {
        KatGp::append(self, x_new, y_new, config)
    }

    fn refit_full(&mut self, x: &[Vec<f64>], y: &[f64], config: &KatConfig) -> Result<(), GpError> {
        self.refit(x, y, config)
    }
}

/// Updates `model` to the grown dataset `(x, y)` — the per-BO-iteration
/// entry point.
///
/// Takes the incremental path ([`IncrementalFit::append`] on just the new
/// rows) when the dataset is provably "stored data plus new rows", i.e.
/// it is at least as long as the stored set and the stored prefix matches
/// bitwise. Anything else — shrunk/reordered data, retro-imputed rows
/// (NaN never matches), or an `append` that reports failure — falls back
/// to [`IncrementalFit::refit_full`] on the complete dataset, so the
/// result is always a model conditioned on exactly `(x, y)`.
///
/// # Errors
///
/// Propagates the fallback's error when even the full refit fails.
pub fn update_incremental<M: IncrementalFit>(
    model: &mut M,
    x: &[Vec<f64>],
    y: &[f64],
    config: &M::Config,
) -> Result<(), GpError> {
    let n = model.training_len();
    if x.len() >= n && y.len() >= n && model.matches_prefix(&x[..n], &y[..n]) {
        if x.len() == n && y.len() == n {
            // Identical dataset: the model is already conditioned on it.
            return Ok(());
        }
        if model.append(&x[n..], &y[n..], config).is_ok() {
            return Ok(());
        }
    }
    model.refit_full(x, y, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelSpec;

    fn sine_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x[0]).sin() + 0.3 * x[0]).collect();
        (xs, ys)
    }

    #[test]
    fn update_appends_on_grown_prefix_and_refits_on_mismatch() {
        let (xs, ys) = sine_data(20);
        let cfg = GpConfig::fast();
        let mut gp = Gp::fit(KernelSpec::ard_rbf(1), &xs[..14], &ys[..14], &cfg).unwrap();
        assert!(gp.matches_prefix(&xs[..14], &ys[..14]));
        assert!(!gp.matches_prefix(&xs[..13], &ys[..13]));

        update_incremental(&mut gp, &xs, &ys, &cfg).unwrap();
        assert_eq!(gp.training_len(), 20);
        let (m, _) = gp.predict(&xs[17]);
        assert!((m - ys[17]).abs() < 0.2, "{m} vs {}", ys[17]);

        // Same dataset again: a no-op, still conditioned on 20 points.
        update_incremental(&mut gp, &xs, &ys, &cfg).unwrap();
        assert_eq!(gp.training_len(), 20);

        // Retro-edited prefix → full refit path (length unchanged but data
        // differs, so the model must re-standardise and retrain).
        let mut ys_edit = ys.clone();
        ys_edit[0] += 1.0;
        update_incremental(&mut gp, &xs, &ys_edit, &cfg).unwrap();
        assert_eq!(gp.training_len(), 20);
        let (m, _) = gp.predict(&xs[0]);
        assert!(
            (m - ys_edit[0]).abs() < 0.4,
            "refit tracked edited row: {m}"
        );
    }

    #[test]
    fn nan_in_prefix_forces_refit_path() {
        let (xs, mut ys) = sine_data(12);
        let cfg = GpConfig::fast();
        ys[3] = f64::NAN;
        // A NaN row never matches bitwise, even against itself.
        let clean: Vec<f64> = ys
            .iter()
            .map(|v| if v.is_finite() { *v } else { 0.0 })
            .collect();
        let gp = Gp::fit(KernelSpec::ard_rbf(1), &xs, &clean, &cfg).unwrap();
        assert!(!gp.matches_prefix(&xs, &ys));
    }

    #[test]
    fn trait_objects_share_one_call_shape() {
        // The whole point of the redesign: one generic update path for both
        // surrogate families.
        fn grow<M: IncrementalFit>(m: &mut M, x: &[Vec<f64>], y: &[f64], cfg: &M::Config) -> usize {
            update_incremental(m, x, y, cfg).unwrap();
            m.training_len()
        }
        let (xs, ys) = sine_data(16);
        let gp_cfg = GpConfig::fast();
        let mut gp = Gp::fit(KernelSpec::ard_rbf(1), &xs[..10], &ys[..10], &gp_cfg).unwrap();
        assert_eq!(grow(&mut gp, &xs, &ys, &gp_cfg), 16);

        let source = Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &gp_cfg).unwrap();
        let kat_cfg = KatConfig::fast();
        let y_t: Vec<f64> = xs.iter().map(|x| 2.0 * (5.0 * x[0]).sin() + 1.0).collect();
        let mut kat = KatGp::fit(&source, &xs[..10], &y_t[..10], &kat_cfg).unwrap();
        assert_eq!(grow(&mut kat, &xs, &y_t, &kat_cfg), 16);
    }
}
