use crate::{GpError, KernelSpec, Scaler};
use kato_autodiff::{clip_gradients, Adam, Tape};
use kato_linalg::{CholeskyFactor, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training configuration for [`Gp::fit`].
#[derive(Debug, Clone)]
pub struct GpConfig {
    /// Adam iterations for the (re)fit.
    pub train_iters: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Maximum number of points used for *hyperparameter* optimisation
    /// (the posterior still conditions on every point). Caps the `O(n²)`
    /// tape cost on large archives.
    pub fit_subsample: usize,
    /// RNG seed for parameter initialisation and subsampling.
    pub seed: u64,
    /// Gradient-norm clip.
    pub grad_clip: f64,
    /// Warm-start tolerance for [`Gp::append`] (per-point log-likelihood
    /// units): if the held hyperparameters still explain the grown dataset
    /// to within `warm_tol` of the per-point likelihood achieved at the
    /// last training run, `append` skips hyperparameter re-optimisation
    /// entirely and only extends the factor. Set to `f64::NEG_INFINITY` to
    /// force retraining on every append.
    pub warm_tol: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            train_iters: 60,
            lr: 0.05,
            fit_subsample: 150,
            seed: 0,
            grad_clip: 50.0,
            warm_tol: 0.25,
        }
    }
}

impl GpConfig {
    /// A cheap profile for unit tests and doc examples.
    #[must_use]
    pub fn fast() -> Self {
        GpConfig {
            train_iters: 30,
            lr: 0.08,
            fit_subsample: 60,
            ..GpConfig::default()
        }
    }
}

/// Exact Gaussian-process regressor with MLE-trained hyperparameters
/// (paper §2.2, Eq. 3–4).
///
/// Inputs and outputs are standardised internally; predictions are returned
/// in raw units. The kernel is either ARD-RBF or a Neural Kernel
/// ([`KernelSpec`]).
#[derive(Debug, Clone)]
pub struct Gp {
    kernel: KernelSpec,
    params: Vec<f64>,
    log_noise: f64,
    x_scaler: Scaler,
    y_scaler: Scaler,
    /// Standardised training inputs.
    xs: Vec<Vec<f64>>,
    /// Standardised training targets.
    ys: Vec<f64>,
    chol: CholeskyFactor,
    alpha: Vec<f64>,
    log_lik: f64,
    /// Per-point training log-likelihood achieved at the last actual
    /// hyperparameter optimisation — the warm-start reference for
    /// [`Gp::append`].
    ll_per_point: f64,
}

impl Gp {
    /// Fits hyperparameters by maximum likelihood and conditions on the full
    /// dataset.
    ///
    /// # Errors
    ///
    /// * [`GpError::BadTrainingData`] for empty/ragged inputs.
    /// * [`GpError::GramNotPd`] if the Gram matrix cannot be factorised even
    ///   after noise escalation.
    pub fn fit(
        kernel: KernelSpec,
        x: &[Vec<f64>],
        y: &[f64],
        config: &GpConfig,
    ) -> Result<Gp, GpError> {
        if x.is_empty() || x.len() != y.len() {
            return Err(GpError::BadTrainingData {
                what: "x empty or x/y length mismatch",
            });
        }
        let dim = kernel.input_dim();
        if x.iter().any(|r| r.len() != dim) {
            return Err(GpError::BadTrainingData {
                what: "row width != kernel input dim",
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let params = kernel.init_params(&mut rng);
        let mut gp = Gp {
            kernel,
            params,
            log_noise: (0.05_f64).ln(),
            x_scaler: Scaler::fit(x),
            y_scaler: Scaler::fit_scalar(y),
            xs: Vec::new(),
            ys: Vec::new(),
            chol: CholeskyFactor::new(&Matrix::identity(1))?,
            alpha: Vec::new(),
            log_lik: f64::NEG_INFINITY,
            ll_per_point: f64::NEG_INFINITY,
        };
        gp.update_data(x, y);
        gp.train(config)?;
        gp.condition()?;
        Ok(gp)
    }

    /// Replaces the dataset (re-standardising) and re-optimises
    /// hyperparameters for `iters` Adam steps, warm-starting from the
    /// current values — the cheap per-BO-iteration update.
    ///
    /// # Errors
    ///
    /// See [`Gp::fit`].
    pub fn refit(&mut self, x: &[Vec<f64>], y: &[f64], config: &GpConfig) -> Result<(), GpError> {
        if x.is_empty() || x.len() != y.len() {
            return Err(GpError::BadTrainingData {
                what: "x empty or x/y length mismatch",
            });
        }
        self.x_scaler = Scaler::fit(x);
        self.y_scaler = Scaler::fit_scalar(y);
        self.update_data(x, y);
        self.train(config)?;
        self.condition()
    }

    /// Appends a batch of new points to the training set *incrementally*:
    /// the held Cholesky factor is extended by a rank-`k` update
    /// (`O(k·n²)`) instead of being rebuilt (`O(n³)`), and hyperparameter
    /// optimisation is skipped entirely when the held optimum still
    /// explains the grown dataset — the warm-started per-point
    /// log-likelihood is within [`GpConfig::warm_tol`] of the value
    /// achieved at the last training run.
    ///
    /// The input/output scalers are **frozen** (new points are standardised
    /// with the statistics of the original fit); that is what keeps the
    /// existing Gram prefix — and therefore the held factor — valid. Use
    /// [`Gp::refit`] to re-standardise when the data distribution has
    /// drifted.
    ///
    /// Falls back internally to a full refactorisation (with noise
    /// escalation) when the rank-`k` extension reports that the grown Gram
    /// matrix is no longer positive definite at the held jitter, and to a
    /// warm-started hyperparameter re-optimisation when the likelihood
    /// check fails — `append` never leaves the model unconditioned.
    ///
    /// # Errors
    ///
    /// * [`GpError::BadTrainingData`] for empty/ragged input.
    /// * [`GpError::GramNotPd`] if even the fallback refactorisation fails.
    pub fn append(
        &mut self,
        x_new: &[Vec<f64>],
        y_new: &[f64],
        config: &GpConfig,
    ) -> Result<(), GpError> {
        if x_new.len() != y_new.len() {
            return Err(GpError::BadTrainingData {
                what: "x/y length mismatch",
            });
        }
        let dim = self.kernel.input_dim();
        if x_new.iter().any(|r| r.len() != dim) {
            return Err(GpError::BadTrainingData {
                what: "row width != kernel input dim",
            });
        }
        let n = self.xs.len();
        let k = x_new.len();
        // Frozen scalers: standardise the batch with the held statistics.
        let xs_new: Vec<Vec<f64>> = x_new.iter().map(|r| self.x_scaler.transform(r)).collect();
        let ys_new: Vec<f64> = y_new
            .iter()
            .map(|&v| self.y_scaler.transform_scalar(v, 0))
            .collect();

        // Rank-k factor extension. Blocks are built with the same kernel
        // evaluation orientation as `gram` (first argument = earlier point)
        // so the extended factor is bitwise what a from-scratch
        // factorisation at the held jitter would produce.
        let noise = self.noise_variance().max(1e-10) + 1e-9;
        let cross = Matrix::from_fn(k, n, |p, j| {
            self.kernel.eval(&self.params, &self.xs[j], &xs_new[p])
        });
        let mut corner = Matrix::from_fn(k, k, |p, q| {
            if p <= q {
                self.kernel.eval(&self.params, &xs_new[p], &xs_new[q])
            } else {
                self.kernel.eval(&self.params, &xs_new[q], &xs_new[p])
            }
        });
        corner.add_diagonal(noise);

        let extended = self.chol.extend(&cross, &corner).is_ok();
        self.xs.extend(xs_new);
        self.ys.extend(ys_new);
        if extended {
            self.alpha = self.chol.solve(&self.ys);
        } else {
            // The grown Gram lost positive definiteness at the held jitter:
            // full refactorisation with noise escalation.
            self.condition()?;
        }

        // Warm-start check: does the held optimum still explain the grown
        // dataset? Exact marginal likelihood — the factor is already there.
        let m = self.ys.len() as f64;
        let warm_ll = -0.5 * kato_linalg::dot(&self.ys, &self.alpha)
            - 0.5 * self.chol.log_det()
            - 0.5 * m * (2.0 * std::f64::consts::PI).ln();
        let warm_pp = warm_ll / m;
        if warm_pp.is_finite()
            && self.ll_per_point.is_finite()
            && warm_pp + config.warm_tol >= self.ll_per_point
        {
            self.log_lik = warm_ll;
            return Ok(());
        }
        // Likelihood degraded beyond tolerance: re-optimise, warm-started
        // from the held parameters, then recondition at the new ones.
        self.train(config)?;
        self.condition()
    }

    fn update_data(&mut self, x: &[Vec<f64>], y: &[f64]) {
        self.xs = x.iter().map(|r| self.x_scaler.transform(r)).collect();
        self.ys = y
            .iter()
            .map(|&v| self.y_scaler.transform_scalar(v, 0))
            .collect();
    }

    /// Number of training points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when the GP holds no data (cannot happen post-`fit`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Marginal log-likelihood of the (standardised) training data at the
    /// fitted hyperparameters.
    #[must_use]
    pub fn log_likelihood(&self) -> f64 {
        self.log_lik
    }

    /// Kernel specification in use.
    #[must_use]
    pub fn kernel(&self) -> &KernelSpec {
        &self.kernel
    }

    /// Fitted kernel parameters (log-domain where applicable).
    #[must_use]
    pub fn kernel_params(&self) -> &[f64] {
        &self.params
    }

    /// Observation noise variance (standardised-output units).
    #[must_use]
    pub fn noise_variance(&self) -> f64 {
        (2.0 * self.log_noise).exp()
    }

    /// `true` when `(x, y)` standardises (under the *held*, frozen scalers)
    /// to exactly the stored training set — the precondition for treating a
    /// longer dataset as "stored data plus new rows" in
    /// [`crate::update_incremental`]. Comparison is bitwise, so any
    /// retro-imputation of earlier rows (including NaN, which never
    /// compares equal) forces the full-refit path.
    pub(crate) fn matches_prefix_raw(&self, x: &[Vec<f64>], y: &[f64]) -> bool {
        if x.len() != self.xs.len() || y.len() != self.ys.len() {
            return false;
        }
        let dim = self.kernel.input_dim();
        x.iter()
            .zip(&self.xs)
            .all(|(xi, sxi)| xi.len() == dim && self.x_scaler.transform(xi) == *sxi)
            && y.iter()
                .zip(&self.ys)
                .all(|(&yi, &syi)| self.y_scaler.transform_scalar(yi, 0) == syi)
    }

    pub(crate) fn xs_std(&self) -> &[Vec<f64>] {
        &self.xs
    }

    pub(crate) fn ys_std(&self) -> &[f64] {
        &self.ys
    }

    /// Builds the noisy Gram matrix at the current hyperparameters over the
    /// given (standardised) points.
    fn gram(&self, pts: &[Vec<f64>]) -> Matrix {
        let n = pts.len();
        let noise = self.noise_variance().max(1e-10);
        let mut k = Matrix::from_fn(n, n, |i, j| {
            if i <= j {
                self.kernel.eval(&self.params, &pts[i], &pts[j])
            } else {
                0.0
            }
        });
        for i in 0..n {
            for j in 0..i {
                k[(i, j)] = k[(j, i)];
            }
        }
        k.add_diagonal(noise + 1e-9);
        k
    }

    /// Adam MLE loop using the B-matrix adjoint trick.
    fn train(&mut self, config: &GpConfig) -> Result<(), GpError> {
        let n_total = self.xs.len();
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
        let idx: Vec<usize> = if n_total > config.fit_subsample {
            let mut all: Vec<usize> = (0..n_total).collect();
            all.shuffle(&mut rng);
            all.truncate(config.fit_subsample);
            all.sort_unstable();
            all
        } else {
            (0..n_total).collect()
        };
        let pts: Vec<Vec<f64>> = idx.iter().map(|&i| self.xs[i].clone()).collect();
        let ys: Vec<f64> = idx.iter().map(|&i| self.ys[i]).collect();
        let n = pts.len();

        let n_params = self.params.len() + 1; // + log_noise
        let mut opt = Adam::new(n_params, config.lr);
        let mut best = (f64::NEG_INFINITY, self.params.clone(), self.log_noise);

        for _ in 0..config.train_iters {
            // 1. Plain-f64 Gram, Cholesky, alpha, inverse.
            let k = self.gram(&pts);
            let Ok(chol) = CholeskyFactor::new(&k) else {
                // Escalate noise and keep going.
                self.log_noise += 0.5;
                continue;
            };
            let alpha = chol.solve(&ys);
            let kinv = chol.inverse();
            let log_lik = -0.5 * kato_linalg::dot(&ys, &alpha)
                - 0.5 * chol.log_det()
                - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
            if log_lik > best.0 {
                best = (log_lik, self.params.clone(), self.log_noise);
            }

            // 2. Adjoint seeds: ∂L/∂K_ij = ½(ααᵀ − K⁻¹)_ij.
            // 3. Tape with one node per upper-triangle Gram entry.
            let tape = Tape::with_capacity(n * n * 40);
            let p_vars: Vec<_> = self.params.iter().map(|&p| tape.var(p)).collect();
            let x_vars: Vec<Vec<_>> = pts
                .iter()
                .map(|r| r.iter().map(|&v| tape.constant(v)).collect())
                .collect();
            let mut seeds = Vec::with_capacity(n * (n + 1) / 2);
            for i in 0..n {
                for j in i..n {
                    let k_ij = self.kernel.eval(&p_vars, &x_vars[i], &x_vars[j]);
                    let b_ij = alpha[i] * alpha[j] - kinv[(i, j)];
                    let seed = if i == j { 0.5 * b_ij } else { b_ij };
                    seeds.push((k_ij, seed));
                }
            }
            let grads = tape.backward_seeded(&seeds);
            let mut g: Vec<f64> = p_vars.iter().map(|v| grads.wrt(*v)).collect();
            // Noise gradient: ∂L/∂σ² = ½tr(B); chain to log-noise.
            let tr_b: f64 = (0..n).map(|i| alpha[i] * alpha[i] - kinv[(i, i)]).sum();
            let noise = self.noise_variance();
            g.push(0.5 * tr_b * 2.0 * noise);

            // 4. Ascend.
            for gi in g.iter_mut() {
                *gi = -*gi;
            }
            let _ = clip_gradients(&mut g, config.grad_clip);
            let mut theta: Vec<f64> = self.params.clone();
            theta.push(self.log_noise);
            opt.step(&mut theta, &g);
            self.log_noise = theta.pop().expect("noise param").clamp(-7.0, 2.0);
            for p in theta.iter_mut() {
                *p = p.clamp(-8.0, 8.0);
            }
            self.params = theta;
        }

        if best.0 > f64::NEG_INFINITY {
            self.log_lik = best.0;
            self.params = best.1;
            self.log_noise = best.2;
            self.ll_per_point = best.0 / n as f64;
        }
        Ok(())
    }

    /// Conditions the posterior on the full dataset at the current
    /// hyperparameters, escalating noise if the Gram matrix resists
    /// factorisation.
    fn condition(&mut self) -> Result<(), GpError> {
        for _ in 0..6 {
            let k = self.gram(&self.xs);
            match CholeskyFactor::new(&k) {
                Ok(chol) => {
                    self.alpha = chol.solve(&self.ys);
                    self.chol = chol;
                    return Ok(());
                }
                Err(_) => self.log_noise += 0.7,
            }
        }
        Err(GpError::GramNotPd)
    }

    /// Posterior mean and variance at `x` (raw units), paper Eq. 4.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the kernel input dimension.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let (m, v) = self.predict_std(&self.x_scaler.transform(x));
        let s = self.y_scaler.scale(0);
        (self.y_scaler.inverse_scalar(m, 0), v * s * s)
    }

    /// Posterior mean and variance at every query point (raw units) — the
    /// batched form of [`Gp::predict`].
    ///
    /// Per-point kernel features are hoisted once via
    /// [`KernelSpec::prepare`] (rows of the cross-covariance fan out over
    /// the [`kato_par`] pool) and the shared Cholesky factor is applied to
    /// all queries in a single batched triangular solve, instead of one
    /// `O(n²)` forward substitution per point. Values agree with the
    /// point-wise path to floating-point re-association error (≪ 1e-10).
    ///
    /// # Panics
    ///
    /// Panics if any query's length differs from the kernel input
    /// dimension.
    #[must_use]
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        if xs.is_empty() {
            return Vec::new();
        }
        let dim = self.kernel.input_dim();
        let n = self.xs.len();
        let xq: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| {
                assert_eq!(x.len(), dim, "predict_batch: dimension mismatch");
                self.x_scaler.transform(x)
            })
            .collect();
        let train = self.kernel.prepare(&self.params, &self.xs);
        let query = self.kernel.prepare(&self.params, &xq);
        let idx: Vec<usize> = (0..xq.len()).collect();
        let kvecs: Vec<Vec<f64>> = kato_par::par_map(&idx, |&j| {
            (0..n).map(|i| query.eval(j, &train, i)).collect()
        });
        let kmat = Matrix::from_fn(n, xq.len(), |i, j| kvecs[j][i]);
        let w = self.chol.forward_sub_matrix(&kmat);
        let s = self.y_scaler.scale(0);
        idx.iter()
            .map(|&j| {
                let mean = kato_linalg::dot(&kvecs[j], &self.alpha);
                let mut wsq = 0.0;
                for i in 0..n {
                    wsq += w[(i, j)] * w[(i, j)];
                }
                let var = (query.eval(j, &query, j) - wsq).max(1e-12);
                (self.y_scaler.inverse_scalar(mean, 0), var * s * s)
            })
            .collect()
    }

    /// Posterior mean/variance in standardised coordinates (`x` already
    /// standardised). Used by KAT-GP, acquisition internals and tests.
    #[must_use]
    pub fn predict_std(&self, x_std: &[f64]) -> (f64, f64) {
        assert_eq!(
            x_std.len(),
            self.kernel.input_dim(),
            "predict: dimension mismatch"
        );
        let n = self.xs.len();
        let mut kvec = Vec::with_capacity(n);
        for xi in &self.xs {
            kvec.push(self.kernel.eval(&self.params, x_std, xi));
        }
        let mean = kato_linalg::dot(&kvec, &self.alpha);
        let w = self.chol.forward_sub(&kvec);
        let k_xx = self.kernel.eval(&self.params, x_std, x_std);
        let var = (k_xx - kato_linalg::dot(&w, &w)).max(1e-12);
        (mean, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x[0]).sin() + 0.3 * x[0]).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = sine_data(15);
        let gp = Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &GpConfig::fast()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (m, _) = gp.predict(x);
            assert!((m - y).abs() < 0.15, "at {x:?}: {m} vs {y}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = sine_data(10);
        let gp = Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &GpConfig::fast()).unwrap();
        let (_, v_in) = gp.predict(&[0.5]);
        let (_, v_out) = gp.predict(&[3.0]);
        assert!(v_out > v_in * 2.0, "v_in={v_in} v_out={v_out}");
    }

    #[test]
    fn neuk_fits_sine_as_well_as_ard() {
        let (xs, ys) = sine_data(25);
        let ard = Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &GpConfig::fast()).unwrap();
        let neuk = Gp::fit(KernelSpec::neuk(1), &xs, &ys, &GpConfig::fast()).unwrap();
        let mut err_ard = 0.0;
        let mut err_neuk = 0.0;
        for i in 0..50 {
            let x = [i as f64 / 49.0];
            let truth = (5.0 * x[0]).sin() + 0.3 * x[0];
            err_ard += (ard.predict(&x).0 - truth).powi(2);
            err_neuk += (neuk.predict(&x).0 - truth).powi(2);
        }
        assert!(
            err_neuk < err_ard * 3.0 + 0.5,
            "neuk {err_neuk} vs ard {err_ard}"
        );
    }

    #[test]
    fn training_improves_likelihood() {
        let (xs, ys) = sine_data(20);
        let short = Gp::fit(
            KernelSpec::ard_rbf(1),
            &xs,
            &ys,
            &GpConfig {
                train_iters: 1,
                ..GpConfig::fast()
            },
        )
        .unwrap();
        let long = Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &GpConfig::fast()).unwrap();
        assert!(
            long.log_likelihood() >= short.log_likelihood() - 1e-6,
            "{} vs {}",
            long.log_likelihood(),
            short.log_likelihood()
        );
    }

    #[test]
    fn refit_warm_start_keeps_working() {
        let (xs, ys) = sine_data(12);
        let mut gp = Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &GpConfig::fast()).unwrap();
        let (xs2, ys2) = sine_data(18);
        gp.refit(
            &xs2,
            &ys2,
            &GpConfig {
                train_iters: 10,
                ..GpConfig::fast()
            },
        )
        .unwrap();
        assert_eq!(gp.len(), 18);
        let (m, _) = gp.predict(&xs2[9]);
        assert!((m - ys2[9]).abs() < 0.2);
    }

    #[test]
    fn subsampled_fit_still_conditions_on_all_points() {
        let (xs, ys) = sine_data(40);
        let gp = Gp::fit(
            KernelSpec::ard_rbf(1),
            &xs,
            &ys,
            &GpConfig {
                fit_subsample: 10,
                ..GpConfig::fast()
            },
        )
        .unwrap();
        assert_eq!(gp.len(), 40);
    }

    #[test]
    fn rejects_bad_data() {
        let r = Gp::fit(KernelSpec::ard_rbf(1), &[], &[], &GpConfig::fast());
        assert!(matches!(r, Err(GpError::BadTrainingData { .. })));
        let r = Gp::fit(
            KernelSpec::ard_rbf(2),
            &[vec![1.0]],
            &[1.0],
            &GpConfig::fast(),
        );
        assert!(matches!(r, Err(GpError::BadTrainingData { .. })));
    }

    #[test]
    fn duplicate_points_handled_via_noise() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.5], vec![0.6]];
        let ys = vec![1.0, 1.1, 0.9, 2.0];
        let gp = Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &GpConfig::fast()).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 1.0).abs() < 0.3, "mean at duplicated x: {m}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = sine_data(10);
        let a = Gp::fit(KernelSpec::neuk(1), &xs, &ys, &GpConfig::fast()).unwrap();
        let b = Gp::fit(KernelSpec::neuk(1), &xs, &ys, &GpConfig::fast()).unwrap();
        assert_eq!(a.kernel_params(), b.kernel_params());
    }

    #[test]
    fn predict_batch_matches_pointwise() {
        let (xs, ys) = sine_data(18);
        for kernel in [KernelSpec::ard_rbf(1), KernelSpec::neuk(1)] {
            let gp = Gp::fit(kernel, &xs, &ys, &GpConfig::fast()).unwrap();
            let queries: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64 / 12.0 - 0.5]).collect();
            let batch = gp.predict_batch(&queries);
            assert_eq!(batch.len(), queries.len());
            for (q, &(bm, bv)) in queries.iter().zip(&batch) {
                let (m, v) = gp.predict(q);
                assert!(
                    (m - bm).abs() <= 1e-10 * (1.0 + m.abs()),
                    "mean {m} vs {bm}"
                );
                assert!((v - bv).abs() <= 1e-10 * (1.0 + v.abs()), "var {v} vs {bv}");
            }
        }
        let gp = Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &GpConfig::fast()).unwrap();
        assert!(gp.predict_batch(&[]).is_empty());
    }

    proptest::proptest! {
        #[test]
        fn prop_predict_batch_matches_pointwise(
            qs in proptest::collection::vec(-1.0..2.0f64, 1..12),
            neuk in 0usize..2,
        ) {
            let (xs, ys) = sine_data(12);
            let kernel = if neuk == 1 { KernelSpec::neuk(1) } else { KernelSpec::ard_rbf(1) };
            let gp = Gp::fit(kernel, &xs, &ys, &GpConfig::fast()).unwrap();
            let queries: Vec<Vec<f64>> = qs.iter().map(|&q| vec![q]).collect();
            let batch = gp.predict_batch(&queries);
            for (q, &(bm, bv)) in queries.iter().zip(&batch) {
                let (m, v) = gp.predict(q);
                proptest::prop_assert!((m - bm).abs() <= 1e-10 * (1.0 + m.abs()));
                proptest::prop_assert!((v - bv).abs() <= 1e-10 * (1.0 + v.abs()));
            }
        }
    }

    #[test]
    fn append_skips_retraining_when_warm_likelihood_holds() {
        let (xs, ys) = sine_data(24);
        let cfg = GpConfig::fast();
        let mut gp = Gp::fit(KernelSpec::ard_rbf(1), &xs[..20], &ys[..20], &cfg).unwrap();
        let params_before = gp.kernel_params().to_vec();
        // Four more points from the same smooth function: the held optimum
        // explains them, so a generous tolerance must take the skip path
        // and leave the hyperparameters untouched.
        gp.append(
            &xs[20..],
            &ys[20..],
            &GpConfig {
                warm_tol: 5.0,
                ..cfg.clone()
            },
        )
        .unwrap();
        assert_eq!(gp.len(), 24);
        assert_eq!(gp.kernel_params(), &params_before[..]);
        // Still conditioned on everything: new points are interpolated.
        let (m, _) = gp.predict(&xs[22]);
        assert!((m - ys[22]).abs() < 0.2, "{m} vs {}", ys[22]);
    }

    #[test]
    fn append_matches_refit_posterior_closely() {
        let (xs, ys) = sine_data(22);
        let cfg = GpConfig::fast();
        let mut warm = Gp::fit(KernelSpec::ard_rbf(1), &xs[..16], &ys[..16], &cfg).unwrap();
        warm.append(&xs[16..], &ys[16..], &cfg).unwrap();
        let cold = Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &cfg).unwrap();
        for i in 0..40 {
            let q = [i as f64 / 39.0];
            let (mw, _) = warm.predict(&q);
            let (mc, _) = cold.predict(&q);
            assert!((mw - mc).abs() < 0.25, "at {q:?}: warm {mw} vs cold {mc}");
        }
    }

    #[test]
    fn warm_started_retraining_is_no_worse_than_cold() {
        // The satellite guarantee: forcing the warm-started re-optimisation
        // (warm_tol = −∞) must never land at a worse per-point training
        // log-likelihood than the cold schedule fitting from scratch.
        // Comparison is in raw-y units (warm keeps the prefix scalers, cold
        // re-fits them): ll_raw_pp = ll_std_pp − ln(y_scale).
        let (xs, ys) = sine_data(26);
        let cfg = GpConfig::fast();
        let mut warm = Gp::fit(KernelSpec::ard_rbf(1), &xs[..18], &ys[..18], &cfg).unwrap();
        warm.append(
            &xs[18..],
            &ys[18..],
            &GpConfig {
                warm_tol: f64::NEG_INFINITY,
                ..cfg.clone()
            },
        )
        .unwrap();
        let cold = Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &cfg).unwrap();
        let raw_pp = |gp: &Gp| gp.ll_per_point - gp.y_scaler.scale(0).ln();
        assert!(
            raw_pp(&warm) >= raw_pp(&cold) - 1e-9,
            "warm {} vs cold {}",
            raw_pp(&warm),
            raw_pp(&cold)
        );
    }

    #[test]
    fn append_rejects_ragged_rows() {
        let (xs, ys) = sine_data(10);
        let mut gp = Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &GpConfig::fast()).unwrap();
        let r = gp.append(&[vec![0.1, 0.2]], &[1.0], &GpConfig::fast());
        assert!(matches!(r, Err(GpError::BadTrainingData { .. })));
        let r = gp.append(&[vec![0.1]], &[], &GpConfig::fast());
        assert!(matches!(r, Err(GpError::BadTrainingData { .. })));
    }

    #[test]
    fn mle_gradient_matches_finite_difference() {
        // Validate the B-matrix trick end to end on a tiny problem: compare
        // dL/dθ from the tape against numeric differentiation of the exact
        // log-likelihood.
        let xs = [vec![0.0], vec![0.4], vec![1.0]];
        let ys = vec![0.1, 0.9, -0.3];
        let kernel = KernelSpec::ard_rbf(1);
        let params = vec![0.2, -0.1];
        let noise2 = 0.05;

        let loglik = |p: &[f64]| -> f64 {
            let mut k = Matrix::from_fn(3, 3, |i, j| kernel.eval(p, &xs[i], &xs[j]));
            k.add_diagonal(noise2);
            let chol = CholeskyFactor::new(&k).unwrap();
            let alpha = chol.solve(&ys);
            -0.5 * kato_linalg::dot(&ys, &alpha)
                - 0.5 * chol.log_det()
                - 1.5 * (2.0 * std::f64::consts::PI).ln()
        };

        // Analytic gradient via B-matrix seeds.
        let mut k = Matrix::from_fn(3, 3, |i, j| kernel.eval(&params, &xs[i], &xs[j]));
        k.add_diagonal(noise2);
        let chol = CholeskyFactor::new(&k).unwrap();
        let alpha = chol.solve(&ys);
        let kinv = chol.inverse();
        let tape = Tape::new();
        let p_vars: Vec<_> = params.iter().map(|&p| tape.var(p)).collect();
        let x_vars: Vec<Vec<_>> = xs
            .iter()
            .map(|r| r.iter().map(|&v| tape.constant(v)).collect())
            .collect();
        let mut seeds = Vec::new();
        for i in 0..3 {
            for j in i..3 {
                let kij = kernel.eval(&p_vars, &x_vars[i], &x_vars[j]);
                let b = alpha[i] * alpha[j] - kinv[(i, j)];
                seeds.push((kij, if i == j { 0.5 * b } else { b }));
            }
        }
        let grads = tape.backward_seeded(&seeds);
        let analytic = grads.wrt_slice(&p_vars);
        let check = kato_autodiff::check_gradient(loglik, &params, &analytic, 1e-6);
        assert!(check.passes(1e-5), "{check:?}");
    }
}
