#![deny(missing_docs)]

//! Gaussian processes with Neural Kernels and Knowledge-Alignment-and-
//! Transfer (KAT) — the modelling core of KATO (DAC 2024).
//!
//! Three pieces map directly onto the paper:
//!
//! * **Neural Kernel (Neuk)**, paper §3.1 (Eq. 8–10): primitive kernels
//!   (RBF / Rational-Quadratic / Periodic / Matérn-5/2) evaluated on learned
//!   linear projections of the inputs, combined through a positivity-
//!   constrained linear layer and `exp(·)` so the composite stays a valid
//!   covariance. See [`NeukSpec`].
//! * **Exact MLE training** (Eq. 3): [`Gp::fit`] maximises the marginal
//!   likelihood with Adam. Gradients are exact — each Gram entry `K_ij` is
//!   built once on a [`kato_autodiff::Tape`] and seeded with its adjoint
//!   `∂L/∂K_ij = ½(ααᵀ − K⁻¹)_ij`, so a single backward pass yields the
//!   gradient for every hyperparameter ("B-matrix trick").
//! * **KAT-GP**, paper §3.2 (Eq. 11–12): a frozen source GP wrapped in a
//!   trainable encoder (target design space → source design space) and
//!   decoder (source output → target output), with Delta-method moment
//!   propagation. See [`KatGp`].
//!
//! Both surrogate families implement [`IncrementalFit`]: per BO iteration
//! the archive only grows by a batch, so [`update_incremental`] appends
//! through the held Cholesky factor (rank-k
//! [`kato_linalg::CholeskyFactor::extend`]) and warm-starts hyperparameter
//! optimisation from the previous optimum instead of rebuilding from
//! scratch — with a full refit as the automatic fallback.
//!
//! # Example — fit and predict
//!
//! ```
//! use kato_gp::{Gp, GpConfig, KernelSpec};
//!
//! # fn main() -> Result<(), kato_gp::GpError> {
//! let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin()).collect();
//! let gp = Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &GpConfig::fast())?;
//! let (mean, var) = gp.predict(&[0.5]);
//! assert!((mean - (3.0_f64).sin()).abs() < 0.2);
//! assert!(var >= 0.0);
//! # Ok(())
//! # }
//! ```

mod error;
mod gp;
mod incremental;
mod katgp;
mod kernels;
mod mlp;
mod scaler;

pub use error::GpError;
pub use gp::{Gp, GpConfig};
pub use incremental::{update_incremental, IncrementalFit};
pub use katgp::{KatConfig, KatGp};
pub use kernels::{KernelSpec, NeukSpec, PreparedKernel, PrimitiveKernel};
pub use mlp::MlpSpec;
pub use scaler::Scaler;
