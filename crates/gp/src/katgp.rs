use crate::{Gp, GpError, KernelSpec, MlpSpec, Scaler};
use kato_autodiff::{clip_gradients, Adam, Scalar, Tape};
use kato_linalg::CholeskyFactor;
use kato_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training configuration for [`KatGp::fit`].
#[derive(Debug, Clone)]
pub struct KatConfig {
    /// Adam iterations.
    pub train_iters: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Maximum source points carried into the transfer model (caps the
    /// `O(m²)` tape cost of the predictive variance).
    pub source_subsample: usize,
    /// Maximum target points used per training iteration.
    pub target_subsample: usize,
    /// RNG seed.
    pub seed: u64,
    /// Gradient-norm clip.
    pub grad_clip: f64,
    /// Independent random initialisations of the alignment; the restart
    /// with the best training log-likelihood wins. The MLP encoder/decoder
    /// landscape has mean-prediction local optima that a single unlucky
    /// init can get stuck in.
    pub restarts: usize,
    /// Warm-start tolerance for [`KatGp::append`] (per-point
    /// log-likelihood units): if the held alignment still explains the
    /// grown target dataset to within `warm_tol` of the per-point
    /// likelihood achieved at the last training run, `append` skips
    /// alignment retraining entirely; otherwise it runs a *single*
    /// warm-started training pass (restarts→1 — the held alignment is the
    /// init) instead of the full cold restart schedule. Set to
    /// `f64::NEG_INFINITY` to force the warm training pass on every
    /// append.
    pub warm_tol: f64,
}

impl Default for KatConfig {
    fn default() -> Self {
        KatConfig {
            train_iters: 50,
            lr: 0.03,
            source_subsample: 80,
            target_subsample: 150,
            seed: 0,
            grad_clip: 50.0,
            restarts: 3,
            warm_tol: 0.25,
        }
    }
}

impl KatConfig {
    /// A cheap profile for unit tests.
    #[must_use]
    pub fn fast() -> Self {
        KatConfig {
            train_iters: 25,
            source_subsample: 40,
            target_subsample: 60,
            restarts: 2,
            ..KatConfig::default()
        }
    }
}

/// SplitMix64-style finaliser mixing the master seed with a stream index
/// (restart number). Unlike affine derivations such as
/// `(seed + c)·(stream + 1)`, whose streams are linearly related and can
/// collide, the avalanche rounds decorrelate every (seed, stream) pair.
fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scalar-in/scalar-out MLP (`1 → H → 1`, sigmoid hidden) whose forward pass
/// also yields the input derivative — the decoder `D` of KAT-GP, where the
/// Delta method (paper Eq. 11) needs the Jacobian `J = D'(µ_s)` as a
/// *differentiable* expression so Eq. 12 can be optimised through it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScalarMlp {
    hidden: usize,
}

impl ScalarMlp {
    fn new(hidden: usize) -> Self {
        ScalarMlp { hidden }
    }

    fn param_count(&self) -> usize {
        // w1[h], b1[h], w2[h], b2
        3 * self.hidden + 1
    }

    fn init_params(&self, rng: &mut StdRng) -> Vec<f64> {
        use rand::Rng;
        let mut p = Vec::with_capacity(self.param_count());
        let scale = (2.0 / (self.hidden + 1) as f64).sqrt();
        for _ in 0..self.hidden {
            p.push(rng.gen_range(-1.0..1.0) * scale); // w1
        }
        for _ in 0..self.hidden {
            p.push(rng.gen_range(-1.0..1.0) * 0.1); // b1
        }
        for _ in 0..self.hidden {
            p.push(rng.gen_range(-1.0..1.0) * scale); // w2
        }
        p.push(0.0); // b2
        p
    }

    /// Identity-leaning initialisation: `D(µ) ≈ µ` at start, so the initial
    /// transfer model is "trust the source as-is".
    fn init_near_identity(&self, rng: &mut StdRng) -> Vec<f64> {
        use rand::Rng;
        let mut p = self.init_params(rng);
        // Set w2 so that Σ w2_h·σ'(0)·w1_h ≈ 1: pair up with w1.
        let h = self.hidden;
        for i in 0..h {
            let w1 = p[i];
            // σ'(0) = 0.25; distribute identity across hidden units.
            p[2 * h + i] = w1 * 4.0 / (h as f64 * w1 * w1 + 1e-6).max(0.25);
        }
        p[3 * h] = 0.0;
        // Small perturbation keeps units from being exactly symmetric.
        for v in p.iter_mut() {
            *v += rng.gen_range(-0.01..0.01);
        }
        p
    }

    /// Returns `(D(x), D'(x))`.
    fn forward<S: Scalar>(&self, params: &[S], x: S) -> (S, S) {
        debug_assert_eq!(params.len(), self.param_count());
        let h = self.hidden;
        let (w1, rest) = params.split_at(h);
        let (b1, rest) = rest.split_at(h);
        let (w2, b2) = rest.split_at(h);
        let mut y = b2[0];
        let mut dy = x.lift(0.0);
        for k in 0..h {
            let s = (w1[k] * x + b1[k]).sigmoid();
            y = y + w2[k] * s;
            dy = dy + w2[k] * s * (x.lift(1.0) - s) * w1[k];
        }
        (y, dy)
    }
}

/// Knowledge Alignment and Transfer GP (paper §3.2, Fig. 2).
///
/// Wraps a *frozen* source [`Gp`] in a trainable encoder
/// `E: target design space → source design space` and decoder
/// `D: source output → target output`:
///
/// `y⁽ᵗ⁾(x) = D( GP( E(x) ) )`
///
/// Predictive moments use the Delta method (Eq. 11):
/// `µ_t = D(µ_s)`, `σ²_t = D'(µ_s)²·σ²_s`, and training maximises the
/// Gaussian log-likelihood of the target data (Eq. 12) with respect to the
/// encoder, the decoder and the target noise. The source observations are
/// never altered — the knowledge stays in the source GP, only the
/// *alignment* is learned.
///
/// Following DESIGN.md, the source GP's kernel hyperparameters and Gram
/// inverse are held fixed during alignment training (alternating
/// optimisation) rather than differentiating through the source Cholesky.
#[derive(Debug, Clone)]
pub struct KatGp {
    // Frozen source model (subsampled).
    kernel: KernelSpec,
    kernel_params: Vec<f64>,
    xs_src: Vec<Vec<f64>>,
    alpha_src: Vec<f64>,
    chol_src: CholeskyFactor,
    // Trainable alignment.
    encoder: MlpSpec,
    enc_params: Vec<f64>,
    decoder: ScalarMlp,
    dec_params: Vec<f64>,
    log_noise: f64,
    // Target-side standardisation.
    x_scaler: Scaler,
    y_scaler: Scaler,
    target_dim: usize,
    /// Raw target training data, retained so [`KatGp::append`] can grow the
    /// dataset and retrain the alignment without the caller re-supplying
    /// the history.
    xt: Vec<Vec<f64>>,
    yt: Vec<f64>,
    /// Per-point training log-likelihood achieved at the last actual
    /// alignment training — the warm-start reference for [`KatGp::append`].
    ll_per_point: f64,
}

impl KatGp {
    /// Fits the alignment (encoder, decoder, noise) of a frozen `source` GP
    /// to the target dataset `(x_t, y_t)`.
    ///
    /// # Errors
    ///
    /// * [`GpError::BadTrainingData`] for empty or ragged target data.
    /// * Propagates factorisation failures of the source Gram subsample.
    pub fn fit(
        source: &Gp,
        x_t: &[Vec<f64>],
        y_t: &[f64],
        config: &KatConfig,
    ) -> Result<KatGp, GpError> {
        if x_t.is_empty() || x_t.len() != y_t.len() {
            return Err(GpError::BadTrainingData {
                what: "target x empty or x/y length mismatch",
            });
        }
        let target_dim = x_t[0].len();
        if x_t.iter().any(|r| r.len() != target_dim) {
            return Err(GpError::BadTrainingData {
                what: "ragged target rows",
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Subsample and re-condition the source.
        let n_src = source.xs_std().len();
        let keep: Vec<usize> = if n_src > config.source_subsample {
            let mut idx: Vec<usize> = (0..n_src).collect();
            idx.shuffle(&mut rng);
            idx.truncate(config.source_subsample);
            idx.sort_unstable();
            idx
        } else {
            (0..n_src).collect()
        };
        let xs_src: Vec<Vec<f64>> = keep.iter().map(|&i| source.xs_std()[i].clone()).collect();
        let ys_src: Vec<f64> = keep.iter().map(|&i| source.ys_std()[i]).collect();
        let m = xs_src.len();
        let kp = source.kernel_params().to_vec();
        let kernel = source.kernel().clone();
        let mut gram = Matrix::from_fn(m, m, |i, j| kernel.eval(&kp, &xs_src[i], &xs_src[j]));
        gram.add_diagonal(source.noise_variance().max(1e-8) + 1e-9);
        let chol_src = CholeskyFactor::new(&gram)?;
        let alpha_src = chol_src.solve(&ys_src);

        let encoder = MlpSpec::kat(target_dim, kernel.input_dim());
        let decoder = ScalarMlp::new(32);

        let mut kat = KatGp {
            kernel,
            kernel_params: kp,
            xs_src,
            alpha_src,
            chol_src,
            encoder,
            enc_params: Vec::new(),
            decoder,
            dec_params: Vec::new(),
            log_noise: (0.2_f64).ln(),
            x_scaler: Scaler::fit(x_t),
            y_scaler: Scaler::fit_scalar(y_t),
            target_dim,
            xt: x_t.to_vec(),
            yt: y_t.to_vec(),
            ll_per_point: f64::NEG_INFINITY,
        };
        // Multi-restart: only the alignment parameters differ per restart
        // (the frozen source state and scalers are shared), so each restart
        // trains its own clone of the alignment and the best training
        // log-likelihood wins. Restart seeds go through a SplitMix64
        // finaliser so the init streams share no linear structure, and the
        // restarts fan out as independent work items on the kato_par pool
        // (order-preserving, so the winner does not depend on thread
        // count).
        let restarts: Vec<u64> = (0..config.restarts.max(1) as u64).collect();
        let trained = kato_par::par_map(&restarts, |&restart| {
            let mut cand = kat.clone();
            let mut init_rng = StdRng::seed_from_u64(mix_seed(config.seed, restart));
            cand.enc_params = cand.encoder.init_params(&mut init_rng);
            cand.dec_params = cand.decoder.init_near_identity(&mut init_rng);
            cand.log_noise = (0.2_f64).ln();
            let ll = cand.train(x_t, y_t, config)?;
            Ok::<_, GpError>((ll, cand.enc_params, cand.dec_params, cand.log_noise))
        });
        let mut best: Option<(f64, Vec<f64>, Vec<f64>, f64)> = None;
        for result in trained {
            let (ll, enc, dec, noise) = result?;
            if best.as_ref().is_none_or(|(b, ..)| ll > *b) {
                best = Some((ll, enc, dec, noise));
            }
        }
        let (best_ll, enc, dec, noise) = best.expect("restarts >= 1");
        kat.enc_params = enc;
        kat.dec_params = dec;
        kat.log_noise = noise;
        kat.ll_per_point = best_ll / x_t.len().min(config.target_subsample).max(1) as f64;
        Ok(kat)
    }

    /// Re-optimises the alignment on an updated target dataset, warm-started
    /// from the current parameters (the per-BO-iteration update).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::BadTrainingData`] for empty/ragged data.
    pub fn refit(
        &mut self,
        x_t: &[Vec<f64>],
        y_t: &[f64],
        config: &KatConfig,
    ) -> Result<(), GpError> {
        if x_t.is_empty() || x_t.len() != y_t.len() {
            return Err(GpError::BadTrainingData {
                what: "target x empty or x/y length mismatch",
            });
        }
        self.x_scaler = Scaler::fit(x_t);
        self.y_scaler = Scaler::fit_scalar(y_t);
        let ll = self.train(x_t, y_t, config)?;
        self.ll_per_point = ll / x_t.len().min(config.target_subsample).max(1) as f64;
        self.xt = x_t.to_vec();
        self.yt = y_t.to_vec();
        Ok(())
    }

    /// Appends a batch of new target points and retrains the alignment
    /// with a warm-start-gated restart schedule. Unlike [`Gp::append`] —
    /// where conditioning alone absorbs new data — the KAT posterior
    /// depends on the target data *only through the trained alignment*, so
    /// `append` always runs at least one training pass. The held
    /// alignment's per-point log-likelihood on the grown dataset decides
    /// how many: within [`KatConfig::warm_tol`] of the last training
    /// optimum, one warm-started pass suffices (restarts→1, the held
    /// alignment is the initialisation); further away the held optimum is
    /// stale and the full cold restart schedule of [`KatGp::fit`] runs
    /// alongside the warm candidate, best training log-likelihood wins.
    ///
    /// The target-side scalers are **frozen** (see [`Gp::append`] for the
    /// rationale); [`KatGp::refit`] is the escape hatch that
    /// re-standardises.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::BadTrainingData`] for ragged input.
    pub fn append(
        &mut self,
        x_new: &[Vec<f64>],
        y_new: &[f64],
        config: &KatConfig,
    ) -> Result<(), GpError> {
        if x_new.len() != y_new.len() {
            return Err(GpError::BadTrainingData {
                what: "target x/y length mismatch",
            });
        }
        if x_new.iter().any(|r| r.len() != self.target_dim) {
            return Err(GpError::BadTrainingData {
                what: "ragged target rows",
            });
        }
        self.xt.extend(x_new.iter().cloned());
        self.yt.extend(y_new.iter().cloned());
        let warm_pp = self.warm_log_likelihood_per_point();
        let warm_ok = warm_pp.is_finite()
            && self.ll_per_point.is_finite()
            && warm_pp + config.warm_tol >= self.ll_per_point;
        let xt = std::mem::take(&mut self.xt);
        let yt = std::mem::take(&mut self.yt);
        let result = if warm_ok {
            self.train(&xt, &yt, config)
        } else {
            self.train_restarted(&xt, &yt, config)
        };
        self.ll_per_point = match &result {
            Ok(ll) => ll / xt.len().min(config.target_subsample).max(1) as f64,
            Err(_) => f64::NEG_INFINITY,
        };
        self.xt = xt;
        self.yt = yt;
        result.map(|_| ())
    }

    /// The stale-warm-start recovery schedule of [`KatGp::append`]: the
    /// held alignment trains as one candidate next to
    /// `config.restarts - 1` cold random inits (seeded exactly like
    /// [`KatGp::fit`]'s restarts), all fanned out order-preserving on the
    /// [`kato_par`] pool, and the best training log-likelihood wins.
    fn train_restarted(
        &mut self,
        x_t: &[Vec<f64>],
        y_t: &[f64],
        config: &KatConfig,
    ) -> Result<f64, GpError> {
        let inits: Vec<Option<u64>> = std::iter::once(None)
            .chain((0..config.restarts.max(1).saturating_sub(1) as u64).map(Some))
            .collect();
        let trained = kato_par::par_map(&inits, |&restart| {
            let mut cand = self.clone();
            if let Some(r) = restart {
                let mut init_rng = StdRng::seed_from_u64(mix_seed(config.seed, r));
                cand.enc_params = cand.encoder.init_params(&mut init_rng);
                cand.dec_params = cand.decoder.init_near_identity(&mut init_rng);
                cand.log_noise = (0.2_f64).ln();
            }
            let ll = cand.train(x_t, y_t, config)?;
            Ok::<_, GpError>((ll, cand.enc_params, cand.dec_params, cand.log_noise))
        });
        let mut best: Option<(f64, Vec<f64>, Vec<f64>, f64)> = None;
        for result in trained {
            let (ll, enc, dec, noise) = result?;
            if best.as_ref().is_none_or(|(b, ..)| ll > *b) {
                best = Some((ll, enc, dec, noise));
            }
        }
        let (best_ll, enc, dec, noise) = best.expect("restarts >= 1");
        self.enc_params = enc;
        self.dec_params = dec;
        self.log_noise = noise;
        Ok(best_ll)
    }

    /// Mean per-point training objective (Eq. 12, standardised units) of
    /// the *held* alignment over the full stored target dataset — the
    /// warm-start health check used by [`KatGp::append`].
    fn warm_log_likelihood_per_point(&self) -> f64 {
        if self.yt.is_empty() {
            return f64::NEG_INFINITY;
        }
        let sigma2 = (self.log_noise * 2.0).exp();
        let mut total = 0.0;
        for (x, &y) in self.xt.iter().zip(&self.yt) {
            let x_std = self.x_scaler.transform(x);
            let y_std = self.y_scaler.transform_scalar(y, 0);
            let (mu, v) = self.predictive::<f64>(&self.enc_params, &self.dec_params, &x_std);
            let var_total = v + sigma2;
            let resid = mu - y_std;
            total += -0.5 * (var_total * 2.0 * std::f64::consts::PI).ln()
                - resid * resid / (2.0 * var_total);
        }
        total / self.yt.len() as f64
    }

    /// `true` when `(x, y)` is bitwise-identical to the stored raw target
    /// dataset — the precondition for treating a longer dataset as "stored
    /// data plus new rows" in [`crate::update_incremental`]. NaN never
    /// compares equal, so retro-imputed histories force the full-refit
    /// path.
    pub(crate) fn matches_prefix_raw(&self, x: &[Vec<f64>], y: &[f64]) -> bool {
        x.len() == self.xt.len()
            && y.len() == self.yt.len()
            && x.iter().zip(&self.xt).all(|(a, b)| a == b)
            && y.iter().zip(&self.yt).all(|(a, b)| a == b)
    }

    /// Number of stored target training points.
    #[must_use]
    pub fn target_len(&self) -> usize {
        self.xt.len()
    }

    /// Target input dimensionality.
    #[must_use]
    pub fn target_dim(&self) -> usize {
        self.target_dim
    }

    /// Number of source points retained in the transfer model.
    #[must_use]
    pub fn source_len(&self) -> usize {
        self.xs_src.len()
    }

    /// Generic predictive pipeline in standardised target coordinates.
    /// Returns `(µ_t_std, σ²_t_std)` **without** observation noise.
    fn predictive<S: Scalar>(&self, enc_params: &[S], dec_params: &[S], x_t_std: &[S]) -> (S, S) {
        let ctx = x_t_std[0];
        // Encode into the source design space.
        let u = self.encoder.forward(enc_params, x_t_std);
        // Source GP posterior at E(x): k-vector, mean, variance.
        let kp: Vec<S> = self.kernel_params.iter().map(|&p| ctx.lift(p)).collect();
        let m = self.xs_src.len();
        let mut kvec = Vec::with_capacity(m);
        for xs in &self.xs_src {
            let xs_l: Vec<S> = xs.iter().map(|&v| ctx.lift(v)).collect();
            kvec.push(self.kernel.eval(&kp, &u, &xs_l));
        }
        let mut mu_s = ctx.lift(0.0);
        for (k, &a) in kvec.iter().zip(&self.alpha_src) {
            mu_s = mu_s + *k * a;
        }
        // v_s = k(u,u) − ‖L⁻¹k‖² via a taped forward substitution.
        let l = self.chol_src.l();
        let mut w: Vec<S> = Vec::with_capacity(m);
        for i in 0..m {
            let mut s = kvec[i];
            for (j, wj) in w.iter().enumerate().take(i) {
                s = s - *wj * l[(i, j)];
            }
            w.push(s / l[(i, i)]);
        }
        let mut wsq = ctx.lift(0.0);
        for wi in &w {
            wsq = wsq + *wi * *wi;
        }
        let k_uu = self.kernel.eval(&kp, &u, &u);
        let v_s = (k_uu - wsq).max_val(ctx.lift(1e-10));
        // Decode with the Delta method (Eq. 11).
        let (mu_t, jac) = self.decoder.forward(dec_params, mu_s);
        let v_t = jac * jac * v_s;
        (mu_t, v_t)
    }

    /// Adam loop maximising Eq. 12. Returns the best training
    /// log-likelihood encountered (the parameters the model keeps).
    fn train(&mut self, x_t: &[Vec<f64>], y_t: &[f64], config: &KatConfig) -> Result<f64, GpError> {
        let xs_std: Vec<Vec<f64>> = x_t.iter().map(|r| self.x_scaler.transform(r)).collect();
        let ys_std: Vec<f64> = y_t
            .iter()
            .map(|&v| self.y_scaler.transform_scalar(v, 0))
            .collect();
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(17));
        let idx: Vec<usize> = if xs_std.len() > config.target_subsample {
            let mut all: Vec<usize> = (0..xs_std.len()).collect();
            all.shuffle(&mut rng);
            all.truncate(config.target_subsample);
            all
        } else {
            (0..xs_std.len()).collect()
        };

        let n_enc = self.enc_params.len();
        let n_dec = self.dec_params.len();
        let n_params = n_enc + n_dec + 1;
        let mut opt = Adam::new(n_params, config.lr);
        let mut best = (
            f64::NEG_INFINITY,
            self.enc_params.clone(),
            self.dec_params.clone(),
            self.log_noise,
        );

        for _ in 0..config.train_iters {
            let tape = Tape::with_capacity(idx.len() * self.xs_src.len() * 60);
            let enc_vars: Vec<_> = self.enc_params.iter().map(|&p| tape.var(p)).collect();
            let dec_vars: Vec<_> = self.dec_params.iter().map(|&p| tape.var(p)).collect();
            let noise_var = tape.var(self.log_noise);
            let sigma2 = (noise_var * 2.0).exp();

            let mut total = tape.constant(0.0);
            for &i in &idx {
                let x_vars: Vec<_> = xs_std[i].iter().map(|&v| tape.constant(v)).collect();
                let (mu, v) = self.predictive(&enc_vars, &dec_vars, &x_vars);
                let var_total = v + sigma2;
                let resid = mu - ys_std[i];
                let ll = -(var_total * (2.0 * std::f64::consts::PI)).ln() * 0.5
                    - resid * resid / (var_total * 2.0);
                total = total + ll;
            }
            let ll_val = total.value();
            if ll_val.is_finite() && ll_val > best.0 {
                best = (
                    ll_val,
                    enc_vars.iter().map(|v| v.value()).collect(),
                    dec_vars.iter().map(|v| v.value()).collect(),
                    self.log_noise,
                );
            }
            let grads = tape.backward(total);
            let mut g: Vec<f64> = enc_vars
                .iter()
                .chain(&dec_vars)
                .map(|v| grads.wrt(*v))
                .chain(std::iter::once(grads.wrt(noise_var)))
                .collect();
            for gi in g.iter_mut() {
                *gi = -*gi; // ascend
            }
            let _ = clip_gradients(&mut g, config.grad_clip);
            let mut theta: Vec<f64> = self
                .enc_params
                .iter()
                .chain(&self.dec_params)
                .copied()
                .chain(std::iter::once(self.log_noise))
                .collect();
            opt.step(&mut theta, &g);
            self.log_noise = theta[n_params - 1].clamp(-6.0, 2.0);
            self.enc_params = theta[..n_enc].to_vec();
            self.dec_params = theta[n_enc..n_enc + n_dec].to_vec();
            for p in self.enc_params.iter_mut().chain(&mut self.dec_params) {
                *p = p.clamp(-20.0, 20.0);
            }
        }
        let best_ll = best.0;
        if best_ll > f64::NEG_INFINITY {
            self.enc_params = best.1;
            self.dec_params = best.2;
            self.log_noise = best.3;
        }
        Ok(best_ll)
    }

    /// Archive-alignment score: mean Gaussian predictive log-likelihood of
    /// `(xs, ys)` under this fitted alignment, observation noise included.
    ///
    /// This is the quantity the knowledge bank uses to rank candidate
    /// source archives for a new sizing request — fit a cheap [`KatGp`]
    /// from each candidate onto the same probe dataset and keep the
    /// best-scoring one. Higher is better; non-finite targets are skipped
    /// (a probe row from a broken simulation carries no alignment signal).
    /// Returns `f64::NEG_INFINITY` when no finite pair remains.
    ///
    /// The per-point variance is floored at 1% of the training-data
    /// variance: an alignment trained on a handful of probe points is
    /// routinely *overconfident* (Delta-method variance through a
    /// confident source GP plus a noise term fitted on few residuals), and
    /// without the floor an accurate-but-overconfident alignment scores
    /// below a vague-but-calibrated one — the opposite of what archive
    /// ranking needs. The floor keeps the score accuracy-dominated.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from the target dimensionality.
    #[must_use]
    pub fn mean_log_likelihood(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        let scale = self.y_scaler.scale(0);
        let noise_raw = (self.log_noise * 2.0).exp() * scale * scale;
        let var_floor = 0.01 * scale * scale;
        let mut total = 0.0;
        let mut n = 0usize;
        for (x, &y) in xs.iter().zip(ys) {
            if !y.is_finite() {
                continue;
            }
            let (mu, var) = self.predict(x);
            let var_total = (var + noise_raw).max(var_floor).max(1e-12);
            let resid = y - mu;
            let ll = -0.5 * (var_total * 2.0 * std::f64::consts::PI).ln()
                - resid * resid / (2.0 * var_total);
            if ll.is_finite() {
                total += ll;
                n += 1;
            }
        }
        if n == 0 {
            f64::NEG_INFINITY
        } else {
            total / n as f64
        }
    }

    /// Posterior mean and variance at a raw target design vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the target dimensionality.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.target_dim, "KAT predict: dimension mismatch");
        let x_std = self.x_scaler.transform(x);
        let (m, v) = self.predictive::<f64>(&self.enc_params, &self.dec_params, &x_std);
        let s = self.y_scaler.scale(0);
        (self.y_scaler.inverse_scalar(m, 0), (v * s * s).max(1e-12))
    }

    /// Posterior mean and variance at every query point — the batched form
    /// of [`KatGp::predict`].
    ///
    /// Encoding and kernel cross-rows fan out over the [`kato_par`] pool
    /// (with per-point features hoisted via
    /// [`crate::KernelSpec::prepare`]), then the frozen source Cholesky factor is
    /// applied to all queries in one batched triangular solve before the
    /// Delta-method decode. Agrees with the point-wise path to
    /// floating-point re-association error (≪ 1e-10).
    ///
    /// # Panics
    ///
    /// Panics if any query's length differs from the target dimensionality.
    #[must_use]
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        if xs.is_empty() {
            return Vec::new();
        }
        let m = self.xs_src.len();
        let encoded: Vec<Vec<f64>> = kato_par::par_map(xs, |x| {
            assert_eq!(
                x.len(),
                self.target_dim,
                "KAT predict_batch: dimension mismatch"
            );
            let x_std = self.x_scaler.transform(x);
            self.encoder.forward(&self.enc_params, &x_std)
        });
        let train = self.kernel.prepare(&self.kernel_params, &self.xs_src);
        let query = self.kernel.prepare(&self.kernel_params, &encoded);
        let idx: Vec<usize> = (0..encoded.len()).collect();
        let kvecs: Vec<Vec<f64>> = kato_par::par_map(&idx, |&j| {
            (0..m).map(|i| query.eval(j, &train, i)).collect()
        });
        let kmat = Matrix::from_fn(m, encoded.len(), |i, j| kvecs[j][i]);
        let w = self.chol_src.forward_sub_matrix(&kmat);
        let s = self.y_scaler.scale(0);
        idx.iter()
            .map(|&j| {
                let mu_s = kato_linalg::dot(&kvecs[j], &self.alpha_src);
                let mut wsq = 0.0;
                for i in 0..m {
                    wsq += w[(i, j)] * w[(i, j)];
                }
                let v_s = (query.eval(j, &query, j) - wsq).max(1e-10);
                let (mu_t, jac) = self.decoder.forward(&self.dec_params, mu_s);
                let v_t = jac * jac * v_s;
                (
                    self.y_scaler.inverse_scalar(mu_t, 0),
                    (v_t * s * s).max(1e-12),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpConfig;

    /// Source: y = sin(5x); target: y = 2·sin(5(x+0.1)) + 1 in a 1-D space —
    /// aligned by a shift (encoder) and an affine map (decoder).
    fn make_source() -> Gp {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x[0]).sin()).collect();
        Gp::fit(KernelSpec::ard_rbf(1), &xs, &ys, &GpConfig::fast()).unwrap()
    }

    fn target_fn(x: f64) -> f64 {
        2.0 * (5.0 * (x + 0.1)).sin() + 1.0
    }

    #[test]
    fn scalar_mlp_derivative_matches_finite_difference() {
        let mlp = ScalarMlp::new(8);
        let mut rng = StdRng::seed_from_u64(5);
        let params = mlp.init_params(&mut rng);
        for &x in &[-1.0, 0.0, 0.7] {
            let (_, dy) = mlp.forward(&params, x);
            let h = 1e-6;
            let (yp, _) = mlp.forward(&params, x + h);
            let (ym, _) = mlp.forward(&params, x - h);
            let fd = (yp - ym) / (2.0 * h);
            assert!((dy - fd).abs() < 1e-6, "x={x}: {dy} vs {fd}");
        }
    }

    #[test]
    fn near_identity_init_is_roughly_identity() {
        let mlp = ScalarMlp::new(32);
        let mut rng = StdRng::seed_from_u64(9);
        let params = mlp.init_near_identity(&mut rng);
        let (y0, _) = mlp.forward(&params, 0.0);
        let (y1, _) = mlp.forward(&params, 1.0);
        // Slope within a factor ~3 of identity is enough as a starting point.
        let slope = y1 - y0;
        assert!(slope > 0.2 && slope < 3.0, "slope {slope}");
    }

    #[test]
    fn kat_learns_affine_alignment() {
        let source = make_source();
        let x_t: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0 * 0.8]).collect();
        let y_t: Vec<f64> = x_t.iter().map(|x| target_fn(x[0])).collect();
        let kat = KatGp::fit(&source, &x_t, &y_t, &KatConfig::fast()).unwrap();
        // Interpolation inside the target data range must be decent.
        let mut mse = 0.0;
        for i in 0..10 {
            let x = 0.05 + 0.07 * i as f64;
            let (m, _) = kat.predict(&[x]);
            mse += (m - target_fn(x)).powi(2);
        }
        mse /= 10.0;
        assert!(mse < 0.5, "KAT alignment mse {mse}");
    }

    #[test]
    fn kat_variance_is_positive_and_finite() {
        let source = make_source();
        let x_t: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let y_t: Vec<f64> = x_t.iter().map(|x| target_fn(x[0])).collect();
        let kat = KatGp::fit(&source, &x_t, &y_t, &KatConfig::fast()).unwrap();
        for i in 0..20 {
            let (m, v) = kat.predict(&[i as f64 / 19.0]);
            assert!(m.is_finite() && v.is_finite() && v > 0.0);
        }
    }

    #[test]
    fn kat_bridges_different_dimensions() {
        // Target space is 3-D; only the first coordinate matters. The
        // encoder must learn the 3→1 compression.
        let source = make_source();
        let x_t: Vec<Vec<f64>> = (0..25)
            .map(|i| {
                let t = i as f64 / 24.0;
                vec![t, (t * 7.0).cos() * 0.5, 0.3]
            })
            .collect();
        let y_t: Vec<f64> = x_t.iter().map(|x| target_fn(x[0])).collect();
        let kat = KatGp::fit(&source, &x_t, &y_t, &KatConfig::fast()).unwrap();
        assert_eq!(kat.target_dim(), 3);
        let (m, _) = kat.predict(&[0.5, (0.5_f64 * 7.0).cos() * 0.5, 0.3]);
        assert!((m - target_fn(0.5)).abs() < 1.0, "pred {m}");
    }

    #[test]
    fn training_improves_fit() {
        let source = make_source();
        let x_t: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 / 14.0]).collect();
        let y_t: Vec<f64> = x_t.iter().map(|x| target_fn(x[0])).collect();
        let short = KatGp::fit(
            &source,
            &x_t,
            &y_t,
            &KatConfig {
                train_iters: 1,
                ..KatConfig::fast()
            },
        )
        .unwrap();
        let long = KatGp::fit(&source, &x_t, &y_t, &KatConfig::fast()).unwrap();
        let mse = |k: &KatGp| -> f64 {
            x_t.iter()
                .zip(&y_t)
                .map(|(x, y)| (k.predict(x).0 - y).powi(2))
                .sum::<f64>()
                / x_t.len() as f64
        };
        assert!(
            mse(&long) <= mse(&short) * 1.2 + 1e-9,
            "long {} vs short {}",
            mse(&long),
            mse(&short)
        );
    }

    #[test]
    fn predict_batch_matches_pointwise() {
        let source = make_source();
        let x_t: Vec<Vec<f64>> = (0..14).map(|i| vec![i as f64 / 13.0]).collect();
        let y_t: Vec<f64> = x_t.iter().map(|x| target_fn(x[0])).collect();
        let kat = KatGp::fit(&source, &x_t, &y_t, &KatConfig::fast()).unwrap();
        let queries: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 10.0 - 0.4]).collect();
        let batch = kat.predict_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, &(bm, bv)) in queries.iter().zip(&batch) {
            let (m, v) = kat.predict(q);
            assert!(
                (m - bm).abs() <= 1e-10 * (1.0 + m.abs()),
                "mean {m} vs {bm}"
            );
            assert!((v - bv).abs() <= 1e-10 * (1.0 + v.abs()), "var {v} vs {bv}");
        }
        assert!(kat.predict_batch(&[]).is_empty());
    }

    proptest::proptest! {
        #[test]
        fn prop_predict_batch_matches_pointwise(
            qs in proptest::collection::vec(-0.5..1.5f64, 1..10),
        ) {
            let source = make_source();
            let x_t: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
            let y_t: Vec<f64> = x_t.iter().map(|x| target_fn(x[0])).collect();
            // The match property holds for any parameters; a one-iteration
            // fit keeps the 64 proptest cases cheap.
            let cfg = KatConfig { train_iters: 1, restarts: 1, ..KatConfig::fast() };
            let kat = KatGp::fit(&source, &x_t, &y_t, &cfg).unwrap();
            let queries: Vec<Vec<f64>> = qs.iter().map(|&q| vec![q]).collect();
            let batch = kat.predict_batch(&queries);
            for (q, &(bm, bv)) in queries.iter().zip(&batch) {
                let (m, v) = kat.predict(q);
                proptest::prop_assert!((m - bm).abs() <= 1e-10 * (1.0 + m.abs()));
                proptest::prop_assert!((v - bv).abs() <= 1e-10 * (1.0 + v.abs()));
            }
        }
    }

    #[test]
    fn alignment_score_prefers_the_aligned_source() {
        // Probe data drawn from the target function: a KAT-GP aligned to it
        // must out-score one aligned to unrelated data, and non-finite
        // probe rows must be skipped rather than poisoning the mean.
        let source = make_source();
        let x_t: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64 / 15.0]).collect();
        let y_good: Vec<f64> = x_t.iter().map(|x| target_fn(x[0])).collect();
        let y_bad: Vec<f64> = x_t.iter().map(|x| (40.0 * x[0]).tan()).collect();
        let good = KatGp::fit(&source, &x_t, &y_good, &KatConfig::fast()).unwrap();
        let bad = KatGp::fit(&source, &x_t, &y_bad, &KatConfig::fast()).unwrap();
        let probe_x: Vec<Vec<f64>> = (0..8).map(|i| vec![0.05 + i as f64 / 9.0]).collect();
        let probe_y: Vec<f64> = probe_x.iter().map(|x| target_fn(x[0])).collect();
        let s_good = good.mean_log_likelihood(&probe_x, &probe_y);
        let s_bad = bad.mean_log_likelihood(&probe_x, &probe_y);
        assert!(s_good.is_finite() && s_bad.is_finite());
        assert!(s_good > s_bad, "good {s_good} vs bad {s_bad}");
        // NaN probe rows are skipped, not propagated.
        let mut probe_y_nan = probe_y.clone();
        probe_y_nan[0] = f64::NAN;
        assert!(good.mean_log_likelihood(&probe_x, &probe_y_nan).is_finite());
        // Nothing finite → −∞ sentinel.
        assert_eq!(
            good.mean_log_likelihood(&probe_x, &vec![f64::NAN; probe_x.len()]),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn append_warm_path_runs_single_warm_started_pass() {
        // A generous tolerance selects the restarts→1 branch: exactly one
        // training pass on the grown data, warm-started from the held
        // alignment — bitwise-reproducible by running that pass by hand.
        // (KAT-GP never skips training outright: its posterior sees target
        // data only through the alignment, so append must always train.)
        let source = make_source();
        let x_t: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let y_t: Vec<f64> = x_t.iter().map(|x| target_fn(x[0])).collect();
        let mut kat = KatGp::fit(&source, &x_t[..16], &y_t[..16], &KatConfig::fast()).unwrap();
        let cfg = KatConfig {
            warm_tol: 10.0,
            ..KatConfig::fast()
        };
        let mut manual = kat.clone();
        kat.append(&x_t[16..], &y_t[16..], &cfg).unwrap();
        assert_eq!(kat.target_len(), 20);
        let ll = manual.train(&x_t, &y_t, &cfg).unwrap();
        assert_eq!(kat.enc_params, manual.enc_params, "warm pass must match");
        assert_eq!(kat.dec_params, manual.dec_params);
        assert_eq!(
            kat.ll_per_point,
            ll / x_t.len().min(cfg.target_subsample).max(1) as f64
        );
        let (m, _) = kat.predict(&[0.5]);
        assert!(m.is_finite());
    }

    #[test]
    fn warm_started_retraining_is_no_worse_than_cold() {
        // The satellite guarantee: a single warm-started training pass
        // (restarts→1, held alignment as init) must not end up worse than
        // the cold restart schedule on the same grown dataset. Scored with
        // mean_log_likelihood, which is already in raw-y units and hence
        // comparable across the two models' different scalers.
        let source = make_source();
        let x_t: Vec<Vec<f64>> = (0..22).map(|i| vec![i as f64 / 21.0]).collect();
        let y_t: Vec<f64> = x_t.iter().map(|x| target_fn(x[0])).collect();
        let cfg = KatConfig::fast();
        let mut warm = KatGp::fit(&source, &x_t[..16], &y_t[..16], &cfg).unwrap();
        warm.append(
            &x_t[16..],
            &y_t[16..],
            &KatConfig {
                warm_tol: f64::NEG_INFINITY,
                ..cfg.clone()
            },
        )
        .unwrap();
        let cold = KatGp::fit(&source, &x_t, &y_t, &cfg).unwrap();
        let s_warm = warm.mean_log_likelihood(&x_t, &y_t);
        let s_cold = cold.mean_log_likelihood(&x_t, &y_t);
        // The two models hold different y-scalers (warm froze the prefix
        // statistics), so their mean_log_likelihood variance floors differ
        // slightly; 0.05 per point absorbs that parametrisation noise while
        // still failing on any real regression of the warm path (a lost
        // alignment shows up as whole units of log-likelihood).
        assert!(s_warm >= s_cold - 0.05, "warm {s_warm} vs cold {s_cold}");
    }

    #[test]
    fn append_rejects_ragged_rows() {
        let source = make_source();
        let x_t: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let y_t: Vec<f64> = x_t.iter().map(|x| target_fn(x[0])).collect();
        let mut kat = KatGp::fit(&source, &x_t, &y_t, &KatConfig::fast()).unwrap();
        let r = kat.append(&[vec![0.1, 0.2]], &[1.0], &KatConfig::fast());
        assert!(matches!(r, Err(GpError::BadTrainingData { .. })));
    }

    #[test]
    fn rejects_empty_target() {
        let source = make_source();
        let r = KatGp::fit(&source, &[], &[], &KatConfig::fast());
        assert!(matches!(r, Err(GpError::BadTrainingData { .. })));
    }

    #[test]
    fn refit_warm_start() {
        let source = make_source();
        let x_t: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let y_t: Vec<f64> = x_t.iter().map(|x| target_fn(x[0])).collect();
        let mut kat = KatGp::fit(&source, &x_t, &y_t, &KatConfig::fast()).unwrap();
        let x2: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64 / 15.0]).collect();
        let y2: Vec<f64> = x2.iter().map(|x| target_fn(x[0])).collect();
        kat.refit(
            &x2,
            &y2,
            &KatConfig {
                train_iters: 5,
                ..KatConfig::fast()
            },
        )
        .unwrap();
        let (m, _) = kat.predict(&[0.5]);
        assert!(m.is_finite());
    }
}
