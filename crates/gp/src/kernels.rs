use kato_autodiff::Scalar;
use rand::Rng;

/// Primitive kernel used inside a Neural Kernel unit (paper Fig. 1a lists
/// PER, RBF and RQ; Matérn-5/2 is included as the common fourth choice).
///
/// Primitives are evaluated on *learned linear projections* of the inputs,
/// so they carry no lengthscales of their own — the projection absorbs all
/// scaling (paper Eq. 8). Only shape parameters remain (RQ's `α`, the
/// periodic kernel's period).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimitiveKernel {
    /// Squared exponential `exp(−r²)`.
    Rbf,
    /// Rational quadratic `(1 + r²/2α)^{−α}` with trainable `log α`.
    RationalQuadratic,
    /// Periodic `exp(−2 Σ sin²(π Δ_i / p))` with trainable `log p`.
    Periodic,
    /// Matérn-5/2 `(1 + √5r + 5r²/3)·exp(−√5 r)`.
    Matern52,
}

impl PrimitiveKernel {
    /// Number of internal shape parameters.
    #[must_use]
    pub fn internal_param_count(self) -> usize {
        match self {
            PrimitiveKernel::Rbf | PrimitiveKernel::Matern52 => 0,
            PrimitiveKernel::RationalQuadratic | PrimitiveKernel::Periodic => 1,
        }
    }

    /// Default internal parameters (log-domain).
    #[must_use]
    pub fn default_internal_params(self) -> Vec<f64> {
        match self {
            PrimitiveKernel::Rbf | PrimitiveKernel::Matern52 => vec![],
            // α = 1.0, period = 2.0.
            PrimitiveKernel::RationalQuadratic => vec![0.0],
            PrimitiveKernel::Periodic => vec![2.0_f64.ln()],
        }
    }

    /// Evaluates the primitive on projected feature vectors `a`, `b`.
    ///
    /// `internal` must hold [`PrimitiveKernel::internal_param_count`] values.
    pub fn eval<S: Scalar>(self, internal: &[S], a: &[S], b: &[S]) -> S {
        debug_assert_eq!(a.len(), b.len());
        let ctx = a[0];
        let mut r2 = ctx.lift(0.0);
        for (ai, bi) in a.iter().zip(b) {
            let d = *ai - *bi;
            r2 = r2 + d * d;
        }
        match self {
            PrimitiveKernel::Rbf => (-r2).exp(),
            PrimitiveKernel::RationalQuadratic => {
                let alpha = internal[0].exp();
                // (1 + r²/2α)^{−α} = exp(−α·ln(1 + r²/2α))
                let inner = (ctx.lift(1.0) + r2 / (alpha * 2.0)).ln();
                (-(alpha * inner)).exp()
            }
            PrimitiveKernel::Periodic => {
                let period = internal[0].exp();
                let mut s = ctx.lift(0.0);
                for (ai, bi) in a.iter().zip(b) {
                    let arg = (*ai - *bi) * std::f64::consts::PI / period;
                    let sv = arg.sin();
                    s = s + sv * sv;
                }
                (-(s * 2.0)).exp()
            }
            PrimitiveKernel::Matern52 => {
                // r²+ε keeps √· differentiable at coincident inputs.
                let r = (r2 + 1e-12).sqrt();
                let sq5r = r * 5.0_f64.sqrt();
                let poly = ctx.lift(1.0) + sq5r + r2 * (5.0 / 3.0);
                poly * (-sq5r).exp()
            }
        }
    }
}

/// Neural Kernel (Neuk) unit, paper §3.1.
///
/// For each primitive `h_i`, inputs are projected through a learned affine
/// map (`W⁽ⁱ⁾x + b⁽ⁱ⁾`, Eq. 8), the primitives are mixed by a linear layer
/// (Eq. 9) and squashed through `exp(·)` (Eq. 10):
///
/// `k(x₁,x₂) = exp( Σ_j [Σ_i softplus(Wz_ji)·h_i + bz_j] + b_k )`
///
/// The mixing weights pass through `softplus` so every coefficient is
/// positive — sums and products (via `exp`) of kernels with positive
/// coefficients are valid kernels, which keeps the composite positive
/// semi-definite by construction rather than by hope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeukSpec {
    /// Input dimensionality.
    pub input_dim: usize,
    /// Projection (latent) dimensionality per primitive.
    pub latent_dim: usize,
    /// Primitive kernels in the unit.
    pub primitives: Vec<PrimitiveKernel>,
    /// Rows of the mixing layer (`z` dimension).
    pub mix_dim: usize,
}

impl NeukSpec {
    /// The default unit used throughout the KATO experiments:
    /// RBF + RQ + Periodic primitives, 2-dimensional projections, and a
    /// mixing layer as wide as the primitive count.
    #[must_use]
    pub fn standard(input_dim: usize) -> Self {
        NeukSpec {
            input_dim,
            latent_dim: 2,
            primitives: vec![
                PrimitiveKernel::Rbf,
                PrimitiveKernel::RationalQuadratic,
                PrimitiveKernel::Periodic,
            ],
            mix_dim: 3,
        }
    }

    /// Total trainable parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        let proj = self.primitives.len() * (self.latent_dim * self.input_dim + self.latent_dim);
        let internal: usize = self
            .primitives
            .iter()
            .map(|p| p.internal_param_count())
            .sum();
        let mix = self.mix_dim * self.primitives.len() + self.mix_dim;
        proj + internal + mix + 1 // +1 output bias b_k
    }

    /// Reasonable random initialisation: projections near identity-scale,
    /// mixing weights small so the composite starts close to a plain
    /// product of primitives.
    pub fn init_params<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut p = Vec::with_capacity(self.param_count());
        let scale = 1.0 / (self.input_dim as f64).sqrt();
        for prim in &self.primitives {
            for _ in 0..(self.latent_dim * self.input_dim) {
                p.push(rng.gen_range(-1.0..1.0) * scale);
            }
            p.extend(std::iter::repeat_n(0.0, self.latent_dim));
            p.extend(prim.default_internal_params());
        }
        for _ in 0..(self.mix_dim * self.primitives.len()) {
            // softplus(-1.0) ≈ 0.31: gentle initial mixing.
            p.push(-1.0 + rng.gen_range(-0.2..0.2));
        }
        p.extend(std::iter::repeat_n(0.0, self.mix_dim));
        p.push(0.0); // b_k → amplitude e^0 = 1 on standardized outputs
        p
    }

    /// Evaluates the Neuk covariance between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `params` has the wrong length.
    pub fn eval<S: Scalar>(&self, params: &[S], a: &[S], b: &[S]) -> S {
        debug_assert_eq!(params.len(), self.param_count(), "Neuk param mismatch");
        let ctx = params[0];
        let mut offset = 0;
        let mut h = Vec::with_capacity(self.primitives.len());
        for prim in &self.primitives {
            let w = &params[offset..offset + self.latent_dim * self.input_dim];
            offset += self.latent_dim * self.input_dim;
            let bias = &params[offset..offset + self.latent_dim];
            offset += self.latent_dim;
            let n_int = prim.internal_param_count();
            let internal = &params[offset..offset + n_int];
            offset += n_int;

            let mut pa = Vec::with_capacity(self.latent_dim);
            let mut pb = Vec::with_capacity(self.latent_dim);
            for l in 0..self.latent_dim {
                let mut sa = bias[l];
                let mut sb = bias[l];
                for i in 0..self.input_dim {
                    let wli = w[l * self.input_dim + i];
                    sa = sa + wli * a[i];
                    sb = sb + wli * b[i];
                }
                pa.push(sa);
                pb.push(sb);
            }
            h.push(prim.eval(internal, &pa, &pb));
        }

        // Mixing layer with positive (softplus) weights, then exp.
        let wz = &params[offset..offset + self.mix_dim * self.primitives.len()];
        offset += self.mix_dim * self.primitives.len();
        let bz = &params[offset..offset + self.mix_dim];
        offset += self.mix_dim;
        let b_k = params[offset];

        let mut total = b_k;
        for j in 0..self.mix_dim {
            let mut zj = bz[j];
            for (i, hi) in h.iter().enumerate() {
                let raw = wz[j * h.len() + i];
                // softplus(w) = ln(1 + e^w) ≥ 0 keeps the combination PSD.
                let pos = (raw.exp() + ctx.lift(1.0)).ln();
                zj = zj + pos * *hi;
            }
            total = total + zj;
        }
        total.exp()
    }
}

/// Covariance function used by [`crate::Gp`]: either a classic ARD-RBF
/// (paper §2.2) or a Neural Kernel unit (paper §3.1).
#[derive(Debug, Clone, PartialEq)]
pub enum KernelSpec {
    /// `θ₀·exp(−Σ (Δ_i/ℓ_i)²)` with trainable log-amplitude and per-dimension
    /// log-lengthscales.
    ArdRbf {
        /// Input dimensionality.
        dim: usize,
    },
    /// Neural Kernel unit.
    Neuk(NeukSpec),
}

impl KernelSpec {
    /// Convenience constructor for the ARD-RBF kernel.
    #[must_use]
    pub fn ard_rbf(dim: usize) -> Self {
        KernelSpec::ArdRbf { dim }
    }

    /// Convenience constructor for the standard Neuk unit.
    #[must_use]
    pub fn neuk(dim: usize) -> Self {
        KernelSpec::Neuk(NeukSpec::standard(dim))
    }

    /// Input dimensionality.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        match self {
            KernelSpec::ArdRbf { dim } => *dim,
            KernelSpec::Neuk(spec) => spec.input_dim,
        }
    }

    /// Trainable parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        match self {
            KernelSpec::ArdRbf { dim } => dim + 1,
            KernelSpec::Neuk(spec) => spec.param_count(),
        }
    }

    /// Random initial parameters.
    pub fn init_params<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        match self {
            // log-amplitude 0, log-lengthscales 0 (unit, on standardized x).
            KernelSpec::ArdRbf { dim } => {
                let mut p = vec![0.0];
                for _ in 0..*dim {
                    p.push(rng.gen_range(-0.3..0.3));
                }
                p
            }
            KernelSpec::Neuk(spec) => spec.init_params(rng),
        }
    }

    /// Evaluates `k(a, b)`.
    pub fn eval<S: Scalar>(&self, params: &[S], a: &[S], b: &[S]) -> S {
        match self {
            KernelSpec::ArdRbf { dim } => {
                debug_assert_eq!(params.len(), dim + 1);
                let amp = params[0].exp();
                let mut s = params[0].lift(0.0);
                for i in 0..*dim {
                    let ls = params[1 + i].exp();
                    let d = (a[i] - b[i]) / ls;
                    s = s + d * d;
                }
                amp * (-s).exp()
            }
            KernelSpec::Neuk(spec) => spec.eval(params, a, b),
        }
    }

    /// Precomputes per-point evaluation state for a whole point set at
    /// fixed hyperparameters — the plain-`f64` batched fast path.
    ///
    /// Everything that does not depend on the *pair* is hoisted out of the
    /// pair loop: ARD lengthscale scaling, Neuk linear projections,
    /// softplus-mixed combination weights and primitive shape parameters.
    /// A cross covariance between two prepared sets then costs only the
    /// primitive-kernel arithmetic, which is what makes
    /// `predict_batch`-style inference profitable even on one thread.
    /// Values agree with [`KernelSpec::eval`] to floating-point
    /// re-association error (≪ 1e-10), not bitwise.
    #[must_use]
    pub fn prepare(&self, params: &[f64], pts: &[Vec<f64>]) -> PreparedKernel {
        match self {
            KernelSpec::ArdRbf { dim } => {
                debug_assert_eq!(params.len(), dim + 1);
                let amp = params[0].exp();
                let inv_ls: Vec<f64> = (0..*dim).map(|i| (-params[1 + i]).exp()).collect();
                let scaled = pts
                    .iter()
                    .map(|p| p.iter().zip(&inv_ls).map(|(x, il)| x * il).collect())
                    .collect();
                PreparedKernel {
                    kind: PreparedKind::Ard { amp, scaled },
                }
            }
            KernelSpec::Neuk(spec) => spec.prepare(params, pts),
        }
    }
}

/// Precomputed per-point state produced by [`KernelSpec::prepare`].
#[derive(Debug, Clone)]
pub struct PreparedKernel {
    kind: PreparedKind,
}

#[derive(Debug, Clone)]
enum PreparedKind {
    Ard {
        amp: f64,
        /// Points pre-multiplied by the inverse lengthscales.
        scaled: Vec<Vec<f64>>,
    },
    Neuk {
        /// `(primitive, exp'd internal shape parameter)`; the shape slot is
        /// unused (0.0) for RBF and Matérn.
        prims: Vec<(PrimitiveKernel, f64)>,
        latent: usize,
        /// Per-point projected features, flattened `[primitive][latent]`.
        proj: Vec<Vec<f64>>,
        /// Per-primitive combined mixing weight `Σ_j softplus(wz[j][i])`.
        coef: Vec<f64>,
        /// Pair-independent offset `b_k + Σ_j bz[j]`.
        bias: f64,
    },
}

impl PreparedKernel {
    /// Number of prepared points.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.kind {
            PreparedKind::Ard { scaled, .. } => scaled.len(),
            PreparedKind::Neuk { proj, .. } => proj.len(),
        }
    }

    /// `true` when no points were prepared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Covariance between point `i` of `self` and point `j` of `other`.
    /// Both sets must come from the same [`KernelSpec::prepare`] kernel and
    /// hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if the two sets were prepared from different kernel families
    /// or if an index is out of bounds.
    #[must_use]
    pub fn eval(&self, i: usize, other: &PreparedKernel, j: usize) -> f64 {
        match (&self.kind, &other.kind) {
            (PreparedKind::Ard { amp, scaled }, PreparedKind::Ard { scaled: sb, .. }) => {
                let (a, b) = (&scaled[i], &sb[j]);
                let s: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                amp * (-s).exp()
            }
            (
                PreparedKind::Neuk {
                    prims,
                    latent,
                    proj,
                    coef,
                    bias,
                },
                PreparedKind::Neuk { proj: pb, .. },
            ) => {
                let (a, b) = (&proj[i], &pb[j]);
                let mut total = *bias;
                for (p, &(prim, shape)) in prims.iter().enumerate() {
                    let lo = p * latent;
                    let h = prim_eval_f64(prim, shape, &a[lo..lo + latent], &b[lo..lo + latent]);
                    total += coef[p] * h;
                }
                total.exp()
            }
            _ => panic!("PreparedKernel::eval across different kernel families"),
        }
    }
}

/// Plain-`f64` primitive kernel with pre-exponentiated shape parameter.
fn prim_eval_f64(prim: PrimitiveKernel, shape: f64, a: &[f64], b: &[f64]) -> f64 {
    let r2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    match prim {
        PrimitiveKernel::Rbf => (-r2).exp(),
        PrimitiveKernel::RationalQuadratic => (-(shape * (1.0 + r2 / (shape * 2.0)).ln())).exp(),
        PrimitiveKernel::Periodic => {
            let mut s = 0.0;
            for (x, y) in a.iter().zip(b) {
                let v = ((x - y) * std::f64::consts::PI / shape).sin();
                s += v * v;
            }
            (-(s * 2.0)).exp()
        }
        PrimitiveKernel::Matern52 => {
            let r = (r2 + 1e-12).sqrt();
            let sq5r = r * 5.0_f64.sqrt();
            (1.0 + sq5r + r2 * (5.0 / 3.0)) * (-sq5r).exp()
        }
    }
}

impl NeukSpec {
    /// See [`KernelSpec::prepare`].
    #[must_use]
    pub fn prepare(&self, params: &[f64], pts: &[Vec<f64>]) -> PreparedKernel {
        debug_assert_eq!(params.len(), self.param_count(), "Neuk param mismatch");
        let n_prims = self.primitives.len();
        let mut offset = 0;
        let mut prims = Vec::with_capacity(n_prims);
        let mut proj = vec![Vec::with_capacity(n_prims * self.latent_dim); pts.len()];
        for &prim in &self.primitives {
            let w = &params[offset..offset + self.latent_dim * self.input_dim];
            offset += self.latent_dim * self.input_dim;
            let bias = &params[offset..offset + self.latent_dim];
            offset += self.latent_dim;
            let n_int = prim.internal_param_count();
            let shape = if n_int > 0 { params[offset].exp() } else { 0.0 };
            offset += n_int;
            prims.push((prim, shape));
            for (x, feats) in pts.iter().zip(proj.iter_mut()) {
                for l in 0..self.latent_dim {
                    let mut s = bias[l];
                    for i in 0..self.input_dim {
                        s += w[l * self.input_dim + i] * x[i];
                    }
                    feats.push(s);
                }
            }
        }
        let wz = &params[offset..offset + self.mix_dim * n_prims];
        offset += self.mix_dim * n_prims;
        let bz = &params[offset..offset + self.mix_dim];
        offset += self.mix_dim;
        let b_k = params[offset];
        let mut coef = vec![0.0; n_prims];
        for j in 0..self.mix_dim {
            for (i, c) in coef.iter_mut().enumerate() {
                *c += (wz[j * n_prims + i].exp() + 1.0).ln();
            }
        }
        let bias = b_k + bz.iter().sum::<f64>();
        PreparedKernel {
            kind: PreparedKind::Neuk {
                prims,
                latent: self.latent_dim,
                proj,
                coef,
                bias,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato_linalg::{CholeskyFactor, Matrix};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gram(spec: &KernelSpec, params: &[f64], xs: &[Vec<f64>]) -> Matrix {
        Matrix::from_fn(xs.len(), xs.len(), |i, j| spec.eval(params, &xs[i], &xs[j]))
    }

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect())
            .collect()
    }

    #[test]
    fn primitives_are_one_at_zero_distance() {
        let a = [0.3, -0.7];
        for prim in [
            PrimitiveKernel::Rbf,
            PrimitiveKernel::RationalQuadratic,
            PrimitiveKernel::Periodic,
            PrimitiveKernel::Matern52,
        ] {
            let internal = prim.default_internal_params();
            let v = prim.eval(&internal, &a, &a);
            assert!((v - 1.0).abs() < 1e-5, "{prim:?} k(x,x) = {v}");
        }
    }

    #[test]
    fn primitives_decay_with_distance() {
        let a = [0.0];
        for prim in [
            PrimitiveKernel::Rbf,
            PrimitiveKernel::RationalQuadratic,
            PrimitiveKernel::Matern52,
        ] {
            let internal = prim.default_internal_params();
            let near = prim.eval(&internal, &a, &[0.1]);
            let far = prim.eval(&internal, &a, &[1.5]);
            assert!(near > far, "{prim:?}: {near} vs {far}");
        }
    }

    #[test]
    fn periodic_kernel_repeats() {
        let internal = PrimitiveKernel::Periodic.default_internal_params();
        let period = internal[0].exp();
        let k0 = PrimitiveKernel::Periodic.eval(&internal, &[0.0], &[0.3]);
        let k1 = PrimitiveKernel::Periodic.eval(&internal, &[0.0], &[0.3 + period]);
        assert!((k0 - k1).abs() < 1e-9);
    }

    #[test]
    fn ard_rbf_symmetry_and_amplitude() {
        let spec = KernelSpec::ard_rbf(3);
        let params = vec![0.5_f64, 0.1, -0.2, 0.3];
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, 1.5, 2.0];
        let kab = spec.eval(&params, &a, &b);
        let kba = spec.eval(&params, &b, &a);
        assert!((kab - kba).abs() < 1e-14);
        let kaa = spec.eval(&params, &a, &a);
        assert!((kaa - 0.5_f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn neuk_param_count_consistent() {
        let spec = NeukSpec::standard(5);
        let mut rng = SmallRng::seed_from_u64(1);
        let p = spec.init_params(&mut rng);
        assert_eq!(p.len(), spec.param_count());
        // 3 primitives × (2×5 W + 2 b) + 2 internal (RQ, PER) + mix 3×3+3 + 1
        assert_eq!(spec.param_count(), 3 * 12 + 2 + 12 + 1);
    }

    #[test]
    fn neuk_is_symmetric_and_positive() {
        let spec = NeukSpec::standard(3);
        let mut rng = SmallRng::seed_from_u64(2);
        let p = spec.init_params(&mut rng);
        let a = [0.1, -0.5, 0.9];
        let b = [-0.3, 0.2, 0.4];
        let kab = spec.eval(&p, &a, &b);
        let kba = spec.eval(&p, &b, &a);
        assert!((kab - kba).abs() < 1e-12);
        assert!(kab > 0.0);
        let kaa = spec.eval(&p, &a, &a);
        assert!(kaa >= kab, "diagonal dominates: {kaa} vs {kab}");
    }

    #[test]
    fn neuk_gram_is_positive_definite() {
        // PSD-by-construction claim: Gram matrices over random points and
        // random parameters must factor with (at most jitter-level) help.
        let spec = KernelSpec::neuk(4);
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let params = spec.init_params(&mut rng);
            let xs = random_points(20, 4, seed + 100);
            let mut g = gram(&spec, &params, &xs);
            g.add_diagonal(1e-8);
            assert!(
                CholeskyFactor::new(&g).is_ok(),
                "Neuk gram not PD for seed {seed}"
            );
        }
    }

    #[test]
    fn ard_gram_is_positive_definite() {
        let spec = KernelSpec::ard_rbf(3);
        let mut rng = SmallRng::seed_from_u64(11);
        let params = spec.init_params(&mut rng);
        let xs = random_points(25, 3, 5);
        let mut g = gram(&spec, &params, &xs);
        g.add_diagonal(1e-8);
        assert!(CholeskyFactor::new(&g).is_ok());
    }

    #[test]
    fn neuk_taped_gradient_matches_finite_difference() {
        use kato_autodiff::{check_gradient, Tape};
        let spec = KernelSpec::neuk(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let params = spec.init_params(&mut rng);
        let a = [0.4, -0.1];
        let b = [-0.2, 0.7];

        let f = |p: &[f64]| spec.eval(p, &a, &b);
        let tape = Tape::new();
        let p_vars: Vec<_> = params.iter().map(|&v| tape.var(v)).collect();
        let a_vars: Vec<_> = a.iter().map(|&v| tape.constant(v)).collect();
        let b_vars: Vec<_> = b.iter().map(|&v| tape.constant(v)).collect();
        let k = spec.eval(&p_vars, &a_vars, &b_vars);
        let grads = tape.backward(k);
        let analytic = grads.wrt_slice(&p_vars);
        let check = check_gradient(f, &params, &analytic, 1e-6);
        assert!(check.passes(1e-4), "{check:?}");
    }

    #[test]
    fn prepared_matches_generic_eval() {
        // Every kernel family with every primitive: the hoisted f64 fast
        // path must agree with the generic evaluation to re-association
        // error.
        let specs = [
            KernelSpec::ard_rbf(3),
            KernelSpec::neuk(3),
            KernelSpec::Neuk(NeukSpec {
                input_dim: 3,
                latent_dim: 2,
                primitives: vec![PrimitiveKernel::Matern52, PrimitiveKernel::Periodic],
                mix_dim: 2,
            }),
        ];
        for (s, spec) in specs.iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(40 + s as u64);
            let params = spec.init_params(&mut rng);
            let xs = random_points(7, 3, 60 + s as u64);
            let qs = random_points(4, 3, 70 + s as u64);
            let px = spec.prepare(&params, &xs);
            let pq = spec.prepare(&params, &qs);
            assert_eq!(px.len(), 7);
            assert!(!pq.is_empty());
            for (j, q) in qs.iter().enumerate() {
                for (i, x) in xs.iter().enumerate() {
                    let slow = spec.eval(&params, q, x);
                    let fast = pq.eval(j, &px, i);
                    assert!(
                        (slow - fast).abs() <= 1e-12 * (1.0 + slow.abs()),
                        "spec {s} pair ({j},{i}): {slow} vs {fast}"
                    );
                }
            }
        }
    }

    #[test]
    fn matern_gradient_finite_at_coincident_points() {
        use kato_autodiff::Tape;
        let spec = KernelSpec::Neuk(NeukSpec {
            input_dim: 2,
            latent_dim: 2,
            primitives: vec![PrimitiveKernel::Matern52],
            mix_dim: 1,
        });
        let mut rng = SmallRng::seed_from_u64(4);
        let params = spec.init_params(&mut rng);
        let tape = Tape::new();
        let p_vars: Vec<_> = params.iter().map(|&v| tape.var(v)).collect();
        let a: Vec<_> = [0.5, 0.5].iter().map(|&v| tape.constant(v)).collect();
        let k = spec.eval(&p_vars, &a, &a);
        let grads = tape.backward(k);
        for pv in &p_vars {
            assert!(grads.wrt(*pv).is_finite(), "NaN gradient on diagonal");
        }
    }
}
