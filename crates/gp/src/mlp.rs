use kato_autodiff::Scalar;
use rand::Rng;

/// A small fully connected network with sigmoid hidden activations and a
/// linear output layer — the encoder/decoder architecture of KAT-GP
/// (paper §3.2: `linear(d_in×32) – sigmoid – linear(32×d_out)`).
///
/// Parameters live in an external flat slice so the same spec can be
/// evaluated with plain `f64` (inference) or taped
/// [`Var`](kato_autodiff::Var)s (training).
///
/// # Example
///
/// ```
/// use kato_gp::MlpSpec;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let spec = MlpSpec::new(&[3, 8, 2]);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let params = spec.init_params(&mut rng);
/// let out = spec.forward(&params, &[0.1, -0.2, 0.3]);
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpSpec {
    sizes: Vec<usize>,
}

impl MlpSpec {
    /// Creates a spec from layer sizes `[in, hidden..., out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    #[must_use]
    pub fn new(sizes: &[usize]) -> Self {
        assert!(
            sizes.len() >= 2,
            "MLP needs at least input and output sizes"
        );
        assert!(sizes.iter().all(|&s| s > 0), "zero-width layer");
        MlpSpec {
            sizes: sizes.to_vec(),
        }
    }

    /// The paper's KAT encoder/decoder shape: `in → 32 → out`.
    #[must_use]
    pub fn kat(d_in: usize, d_out: usize) -> Self {
        MlpSpec::new(&[d_in, 32, d_out])
    }

    /// Input width.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Output width.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        *self.sizes.last().expect("non-empty")
    }

    /// Total number of parameters (weights + biases).
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.sizes.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Xavier-style random initialisation.
    pub fn init_params<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut params = Vec::with_capacity(self.param_count());
        for w in self.sizes.windows(2) {
            let (n_in, n_out) = (w[0], w[1]);
            let scale = (2.0 / (n_in + n_out) as f64).sqrt();
            for _ in 0..(n_in * n_out) {
                params.push(rng.gen_range(-1.0..1.0) * scale);
            }
            params.extend(std::iter::repeat_n(0.0, n_out));
        }
        params
    }

    /// Forward pass. Hidden layers use sigmoid; the output layer is linear.
    ///
    /// # Panics
    ///
    /// Panics if `params` or `input` have the wrong length.
    pub fn forward<S: Scalar>(&self, params: &[S], input: &[S]) -> Vec<S> {
        assert_eq!(input.len(), self.sizes[0], "MLP input width mismatch");
        assert_eq!(params.len(), self.param_count(), "MLP param count mismatch");
        let mut activ: Vec<S> = input.to_vec();
        let mut offset = 0;
        let n_layers = self.sizes.len() - 1;
        for (li, w) in self.sizes.windows(2).enumerate() {
            let (n_in, n_out) = (w[0], w[1]);
            let weights = &params[offset..offset + n_in * n_out];
            let biases = &params[offset + n_in * n_out..offset + n_in * n_out + n_out];
            offset += n_in * n_out + n_out;
            let mut next = Vec::with_capacity(n_out);
            for o in 0..n_out {
                let mut acc = biases[o];
                for (i, &a) in activ.iter().enumerate() {
                    acc = acc + weights[o * n_in + i] * a;
                }
                if li + 1 < n_layers {
                    acc = acc.sigmoid();
                }
                next.push(acc);
            }
            activ = next;
        }
        activ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato_autodiff::{check_gradient, Tape};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn param_count_matches_layout() {
        let spec = MlpSpec::new(&[3, 32, 1]);
        assert_eq!(spec.param_count(), 3 * 32 + 32 + 32 + 1);
        assert_eq!(MlpSpec::kat(5, 2).param_count(), 5 * 32 + 32 + 32 * 2 + 2);
    }

    #[test]
    fn forward_identity_network() {
        // 1→1 linear with weight 2, bias 1 (single layer → purely linear).
        let spec = MlpSpec::new(&[1, 1]);
        let out = spec.forward(&[2.0, 1.0], &[3.0]);
        assert_eq!(out, vec![7.0]);
    }

    #[test]
    fn hidden_layer_applies_sigmoid() {
        // 1→1→1 with weights 1, biases 0: out = sigmoid(x) · 1.
        let spec = MlpSpec::new(&[1, 1, 1]);
        let params = [1.0, 0.0, 1.0, 0.0];
        let out = spec.forward(&params, &[0.0]);
        assert!((out[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn taped_gradient_matches_finite_difference() {
        let spec = MlpSpec::new(&[2, 4, 1]);
        let mut rng = SmallRng::seed_from_u64(7);
        let params = spec.init_params(&mut rng);
        let x = [0.3, -0.8];

        let f = |p: &[f64]| spec.forward(p, &x)[0];
        let tape = Tape::new();
        let p_vars: Vec<_> = params.iter().map(|&p| tape.var(p)).collect();
        let x_vars: Vec<_> = x.iter().map(|&v| tape.constant(v)).collect();
        let out = spec.forward(&p_vars, &x_vars)[0];
        let grads = tape.backward(out);
        let analytic = grads.wrt_slice(&p_vars);
        let check = check_gradient(f, &params, &analytic, 1e-6);
        assert!(check.passes(1e-5), "{check:?}");
    }

    #[test]
    fn deterministic_init_given_seed() {
        let spec = MlpSpec::kat(4, 1);
        let a = spec.init_params(&mut SmallRng::seed_from_u64(3));
        let b = spec.init_params(&mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let spec = MlpSpec::new(&[2, 1]);
        let _ = spec.forward(&[1.0, 1.0, 0.0], &[1.0]);
    }
}
