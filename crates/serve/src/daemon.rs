//! The request loop behind `katod`: parse → cache → (probe → align →
//! resume) or cold run → persist → respond.
//!
//! The daemon is deliberately synchronous at its edges — newline-delimited
//! JSON in, newline-delimited JSON out — and concurrent in the middle:
//! [`Daemon::handle_batch`] dedupes identical requests by cache key and
//! runs the distinct jobs over the [`kato_par`] pool, then applies bank and
//! cache writes sequentially so the persistent state never races.
//!
//! # Fault tolerance
//!
//! The serving loop survives its jobs:
//!
//! * a job that **panics** (a simulator crash, exercised by the
//!   [`crate::faults`] `sim_panic` failpoint) answers with an error
//!   response carrying that request's `id`; in a batch, every other job
//!   still returns its result, and the daemon keeps serving;
//! * a request with `deadline_ms` runs under a [`RunBudget`] and answers
//!   best-so-far with `"degraded": true` when the deadline fires — degraded
//!   traces are *not* persisted to the bank or cache, so a later request
//!   without the deadline recomputes the full run;
//! * `{"op": "health"}` reports bank/cache/served-job status without
//!   spending simulations.

use crate::bank::{Bank, SourceChoice};
use crate::cache::ResultCache;
use crate::json::Json;
use crate::protocol::{error_json, response_json, SizingRequest};
use kato::{BoSettings, Kato, Mode, RunBudget, RunHistory};
use kato_circuits::{random_design, Metrics, ScenarioRegistry, SizingProblem, Spec, VarSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, Write};

/// Number of probe simulations spent before querying the bank: half the
/// cold init, floor 4 — enough target evidence to alignment-score archives
/// while leaving most of the init budget to the model-guided loop.
#[must_use]
pub fn warm_probe_size(n_init: usize) -> usize {
    (n_init / 2).max(4)
}

/// Optimiser settings for a request: the quick profile with `n_init`
/// clamped so tiny budgets still get at least one BO iteration.
#[must_use]
pub fn request_settings(budget: usize, seed: u64) -> BoSettings {
    let mut s = BoSettings::quick(budget, seed);
    s.n_init = s.n_init.min(budget.saturating_sub(1)).max(1);
    s
}

/// Wraps a problem so the `sim_panic` failpoint can crash its evaluations:
/// armed with a request seed (`KATO_FAILPOINTS=sim_panic=5`), every
/// evaluation of the job running under that seed panics — deterministic
/// regardless of how a batch interleaves across worker threads.
struct FaultProblem<'a> {
    inner: &'a dyn SizingProblem,
    seed: u64,
}

impl SizingProblem for FaultProblem<'_> {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn variables(&self) -> &[VarSpec] {
        self.inner.variables()
    }
    fn metric_names(&self) -> &[&'static str] {
        self.inner.metric_names()
    }
    fn specs(&self) -> &[Spec] {
        self.inner.specs()
    }
    fn evaluate(&self, x: &[f64]) -> Metrics {
        assert!(
            !crate::faults::matches("sim_panic", self.seed),
            "injected simulator panic (sim_panic={})",
            self.seed
        );
        self.inner.evaluate(x)
    }
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<Metrics> {
        // Forward to the inner batch path (the shim must not serialise the
        // population); the failpoint check still guards every batch.
        assert!(
            !crate::faults::matches("sim_panic", self.seed),
            "injected simulator panic (sim_panic={})",
            self.seed
        );
        self.inner.evaluate_batch(xs)
    }
    fn expert_design(&self) -> Vec<f64> {
        self.inner.expert_design()
    }
    fn streaming_hint(&self) -> bool {
        // The failpoint shim never changes evaluation cost; keep the inner
        // problem's scheduling preference (yield problems stream).
        self.inner.streaming_hint()
    }
}

/// Runs one sizing job, warm-starting from `bank` when it holds archives
/// for the scenario.
///
/// The warm path spends [`warm_probe_size`] random probe simulations on
/// the target, asks the bank for the best-aligned archive
/// ([`Bank::select_source`]), attaches it as the transfer source and
/// *resumes* from the probe — so the probe counts toward the budget and a
/// warm start never simulates more than a cold one. With no bank, no
/// archives, or a bank miss, it degrades to the cold path (or a source-less
/// resume of the probe).
///
/// `run_budget` (deadline / sim cap / cancel flag) is honoured
/// cooperatively: between simulations, including during the probe — an
/// exhausted budget returns best-so-far instead of overrunning.
///
/// Shared by the daemon and the `kato run --bank` CLI path.
#[must_use]
pub fn run_with_bank(
    bank: Option<&Bank>,
    scenario: &str,
    tech: &str,
    problem: &dyn SizingProblem,
    settings: BoSettings,
    run_budget: Option<RunBudget>,
) -> (RunHistory, Option<SourceChoice>) {
    // When sim_panic is armed, route evaluations through the failpoint
    // check; disarmed serving takes the zero-overhead path.
    let fault_shim = FaultProblem {
        inner: problem,
        seed: settings.seed,
    };
    let problem: &dyn SizingProblem = if crate::faults::armed("sim_panic").is_some() {
        &fault_shim
    } else {
        problem
    };
    let attach = |k: Kato| match run_budget.clone() {
        Some(b) => k.with_run_budget(b),
        None => k,
    };
    let warm_bank = bank.filter(|b| b.has_candidates(scenario));
    let Some(bank) = warm_bank else {
        return (
            attach(Kato::new(settings)).run(problem, Mode::Constrained),
            None,
        );
    };
    let mut probe_n = warm_probe_size(settings.n_init).min(settings.budget);
    let mut probe = RunHistory::new(&problem.name(), "KATO", settings.seed);
    let mut rng = StdRng::seed_from_u64(settings.seed);
    // The probe is one batched population (sharded over the pool): drawing
    // the designs up front consumes the RNG exactly as the scalar loop
    // did, and any sim cap clamps the batch so capped counts stay exact.
    if let Some(allow) = run_budget.as_ref().and_then(|b| b.remaining_sims(0)) {
        probe_n = probe_n.min(allow);
    }
    if probe_n > 0
        && !run_budget
            .as_ref()
            .is_some_and(|b| b.exhausted(probe.len()))
    {
        let designs: Vec<Vec<f64>> = (0..probe_n)
            .map(|_| random_design(problem.dim(), &mut rng))
            .collect();
        probe.evaluate_and_push_batch(problem, &Mode::Constrained, designs);
    }
    match bank.select_source(scenario, tech, problem.specs(), &probe) {
        Some((source, choice)) => {
            let label = format!("KATO+bank[{}]", choice.label);
            let history = attach(Kato::new(settings))
                .with_source(source)
                .with_label(&label)
                .resume(problem, Mode::Constrained, probe);
            (history, Some(choice))
        }
        None => (
            attach(Kato::new(settings)).resume(problem, Mode::Constrained, probe),
            None,
        ),
    }
}

/// The `katod` daemon state: scenario registry, optional knowledge bank,
/// the in-memory result cache, and serving counters for the health report.
#[derive(Debug)]
pub struct Daemon {
    registry: ScenarioRegistry,
    bank: Option<Bank>,
    cache: ResultCache,
    jobs_served: usize,
    jobs_failed: usize,
}

/// Outcome of one executed (non-cached) job, before persistence.
struct JobResult {
    key: String,
    request: SizingRequest,
    tech: String,
    history: RunHistory,
    warm: Option<SourceChoice>,
    degraded: bool,
}

impl Daemon {
    /// Creates a daemon over the standard scenario registry, bankless.
    #[must_use]
    pub fn new() -> Self {
        Daemon {
            registry: ScenarioRegistry::standard(),
            bank: None,
            cache: ResultCache::new(),
            jobs_served: 0,
            jobs_failed: 0,
        }
    }

    /// Attaches a knowledge bank: completed runs are persisted to it and
    /// new requests query it for warm starts.
    #[must_use]
    pub fn with_bank(mut self, bank: Bank) -> Self {
        self.bank = Some(bank);
        self
    }

    /// The attached bank, if any.
    #[must_use]
    pub fn bank(&self) -> Option<&Bank> {
        self.bank.as_ref()
    }

    /// The result cache (read-only view).
    #[must_use]
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Sizing jobs answered with `status: "ok"` (cache hits included).
    #[must_use]
    pub fn jobs_served(&self) -> usize {
        self.jobs_served
    }

    /// Requests answered with an error response (parse/build failures and
    /// panicking jobs alike).
    #[must_use]
    pub fn jobs_failed(&self) -> usize {
        self.jobs_failed
    }

    /// Builds the `{"op": "health"}` response: bank attachment, entry/run/
    /// quarantine counts, cache size and saved hits, and job counters.
    #[must_use]
    pub fn health_json(&self) -> Json {
        let bank_json = match &self.bank {
            None => Json::obj(vec![("attached", Json::Bool(false))]),
            Some(bank) => Json::obj(vec![
                ("attached", Json::Bool(true)),
                ("entries", Json::Num(bank.entries().len() as f64)),
                ("runs", Json::Num(bank.total_runs() as f64)),
                ("quarantined", Json::Num(bank.quarantined_files() as f64)),
                (
                    "quarantined_on_open",
                    Json::Num(bank.quarantined_on_open() as f64),
                ),
            ]),
        };
        Json::obj(vec![
            ("status", Json::str("ok")),
            ("op", Json::str("health")),
            ("bank", bank_json),
            (
                "cache",
                Json::obj(vec![
                    ("entries", Json::Num(self.cache.len() as f64)),
                    ("hits", Json::Num(self.cache.total_hits() as f64)),
                ]),
            ),
            ("jobs_served", Json::Num(self.jobs_served as f64)),
            ("jobs_failed", Json::Num(self.jobs_failed as f64)),
        ])
    }

    /// Intercepts operational (non-sizing) requests: a line whose top-level
    /// `op` key names a daemon operation. Returns `None` for sizing
    /// requests (no `op` key / not an object), which proceed to
    /// [`SizingRequest::parse`].
    fn try_handle_op(&mut self, line: &str) -> Option<String> {
        let doc = Json::parse(line).ok()?;
        let op = doc.get("op")?.as_str()?.to_string();
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        Some(match op.as_str() {
            "health" => self.health_json().to_string(),
            other => {
                self.jobs_failed += 1;
                error_json(&id, &format!("unknown op '{other}' (known: health)")).to_string()
            }
        })
    }

    /// Handles one request line, returning one response line (never
    /// panics — malformed input *and* panicking jobs become error
    /// responses).
    pub fn handle_line(&mut self, line: &str) -> String {
        if let Some(response) = self.try_handle_op(line) {
            return response;
        }
        let request = match SizingRequest::parse(line) {
            Ok(r) => r,
            Err(e) => {
                self.jobs_failed += 1;
                return error_json("", &e).to_string();
            }
        };
        let (problem, tech) = match request.build_problem(&self.registry) {
            Ok(p) => p,
            Err(e) => {
                self.jobs_failed += 1;
                return error_json(&request.id, &e).to_string();
            }
        };
        let key = request.cache_key(&tech);
        if let Some(cached) = self.cache.hit(&key) {
            self.jobs_served += 1;
            return response_json(
                &request,
                &tech,
                &*problem,
                &cached.history,
                true,
                false,
                cached.warm_source.as_ref(),
            )
            .to_string();
        }
        let settings = request_settings(request.budget, request.seed);
        // Yield jobs carry an extra metric, so nominal bank archives don't
        // align with them (and vice versa): run them bankless.
        let bank = if request.yield_samples.is_some() {
            None
        } else {
            self.bank.as_ref()
        };
        let run_budget = request.deadline_ms.map(RunBudget::deadline_ms);
        // Panic isolation: a crashing evaluation answers this request with
        // an error instead of taking the daemon down.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with_bank(
                bank,
                &request.scenario,
                &tech,
                &*problem,
                settings,
                run_budget,
            )
        }));
        let (history, warm) = match outcome {
            Ok(result) => result,
            Err(payload) => {
                self.jobs_failed += 1;
                let msg = kato_par::panic_message(payload.as_ref());
                return error_json(&request.id, &format!("job panicked: {msg}")).to_string();
            }
        };
        let degraded = request.deadline_ms.is_some() && history.len() < request.budget;
        let response = response_json(
            &request,
            &tech,
            &*problem,
            &history,
            false,
            degraded,
            warm.as_ref(),
        );
        self.jobs_served += 1;
        self.persist(JobResult {
            key,
            request,
            tech,
            history,
            warm,
            degraded,
        });
        response.to_string()
    }

    /// Appends a completed job to the bank (when attached) and caches it.
    /// Degraded (deadline-truncated) traces are persisted to neither: a
    /// partial search must not pollute the bank's archives or answer a
    /// later request that asked for the full budget. Yield runs are cached
    /// but never archived — their metric vector (with the appended
    /// `"yield"` column) does not align with nominal archives of the same
    /// scenario.
    fn persist(&mut self, job: JobResult) {
        if job.degraded {
            return;
        }
        if job.request.yield_samples.is_some() {
            self.cache.store(job.key, job.history, job.warm);
            return;
        }
        if let Some(bank) = self.bank.as_mut() {
            // A failed append must not take the daemon down mid-request;
            // the run still lives in the cache for this process.
            if let Err(e) = bank.append(&job.request.scenario, &job.tech, &job.history) {
                eprintln!("katod: bank append failed: {e}");
            }
        }
        self.cache.store(job.key, job.history, job.warm);
    }

    /// Handles a batch of request lines concurrently, returning responses
    /// in request order.
    ///
    /// Lines that fail to parse or resolve answer immediately; requests
    /// whose cache key is already cached (or duplicated *within* the
    /// batch) are answered from the single execution of that key. Distinct
    /// jobs run in parallel on the [`kato_par`] pool under
    /// [`kato_par::try_par_map`] — a job that panics answers *its* callers
    /// with an error response while every other job's results come back
    /// intact. Bank appends and cache stores happen sequentially
    /// afterwards.
    pub fn handle_batch(&mut self, lines: &[String]) -> Vec<String> {
        // Resolve every line first; collect the distinct keys to execute.
        // Each slot keeps its *own* request so duplicates still answer
        // with their caller's id.
        enum Slot {
            Ready(String),
            Cached(String, SizingRequest, String),
            Job(usize, SizingRequest, String),
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(lines.len());
        let mut jobs: Vec<(String, SizingRequest, String)> = Vec::new();
        let mut intake_failures = 0usize;
        for line in lines {
            if let Some(response) = self.try_handle_op(line) {
                slots.push(Slot::Ready(response));
                continue;
            }
            let request = match SizingRequest::parse(line) {
                Ok(r) => r,
                Err(e) => {
                    intake_failures += 1;
                    slots.push(Slot::Ready(error_json("", &e).to_string()));
                    continue;
                }
            };
            let tech = match request.build_problem(&self.registry) {
                Ok((_, tech)) => tech,
                Err(e) => {
                    intake_failures += 1;
                    slots.push(Slot::Ready(error_json(&request.id, &e).to_string()));
                    continue;
                }
            };
            let key = request.cache_key(&tech);
            if self.cache.contains(&key) {
                slots.push(Slot::Cached(key, request, tech));
            } else {
                let idx = match jobs.iter().position(|(k, _, _)| *k == key) {
                    Some(idx) => idx,
                    None => {
                        jobs.push((key, request.clone(), tech.clone()));
                        jobs.len() - 1
                    }
                };
                slots.push(Slot::Job(idx, request, tech));
            }
        }
        self.jobs_failed += intake_failures;

        // Execute distinct jobs concurrently with per-job panic isolation;
        // problems are rebuilt inside the worker so nothing non-Send
        // crosses threads. `Err` holds the message for the error response.
        let registry = &self.registry;
        let bank = self.bank.as_ref();
        let results: Vec<Result<JobResult, String>> =
            kato_par::try_par_map(&jobs, |(key, request, tech)| {
                let (problem, _) = request.build_problem(registry).map_err(|e| {
                    panic!("request resolved at intake no longer builds: {e}");
                })?;
                let settings = request_settings(request.budget, request.seed);
                let run_budget = request.deadline_ms.map(RunBudget::deadline_ms);
                // Same bank gating as the serial path: yield jobs run
                // bankless (metric vectors don't align with nominal runs).
                let job_bank = if request.yield_samples.is_some() {
                    None
                } else {
                    bank
                };
                let (history, warm) = run_with_bank(
                    job_bank,
                    &request.scenario,
                    tech,
                    &*problem,
                    settings,
                    run_budget,
                );
                let degraded = request.deadline_ms.is_some() && history.len() < request.budget;
                Ok::<JobResult, ()>(JobResult {
                    key: key.clone(),
                    request: request.clone(),
                    tech: tech.clone(),
                    history,
                    warm,
                    degraded,
                })
            })
            .into_iter()
            .map(|caught| match caught {
                Ok(Ok(job)) => Ok(job),
                Ok(Err(())) => unreachable!("intake re-build failure panics"),
                Err(msg) => Err(format!("job panicked: {msg}")),
            })
            .collect();

        // Render responses (each slot with its own request) before the
        // results move into the cache; duplicates within the batch count
        // as cache hits. A panicked job answers every one of its slots
        // with an error carrying that slot's request id.
        let mut job_hits = vec![0usize; results.len()];
        let mut served = 0usize;
        let mut failed = 0usize;
        let responses: Vec<String> = slots
            .iter()
            .map(|slot| match slot {
                Slot::Ready(text) => text.clone(),
                Slot::Job(idx, request, tech) => match &results[*idx] {
                    Err(msg) => {
                        failed += 1;
                        error_json(&request.id, msg).to_string()
                    }
                    Ok(job) => {
                        job_hits[*idx] += 1;
                        let problem = match request.build_problem(registry) {
                            Ok((p, _)) => p,
                            Err(e) => {
                                failed += 1;
                                return error_json(&request.id, &e).to_string();
                            }
                        };
                        served += 1;
                        response_json(
                            request,
                            tech,
                            &*problem,
                            &job.history,
                            job_hits[*idx] > 1,
                            job.degraded,
                            job.warm.as_ref(),
                        )
                        .to_string()
                    }
                },
                Slot::Cached(key, request, tech) => {
                    let Some(cached) = self.cache.hit(key) else {
                        failed += 1;
                        return error_json(&request.id, "cache entry evicted mid-batch")
                            .to_string();
                    };
                    let history = cached.history.clone();
                    let warm = cached.warm_source.clone();
                    let problem = match request.build_problem(&self.registry) {
                        Ok((p, _)) => p,
                        Err(e) => {
                            failed += 1;
                            return error_json(&request.id, &e).to_string();
                        }
                    };
                    served += 1;
                    response_json(
                        request,
                        tech,
                        &*problem,
                        &history,
                        true,
                        false,
                        warm.as_ref(),
                    )
                    .to_string()
                }
            })
            .collect();
        self.jobs_served += served;
        self.jobs_failed += failed;
        for job in results.into_iter().flatten() {
            self.persist(job);
        }
        responses
    }

    /// Serves newline-delimited JSON: one request per input line, one
    /// response line written (and flushed) per request, until EOF. Blank
    /// lines are skipped.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the transport (a malformed *request* is
    /// answered, not an error).
    pub fn serve(&mut self, input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle_line(&line);
            writeln!(output, "{response}")?;
            output.flush()?;
        }
        Ok(())
    }
}

impl Default for Daemon {
    fn default() -> Self {
        Daemon::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn probe_size_and_settings_clamp() {
        assert_eq!(warm_probe_size(10), 5);
        assert_eq!(warm_probe_size(4), 4);
        assert_eq!(warm_probe_size(0), 4);
        let s = request_settings(6, 1);
        assert_eq!(s.n_init, 5);
        assert_eq!(s.budget, 6);
        let s = request_settings(40, 1);
        assert_eq!(s.n_init, 10);
    }

    #[test]
    fn malformed_lines_answer_with_errors() {
        let mut d = Daemon::new();
        let resp = d.handle_line("not json");
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("error"));
        let resp = d.handle_line(r#"{"scenario":"nope"}"#);
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("error"));
        assert!(doc
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("opamp2"));
    }

    #[test]
    fn identical_requests_dedupe_through_the_cache() {
        let mut d = Daemon::new();
        let line = r#"{"id":"a","scenario":"opamp2","budget":12,"seed":3}"#.to_string();
        let first = d.handle_line(&line);
        let doc1 = Json::parse(&first).unwrap();
        assert_eq!(doc1.get("cache_hit").unwrap().as_bool(), Some(false));
        assert_eq!(doc1.get("n_evals").unwrap().as_f64(), Some(12.0));
        // Same request, different id: a hit with the same trace.
        let second = d.handle_line(r#"{"id":"b","scenario":"opamp2","budget":12,"seed":3}"#);
        let doc2 = Json::parse(&second).unwrap();
        assert_eq!(doc2.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(doc2.get("id").unwrap().as_str(), Some("b"));
        assert_eq!(
            doc1.get("best").unwrap().to_string(),
            doc2.get("best").unwrap().to_string()
        );
        assert_eq!(d.cache().len(), 1);
    }

    #[test]
    fn batch_answers_in_order_and_dedupes_within_the_batch() {
        let mut d = Daemon::new();
        let lines = vec![
            r#"{"id":"1","scenario":"opamp2","budget":10,"seed":2}"#.to_string(),
            "garbage".to_string(),
            r#"{"id":"2","scenario":"opamp2","budget":10,"seed":2}"#.to_string(),
        ];
        let out = d.handle_batch(&lines);
        assert_eq!(out.len(), 3);
        let a = Json::parse(&out[0]).unwrap();
        let err = Json::parse(&out[1]).unwrap();
        let b = Json::parse(&out[2]).unwrap();
        assert_eq!(a.get("id").unwrap().as_str(), Some("1"));
        assert_eq!(err.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(b.get("id").unwrap().as_str(), Some("2"));
        // Both non-error responses share one execution.
        assert_eq!(d.cache().len(), 1);
        assert_eq!(
            a.get("n_evals").unwrap().as_f64(),
            b.get("n_evals").unwrap().as_f64()
        );
    }

    #[test]
    fn health_op_reports_bank_cache_and_counters() {
        let mut d = Daemon::new();
        let doc = Json::parse(&d.handle_line(r#"{"op":"health"}"#)).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("op").unwrap().as_str(), Some("health"));
        let bank = doc.get("bank").unwrap();
        assert_eq!(bank.get("attached").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("jobs_served").unwrap().as_f64(), Some(0.0));
        // One served job, one failure, one cache hit later:
        let _ = d.handle_line(r#"{"id":"a","scenario":"opamp2","budget":8,"seed":3}"#);
        let _ = d.handle_line("garbage");
        let _ = d.handle_line(r#"{"id":"b","scenario":"opamp2","budget":8,"seed":3}"#);
        let doc = Json::parse(&d.handle_line(r#"{"op":"health"}"#)).unwrap();
        assert_eq!(doc.get("jobs_served").unwrap().as_f64(), Some(2.0));
        assert_eq!(doc.get("jobs_failed").unwrap().as_f64(), Some(1.0));
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("entries").unwrap().as_f64(), Some(1.0));
        assert_eq!(cache.get("hits").unwrap().as_f64(), Some(1.0));
        // Unknown ops error with the caller's id, not a parse rejection.
        let doc = Json::parse(&d.handle_line(r#"{"op":"restart","id":"x"}"#)).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(doc.get("id").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn a_panicking_job_answers_with_an_error_and_serving_continues() {
        let _guard = crate::faults::test_lock();
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        crate::faults::arm("sim_panic=5");
        let mut d = Daemon::new();
        let doc =
            Json::parse(&d.handle_line(r#"{"id":"boom","scenario":"opamp2","budget":8,"seed":5}"#))
                .unwrap();
        std::panic::set_hook(prev_hook);
        assert_eq!(doc.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(doc.get("id").unwrap().as_str(), Some("boom"));
        let msg = doc.get("error").unwrap().as_str().unwrap();
        assert!(msg.contains("panicked"), "{msg}");
        assert!(msg.contains("sim_panic"), "{msg}");
        assert_eq!(d.jobs_failed(), 1);
        // Disarmed, the same daemon keeps serving — including seed 5.
        crate::faults::disarm_all();
        let doc =
            Json::parse(&d.handle_line(r#"{"id":"ok","scenario":"opamp2","budget":8,"seed":5}"#))
                .unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(d.jobs_served(), 1);
    }

    #[test]
    fn deadlined_requests_degrade_and_skip_persistence() {
        let mut d = Daemon::new();
        let doc = Json::parse(&d.handle_line(
            r#"{"id":"d1","scenario":"opamp2","budget":30,"seed":4,"deadline_ms":1}"#,
        ))
        .unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("degraded").unwrap().as_bool(), Some(true));
        let n = doc.get("n_evals").unwrap().as_f64().unwrap();
        assert!(n < 30.0, "{n}");
        // The truncated trace was cached nowhere: the undeadlined rerun is
        // a fresh full run, not a replay of the partial one.
        assert_eq!(d.cache().len(), 0);
        let doc =
            Json::parse(&d.handle_line(r#"{"id":"d2","scenario":"opamp2","budget":30,"seed":4}"#))
                .unwrap();
        assert_eq!(doc.get("cache_hit").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("degraded").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("n_evals").unwrap().as_f64(), Some(30.0));
    }

    #[test]
    fn serve_loop_reads_writes_and_skips_blanks() {
        let mut d = Daemon::new();
        let input = "\n{\"id\":\"s1\",\"scenario\":\"opamp2\",\"budget\":8,\"seed\":5}\n\nbroken\n";
        let mut out = Vec::new();
        d.serve(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert_eq!(
            Json::parse(lines[0]).unwrap().get("id").unwrap().as_str(),
            Some("s1")
        );
        assert_eq!(
            Json::parse(lines[1])
                .unwrap()
                .get("status")
                .unwrap()
                .as_str(),
            Some("error")
        );
    }
}
