//! The request loop behind `katod`: parse → cache → (probe → align →
//! resume) or cold run → persist → respond.
//!
//! The daemon is deliberately synchronous at its edges — newline-delimited
//! JSON in, newline-delimited JSON out — and concurrent in the middle:
//! [`Daemon::handle_batch`] dedupes identical requests by cache key and
//! runs the distinct jobs over the [`kato_par`] pool, then applies bank and
//! cache writes sequentially so the persistent state never races.

use crate::bank::{Bank, SourceChoice};
use crate::cache::ResultCache;
use crate::protocol::{error_json, response_json, SizingRequest};
use kato::{BoSettings, Kato, Mode, RunHistory};
use kato_circuits::{random_design, ScenarioRegistry, SizingProblem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, Write};

/// Number of probe simulations spent before querying the bank: half the
/// cold init, floor 4 — enough target evidence to alignment-score archives
/// while leaving most of the init budget to the model-guided loop.
#[must_use]
pub fn warm_probe_size(n_init: usize) -> usize {
    (n_init / 2).max(4)
}

/// Optimiser settings for a request: the quick profile with `n_init`
/// clamped so tiny budgets still get at least one BO iteration.
#[must_use]
pub fn request_settings(budget: usize, seed: u64) -> BoSettings {
    let mut s = BoSettings::quick(budget, seed);
    s.n_init = s.n_init.min(budget.saturating_sub(1)).max(1);
    s
}

/// Runs one sizing job, warm-starting from `bank` when it holds archives
/// for the scenario.
///
/// The warm path spends [`warm_probe_size`] random probe simulations on
/// the target, asks the bank for the best-aligned archive
/// ([`Bank::select_source`]), attaches it as the transfer source and
/// *resumes* from the probe — so the probe counts toward the budget and a
/// warm start never simulates more than a cold one. With no bank, no
/// archives, or a bank miss, it degrades to the cold path (or a source-less
/// resume of the probe).
///
/// Shared by the daemon and the `kato run --bank` CLI path.
#[must_use]
pub fn run_with_bank(
    bank: Option<&Bank>,
    scenario: &str,
    tech: &str,
    problem: &dyn SizingProblem,
    settings: BoSettings,
) -> (RunHistory, Option<SourceChoice>) {
    let warm_bank = bank.filter(|b| b.has_candidates(scenario));
    let Some(bank) = warm_bank else {
        return (Kato::new(settings).run(problem, Mode::Constrained), None);
    };
    let probe_n = warm_probe_size(settings.n_init).min(settings.budget);
    let mut probe = RunHistory::new(&problem.name(), "KATO", settings.seed);
    let mut rng = StdRng::seed_from_u64(settings.seed);
    for _ in 0..probe_n {
        probe.evaluate_and_push(
            problem,
            &Mode::Constrained,
            random_design(problem.dim(), &mut rng),
        );
    }
    match bank.select_source(scenario, tech, problem.specs(), &probe) {
        Some((source, choice)) => {
            let label = format!("KATO+bank[{}]", choice.label);
            let history = Kato::new(settings)
                .with_source(source)
                .with_label(&label)
                .resume(problem, Mode::Constrained, probe);
            (history, Some(choice))
        }
        None => (
            Kato::new(settings).resume(problem, Mode::Constrained, probe),
            None,
        ),
    }
}

/// The `katod` daemon state: scenario registry, optional knowledge bank,
/// and the in-memory result cache.
#[derive(Debug)]
pub struct Daemon {
    registry: ScenarioRegistry,
    bank: Option<Bank>,
    cache: ResultCache,
}

/// Outcome of one executed (non-cached) job, before persistence.
struct JobResult {
    key: String,
    request: SizingRequest,
    tech: String,
    history: RunHistory,
    warm: Option<SourceChoice>,
}

impl Daemon {
    /// Creates a daemon over the standard scenario registry, bankless.
    #[must_use]
    pub fn new() -> Self {
        Daemon {
            registry: ScenarioRegistry::standard(),
            bank: None,
            cache: ResultCache::new(),
        }
    }

    /// Attaches a knowledge bank: completed runs are persisted to it and
    /// new requests query it for warm starts.
    #[must_use]
    pub fn with_bank(mut self, bank: Bank) -> Self {
        self.bank = Some(bank);
        self
    }

    /// The attached bank, if any.
    #[must_use]
    pub fn bank(&self) -> Option<&Bank> {
        self.bank.as_ref()
    }

    /// The result cache (read-only view).
    #[must_use]
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Handles one request line, returning one response line (never
    /// panics on malformed input — errors become error responses).
    pub fn handle_line(&mut self, line: &str) -> String {
        let request = match SizingRequest::parse(line) {
            Ok(r) => r,
            Err(e) => return error_json("", &e).to_string(),
        };
        let (problem, tech) = match request.build_problem(&self.registry) {
            Ok(p) => p,
            Err(e) => return error_json(&request.id, &e).to_string(),
        };
        let key = request.cache_key(&tech);
        if let Some(cached) = self.cache.hit(&key) {
            return response_json(
                &request,
                &tech,
                &*problem,
                &cached.history,
                true,
                cached.warm_source.as_ref(),
            )
            .to_string();
        }
        let settings = request_settings(request.budget, request.seed);
        let (history, warm) = run_with_bank(
            self.bank.as_ref(),
            &request.scenario,
            &tech,
            &*problem,
            settings,
        );
        let response = response_json(&request, &tech, &*problem, &history, false, warm.as_ref());
        self.persist(JobResult {
            key,
            request,
            tech,
            history,
            warm,
        });
        response.to_string()
    }

    /// Appends a completed job to the bank (when attached) and caches it.
    fn persist(&mut self, job: JobResult) {
        if let Some(bank) = self.bank.as_mut() {
            // A failed append must not take the daemon down mid-request;
            // the run still lives in the cache for this process.
            if let Err(e) = bank.append(&job.request.scenario, &job.tech, &job.history) {
                eprintln!("katod: bank append failed: {e}");
            }
        }
        self.cache.store(job.key, job.history, job.warm);
    }

    /// Handles a batch of request lines concurrently, returning responses
    /// in request order.
    ///
    /// Lines that fail to parse or resolve answer immediately; requests
    /// whose cache key is already cached (or duplicated *within* the
    /// batch) are answered from the single execution of that key. Distinct
    /// jobs run in parallel on the [`kato_par`] pool; bank appends and
    /// cache stores happen sequentially afterwards.
    pub fn handle_batch(&mut self, lines: &[String]) -> Vec<String> {
        // Resolve every line first; collect the distinct keys to execute.
        // Each slot keeps its *own* request so duplicates still answer
        // with their caller's id.
        enum Slot {
            Ready(String),
            Cached(String, SizingRequest, String),
            Job(usize, SizingRequest, String),
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(lines.len());
        let mut jobs: Vec<(String, SizingRequest, String)> = Vec::new();
        for line in lines {
            let request = match SizingRequest::parse(line) {
                Ok(r) => r,
                Err(e) => {
                    slots.push(Slot::Ready(error_json("", &e).to_string()));
                    continue;
                }
            };
            let tech = match request.build_problem(&self.registry) {
                Ok((_, tech)) => tech,
                Err(e) => {
                    slots.push(Slot::Ready(error_json(&request.id, &e).to_string()));
                    continue;
                }
            };
            let key = request.cache_key(&tech);
            if self.cache.contains(&key) {
                slots.push(Slot::Cached(key, request, tech));
            } else {
                let idx = match jobs.iter().position(|(k, _, _)| *k == key) {
                    Some(idx) => idx,
                    None => {
                        jobs.push((key, request.clone(), tech.clone()));
                        jobs.len() - 1
                    }
                };
                slots.push(Slot::Job(idx, request, tech));
            }
        }

        // Execute distinct jobs concurrently; problems are rebuilt inside
        // the worker so nothing non-Send crosses threads.
        let registry = &self.registry;
        let bank = self.bank.as_ref();
        let results: Vec<JobResult> = kato_par::par_map(&jobs, |(key, request, tech)| {
            let (problem, _) = request
                .build_problem(registry)
                .expect("resolved during batch intake");
            let settings = request_settings(request.budget, request.seed);
            let (history, warm) = run_with_bank(bank, &request.scenario, tech, &*problem, settings);
            JobResult {
                key: key.clone(),
                request: request.clone(),
                tech: tech.clone(),
                history,
                warm,
            }
        });

        // Render responses (each slot with its own request) before the
        // results move into the cache; duplicates within the batch count
        // as cache hits.
        let mut job_hits = vec![0usize; results.len()];
        let responses: Vec<String> = slots
            .iter()
            .map(|slot| match slot {
                Slot::Ready(text) => text.clone(),
                Slot::Job(idx, request, tech) => {
                    let job = &results[*idx];
                    job_hits[*idx] += 1;
                    let (problem, _) = request
                        .build_problem(registry)
                        .expect("resolved during batch intake");
                    response_json(
                        request,
                        tech,
                        &*problem,
                        &job.history,
                        job_hits[*idx] > 1,
                        job.warm.as_ref(),
                    )
                    .to_string()
                }
                Slot::Cached(key, request, tech) => {
                    let cached = self.cache.hit(key).expect("checked during intake");
                    let history = cached.history.clone();
                    let warm = cached.warm_source.clone();
                    let (problem, _) = request
                        .build_problem(&self.registry)
                        .expect("resolved during batch intake");
                    response_json(request, tech, &*problem, &history, true, warm.as_ref())
                        .to_string()
                }
            })
            .collect();
        for job in results {
            self.persist(job);
        }
        responses
    }

    /// Serves newline-delimited JSON: one request per input line, one
    /// response line written (and flushed) per request, until EOF. Blank
    /// lines are skipped.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the transport (a malformed *request* is
    /// answered, not an error).
    pub fn serve(&mut self, input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle_line(&line);
            writeln!(output, "{response}")?;
            output.flush()?;
        }
        Ok(())
    }
}

impl Default for Daemon {
    fn default() -> Self {
        Daemon::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn probe_size_and_settings_clamp() {
        assert_eq!(warm_probe_size(10), 5);
        assert_eq!(warm_probe_size(4), 4);
        assert_eq!(warm_probe_size(0), 4);
        let s = request_settings(6, 1);
        assert_eq!(s.n_init, 5);
        assert_eq!(s.budget, 6);
        let s = request_settings(40, 1);
        assert_eq!(s.n_init, 10);
    }

    #[test]
    fn malformed_lines_answer_with_errors() {
        let mut d = Daemon::new();
        let resp = d.handle_line("not json");
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("error"));
        let resp = d.handle_line(r#"{"scenario":"nope"}"#);
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("error"));
        assert!(doc
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("opamp2"));
    }

    #[test]
    fn identical_requests_dedupe_through_the_cache() {
        let mut d = Daemon::new();
        let line = r#"{"id":"a","scenario":"opamp2","budget":12,"seed":3}"#.to_string();
        let first = d.handle_line(&line);
        let doc1 = Json::parse(&first).unwrap();
        assert_eq!(doc1.get("cache_hit").unwrap().as_bool(), Some(false));
        assert_eq!(doc1.get("n_evals").unwrap().as_f64(), Some(12.0));
        // Same request, different id: a hit with the same trace.
        let second = d.handle_line(r#"{"id":"b","scenario":"opamp2","budget":12,"seed":3}"#);
        let doc2 = Json::parse(&second).unwrap();
        assert_eq!(doc2.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(doc2.get("id").unwrap().as_str(), Some("b"));
        assert_eq!(
            doc1.get("best").unwrap().to_string(),
            doc2.get("best").unwrap().to_string()
        );
        assert_eq!(d.cache().len(), 1);
    }

    #[test]
    fn batch_answers_in_order_and_dedupes_within_the_batch() {
        let mut d = Daemon::new();
        let lines = vec![
            r#"{"id":"1","scenario":"opamp2","budget":10,"seed":2}"#.to_string(),
            "garbage".to_string(),
            r#"{"id":"2","scenario":"opamp2","budget":10,"seed":2}"#.to_string(),
        ];
        let out = d.handle_batch(&lines);
        assert_eq!(out.len(), 3);
        let a = Json::parse(&out[0]).unwrap();
        let err = Json::parse(&out[1]).unwrap();
        let b = Json::parse(&out[2]).unwrap();
        assert_eq!(a.get("id").unwrap().as_str(), Some("1"));
        assert_eq!(err.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(b.get("id").unwrap().as_str(), Some("2"));
        // Both non-error responses share one execution.
        assert_eq!(d.cache().len(), 1);
        assert_eq!(
            a.get("n_evals").unwrap().as_f64(),
            b.get("n_evals").unwrap().as_f64()
        );
    }

    #[test]
    fn serve_loop_reads_writes_and_skips_blanks() {
        let mut d = Daemon::new();
        let input = "\n{\"id\":\"s1\",\"scenario\":\"opamp2\",\"budget\":8,\"seed\":5}\n\nbroken\n";
        let mut out = Vec::new();
        d.serve(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert_eq!(
            Json::parse(lines[0]).unwrap().get("id").unwrap().as_str(),
            Some("s1")
        );
        assert_eq!(
            Json::parse(lines[1])
                .unwrap()
                .get("status")
                .unwrap()
                .as_str(),
            Some("error")
        );
    }
}
