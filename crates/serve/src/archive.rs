//! Lossless `RunHistory` ⇄ JSON codec for the knowledge bank.
//!
//! The plain [`Json`] writer serialises non-finite numbers as `null` — fine
//! for report files, fatal for an archive that must round-trip a run
//! *exactly* (a real trace legitimately contains `−∞` scores and NaN
//! metrics from failed simulations, and the surrogates' imputation depends
//! on which is which). The codec therefore writes non-finite values as the
//! tagged strings `"NaN"`, `"Infinity"` and `"-Infinity"`, and the reader
//! accepts numbers, those tags, and `null` (→ NaN, for files written by the
//! lossy writer).

use crate::json::Json;
use kato::{EvalRecord, RunHistory};
use kato_circuits::Metrics;

/// Encodes a number losslessly: finite values as JSON numbers, non-finite
/// ones as tagged strings.
#[must_use]
pub fn num_to_json(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else if v.is_nan() {
        Json::str("NaN")
    } else if v > 0.0 {
        Json::str("Infinity")
    } else {
        Json::str("-Infinity")
    }
}

/// Decodes a number written by [`num_to_json`] (also tolerating `null` from
/// the lossy writer, which becomes NaN).
///
/// # Errors
///
/// A message naming the unexpected value.
pub fn num_from_json(v: &Json) -> Result<f64, String> {
    match v {
        Json::Num(n) => Ok(*n),
        Json::Null => Ok(f64::NAN),
        Json::Str(s) => match s.as_str() {
            "NaN" => Ok(f64::NAN),
            "Infinity" => Ok(f64::INFINITY),
            "-Infinity" => Ok(f64::NEG_INFINITY),
            other => Err(format!("expected number, got string '{other}'")),
        },
        other => Err(format!("expected number, got {other}")),
    }
}

fn nums_to_json(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| num_to_json(v)).collect())
}

fn nums_from_json(v: &Json, what: &str) -> Result<Vec<f64>, String> {
    v.as_arr()
        .ok_or_else(|| format!("'{what}' is not an array"))?
        .iter()
        .map(num_from_json)
        .collect()
}

/// Serialises a full run trace to the bank's archive schema.
#[must_use]
pub fn history_to_json(history: &RunHistory) -> Json {
    let evals: Vec<Json> = history
        .evals
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("x", nums_to_json(&e.x)),
                ("metrics", nums_to_json(e.metrics.values())),
                ("feasible", Json::Bool(e.feasible)),
                ("score", num_to_json(e.score)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("problem", Json::str(&history.problem)),
        ("method", Json::str(&history.method)),
        ("seed", Json::Num(history.seed as f64)),
        ("evals", Json::Arr(evals)),
    ])
}

/// Deserialises a run trace written by [`history_to_json`].
///
/// # Errors
///
/// A message naming the missing or malformed field.
pub fn history_from_json(doc: &Json) -> Result<RunHistory, String> {
    let problem = doc
        .get("problem")
        .and_then(Json::as_str)
        .ok_or("missing 'problem'")?;
    let method = doc
        .get("method")
        .and_then(Json::as_str)
        .ok_or("missing 'method'")?;
    let seed = doc
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("missing 'seed'")?;
    let mut history = RunHistory::new(problem, method, seed);
    let evals = doc
        .get("evals")
        .and_then(Json::as_arr)
        .ok_or("missing 'evals'")?;
    for (i, e) in evals.iter().enumerate() {
        let x = nums_from_json(
            e.get("x").ok_or_else(|| format!("eval {i}: missing 'x'"))?,
            "x",
        )?;
        let metrics = nums_from_json(
            e.get("metrics")
                .ok_or_else(|| format!("eval {i}: missing 'metrics'"))?,
            "metrics",
        )?;
        let feasible = e
            .get("feasible")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("eval {i}: missing 'feasible'"))?;
        let score = num_from_json(
            e.get("score")
                .ok_or_else(|| format!("eval {i}: missing 'score'"))?,
        )?;
        history.evals.push(EvalRecord {
            x,
            metrics: Metrics::new(metrics),
            feasible,
            score,
        });
    }
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_history() -> RunHistory {
        let mut h = RunHistory::new("opamp2_180nm", "KATO", 11);
        h.evals.push(EvalRecord {
            x: vec![0.25, 0.5],
            metrics: Metrics::new(vec![42.0, -3.5]),
            feasible: true,
            score: -42.0,
        });
        // An infeasible, NaN-metric row: the case the tagged encoding exists for.
        h.evals.push(EvalRecord {
            x: vec![0.1, 0.9],
            metrics: Metrics::new(vec![f64::NAN, f64::INFINITY]),
            feasible: false,
            score: f64::NEG_INFINITY,
        });
        h
    }

    #[test]
    fn roundtrip_preserves_everything_including_non_finite() {
        let h = sample_history();
        let text = history_to_json(&h).to_string();
        let back = history_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.problem, h.problem);
        assert_eq!(back.method, h.method);
        assert_eq!(back.seed, h.seed);
        assert_eq!(back.evals.len(), 2);
        assert_eq!(back.evals[0].x, h.evals[0].x);
        assert_eq!(back.evals[0].metrics.values(), h.evals[0].metrics.values());
        assert!(back.evals[0].feasible);
        assert_eq!(back.evals[0].score, -42.0);
        assert!(back.evals[1].metrics.get(0).is_nan());
        assert_eq!(back.evals[1].metrics.get(1), f64::INFINITY);
        assert!(!back.evals[1].feasible);
        assert_eq!(back.evals[1].score, f64::NEG_INFINITY);
    }

    #[test]
    fn num_codec_tags_non_finite() {
        assert_eq!(num_to_json(1.5), Json::Num(1.5));
        assert_eq!(num_to_json(f64::NAN), Json::str("NaN"));
        assert_eq!(num_to_json(f64::INFINITY), Json::str("Infinity"));
        assert_eq!(num_to_json(f64::NEG_INFINITY), Json::str("-Infinity"));
        assert!(num_from_json(&Json::Null).unwrap().is_nan());
        assert!(num_from_json(&Json::str("bogus")).is_err());
        assert!(num_from_json(&Json::Bool(true)).is_err());
    }

    #[test]
    fn malformed_documents_error_cleanly() {
        for bad in [
            "{}",
            r#"{"problem":"p","method":"m"}"#,
            r#"{"problem":"p","method":"m","seed":1,"evals":[{}]}"#,
            r#"{"problem":"p","method":"m","seed":1,"evals":[{"x":[0.1],"metrics":"nope","feasible":true,"score":0}]}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(history_from_json(&doc).is_err(), "accepted {bad}");
        }
    }
}
