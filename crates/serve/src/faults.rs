//! Deterministic failpoints for fault-injection testing.
//!
//! A *failpoint* is a named hook compiled into a production code path that
//! does nothing unless armed. Arming happens either through the
//! `KATO_FAILPOINTS` environment variable (read once, at first use) or
//! programmatically via [`arm`] — the spec format is the same:
//!
//! ```text
//! KATO_FAILPOINTS=bank_write=2,sim_panic=5
//! ```
//!
//! i.e. a comma-separated list of `name=value` pairs, where `value` is a
//! non-negative integer whose meaning depends on how the site consults the
//! failpoint:
//!
//! * **Countdown sites** call [`countdown`]: the failpoint fires on each of
//!   the first `value` hits, then stops. `bank_write=2` makes the first two
//!   bank write attempts fail with an injected I/O error (exercising the
//!   retry/backoff path); `bank_torn=1` tears the first archive write.
//! * **Match sites** call [`matches()`] with a caller-supplied key: the
//!   failpoint fires iff `key == value`. `sim_panic=5` panics every
//!   evaluation of the job whose request *seed* is 5 — deterministic
//!   regardless of how a batch interleaves across worker threads.
//!
//! There are deliberately no dependencies and no timers here: given the
//! same spec and the same request stream, the same faults fire, which is
//! what lets integration tests assert exact daemon behaviour under
//! injected crashes, torn writes and I/O failures.
//!
//! Registered failpoint names (sites live in this crate):
//!
//! | name         | kind      | effect when fired                                  |
//! |--------------|-----------|----------------------------------------------------|
//! | `bank_write` | countdown | bank file write attempt fails with an I/O error    |
//! | `bank_torn`  | countdown | bank file write leaves a torn (truncated) file     |
//! | `sim_panic`  | match     | evaluation panics for the job with `seed == value` |

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Parses a failpoint spec string (`name=N[,name=N...]`) into pairs.
///
/// Whitespace around names/values is tolerated; empty segments are
/// skipped; malformed segments (no `=`, non-integer value) are ignored
/// rather than panicking — a typo'd spec degrades to "not armed", never to
/// a crashed daemon.
#[must_use]
pub fn parse_spec(spec: &str) -> Vec<(String, u64)> {
    spec.split(',')
        .filter_map(|part| {
            let part = part.trim();
            let (name, value) = part.split_once('=')?;
            let name = name.trim();
            let value: u64 = value.trim().parse().ok()?;
            (!name.is_empty()).then(|| (name.to_string(), value))
        })
        .collect()
}

/// Armed values plus per-failpoint hit counters.
#[derive(Debug, Default)]
struct Registry {
    armed: HashMap<String, u64>,
    hits: HashMap<String, u64>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let armed = std::env::var("KATO_FAILPOINTS")
            .map(|spec| parse_spec(&spec).into_iter().collect())
            .unwrap_or_default();
        Mutex::new(Registry {
            armed,
            hits: HashMap::new(),
        })
    })
}

/// Replaces the armed failpoint table from a spec string and resets all
/// hit counters. Tests use this for in-process arming; production arming
/// goes through `KATO_FAILPOINTS`.
pub fn arm(spec: &str) {
    let mut reg = registry().lock().expect("failpoint registry poisoned");
    reg.armed = parse_spec(spec).into_iter().collect();
    reg.hits.clear();
}

/// Disarms every failpoint and resets hit counters.
pub fn disarm_all() {
    arm("");
}

/// The armed value for `name`, if any.
#[must_use]
pub fn armed(name: &str) -> Option<u64> {
    let reg = registry().lock().expect("failpoint registry poisoned");
    reg.armed.get(name).copied()
}

/// Countdown-site check: counts the hit and returns `true` while fewer
/// than the armed value of hits have occurred (i.e. the first `N` hits
/// fire). Always `false` when the failpoint is not armed (the hit is still
/// counted for [`hits`] observability).
#[must_use]
pub fn countdown(name: &str) -> bool {
    let mut reg = registry().lock().expect("failpoint registry poisoned");
    let count = reg.hits.entry(name.to_string()).or_insert(0);
    *count += 1;
    let fired_on = *count;
    reg.armed.get(name).is_some_and(|&n| fired_on <= n)
}

/// Match-site check: `true` iff `name` is armed and its value equals
/// `key`. Counts a hit only when it fires.
#[must_use]
pub fn matches(name: &str, key: u64) -> bool {
    let mut reg = registry().lock().expect("failpoint registry poisoned");
    let fires = reg.armed.get(name) == Some(&key);
    if fires {
        *reg.hits.entry(name.to_string()).or_insert(0) += 1;
    }
    fires
}

/// Number of recorded hits for `name` (fired hits for match sites, all
/// hits for countdown sites).
#[must_use]
pub fn hits(name: &str) -> u64 {
    let reg = registry().lock().expect("failpoint registry poisoned");
    reg.hits.get(name).copied().unwrap_or(0)
}

/// Serialises tests that mutate the process-global registry. A test that
/// calls [`arm`] / [`disarm_all`] should hold the returned guard for its
/// whole body so parallel test threads don't observe each other's armed
/// state.
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_is_lenient() {
        assert_eq!(
            parse_spec("bank_write=2, sim_panic = 5"),
            vec![("bank_write".to_string(), 2), ("sim_panic".to_string(), 5)]
        );
        assert!(parse_spec("").is_empty());
        assert!(parse_spec("noequals,=3,x=abc, =").is_empty());
        assert_eq!(parse_spec("ok=0"), vec![("ok".to_string(), 0)]);
    }

    // The registry is process-global, so the stateful checks live in ONE
    // test (cargo runs tests in parallel threads).
    #[test]
    fn arm_countdown_match_lifecycle() {
        let _guard = test_lock();
        arm("cd=2,mk=7");
        assert_eq!(armed("cd"), Some(2));
        assert_eq!(armed("nope"), None);
        // Countdown: first two hits fire, third passes.
        assert!(countdown("cd"));
        assert!(countdown("cd"));
        assert!(!countdown("cd"));
        assert_eq!(hits("cd"), 3);
        // Match: fires only on the armed key.
        assert!(!matches("mk", 6));
        assert!(matches("mk", 7));
        assert!(matches("mk", 7));
        assert_eq!(hits("mk"), 2);
        // Unarmed countdown never fires but still counts.
        assert!(!countdown("other"));
        assert_eq!(hits("other"), 1);
        disarm_all();
        assert_eq!(armed("cd"), None);
        assert_eq!(hits("cd"), 0);
        assert!(!matches("mk", 7));
    }
}
