//! Serde-free JSON: the value-tree builder the CLI has always used for its
//! result files, now paired with a matching parser — the read/write
//! roundtrip layer shared by the `katod` daemon, the knowledge bank, the
//! `kato` CLI and the tests.
//!
//! Output is deterministic (object keys keep insertion order) and
//! non-finite numbers — which a sizing run produces legitimately, e.g. a
//! `−∞` score before anything is feasible — are written as `null`,
//! matching what `JSON.parse`-style consumers expect. Layers that need a
//! *lossless* roundtrip of non-finite values (the archive store) encode
//! them as tagged strings instead; see [`crate::archive`].

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// A number; non-finite values serialise as `null`.
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Convenience constructor for an array of numbers.
    #[must_use]
    pub fn nums(values: &[f64]) -> Self {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    /// Parses a JSON document.
    ///
    /// Accepts exactly one value with optional surrounding whitespace.
    /// Numbers parse as `f64`; `\uXXXX` escapes (including surrogate
    /// pairs) are decoded.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match; `None` on non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite-or-not number (`Num` only).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (a `Num` that is a whole number
    /// in `u64` range).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's `(key, value)` pairs.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// `true` for `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Recursive-descent parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let text = std::str::from_utf8(chunk)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(text, 16)
            .map_err(|_| format!("invalid \\u escape '{text}' at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(format!(
                                            "invalid low surrogate at byte {}",
                                            self.pos
                                        ));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(format!(
                                        "lone high surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                        }
                        other => {
                            return Err(format!(
                                "invalid escape '\\{}' at byte {}",
                                other as char,
                                self.pos - 1
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Copy a whole UTF-8 scalar, not a byte at a time.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("unescaped control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest round-trip representation; integers print
                    // without a trailing ".0" which JSON also accepts.
                    write!(f, "{v}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape(s, &mut buf);
                write!(f, "\"{buf}\"")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    escape(k, &mut buf);
                    write!(f, "\"{buf}\":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialise() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures_keep_order() {
        let doc = Json::obj(vec![
            ("b", Json::Num(2.0)),
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Null])),
        ]);
        assert_eq!(doc.to_string(), "{\"b\":2,\"a\":[1,null]}");
    }

    #[test]
    fn nums_helper_maps_slice() {
        assert_eq!(Json::nums(&[1.0, 0.5]).to_string(), "[1,0.5]");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_structures() {
        let doc = Json::parse(r#"{"b":2,"a":[1,null,{"k":"v"}],"e":{},"f":[]}"#).unwrap();
        assert_eq!(doc.get("b").unwrap().as_f64(), Some(2.0));
        let a = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 3);
        assert!(a[1].is_null());
        assert_eq!(a[2].get("k").unwrap().as_str(), Some("v"));
        assert_eq!(doc.get("e").unwrap().as_obj().unwrap().len(), 0);
        assert_eq!(doc.get("f").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn parse_string_escapes() {
        let doc = Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\ndAé"));
        // Surrogate pair → astral codepoint.
        let doc = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("😀"));
        // Lone surrogate is rejected.
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "1.2.3",
            "[1]x",
            "\"\u{1}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        let doc = Json::obj(vec![
            ("name", Json::str("opamp2_180nm")),
            ("xs", Json::nums(&[0.25, 1e-9, 3.0])),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
            ("none", Json::Null),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn as_u64_accepts_whole_numbers_only() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::str("42").as_u64(), None);
    }
}
