//! The persistent knowledge bank: a directory of run archives that turns
//! every completed sizing run into warm-start material for future requests.
//!
//! # Layout
//!
//! ```text
//! <bank>/
//!   index.json                  {"version":1,"entries":[{scenario,tech,file,runs}]}
//!   opamp2__180nm.json          {"version":1,"scenario","tech","runs":[<RunHistory>...]}
//!   opamp2__40nm.json
//!   ...
//! ```
//!
//! One archive file per `scenario×tech`; the manifest indexes them so a
//! daemon can answer "what could warm-start this request?" without reading
//! every archive. Writes are atomic (temp file + rename) so a crashed
//! append never corrupts an archive, and every file carries
//! [`BANK_VERSION`] so a future schema change can migrate old banks
//! explicitly instead of misreading them.
//!
//! # Source selection
//!
//! [`Bank::select_source`] ranks every archived run of the requested
//! scenario — any tech node, which is the whole point: an `opamp2@180nm`
//! run warm-starts an `opamp2@40nm` request — by *alignment*: a cheap GP is
//! fitted to the candidate's objective column, a [`KatGp`] is aligned from
//! it onto the request's probe evaluations, and the candidate with the
//! highest mean predictive log-likelihood on the probe wins (the same
//! knowledge-alignment machinery the optimiser itself uses, paper §3.2).

use crate::archive::{history_from_json, history_to_json};
use crate::json::Json;
use kato::{RunHistory, SourceData};
use kato_circuits::{Goal, Spec, SpecKind};
use kato_gp::{Gp, GpConfig, KatConfig, KatGp, KernelSpec};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Schema version stamped into every bank file.
pub const BANK_VERSION: u64 = 1;

/// Minimum finite probe objective values needed to alignment-score
/// candidates (the probe is split into a fit half and a held-out scoring
/// half); below this the bank falls back to the largest archive.
pub const MIN_PROBE_POINTS: usize = 4;

/// Errors from opening, reading or appending to a bank.
#[derive(Debug)]
pub enum BankError {
    /// Filesystem failure (path and cause in the message).
    Io(String),
    /// A bank file exists but does not parse as the expected schema.
    Corrupt(String),
}

impl fmt::Display for BankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BankError::Io(msg) => write!(f, "bank I/O error: {msg}"),
            BankError::Corrupt(msg) => write!(f, "corrupt bank file: {msg}"),
        }
    }
}

impl std::error::Error for BankError {}

/// One row of the bank manifest: an archive file and what it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankEntry {
    /// Scenario name, e.g. `opamp2`.
    pub scenario: String,
    /// Tech-node name, e.g. `180nm`.
    pub tech: String,
    /// Archive file name relative to the bank directory.
    pub file: String,
    /// Number of runs archived in the file.
    pub runs: usize,
}

/// Which archived run a warm start was built from, and how well it aligned.
#[derive(Debug, Clone)]
pub struct SourceChoice {
    /// The archived run's problem label, e.g. `opamp2_180nm`.
    pub label: String,
    /// Tech node of the source archive.
    pub tech: String,
    /// `true` when the source is the same tech node as the request.
    pub same_tech: bool,
    /// Mean predictive log-likelihood of the aligned KAT-GP on the probe
    /// (NaN when selection fell back without scoring).
    pub alignment: f64,
    /// Number of evaluations in the source archive.
    pub n_evals: usize,
}

/// A knowledge bank rooted at a directory.
#[derive(Debug)]
pub struct Bank {
    dir: PathBuf,
    entries: Vec<BankEntry>,
}

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> BankError {
    BankError::Io(format!("{what} {}: {e}", path.display()))
}

/// Writes `content` to `path` atomically: temp file in the same directory,
/// flush, then rename over the destination.
fn atomic_write(path: &Path, content: &str) -> Result<(), BankError> {
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, "create", &e))?;
        f.write_all(content.as_bytes())
            .map_err(|e| io_err(&tmp, "write", &e))?;
        f.flush().map_err(|e| io_err(&tmp, "flush", &e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, "rename into", &e))
}

fn archive_file_name(scenario: &str, tech: &str) -> String {
    format!("{scenario}__{tech}.json")
}

impl Bank {
    /// Opens (creating if needed) a bank at `dir` and loads its manifest.
    ///
    /// # Errors
    ///
    /// [`BankError::Io`] when the directory or index cannot be
    /// created/read; [`BankError::Corrupt`] when an index exists but has
    /// the wrong schema or a newer [`BANK_VERSION`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, BankError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, "create bank dir", &e))?;
        let index = dir.join("index.json");
        let entries = if index.exists() {
            let text = fs::read_to_string(&index).map_err(|e| io_err(&index, "read", &e))?;
            let doc = Json::parse(&text)
                .map_err(|e| BankError::Corrupt(format!("{}: {e}", index.display())))?;
            let version = doc.get("version").and_then(Json::as_u64).ok_or_else(|| {
                BankError::Corrupt(format!("{}: missing 'version'", index.display()))
            })?;
            if version > BANK_VERSION {
                return Err(BankError::Corrupt(format!(
                    "{}: bank version {version} is newer than supported {BANK_VERSION}",
                    index.display()
                )));
            }
            let rows = doc.get("entries").and_then(Json::as_arr).ok_or_else(|| {
                BankError::Corrupt(format!("{}: missing 'entries'", index.display()))
            })?;
            let mut entries = Vec::with_capacity(rows.len());
            for row in rows {
                let field = |key: &str| {
                    row.get(key)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| {
                            BankError::Corrupt(format!(
                                "{}: entry missing '{key}'",
                                index.display()
                            ))
                        })
                };
                entries.push(BankEntry {
                    scenario: field("scenario")?,
                    tech: field("tech")?,
                    file: field("file")?,
                    runs: row.get("runs").and_then(Json::as_u64).unwrap_or(0) as usize,
                });
            }
            entries
        } else {
            Vec::new()
        };
        Ok(Bank { dir, entries })
    }

    /// The bank's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest rows, in archive order.
    #[must_use]
    pub fn entries(&self) -> &[BankEntry] {
        &self.entries
    }

    /// Manifest rows for one scenario (any tech node).
    #[must_use]
    pub fn candidates(&self, scenario: &str) -> Vec<&BankEntry> {
        self.entries
            .iter()
            .filter(|e| e.scenario == scenario)
            .collect()
    }

    /// `true` when the bank holds at least one run for the scenario.
    #[must_use]
    pub fn has_candidates(&self, scenario: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.scenario == scenario && e.runs > 0)
    }

    fn write_index(&self) -> Result<(), BankError> {
        let rows: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("scenario", Json::str(&e.scenario)),
                    ("tech", Json::str(&e.tech)),
                    ("file", Json::str(&e.file)),
                    ("runs", Json::Num(e.runs as f64)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("version", Json::Num(BANK_VERSION as f64)),
            ("entries", Json::Arr(rows)),
        ]);
        atomic_write(&self.dir.join("index.json"), &doc.to_string())
    }

    /// Appends a completed run to the `scenario×tech` archive, creating the
    /// file on first use, and updates the manifest. Both writes are atomic.
    ///
    /// # Errors
    ///
    /// [`BankError`] when the existing archive cannot be read back or
    /// either file cannot be written.
    pub fn append(
        &mut self,
        scenario: &str,
        tech: &str,
        history: &RunHistory,
    ) -> Result<(), BankError> {
        let file = archive_file_name(scenario, tech);
        let path = self.dir.join(&file);
        let mut runs = if path.exists() {
            self.read_archive(&path)?
        } else {
            Vec::new()
        };
        runs.push(history_to_json(history));
        let n_runs = runs.len();
        let doc = Json::obj(vec![
            ("version", Json::Num(BANK_VERSION as f64)),
            ("scenario", Json::str(scenario)),
            ("tech", Json::str(tech)),
            ("runs", Json::Arr(runs)),
        ]);
        atomic_write(&path, &doc.to_string())?;

        match self
            .entries
            .iter_mut()
            .find(|e| e.scenario == scenario && e.tech == tech)
        {
            Some(entry) => entry.runs = n_runs,
            None => self.entries.push(BankEntry {
                scenario: scenario.to_string(),
                tech: tech.to_string(),
                file,
                runs: n_runs,
            }),
        }
        self.write_index()
    }

    fn read_archive(&self, path: &Path) -> Result<Vec<Json>, BankError> {
        let text = fs::read_to_string(path).map_err(|e| io_err(path, "read", &e))?;
        let doc = Json::parse(&text)
            .map_err(|e| BankError::Corrupt(format!("{}: {e}", path.display())))?;
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| BankError::Corrupt(format!("{}: missing 'version'", path.display())))?;
        if version > BANK_VERSION {
            return Err(BankError::Corrupt(format!(
                "{}: archive version {version} is newer than supported {BANK_VERSION}",
                path.display()
            )));
        }
        Ok(doc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| BankError::Corrupt(format!("{}: missing 'runs'", path.display())))?
            .to_vec())
    }

    /// Loads every archived run for a `scenario×tech`.
    ///
    /// # Errors
    ///
    /// [`BankError`] when the archive exists but cannot be read or parsed.
    pub fn runs(&self, scenario: &str, tech: &str) -> Result<Vec<RunHistory>, BankError> {
        let path = self.dir.join(archive_file_name(scenario, tech));
        if !path.exists() {
            return Ok(Vec::new());
        }
        self.read_archive(&path)?
            .iter()
            .map(|doc| {
                history_from_json(doc)
                    .map_err(|e| BankError::Corrupt(format!("{}: {e}", path.display())))
            })
            .collect()
    }

    /// Selects the best-aligned archived run of `scenario` (any tech node)
    /// as a transfer source for a request on `target_tech`, given a probe
    /// history of real evaluations on the target problem.
    ///
    /// Candidates are scored by fitting a cheap GP to the candidate's
    /// objective column, aligning a KAT-GP from it onto the probe, and
    /// taking the KAT-GP's mean predictive log-likelihood on the probe.
    /// When the probe has fewer than [`MIN_PROBE_POINTS`] finite objective
    /// values (or every fit fails), selection falls back to the largest
    /// archive, same tech node first — warm data beats no data even
    /// unscored.
    ///
    /// Returns `None` when the bank holds no runs for the scenario.
    #[must_use]
    pub fn select_source(
        &self,
        scenario: &str,
        target_tech: &str,
        specs: &[Spec],
        probe: &RunHistory,
    ) -> Option<(SourceData, SourceChoice)> {
        // Collect (tech, run) candidates, same-tech archives first so ties
        // and fallbacks prefer them.
        let mut tech_order: Vec<&str> = Vec::new();
        for e in self.candidates(scenario) {
            if !tech_order.contains(&e.tech.as_str()) {
                tech_order.push(&e.tech);
            }
        }
        tech_order.sort_by_key(|t| usize::from(*t != target_tech));
        let mut runs: Vec<(String, RunHistory)> = Vec::new();
        for tech in tech_order {
            for run in self.runs(scenario, tech).ok()?.into_iter() {
                if !run.is_empty() {
                    runs.push((tech.to_string(), run));
                }
            }
        }
        if runs.is_empty() {
            return None;
        }

        let obj = objective_index(specs);
        let probe_pts = probe_objective(probe, obj);
        let mut best: Option<(f64, usize)> = None;
        if probe_pts.len() >= MIN_PROBE_POINTS {
            let (probe_xs, probe_ys): (Vec<Vec<f64>>, Vec<f64>) = probe_pts.into_iter().unzip();
            for (i, (_, run)) in runs.iter().enumerate() {
                let Some(score) = alignment_score(run, specs, obj, &probe_xs, &probe_ys) else {
                    continue;
                };
                if best.is_none_or(|(b, _)| score > b) {
                    best = Some((score, i));
                }
            }
        }
        // Fallback: largest archive in tech-preference order.
        let (alignment, idx) = best.unwrap_or_else(|| {
            let idx = runs
                .iter()
                .enumerate()
                .max_by_key(|(_, (_, run))| run.len())
                .map(|(i, _)| i)
                .unwrap_or(0);
            (f64::NAN, idx)
        });
        let (tech, run) = &runs[idx];
        let source = SourceData::from_history(run, specs);
        let choice = SourceChoice {
            label: run.problem.clone(),
            tech: tech.clone(),
            same_tech: tech == target_tech,
            alignment,
            n_evals: run.len(),
        };
        Some((source, choice))
    }
}

/// Metric index of the objective row in a spec table (0 if absent — every
/// registered problem has one).
fn objective_index(specs: &[Spec]) -> usize {
    specs
        .iter()
        .find_map(|s| match s.kind {
            SpecKind::Objective(Goal::Maximize | Goal::Minimize) => Some(s.metric),
            _ => None,
        })
        .unwrap_or(0)
}

/// Probe `(x, y_obj)` pairs with a finite objective metric.
fn probe_objective(probe: &RunHistory, obj: usize) -> Vec<(Vec<f64>, f64)> {
    probe
        .evals
        .iter()
        .filter(|e| obj < e.metrics.values().len() && e.metrics.get(obj).is_finite())
        .map(|e| (e.x.clone(), e.metrics.get(obj)))
        .collect()
}

/// Alignment of one candidate run to the probe: source GP on the
/// candidate's objective column → KAT-GP aligned onto *half* the probe →
/// mean predictive log-likelihood on the **held-out** half. Scoring on
/// held-out points is essential: the KAT encoder/decoder is flexible
/// enough to fit any few training points from any source, so in-sample
/// likelihood measures model capacity, while held-out likelihood measures
/// whether the source archive actually generalises onto the target.
/// `None` when either fit fails.
fn alignment_score(
    run: &RunHistory,
    specs: &[Spec],
    obj: usize,
    probe_xs: &[Vec<f64>],
    probe_ys: &[f64],
) -> Option<f64> {
    let source = SourceData::from_history(run, specs);
    let col = source.columns.get(obj)?;
    let gp_cfg = GpConfig {
        seed: run.seed,
        ..GpConfig::fast()
    };
    let source_gp = Gp::fit(
        KernelSpec::ArdRbf { dim: source.dim },
        &source.xs,
        col,
        &gp_cfg,
    )
    .ok()?;
    let kat_cfg = KatConfig {
        seed: run.seed,
        ..KatConfig::fast()
    };
    // Even-indexed probe points fit the alignment; odd-indexed score it.
    let (mut fit_xs, mut fit_ys) = (Vec::new(), Vec::new());
    let (mut held_xs, mut held_ys) = (Vec::new(), Vec::new());
    for (i, (x, &y)) in probe_xs.iter().zip(probe_ys).enumerate() {
        if i % 2 == 0 {
            fit_xs.push(x.clone());
            fit_ys.push(y);
        } else {
            held_xs.push(x.clone());
            held_ys.push(y);
        }
    }
    let kat = KatGp::fit(&source_gp, &fit_xs, &fit_ys, &kat_cfg).ok()?;
    let ll = kat.mean_log_likelihood(&held_xs, &held_ys);
    ll.is_finite().then_some(ll)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato::{BoSettings, Kato, Mode};
    use kato_circuits::{Metrics, SizingProblem, VarSpec};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kato_bank_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// 1-D toy: maximise `1−(x−c)²` s.t. `x ≥ 0.2`; the centre `c`
    /// distinguishes "tech nodes". With `flat`, the objective carries no
    /// information at all — a constant response that no encoder/decoder
    /// pair can align onto a varying target (the KAT decoder of a constant
    /// is a constant), the model of an archive whose simulations returned
    /// garbage.
    struct Toy {
        c: f64,
        flat: bool,
        name: String,
        vars: Vec<VarSpec>,
        specs: Vec<Spec>,
    }

    impl Toy {
        fn new(c: f64, name: &str) -> Self {
            Toy {
                c,
                flat: false,
                name: name.to_string(),
                vars: vec![VarSpec::lin("a", 0.0, 1.0)],
                specs: vec![
                    Spec {
                        metric: 0,
                        kind: SpecKind::Objective(Goal::Maximize),
                    },
                    Spec {
                        metric: 1,
                        kind: SpecKind::GreaterEq(0.2),
                    },
                ],
            }
        }
    }

    impl SizingProblem for Toy {
        fn name(&self) -> String {
            self.name.clone()
        }
        fn variables(&self) -> &[VarSpec] {
            &self.vars
        }
        fn metric_names(&self) -> &[&'static str] {
            &["obj", "con"]
        }
        fn specs(&self) -> &[Spec] {
            &self.specs
        }
        fn evaluate(&self, x: &[f64]) -> Metrics {
            let obj = if self.flat {
                0.3
            } else {
                1.0 - (x[0] - self.c).powi(2)
            };
            Metrics::new(vec![obj, x[0]])
        }
        fn expert_design(&self) -> Vec<f64> {
            vec![self.c]
        }
    }

    fn short_run(problem: &dyn SizingProblem, seed: u64) -> RunHistory {
        Kato::new(BoSettings::quick(16, seed)).run(problem, Mode::Constrained)
    }

    /// A spread archive: `n` random designs evaluated on `problem`. An
    /// optimiser trace clusters near its optimum, which leaves the source
    /// GP extrapolating (confidently wrong) over most of the space; random
    /// coverage is what makes alignment quality attributable to the
    /// *source physics* rather than to where the source run happened to
    /// dwell.
    fn spread_run(problem: &dyn SizingProblem, n: usize, seed: u64) -> RunHistory {
        let mut h = RunHistory::new(&problem.name(), "KATO", seed);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        for _ in 0..n {
            let x = kato_circuits::random_design(problem.dim(), &mut rng);
            h.evaluate_and_push(problem, &Mode::Constrained, x);
        }
        h
    }

    #[test]
    fn append_then_reload_roundtrips_runs() {
        let dir = tmp_dir("roundtrip");
        let toy = Toy::new(0.6, "toy_180nm");
        let run = short_run(&toy, 3);
        {
            let mut bank = Bank::open(&dir).unwrap();
            bank.append("toy", "180nm", &run).unwrap();
            bank.append("toy", "180nm", &short_run(&toy, 5)).unwrap();
        }
        // Fresh open reads the manifest back from disk.
        let bank = Bank::open(&dir).unwrap();
        assert_eq!(bank.entries().len(), 1);
        assert_eq!(bank.entries()[0].runs, 2);
        assert!(bank.has_candidates("toy"));
        assert!(!bank.has_candidates("other"));
        let runs = bank.runs("toy", "180nm").unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].evals.len(), run.evals.len());
        assert_eq!(runs[0].evals[0].x, run.evals[0].x);
        assert!(bank.runs("toy", "40nm").unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn select_source_prefers_the_aligned_archive() {
        let dir = tmp_dir("select");
        let near = Toy::new(0.55, "toy_180nm"); // close to the target physics
        let mut far = Toy::new(0.05, "toy_28nm"); // zero-information archive
        far.flat = true;
        let target = Toy::new(0.6, "toy_40nm");
        let mut bank = Bank::open(&dir).unwrap();
        bank.append("toy", "180nm", &spread_run(&near, 24, 3))
            .unwrap();
        bank.append("toy", "28nm", &spread_run(&far, 24, 4))
            .unwrap();

        let mut probe = RunHistory::new(&target.name(), "probe", 1);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        for _ in 0..16 {
            let x = kato_circuits::random_design(1, &mut rng);
            probe.evaluate_and_push(&target, &Mode::Constrained, x);
        }
        let (source, choice) = bank
            .select_source("toy", "40nm", target.specs(), &probe)
            .unwrap();
        assert_eq!(choice.tech, "180nm", "alignment {:.3}", choice.alignment);
        assert_eq!(source.label, "toy_180nm");
        assert!(!choice.same_tech);
        assert!(choice.alignment.is_finite());
        assert!(choice.n_evals > 0);
        // Unknown scenario → no source.
        assert!(bank
            .select_source("nope", "40nm", target.specs(), &probe)
            .is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn select_source_falls_back_without_probe_data() {
        let dir = tmp_dir("fallback");
        let toy = Toy::new(0.5, "toy_180nm");
        let mut bank = Bank::open(&dir).unwrap();
        bank.append("toy", "180nm", &short_run(&toy, 9)).unwrap();
        // Empty probe: too few points to score → fallback still warm-starts.
        let probe = RunHistory::new("toy_40nm", "probe", 1);
        let (source, choice) = bank
            .select_source("toy", "40nm", toy.specs(), &probe)
            .unwrap();
        assert!(choice.alignment.is_nan());
        assert_eq!(source.xs.len(), choice.n_evals);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_index_is_reported_not_misread() {
        let dir = tmp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("index.json"), "{not json").unwrap();
        assert!(matches!(Bank::open(&dir), Err(BankError::Corrupt(_))));
        fs::write(dir.join("index.json"), r#"{"version":99,"entries":[]}"#).unwrap();
        let err = Bank::open(&dir).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
