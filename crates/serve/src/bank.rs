//! The persistent knowledge bank: a directory of run archives that turns
//! every completed sizing run into warm-start material for future requests.
//!
//! # Layout
//!
//! ```text
//! <bank>/
//!   index.json                  {"version":1,"entries":[{scenario,tech,file,runs}]}
//!   opamp2__180nm.json          {"version":1,"scenario","tech","runs":[<RunHistory>...]}
//!   opamp2__40nm.json
//!   ...
//! ```
//!
//! One archive file per `scenario×tech`; the manifest indexes them so a
//! daemon can answer "what could warm-start this request?" without reading
//! every archive. Writes are atomic (temp file + rename) so a crashed
//! append never corrupts an archive, and every file carries
//! [`BANK_VERSION`] so a future schema change can migrate old banks
//! explicitly instead of misreading them.
//!
//! # Self-healing
//!
//! A production bank must survive what a crash or a bad disk leaves
//! behind, so [`Bank::open`] *recovers* instead of refusing:
//!
//! * every archive file on disk is validated (parse + version + run
//!   decode); a torn, corrupt or newer-version file is **quarantined** —
//!   renamed to `<name>.quarantine`, preserving the bytes for forensics —
//!   and the bank warm-starts from the remaining archives;
//! * a corrupt or missing `index.json` is rebuilt from the surviving
//!   archive files (the index is a manifest, not the source of truth);
//! * writes retry with bounded exponential backoff on I/O errors before
//!   the error surfaces, and an append that finds its existing archive
//!   corrupt quarantines it and starts the archive fresh.
//!
//! [`Bank::quarantined_files`] reports how many `.quarantine` files the
//! directory holds — surfaced by the daemon's `{"op":"health"}` response.
//!
//! # Source selection
//!
//! [`Bank::select_source`] ranks every archived run of the requested
//! scenario — any tech node, which is the whole point: an `opamp2@180nm`
//! run warm-starts an `opamp2@40nm` request — by *alignment*: a cheap GP is
//! fitted to the candidate's objective column, a [`KatGp`] is aligned from
//! it onto the request's probe evaluations, and the candidate with the
//! highest mean predictive log-likelihood on the probe wins (the same
//! knowledge-alignment machinery the optimiser itself uses, paper §3.2).

use crate::archive::{history_from_json, history_to_json};
use crate::json::Json;
use kato::{RunHistory, SourceData};
use kato_circuits::{Goal, Spec, SpecKind};
use kato_gp::{Gp, GpConfig, KatConfig, KatGp, KernelSpec};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Schema version stamped into every bank file.
pub const BANK_VERSION: u64 = 1;

/// Write attempts before an I/O error surfaces to the caller.
pub const WRITE_ATTEMPTS: u32 = 3;

/// Base backoff between write retries (doubles per retry).
const WRITE_BACKOFF: std::time::Duration = std::time::Duration::from_millis(5);

/// Minimum finite probe objective values needed to alignment-score
/// candidates (the probe is split into a fit half and a held-out scoring
/// half); below this the bank falls back to the largest archive.
pub const MIN_PROBE_POINTS: usize = 4;

/// Errors from opening, reading or appending to a bank.
#[derive(Debug)]
pub enum BankError {
    /// Filesystem failure (path and cause in the message).
    Io(String),
    /// A bank file exists but does not parse as the expected schema.
    Corrupt(String),
}

impl fmt::Display for BankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BankError::Io(msg) => write!(f, "bank I/O error: {msg}"),
            BankError::Corrupt(msg) => write!(f, "corrupt bank file: {msg}"),
        }
    }
}

impl std::error::Error for BankError {}

/// One row of the bank manifest: an archive file and what it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankEntry {
    /// Scenario name, e.g. `opamp2`.
    pub scenario: String,
    /// Tech-node name, e.g. `180nm`.
    pub tech: String,
    /// Archive file name relative to the bank directory.
    pub file: String,
    /// Number of runs archived in the file.
    pub runs: usize,
}

/// Which archived run a warm start was built from, and how well it aligned.
#[derive(Debug, Clone)]
pub struct SourceChoice {
    /// The archived run's problem label, e.g. `opamp2_180nm`.
    pub label: String,
    /// Tech node of the source archive.
    pub tech: String,
    /// `true` when the source is the same tech node as the request.
    pub same_tech: bool,
    /// Mean predictive log-likelihood of the aligned KAT-GP on the probe
    /// (NaN when selection fell back without scoring).
    pub alignment: f64,
    /// Number of evaluations in the source archive.
    pub n_evals: usize,
}

/// A knowledge bank rooted at a directory.
#[derive(Debug)]
pub struct Bank {
    dir: PathBuf,
    entries: Vec<BankEntry>,
    /// Files quarantined while opening this bank (recovery events this
    /// process witnessed; see [`Bank::quarantined_files`] for the
    /// persistent on-disk count).
    quarantined_on_open: usize,
}

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> BankError {
    BankError::Io(format!("{what} {}: {e}", path.display()))
}

/// One write attempt: temp file in the same directory, flush, then rename
/// over the destination. The `bank_write` failpoint injects an I/O error
/// here; `bank_torn` simulates a crash that bypassed the temp+rename
/// protocol and left a truncated destination file (reported as success,
/// like a real torn write would be).
fn atomic_write_once(path: &Path, content: &str) -> Result<(), BankError> {
    if crate::faults::countdown("bank_write") {
        return Err(BankError::Io(format!(
            "injected bank_write failure for {}",
            path.display()
        )));
    }
    if crate::faults::countdown("bank_torn") {
        let half = &content.as_bytes()[..content.len() / 2];
        fs::write(path, half).map_err(|e| io_err(path, "torn write", &e))?;
        return Ok(());
    }
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, "create", &e))?;
        f.write_all(content.as_bytes())
            .map_err(|e| io_err(&tmp, "write", &e))?;
        f.flush().map_err(|e| io_err(&tmp, "flush", &e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, "rename into", &e))
}

/// Atomic write with bounded retry: transient I/O errors back off
/// exponentially ([`WRITE_BACKOFF`], doubling) for up to
/// [`WRITE_ATTEMPTS`] attempts before the last error surfaces.
fn atomic_write(path: &Path, content: &str) -> Result<(), BankError> {
    let mut delay = WRITE_BACKOFF;
    let mut attempt = 1;
    loop {
        match atomic_write_once(path, content) {
            Ok(()) => return Ok(()),
            Err(BankError::Io(_)) if attempt < WRITE_ATTEMPTS => {
                std::thread::sleep(delay);
                delay *= 2;
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Moves a damaged file aside to `<file name>.quarantine` (clobbering any
/// previous quarantine of the same file) so recovery preserves the bytes
/// instead of deleting evidence.
fn quarantine(path: &Path) -> Result<PathBuf, BankError> {
    let mut name = path
        .file_name()
        .ok_or_else(|| BankError::Io(format!("no file name in {}", path.display())))?
        .to_os_string();
    name.push(".quarantine");
    let dest = path.with_file_name(name);
    fs::rename(path, &dest).map_err(|e| io_err(path, "quarantine", &e))?;
    Ok(dest)
}

fn archive_file_name(scenario: &str, tech: &str) -> String {
    format!("{scenario}__{tech}.json")
}

/// Reads and validates the index manifest.
fn read_index(path: &Path) -> Result<Vec<BankEntry>, BankError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, "read", &e))?;
    let doc =
        Json::parse(&text).map_err(|e| BankError::Corrupt(format!("{}: {e}", path.display())))?;
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| BankError::Corrupt(format!("{}: missing 'version'", path.display())))?;
    if version > BANK_VERSION {
        return Err(BankError::Corrupt(format!(
            "{}: bank version {version} is newer than supported {BANK_VERSION}",
            path.display()
        )));
    }
    let rows = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| BankError::Corrupt(format!("{}: missing 'entries'", path.display())))?;
    let mut entries = Vec::with_capacity(rows.len());
    for row in rows {
        let field = |key: &str| {
            row.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    BankError::Corrupt(format!("{}: entry missing '{key}'", path.display()))
                })
        };
        entries.push(BankEntry {
            scenario: field("scenario")?,
            tech: field("tech")?,
            file: field("file")?,
            runs: row.get("runs").and_then(Json::as_u64).unwrap_or(0) as usize,
        });
    }
    Ok(entries)
}

/// Parses an archive file and checks its schema version.
fn read_archive_doc(path: &Path) -> Result<Json, BankError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, "read", &e))?;
    let doc =
        Json::parse(&text).map_err(|e| BankError::Corrupt(format!("{}: {e}", path.display())))?;
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| BankError::Corrupt(format!("{}: missing 'version'", path.display())))?;
    if version > BANK_VERSION {
        return Err(BankError::Corrupt(format!(
            "{}: archive version {version} is newer than supported {BANK_VERSION}",
            path.display()
        )));
    }
    Ok(doc)
}

/// Fully validates one archive file (schema, fields, and that every run
/// decodes) and distils it into a manifest entry.
fn read_archive_entry(path: &Path, file: &str) -> Result<BankEntry, BankError> {
    let doc = read_archive_doc(path)?;
    let field = |key: &str| {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| BankError::Corrupt(format!("{}: missing '{key}'", path.display())))
    };
    let scenario = field("scenario")?;
    let tech = field("tech")?;
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or_else(|| BankError::Corrupt(format!("{}: missing 'runs'", path.display())))?;
    for run in runs {
        history_from_json(run)
            .map_err(|e| BankError::Corrupt(format!("{}: {e}", path.display())))?;
    }
    Ok(BankEntry {
        scenario,
        tech,
        file: file.to_string(),
        runs: runs.len(),
    })
}

impl Bank {
    /// Opens (creating if needed) a bank at `dir`, validating every
    /// archive file and **recovering** from damage instead of refusing:
    /// corrupt/torn/newer-version archives and a corrupt index are
    /// quarantined (renamed to `<name>.quarantine`) and the manifest is
    /// rebuilt from the surviving archives.
    ///
    /// # Errors
    ///
    /// [`BankError::Io`] when the directory cannot be created or read, or
    /// when quarantining/rewriting fails — i.e. only when the filesystem
    /// itself refuses; damaged *content* never fails an open.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, BankError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, "create bank dir", &e))?;
        let mut quarantined_on_open = 0;

        // The index is a manifest, not the source of truth: read it for
        // entry ordering, quarantine it if damaged.
        let index_path = dir.join("index.json");
        let index_entries: Vec<BankEntry> = if index_path.exists() {
            match read_index(&index_path) {
                Ok(entries) => entries,
                Err(BankError::Io(e)) => return Err(BankError::Io(e)),
                Err(BankError::Corrupt(_)) => {
                    quarantine(&index_path)?;
                    quarantined_on_open += 1;
                    Vec::new()
                }
            }
        } else {
            Vec::new()
        };

        // Validate every archive file on disk — including ones the index
        // never heard of (a crash between archive and index writes).
        let mut files: Vec<String> = Vec::new();
        let listing = fs::read_dir(&dir).map_err(|e| io_err(&dir, "read bank dir", &e))?;
        for item in listing {
            let item = item.map_err(|e| io_err(&dir, "read bank dir", &e))?;
            let name = item.file_name().to_string_lossy().into_owned();
            if name.ends_with(".json") && name != "index.json" {
                files.push(name);
            }
        }
        // Index order first (stable across reopens), then newcomers sorted.
        files.sort_by_key(|f| {
            let known = index_entries.iter().position(|e| &e.file == f);
            (known.unwrap_or(usize::MAX), f.clone())
        });
        let mut entries = Vec::with_capacity(files.len());
        for file in files {
            let path = dir.join(&file);
            match read_archive_entry(&path, &file) {
                Ok(entry) => entries.push(entry),
                Err(BankError::Io(e)) => return Err(BankError::Io(e)),
                Err(BankError::Corrupt(_)) => {
                    quarantine(&path)?;
                    quarantined_on_open += 1;
                }
            }
        }

        let bank = Bank {
            dir,
            entries,
            quarantined_on_open,
        };
        // Persist the healed manifest whenever it disagrees with disk.
        if bank.entries != index_entries || quarantined_on_open > 0 {
            bank.write_index()?;
        }
        Ok(bank)
    }

    /// Number of files this open quarantined while recovering.
    #[must_use]
    pub fn quarantined_on_open(&self) -> usize {
        self.quarantined_on_open
    }

    /// Number of `.quarantine` files currently in the bank directory —
    /// the persistent record of every recovery, surfaced by the daemon's
    /// health report.
    #[must_use]
    pub fn quarantined_files(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|listing| {
                listing
                    .flatten()
                    .filter(|item| item.file_name().to_string_lossy().ends_with(".quarantine"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Total archived runs across all entries.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.entries.iter().map(|e| e.runs).sum()
    }

    /// The bank's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest rows, in archive order.
    #[must_use]
    pub fn entries(&self) -> &[BankEntry] {
        &self.entries
    }

    /// Manifest rows for one scenario (any tech node).
    #[must_use]
    pub fn candidates(&self, scenario: &str) -> Vec<&BankEntry> {
        self.entries
            .iter()
            .filter(|e| e.scenario == scenario)
            .collect()
    }

    /// `true` when the bank holds at least one run for the scenario.
    #[must_use]
    pub fn has_candidates(&self, scenario: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.scenario == scenario && e.runs > 0)
    }

    fn write_index(&self) -> Result<(), BankError> {
        let rows: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("scenario", Json::str(&e.scenario)),
                    ("tech", Json::str(&e.tech)),
                    ("file", Json::str(&e.file)),
                    ("runs", Json::Num(e.runs as f64)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("version", Json::Num(BANK_VERSION as f64)),
            ("entries", Json::Arr(rows)),
        ]);
        atomic_write(&self.dir.join("index.json"), &doc.to_string())
    }

    /// Appends a completed run to the `scenario×tech` archive, creating the
    /// file on first use, and updates the manifest. Both writes are atomic
    /// and retry with backoff on transient I/O errors; an existing archive
    /// found corrupt (e.g. torn by a crash since open) is quarantined and
    /// the archive restarts from this run rather than failing the append.
    ///
    /// # Errors
    ///
    /// [`BankError::Io`] when either file cannot be written (after
    /// retries) or the damaged archive cannot be quarantined.
    pub fn append(
        &mut self,
        scenario: &str,
        tech: &str,
        history: &RunHistory,
    ) -> Result<(), BankError> {
        let file = archive_file_name(scenario, tech);
        let path = self.dir.join(&file);
        let mut runs = if path.exists() {
            match self.read_archive(&path) {
                Ok(runs) => runs,
                Err(BankError::Corrupt(_)) => {
                    quarantine(&path)?;
                    Vec::new()
                }
                Err(e) => return Err(e),
            }
        } else {
            Vec::new()
        };
        runs.push(history_to_json(history));
        let n_runs = runs.len();
        let doc = Json::obj(vec![
            ("version", Json::Num(BANK_VERSION as f64)),
            ("scenario", Json::str(scenario)),
            ("tech", Json::str(tech)),
            ("runs", Json::Arr(runs)),
        ]);
        atomic_write(&path, &doc.to_string())?;

        match self
            .entries
            .iter_mut()
            .find(|e| e.scenario == scenario && e.tech == tech)
        {
            Some(entry) => entry.runs = n_runs,
            None => self.entries.push(BankEntry {
                scenario: scenario.to_string(),
                tech: tech.to_string(),
                file,
                runs: n_runs,
            }),
        }
        self.write_index()
    }

    fn read_archive(&self, path: &Path) -> Result<Vec<Json>, BankError> {
        let doc = read_archive_doc(path)?;
        Ok(doc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| BankError::Corrupt(format!("{}: missing 'runs'", path.display())))?
            .to_vec())
    }

    /// Loads every archived run for a `scenario×tech`.
    ///
    /// # Errors
    ///
    /// [`BankError`] when the archive exists but cannot be read or parsed.
    pub fn runs(&self, scenario: &str, tech: &str) -> Result<Vec<RunHistory>, BankError> {
        let path = self.dir.join(archive_file_name(scenario, tech));
        if !path.exists() {
            return Ok(Vec::new());
        }
        self.read_archive(&path)?
            .iter()
            .map(|doc| {
                history_from_json(doc)
                    .map_err(|e| BankError::Corrupt(format!("{}: {e}", path.display())))
            })
            .collect()
    }

    /// Selects the best-aligned archived run of `scenario` (any tech node)
    /// as a transfer source for a request on `target_tech`, given a probe
    /// history of real evaluations on the target problem.
    ///
    /// Candidates are scored by fitting a cheap GP to the candidate's
    /// objective column, aligning a KAT-GP from it onto the probe, and
    /// taking the KAT-GP's mean predictive log-likelihood on the probe.
    /// When the probe has fewer than [`MIN_PROBE_POINTS`] finite objective
    /// values (or every fit fails), selection falls back to the largest
    /// archive, same tech node first — warm data beats no data even
    /// unscored.
    ///
    /// Returns `None` when the bank holds no runs for the scenario.
    #[must_use]
    pub fn select_source(
        &self,
        scenario: &str,
        target_tech: &str,
        specs: &[Spec],
        probe: &RunHistory,
    ) -> Option<(SourceData, SourceChoice)> {
        // Collect (tech, run) candidates, same-tech archives first so ties
        // and fallbacks prefer them.
        let mut tech_order: Vec<&str> = Vec::new();
        for e in self.candidates(scenario) {
            if !tech_order.contains(&e.tech.as_str()) {
                tech_order.push(&e.tech);
            }
        }
        tech_order.sort_by_key(|t| usize::from(*t != target_tech));
        let mut runs: Vec<(String, RunHistory)> = Vec::new();
        for tech in tech_order {
            // An archive that went bad since open (torn by a concurrent
            // crash) removes only its own candidates — never the whole
            // selection; open() will quarantine it next time.
            let Ok(archived) = self.runs(scenario, tech) else {
                continue;
            };
            for run in archived {
                if !run.is_empty() {
                    runs.push((tech.to_string(), run));
                }
            }
        }
        if runs.is_empty() {
            return None;
        }

        let obj = objective_index(specs);
        let probe_pts = probe_objective(probe, obj);
        let mut best: Option<(f64, usize)> = None;
        if probe_pts.len() >= MIN_PROBE_POINTS {
            let (probe_xs, probe_ys): (Vec<Vec<f64>>, Vec<f64>) = probe_pts.into_iter().unzip();
            for (i, (_, run)) in runs.iter().enumerate() {
                let Some(score) = alignment_score(run, specs, obj, &probe_xs, &probe_ys) else {
                    continue;
                };
                if best.is_none_or(|(b, _)| score > b) {
                    best = Some((score, i));
                }
            }
        }
        // Fallback: largest archive in tech-preference order.
        let (alignment, idx) = best.unwrap_or_else(|| {
            let idx = runs
                .iter()
                .enumerate()
                .max_by_key(|(_, (_, run))| run.len())
                .map(|(i, _)| i)
                .unwrap_or(0);
            (f64::NAN, idx)
        });
        let (tech, run) = &runs[idx];
        let source = SourceData::from_history(run, specs);
        let choice = SourceChoice {
            label: run.problem.clone(),
            tech: tech.clone(),
            same_tech: tech == target_tech,
            alignment,
            n_evals: run.len(),
        };
        Some((source, choice))
    }
}

/// Metric index of the objective row in a spec table (0 if absent — every
/// registered problem has one).
fn objective_index(specs: &[Spec]) -> usize {
    specs
        .iter()
        .find_map(|s| match s.kind {
            SpecKind::Objective(Goal::Maximize | Goal::Minimize) => Some(s.metric),
            _ => None,
        })
        .unwrap_or(0)
}

/// Probe `(x, y_obj)` pairs with a finite objective metric.
fn probe_objective(probe: &RunHistory, obj: usize) -> Vec<(Vec<f64>, f64)> {
    probe
        .evals
        .iter()
        .filter(|e| obj < e.metrics.values().len() && e.metrics.get(obj).is_finite())
        .map(|e| (e.x.clone(), e.metrics.get(obj)))
        .collect()
}

/// Alignment of one candidate run to the probe: source GP on the
/// candidate's objective column → KAT-GP aligned onto *half* the probe →
/// mean predictive log-likelihood on the **held-out** half. Scoring on
/// held-out points is essential: the KAT encoder/decoder is flexible
/// enough to fit any few training points from any source, so in-sample
/// likelihood measures model capacity, while held-out likelihood measures
/// whether the source archive actually generalises onto the target.
/// `None` when either fit fails.
fn alignment_score(
    run: &RunHistory,
    specs: &[Spec],
    obj: usize,
    probe_xs: &[Vec<f64>],
    probe_ys: &[f64],
) -> Option<f64> {
    let source = SourceData::from_history(run, specs);
    let col = source.columns.get(obj)?;
    let gp_cfg = GpConfig {
        seed: run.seed,
        ..GpConfig::fast()
    };
    let source_gp = Gp::fit(
        KernelSpec::ArdRbf { dim: source.dim },
        &source.xs,
        col,
        &gp_cfg,
    )
    .ok()?;
    let kat_cfg = KatConfig {
        seed: run.seed,
        ..KatConfig::fast()
    };
    // Even-indexed probe points fit the alignment; odd-indexed score it.
    let (mut fit_xs, mut fit_ys) = (Vec::new(), Vec::new());
    let (mut held_xs, mut held_ys) = (Vec::new(), Vec::new());
    for (i, (x, &y)) in probe_xs.iter().zip(probe_ys).enumerate() {
        if i % 2 == 0 {
            fit_xs.push(x.clone());
            fit_ys.push(y);
        } else {
            held_xs.push(x.clone());
            held_ys.push(y);
        }
    }
    let kat = KatGp::fit(&source_gp, &fit_xs, &fit_ys, &kat_cfg).ok()?;
    let ll = kat.mean_log_likelihood(&held_xs, &held_ys);
    ll.is_finite().then_some(ll)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato::{BoSettings, Kato, Mode};
    use kato_circuits::{Metrics, SizingProblem, VarSpec};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kato_bank_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// 1-D toy: maximise `1−(x−c)²` s.t. `x ≥ 0.2`; the centre `c`
    /// distinguishes "tech nodes". With `flat`, the objective carries no
    /// information at all — a constant response that no encoder/decoder
    /// pair can align onto a varying target (the KAT decoder of a constant
    /// is a constant), the model of an archive whose simulations returned
    /// garbage.
    struct Toy {
        c: f64,
        flat: bool,
        name: String,
        vars: Vec<VarSpec>,
        specs: Vec<Spec>,
    }

    impl Toy {
        fn new(c: f64, name: &str) -> Self {
            Toy {
                c,
                flat: false,
                name: name.to_string(),
                vars: vec![VarSpec::lin("a", 0.0, 1.0)],
                specs: vec![
                    Spec {
                        metric: 0,
                        kind: SpecKind::Objective(Goal::Maximize),
                    },
                    Spec {
                        metric: 1,
                        kind: SpecKind::GreaterEq(0.2),
                    },
                ],
            }
        }
    }

    impl SizingProblem for Toy {
        fn name(&self) -> String {
            self.name.clone()
        }
        fn variables(&self) -> &[VarSpec] {
            &self.vars
        }
        fn metric_names(&self) -> &[&'static str] {
            &["obj", "con"]
        }
        fn specs(&self) -> &[Spec] {
            &self.specs
        }
        fn evaluate(&self, x: &[f64]) -> Metrics {
            let obj = if self.flat {
                0.3
            } else {
                1.0 - (x[0] - self.c).powi(2)
            };
            Metrics::new(vec![obj, x[0]])
        }
        fn expert_design(&self) -> Vec<f64> {
            vec![self.c]
        }
    }

    fn short_run(problem: &dyn SizingProblem, seed: u64) -> RunHistory {
        Kato::new(BoSettings::quick(16, seed)).run(problem, Mode::Constrained)
    }

    /// A spread archive: `n` random designs evaluated on `problem`. An
    /// optimiser trace clusters near its optimum, which leaves the source
    /// GP extrapolating (confidently wrong) over most of the space; random
    /// coverage is what makes alignment quality attributable to the
    /// *source physics* rather than to where the source run happened to
    /// dwell.
    fn spread_run(problem: &dyn SizingProblem, n: usize, seed: u64) -> RunHistory {
        let mut h = RunHistory::new(&problem.name(), "KATO", seed);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        for _ in 0..n {
            let x = kato_circuits::random_design(problem.dim(), &mut rng);
            h.evaluate_and_push(problem, &Mode::Constrained, x);
        }
        h
    }

    #[test]
    fn append_then_reload_roundtrips_runs() {
        let dir = tmp_dir("roundtrip");
        let toy = Toy::new(0.6, "toy_180nm");
        let run = short_run(&toy, 3);
        {
            let mut bank = Bank::open(&dir).unwrap();
            bank.append("toy", "180nm", &run).unwrap();
            bank.append("toy", "180nm", &short_run(&toy, 5)).unwrap();
        }
        // Fresh open reads the manifest back from disk.
        let bank = Bank::open(&dir).unwrap();
        assert_eq!(bank.entries().len(), 1);
        assert_eq!(bank.entries()[0].runs, 2);
        assert!(bank.has_candidates("toy"));
        assert!(!bank.has_candidates("other"));
        let runs = bank.runs("toy", "180nm").unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].evals.len(), run.evals.len());
        assert_eq!(runs[0].evals[0].x, run.evals[0].x);
        assert!(bank.runs("toy", "40nm").unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn select_source_prefers_the_aligned_archive() {
        let dir = tmp_dir("select");
        let near = Toy::new(0.55, "toy_180nm"); // close to the target physics
        let mut far = Toy::new(0.05, "toy_28nm"); // zero-information archive
        far.flat = true;
        let target = Toy::new(0.6, "toy_40nm");
        let mut bank = Bank::open(&dir).unwrap();
        bank.append("toy", "180nm", &spread_run(&near, 24, 3))
            .unwrap();
        bank.append("toy", "28nm", &spread_run(&far, 24, 4))
            .unwrap();

        let mut probe = RunHistory::new(&target.name(), "probe", 1);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        for _ in 0..16 {
            let x = kato_circuits::random_design(1, &mut rng);
            probe.evaluate_and_push(&target, &Mode::Constrained, x);
        }
        let (source, choice) = bank
            .select_source("toy", "40nm", target.specs(), &probe)
            .unwrap();
        assert_eq!(choice.tech, "180nm", "alignment {:.3}", choice.alignment);
        assert_eq!(source.label, "toy_180nm");
        assert!(!choice.same_tech);
        assert!(choice.alignment.is_finite());
        assert!(choice.n_evals > 0);
        // Unknown scenario → no source.
        assert!(bank
            .select_source("nope", "40nm", target.specs(), &probe)
            .is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn select_source_falls_back_without_probe_data() {
        let dir = tmp_dir("fallback");
        let toy = Toy::new(0.5, "toy_180nm");
        let mut bank = Bank::open(&dir).unwrap();
        bank.append("toy", "180nm", &short_run(&toy, 9)).unwrap();
        // Empty probe: too few points to score → fallback still warm-starts.
        let probe = RunHistory::new("toy_40nm", "probe", 1);
        let (source, choice) = bank
            .select_source("toy", "40nm", toy.specs(), &probe)
            .unwrap();
        assert!(choice.alignment.is_nan());
        assert_eq!(source.xs.len(), choice.n_evals);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_index_is_quarantined_and_rebuilt() {
        let dir = tmp_dir("corrupt");
        let toy = Toy::new(0.5, "toy_180nm");
        {
            let mut bank = Bank::open(&dir).unwrap();
            bank.append("toy", "180nm", &short_run(&toy, 3)).unwrap();
        }
        // Smash the index: open must quarantine it and rebuild from the
        // archive file instead of refusing.
        fs::write(dir.join("index.json"), "{not json").unwrap();
        let bank = Bank::open(&dir).unwrap();
        assert_eq!(bank.quarantined_on_open(), 1);
        assert_eq!(bank.quarantined_files(), 1);
        assert_eq!(bank.entries().len(), 1);
        assert_eq!(bank.entries()[0].runs, 1);
        assert!(dir.join("index.json.quarantine").exists());
        // The rebuilt index is good: a fresh open heals nothing further.
        let bank = Bank::open(&dir).unwrap();
        assert_eq!(bank.quarantined_on_open(), 0);
        // A newer-version index is likewise recovery, not refusal.
        fs::write(dir.join("index.json"), r#"{"version":99,"entries":[]}"#).unwrap();
        let bank = Bank::open(&dir).unwrap();
        assert_eq!(bank.quarantined_on_open(), 1);
        assert_eq!(bank.entries().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_archive_is_quarantined_and_the_rest_survive() {
        let dir = tmp_dir("heal");
        let toy = Toy::new(0.5, "toy_180nm");
        {
            let mut bank = Bank::open(&dir).unwrap();
            bank.append("toy", "180nm", &spread_run(&toy, 12, 3))
                .unwrap();
            bank.append("toy", "28nm", &spread_run(&toy, 12, 4))
                .unwrap();
        }
        // Tear one archive. Open quarantines it, keeps the other, and the
        // bank still supplies a warm-start source.
        fs::write(dir.join("toy__28nm.json"), "{\"version\":1,\"runs\":[tru").unwrap();
        let bank = Bank::open(&dir).unwrap();
        assert_eq!(bank.quarantined_on_open(), 1);
        assert!(dir.join("toy__28nm.json.quarantine").exists());
        assert_eq!(bank.entries().len(), 1);
        assert_eq!(bank.entries()[0].tech, "180nm");
        assert!(bank.has_candidates("toy"));
        let probe = RunHistory::new("toy_40nm", "probe", 1);
        let (_, choice) = bank
            .select_source("toy", "40nm", toy.specs(), &probe)
            .unwrap();
        assert_eq!(choice.tech, "180nm");
        // An archive the index never heard of is adopted on open.
        fs::remove_file(dir.join("index.json")).unwrap();
        let bank = Bank::open(&dir).unwrap();
        assert_eq!(bank.entries().len(), 1);
        assert_eq!(bank.total_runs(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_write_failures_are_retried_and_torn_writes_heal() {
        let _guard = crate::faults::test_lock();
        let dir = tmp_dir("faults");
        let toy = Toy::new(0.5, "toy_180nm");
        // Two injected failures: both retried away within one append.
        crate::faults::arm("bank_write=2");
        {
            let mut bank = Bank::open(&dir).unwrap();
            bank.append("toy", "180nm", &short_run(&toy, 3)).unwrap();
            assert!(crate::faults::hits("bank_write") >= 3);
        }
        // A torn archive write: append reports success (as a real torn
        // write would), and the next open quarantines + heals.
        crate::faults::arm("bank_torn=1");
        {
            let mut bank = Bank::open(&dir).unwrap();
            bank.append("toy", "28nm", &short_run(&toy, 5)).unwrap();
        }
        crate::faults::disarm_all();
        let bank = Bank::open(&dir).unwrap();
        assert_eq!(bank.quarantined_on_open(), 1);
        assert_eq!(bank.entries().len(), 1);
        assert_eq!(bank.entries()[0].tech, "180nm");
        fs::remove_dir_all(&dir).unwrap();
    }
}
