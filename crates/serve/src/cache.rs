//! In-memory result cache: identical requests are answered from the first
//! run's trace instead of burning simulator budget twice.
//!
//! The key is the request's normalised identity — scenario, tech, corner,
//! sorted spec overrides, seed and budget (see
//! [`crate::protocol::SizingRequest::cache_key`]) — so two requests that
//! *mean* the same thing hit even when their JSON spells fields in a
//! different order. Everything the optimiser's output depends on is in the
//! key; the request `id` is not, so distinct callers share hits.

use kato::RunHistory;
use std::collections::HashMap;

use crate::bank::SourceChoice;

/// A completed run retained for replay.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The full optimisation trace.
    pub history: RunHistory,
    /// The bank source the run warm-started from, if any.
    pub warm_source: Option<SourceChoice>,
    /// How many requests have been answered from this entry (the first,
    /// computing request not counted).
    pub hits: usize,
}

/// Cache of completed runs keyed by request identity.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: HashMap<String, CachedResult>,
}

impl ResultCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Looks a key up, counting a hit when present.
    pub fn hit(&mut self, key: &str) -> Option<&CachedResult> {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.hits += 1;
                Some(&*entry)
            }
            None => None,
        }
    }

    /// `true` when the key is cached (no hit counted).
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Stores a completed run under its key.
    pub fn store(&mut self, key: String, history: RunHistory, warm_source: Option<SourceChoice>) {
        self.entries.insert(
            key,
            CachedResult {
                history,
                warm_source,
                hits: 0,
            },
        );
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total replay hits across every entry — simulator budget the cache
    /// has saved, surfaced by the daemon's health report.
    #[must_use]
    pub fn total_hits(&self) -> usize {
        self.entries.values().map(|e| e.hits).sum()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_are_counted_per_key() {
        let mut cache = ResultCache::new();
        assert!(cache.is_empty());
        assert!(cache.hit("k").is_none());
        cache.store("k".into(), RunHistory::new("p", "m", 1), None);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains("k"));
        assert_eq!(cache.hit("k").unwrap().hits, 1);
        assert_eq!(cache.hit("k").unwrap().hits, 2);
        assert_eq!(cache.total_hits(), 2);
        assert!(!cache.contains("other"));
    }
}
