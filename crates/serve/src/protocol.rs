//! The `katod` wire protocol: newline-delimited JSON requests and
//! responses.
//!
//! One request per line, one response line per request, in order — the
//! shape that works identically over stdin/stdout, a Unix socket, or a
//! file of queued jobs. A request names a registered scenario and
//! optionally overrides tech node, corner, spec bounds, seed and budget:
//!
//! ```json
//! {"id":"job-1","scenario":"opamp2","tech":"40nm","corner":"tt",
//!  "specs":{"gain_db":55.0},"seed":11,"budget":40}
//! ```
//!
//! Adding `"yield_samples": 16` switches the job to Monte-Carlo yield
//! optimisation: each simulated candidate is scored by its pass-rate over
//! 16 Pelgrom mismatch samples (× the requested corner set), and a
//! `yield ≥ threshold` constraint joins the spec table (threshold from the
//! scenario preset, or a `"yield"` entry in `specs`). Yield runs are
//! cached under a key with a `|y<n>` suffix — nominal keys are unchanged,
//! so caches written before this field existed stay valid — and are *not*
//! archived to the knowledge bank (their metric vector differs from
//! nominal archives).
//!
//! Unknown top-level keys are rejected (a typo'd field silently ignored is
//! a wrong answer delivered with confidence). Responses carry the run's
//! outcome plus serving metadata — whether the result was a cache hit and
//! which bank archive (if any) warm-started it.

use crate::bank::SourceChoice;
use crate::json::Json;
use kato::{RunHistory, WorstCaseProblem};
use kato_circuits::{Backend, OverriddenProblem, ScenarioRegistry, SizingProblem, YieldSettings};

/// Top-level request keys the daemon understands.
const ALLOWED_KEYS: &[&str] = &[
    "id",
    "scenario",
    "tech",
    "corner",
    "specs",
    "seed",
    "budget",
    "deadline_ms",
    "backend",
    "yield_samples",
];

/// Default simulation budget when the request omits one.
pub const DEFAULT_BUDGET: usize = 40;
/// Default seed when the request omits one.
pub const DEFAULT_SEED: u64 = 11;
/// Budgets above this are rejected as misconfigured rather than queued.
pub const MAX_BUDGET: usize = 5000;
/// Monte-Carlo sample counts above this are rejected — each sample costs a
/// full corner sweep per simulation, so a typo'd count must not queue days
/// of work.
pub const MAX_YIELD_SAMPLES: usize = 1024;

/// A parsed sizing request.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingRequest {
    /// Caller-chosen correlation id, echoed in the response (may be empty).
    pub id: String,
    /// Registered scenario name, e.g. `opamp2`.
    pub scenario: String,
    /// Tech node; `None` uses the scenario's default.
    pub tech: Option<String>,
    /// Corner name (`"tt"` default), or `"worst"` for worst-case-over-the-
    /// registered-sweep optimisation.
    pub corner: String,
    /// Spec-bound overrides as `(metric, bound)` pairs in request order.
    pub overrides: Vec<(String, f64)>,
    /// Optimiser seed.
    pub seed: u64,
    /// Total simulation budget.
    pub budget: usize,
    /// Wall-clock deadline in milliseconds; when set, the run returns its
    /// best-so-far (marked `degraded`) instead of overrunning.
    pub deadline_ms: Option<u64>,
    /// Device backend override (`"square_law"` or `"lut"`); `None` uses
    /// the scenario's default. Excluded from nothing: it is part of the
    /// cache key, because the two backends produce (slightly) different
    /// metrics and therefore different run traces.
    pub backend: Option<Backend>,
    /// Monte-Carlo mismatch sample count: when set, the run optimises the
    /// scenario's [`kato_circuits::YieldProblem`] (pass-rate over this many
    /// Pelgrom mismatch samples × the requested corner set) instead of the
    /// nominal circuit. The yield threshold comes from the scenario's
    /// preset, or from a `"yield"` entry in `specs`.
    pub yield_samples: Option<usize>,
}

impl SizingRequest {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A message describing the malformed JSON, unknown key, or invalid
    /// field value.
    pub fn parse(line: &str) -> Result<Self, String> {
        let doc = Json::parse(line)?;
        let pairs = doc.as_obj().ok_or("request must be a JSON object")?;
        for (key, _) in pairs {
            if !ALLOWED_KEYS.contains(&key.as_str()) {
                return Err(format!(
                    "unknown request key '{key}' (allowed: {})",
                    ALLOWED_KEYS.join(", ")
                ));
            }
        }
        let scenario = doc
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("missing required string field 'scenario'")?
            .to_string();
        let id = doc
            .get("id")
            .map(|v| v.as_str().ok_or("'id' must be a string"))
            .transpose()?
            .unwrap_or("")
            .to_string();
        let tech = doc
            .get("tech")
            .map(|v| v.as_str().ok_or("'tech' must be a string"))
            .transpose()?
            .map(str::to_string);
        let corner = doc
            .get("corner")
            .map(|v| v.as_str().ok_or("'corner' must be a string"))
            .transpose()?
            .unwrap_or("tt")
            .to_string();
        let seed = match doc.get("seed") {
            None => DEFAULT_SEED,
            Some(v) => v.as_u64().ok_or("'seed' must be a non-negative integer")?,
        };
        let budget = match doc.get("budget") {
            None => DEFAULT_BUDGET,
            Some(v) => v.as_u64().ok_or("'budget' must be a positive integer")? as usize,
        };
        if !(2..=MAX_BUDGET).contains(&budget) {
            return Err(format!(
                "'budget' must be in 2..={MAX_BUDGET}, got {budget}"
            ));
        }
        let deadline_ms = doc
            .get("deadline_ms")
            .map(|v| {
                v.as_u64()
                    .filter(|&ms| ms > 0)
                    .ok_or("'deadline_ms' must be a positive integer")
            })
            .transpose()?;
        let backend = doc
            .get("backend")
            .map(|v| {
                v.as_str()
                    .and_then(Backend::parse)
                    .ok_or("'backend' must be \"square_law\" or \"lut\"")
            })
            .transpose()?;
        let yield_samples = doc
            .get("yield_samples")
            .map(|v| {
                v.as_u64()
                    .map(|n| n as usize)
                    .filter(|&n| (1..=MAX_YIELD_SAMPLES).contains(&n))
                    .ok_or(format!(
                        "'yield_samples' must be in 1..={MAX_YIELD_SAMPLES}"
                    ))
            })
            .transpose()?;
        let mut overrides = Vec::new();
        if let Some(specs) = doc.get("specs") {
            let entries = specs.as_obj().ok_or("'specs' must be an object")?;
            for (metric, bound) in entries {
                let v = bound
                    .as_f64()
                    .ok_or_else(|| format!("spec override '{metric}' must be a number"))?;
                overrides.push((metric.clone(), v));
            }
        }
        Ok(SizingRequest {
            id,
            scenario,
            tech,
            corner,
            overrides,
            seed,
            budget,
            deadline_ms,
            backend,
            yield_samples,
        })
    }

    /// The request's cache/dedupe identity given its resolved tech node:
    /// everything the optimiser's output depends on, with overrides sorted
    /// by metric name so spelling order doesn't defeat dedupe. The `id` is
    /// deliberately excluded, and so is `deadline_ms` — a deadline shapes
    /// *when* a run stops, not what the full run would compute, and a
    /// degraded result is never stored (see the daemon), so a later
    /// undeadlined request must map to the same key to reuse the full run.
    /// The device backend is excluded from nothing: it changes every
    /// simulated metric, so it is part of the key (`default` when the
    /// request defers to the scenario).
    #[must_use]
    pub fn cache_key(&self, resolved_tech: &str) -> String {
        let mut specs: Vec<&(String, f64)> = self.overrides.iter().collect();
        specs.sort_by(|a, b| a.0.cmp(&b.0));
        let specs: Vec<String> = specs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let base = format!(
            "{}|{}|{}|{}|{}|{}|{}",
            self.scenario,
            resolved_tech,
            self.corner,
            specs.join(","),
            self.seed,
            self.budget,
            self.backend.map_or("default", Backend::name)
        );
        // The yield segment is appended only when present, so keys of
        // nominal requests are byte-identical to what older daemons wrote —
        // a persisted cache survives the protocol extension.
        match self.yield_samples {
            None => base,
            Some(n) => format!("{base}|y{n}"),
        }
    }

    /// Resolves the request against the registry into a ready-to-optimise
    /// problem plus the resolved tech-node name.
    ///
    /// `corner: "worst"` builds the scenario's [`WorstCaseProblem`] over
    /// its registered sweep; any other corner name builds the single-corner
    /// problem. Spec overrides wrap the result in an [`OverriddenProblem`].
    ///
    /// With `yield_samples` set, the base problem is instead the scenario's
    /// [`kato_circuits::YieldProblem`]: `corner: "worst"` sweeps the
    /// scenario's registered corners per mismatch sample, any other corner
    /// name estimates yield at that single corner. A `"yield"` entry in
    /// `specs` is routed into the yield *threshold* rather than a plain
    /// spec-row edit, so the estimator's early-abort censoring always
    /// agrees with the feasibility classification.
    ///
    /// # Errors
    ///
    /// A message for unknown scenario/tech/corner or a bad override.
    pub fn build_problem(
        &self,
        registry: &ScenarioRegistry,
    ) -> Result<(Box<dyn SizingProblem>, String), String> {
        let scenario = registry.get(&self.scenario).map_err(|e| e.to_string())?;
        let tech = self
            .tech
            .as_deref()
            .unwrap_or(scenario.default_tech)
            .to_string();
        let mut overrides = self.overrides.clone();
        let base: Box<dyn SizingProblem> = if let Some(samples) = self.yield_samples {
            let threshold = match overrides.iter().position(|(k, _)| k == "yield") {
                Some(i) => {
                    let (_, t) = overrides.remove(i);
                    if !(t > 0.0 && t <= 1.0) {
                        return Err(format!("'yield' override {t} outside (0, 1]"));
                    }
                    t
                }
                None => scenario.yield_preset.threshold,
            };
            let corners = if self.corner == "worst" {
                None
            } else {
                Some(vec![scenario
                    .corner(&self.corner)
                    .map_err(|e| e.to_string())?])
            };
            Box::new(
                scenario
                    .build_yield(
                        &tech,
                        self.backend,
                        YieldSettings {
                            samples,
                            threshold,
                            seed: self.seed,
                            early_abort: true,
                            corners,
                        },
                    )
                    .map_err(|e| e.to_string())?,
            )
        } else if self.corner == "worst" {
            Box::new(
                WorstCaseProblem::with_backend(scenario, &tech, self.backend)
                    .map_err(|e| e.to_string())?,
            )
        } else {
            let corner = scenario.corner(&self.corner).map_err(|e| e.to_string())?;
            scenario
                .build_at(&tech, &corner, self.backend)
                .map_err(|e| e.to_string())?
        };
        let problem = OverriddenProblem::new(base, &overrides)?;
        Ok((Box::new(problem), tech))
    }
}

/// First simulation count at which a feasible design appeared, if any.
#[must_use]
pub fn sims_to_feasible(history: &RunHistory) -> Option<usize> {
    history.evals.iter().position(|e| e.feasible).map(|i| i + 1)
}

/// Builds the success-response document for a completed (or replayed) run.
///
/// `degraded` marks a run cut short by its [`kato::RunBudget`] (deadline
/// hit before the simulation budget was spent): still `status: "ok"`, but
/// the caller is told the best-so-far came from a truncated search.
#[must_use]
pub fn response_json(
    request: &SizingRequest,
    resolved_tech: &str,
    problem: &dyn SizingProblem,
    history: &RunHistory,
    cache_hit: bool,
    degraded: bool,
    warm: Option<&SourceChoice>,
) -> Json {
    let warm_json = match warm {
        None => Json::Null,
        Some(w) => Json::obj(vec![
            ("source", Json::str(&w.label)),
            ("tech", Json::str(&w.tech)),
            ("same_tech", Json::Bool(w.same_tech)),
            ("alignment", Json::Num(w.alignment)),
            ("n_evals", Json::Num(w.n_evals as f64)),
        ]),
    };
    let best_json = match history.best() {
        None => Json::Null,
        Some(best) => {
            let metrics: Vec<(String, Json)> = problem
                .metric_names()
                .iter()
                .zip(best.metrics.values())
                .map(|(name, &v)| ((*name).to_string(), Json::Num(v)))
                .collect();
            Json::obj(vec![
                ("x", Json::nums(&best.x)),
                ("score", Json::Num(best.score)),
                ("metrics", Json::Obj(metrics)),
            ])
        }
    };
    let feasible = history.best().is_some_and(|b| b.feasible);
    Json::obj(vec![
        ("id", Json::str(&request.id)),
        ("status", Json::str("ok")),
        ("scenario", Json::str(&request.scenario)),
        ("tech", Json::str(resolved_tech)),
        ("corner", Json::str(&request.corner)),
        (
            "backend",
            Json::str(request.backend.map_or("default", Backend::name)),
        ),
        ("seed", Json::Num(request.seed as f64)),
        ("budget", Json::Num(request.budget as f64)),
        (
            "yield_samples",
            request
                .yield_samples
                .map_or(Json::Null, |n| Json::Num(n as f64)),
        ),
        ("cache_hit", Json::Bool(cache_hit)),
        ("degraded", Json::Bool(degraded)),
        ("warm_start", warm_json),
        ("n_evals", Json::Num(history.len() as f64)),
        ("feasible", Json::Bool(feasible)),
        (
            "sims_to_feasible",
            sims_to_feasible(history).map_or(Json::Null, |n| Json::Num(n as f64)),
        ),
        ("best", best_json),
    ])
}

/// Builds the error-response document for a rejected request.
#[must_use]
pub fn error_json(id: &str, message: &str) -> Json {
    Json::obj(vec![
        ("id", Json::str(id)),
        ("status", Json::str("error")),
        ("error", Json::str(message)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_fills_defaults() {
        let req = SizingRequest::parse(r#"{"scenario":"opamp2"}"#).unwrap();
        assert_eq!(req.scenario, "opamp2");
        assert_eq!(req.id, "");
        assert_eq!(req.tech, None);
        assert_eq!(req.corner, "tt");
        assert_eq!(req.seed, DEFAULT_SEED);
        assert_eq!(req.budget, DEFAULT_BUDGET);
        assert_eq!(req.deadline_ms, None);
        assert_eq!(req.backend, None);
        assert!(req.overrides.is_empty());
    }

    #[test]
    fn backend_parses_keys_and_builds() {
        let req = SizingRequest::parse(r#"{"scenario":"switch","backend":"square_law"}"#).unwrap();
        assert_eq!(req.backend, Some(Backend::SquareLaw));
        let lut = SizingRequest::parse(r#"{"scenario":"opamp2","backend":"lut"}"#).unwrap();
        assert_eq!(lut.backend, Some(Backend::Lut));
        let err = SizingRequest::parse(r#"{"scenario":"opamp2","backend":"spice"}"#).unwrap_err();
        assert!(err.contains("backend"), "{err}");
        // The backend is part of the cache key — never collapsed away.
        let default = SizingRequest::parse(r#"{"scenario":"opamp2"}"#).unwrap();
        assert_ne!(lut.cache_key("180nm"), default.cache_key("180nm"));
        assert!(lut.cache_key("180nm").ends_with("|lut"));
        assert!(default.cache_key("180nm").ends_with("|default"));
        // And it resolves through the registry, for single- and worst-corner.
        let reg = ScenarioRegistry::standard();
        let (p, _) = req.build_problem(&reg).unwrap();
        assert_eq!(p.name(), "switch_180nm");
        let worst = SizingRequest::parse(
            r#"{"scenario":"switch","corner":"worst","backend":"square_law"}"#,
        )
        .unwrap();
        let (pw, _) = worst.build_problem(&reg).unwrap();
        assert!(pw.name().contains("worstcase"));
        // Forced square-law differs from the switch's LUT default.
        let (pd, _) = SizingRequest::parse(r#"{"scenario":"switch"}"#)
            .unwrap()
            .build_problem(&reg)
            .unwrap();
        let x = pd.expert_design();
        assert_ne!(p.evaluate(&x), pd.evaluate(&x));
    }

    #[test]
    fn parse_reads_every_field() {
        let req = SizingRequest::parse(
            r#"{"id":"j1","scenario":"ldo","tech":"40nm","corner":"ss_125c",
                "specs":{"psrr_db":45.0,"pm_deg":50.0},"seed":7,"budget":25,
                "deadline_ms":1500}"#,
        )
        .unwrap();
        assert_eq!(req.id, "j1");
        assert_eq!(req.tech.as_deref(), Some("40nm"));
        assert_eq!(req.corner, "ss_125c");
        assert_eq!(req.seed, 7);
        assert_eq!(req.budget, 25);
        assert_eq!(req.deadline_ms, Some(1500));
        assert_eq!(
            req.overrides,
            vec![("psrr_db".to_string(), 45.0), ("pm_deg".to_string(), 50.0)]
        );
    }

    #[test]
    fn parse_rejects_bad_requests() {
        for (line, needle) in [
            ("[1,2]", "object"),
            (r#"{"tech":"40nm"}"#, "scenario"),
            (r#"{"scenario":"ldo","bugdet":9}"#, "unknown request key"),
            (r#"{"scenario":"ldo","budget":1}"#, "budget"),
            (r#"{"scenario":"ldo","seed":-3}"#, "seed"),
            (r#"{"scenario":"ldo","specs":{"pm_deg":"high"}}"#, "pm_deg"),
            (r#"{"scenario":"ldo","deadline_ms":0}"#, "deadline_ms"),
            (r#"{"scenario":"ldo","deadline_ms":-5}"#, "deadline_ms"),
            ("not json", "byte"),
        ] {
            let err = SizingRequest::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn yield_requests_parse_build_and_key_with_suffix() {
        let req =
            SizingRequest::parse(r#"{"scenario":"opamp2","yield_samples":8,"seed":5}"#).unwrap();
        assert_eq!(req.yield_samples, Some(8));
        // Nominal keys are byte-identical to the pre-yield format; yield
        // keys append the |y<n> segment.
        let nominal = SizingRequest::parse(r#"{"scenario":"opamp2","seed":5}"#).unwrap();
        assert_eq!(nominal.yield_samples, None);
        assert_eq!(
            format!("{}|y8", nominal.cache_key("180nm")),
            req.cache_key("180nm")
        );

        let reg = ScenarioRegistry::standard();
        let (p, tech) = req.build_problem(&reg).unwrap();
        assert_eq!(tech, "180nm");
        assert!(p.name().contains("yield8"), "{}", p.name());
        assert_eq!(p.metric_names().last(), Some(&"yield"));
        // Default corner "tt" → a single-corner yield estimate; "worst"
        // sweeps the scenario's registered corners per sample.
        let worst =
            SizingRequest::parse(r#"{"scenario":"opamp2","yield_samples":4,"corner":"worst"}"#)
                .unwrap();
        assert!(worst.build_problem(&reg).is_ok());

        for bad in [
            r#"{"scenario":"opamp2","yield_samples":0}"#,
            r#"{"scenario":"opamp2","yield_samples":4096}"#,
            r#"{"scenario":"opamp2","yield_samples":"many"}"#,
        ] {
            assert!(
                SizingRequest::parse(bad)
                    .unwrap_err()
                    .contains("yield_samples"),
                "{bad}"
            );
        }
    }

    #[test]
    fn yield_override_becomes_the_threshold_not_a_spec_edit() {
        let reg = ScenarioRegistry::standard();
        let req = SizingRequest::parse(
            r#"{"scenario":"opamp2","yield_samples":4,"specs":{"yield":0.25}}"#,
        )
        .unwrap();
        let (p, _) = req.build_problem(&reg).unwrap();
        // Routed into the YieldProblem threshold: the yield spec row bound
        // must be the override, and the name must NOT be the _custom form
        // an OverriddenProblem spec edit would produce.
        let yield_idx = p.metric_names().len() - 1;
        let bound = p.specs().iter().find_map(|s| match s.kind {
            kato_circuits::SpecKind::GreaterEq(b) if s.metric == yield_idx => Some(b),
            _ => None,
        });
        assert_eq!(bound, Some(0.25));
        assert!(!p.name().contains("custom"), "{}", p.name());
        // Out-of-range thresholds are rejected at build time.
        let bad = SizingRequest::parse(
            r#"{"scenario":"opamp2","yield_samples":4,"specs":{"yield":1.5}}"#,
        )
        .unwrap();
        let err = bad
            .build_problem(&reg)
            .err()
            .expect("threshold 1.5 must be rejected");
        assert!(err.contains("yield"), "{err}");
        // Without yield_samples, a "yield" spec names no metric → error.
        let stray = SizingRequest::parse(r#"{"scenario":"opamp2","specs":{"yield":0.5}}"#).unwrap();
        assert!(stray.build_problem(&reg).is_err());
    }

    #[test]
    fn cache_key_normalises_override_order_and_ignores_id() {
        let a = SizingRequest::parse(
            r#"{"id":"a","scenario":"ldo","specs":{"pm_deg":50.0,"psrr_db":45.0}}"#,
        )
        .unwrap();
        let b = SizingRequest::parse(
            r#"{"id":"b","scenario":"ldo","specs":{"psrr_db":45.0,"pm_deg":50.0}}"#,
        )
        .unwrap();
        assert_eq!(a.cache_key("180nm"), b.cache_key("180nm"));
        assert_ne!(a.cache_key("180nm"), a.cache_key("40nm"));
        // A deadline doesn't change what the full run computes → same key.
        let deadlined =
            SizingRequest::parse(r#"{"id":"a","scenario":"ldo","deadline_ms":100,"specs":{"pm_deg":50.0,"psrr_db":45.0}}"#)
                .unwrap();
        assert_eq!(a.cache_key("180nm"), deadlined.cache_key("180nm"));
        let c = SizingRequest::parse(r#"{"scenario":"ldo","seed":12}"#).unwrap();
        assert_ne!(a.cache_key("180nm"), c.cache_key("180nm"));
    }

    #[test]
    fn build_problem_resolves_tech_corner_and_overrides() {
        let reg = ScenarioRegistry::standard();
        let req = SizingRequest::parse(r#"{"scenario":"opamp2"}"#).unwrap();
        let (p, tech) = req.build_problem(&reg).unwrap();
        assert_eq!(tech, "180nm");
        assert_eq!(p.name(), "opamp2_180nm");

        let req =
            SizingRequest::parse(r#"{"scenario":"opamp2","tech":"40nm","specs":{"gain_db":55.0}}"#)
                .unwrap();
        let (p, tech) = req.build_problem(&reg).unwrap();
        assert_eq!(tech, "40nm");
        assert!(p.name().contains("custom"), "{}", p.name());

        let req = SizingRequest::parse(r#"{"scenario":"opamp2","corner":"worst"}"#).unwrap();
        let (p, _) = req.build_problem(&reg).unwrap();
        assert!(p.name().contains("worst"), "{}", p.name());

        for bad in [
            r#"{"scenario":"nope"}"#,
            r#"{"scenario":"bandgap","tech":"40nm"}"#,
            r#"{"scenario":"opamp2","corner":"zz_12c"}"#,
            r#"{"scenario":"opamp2","specs":{"nope":1.0}}"#,
        ] {
            let req = SizingRequest::parse(bad).unwrap();
            assert!(req.build_problem(&reg).is_err(), "{bad}");
        }
    }

    #[test]
    fn responses_echo_request_and_outcome() {
        let reg = ScenarioRegistry::standard();
        let req = SizingRequest::parse(r#"{"id":"r1","scenario":"opamp2","budget":4}"#).unwrap();
        let (problem, tech) = req.build_problem(&reg).unwrap();
        let mut h = RunHistory::new(&problem.name(), "KATO", req.seed);
        h.evaluate_and_push(
            &*problem,
            &kato::Mode::Constrained,
            vec![0.5; problem.dim()],
        );
        let doc = response_json(&req, &tech, &*problem, &h, false, true, None);
        assert_eq!(doc.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("cache_hit").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("degraded").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("n_evals").unwrap().as_f64(), Some(1.0));
        assert!(doc.get("warm_start").unwrap().is_null());
        // Feasibility flag and best agree with the history.
        let feasible = doc.get("feasible").unwrap().as_bool().unwrap();
        assert_eq!(feasible, h.best().map(|b| b.feasible).unwrap_or(false));
        if h.best().is_none() {
            assert!(doc.get("best").unwrap().is_null());
            assert!(doc.get("sims_to_feasible").unwrap().is_null());
        } else {
            assert!(doc.get("best").unwrap().get("metrics").is_some());
        }
        // And the line parses back.
        assert!(Json::parse(&doc.to_string()).is_ok());

        let err = error_json("r2", "unknown scenario 'x'");
        assert_eq!(err.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(err.get("id").unwrap().as_str(), Some("r2"));
    }
}
