//! `katod` — the KATO sizing daemon.
//!
//! Speaks newline-delimited JSON: one sizing request per line in, one
//! response line out. Transports:
//!
//! * default — stdin/stdout (pipe requests in, read responses back);
//! * `--socket <path>` — a Unix-domain socket, one connection served at a
//!   time (Unix only);
//! * `--batch` — read *all* of stdin first, run distinct requests
//!   concurrently on the `kato_par` pool, answer in input order.
//!
//! With `--bank <dir>` every completed run is persisted to the knowledge
//! bank at `<dir>` and new requests warm-start from its best-aligned
//! archive.
//!
//! ```text
//! echo '{"scenario":"opamp2","tech":"40nm","budget":40}' | katod --bank runs/bank
//! ```

use kato_serve::{Bank, Daemon};
use std::io::{self, BufReader};
use std::process::ExitCode;

const USAGE: &str = "katod — KATO sizing daemon (newline-delimited JSON)

USAGE:
    katod [--bank <dir>] [--batch | --socket <path>]

OPTIONS:
    --bank <dir>     persist runs to (and warm-start from) a knowledge bank
    --batch          read all of stdin, run distinct requests concurrently,
                     answer in input order
    --socket <path>  serve a Unix-domain socket instead of stdin/stdout
    --help           print this help

REQUEST:
    {\"id\":\"job-1\",\"scenario\":\"opamp2\",\"tech\":\"40nm\",\"corner\":\"tt\",
     \"specs\":{\"gain_db\":55.0},\"seed\":11,\"budget\":40,\"deadline_ms\":60000}
    add \"yield_samples\":16 to optimise Monte-Carlo mismatch yield instead
    of the nominal circuit (threshold from the scenario preset, or a
    \"yield\" entry in specs)

OPS:
    {\"op\":\"health\"}   report bank/cache/served-job status (no simulations)
";

struct Opts {
    bank: Option<String>,
    batch: bool,
    socket: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        bank: None,
        batch: false,
        socket: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bank" => {
                opts.bank = Some(
                    it.next()
                        .ok_or("--bank requires a directory argument")?
                        .clone(),
                );
            }
            "--socket" => {
                opts.socket = Some(
                    it.next()
                        .ok_or("--socket requires a path argument")?
                        .clone(),
                );
            }
            "--batch" => opts.batch = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if opts.batch && opts.socket.is_some() {
        return Err("--batch and --socket are mutually exclusive".to_string());
    }
    Ok(opts)
}

/// Unlinks the socket file when the serve loop exits (normally or by
/// error), so the next `katod --socket` at the same path starts clean.
#[cfg(unix)]
struct SocketGuard(std::path::PathBuf);

#[cfg(unix)]
impl Drop for SocketGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[cfg(unix)]
fn serve_socket(daemon: &mut Daemon, path: &str) -> io::Result<()> {
    use std::os::unix::fs::FileTypeExt;
    use std::os::unix::net::UnixListener;
    // A stale socket file from a crashed run would make bind fail — but
    // only ever remove an actual socket; a regular file or directory at
    // the path is someone else's data and stays an error.
    match std::fs::symlink_metadata(path) {
        Ok(meta) if meta.file_type().is_socket() => {
            eprintln!("katod: removing stale socket {path}");
            std::fs::remove_file(path)?;
        }
        Ok(_) => {
            return Err(io::Error::other(format!(
                "refusing to replace non-socket file at {path}"
            )));
        }
        Err(_) => {}
    }
    let listener = UnixListener::bind(path)?;
    let _guard = SocketGuard(std::path::PathBuf::from(path));
    eprintln!("katod: listening on {path}");
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = BufReader::new(stream.try_clone()?);
        // A client dropping mid-write is its problem, not the daemon's.
        if let Err(e) = daemon.serve(reader, stream) {
            eprintln!("katod: connection error: {e}");
        }
    }
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(_daemon: &mut Daemon, _path: &str) -> io::Result<()> {
    Err(io::Error::other("--socket is only supported on Unix"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("katod: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut daemon = Daemon::new();
    if let Some(dir) = &opts.bank {
        match Bank::open(dir) {
            Ok(bank) => daemon = daemon.with_bank(bank),
            Err(e) => {
                eprintln!("katod: cannot open bank '{dir}': {e}");
                return ExitCode::from(2);
            }
        }
    }

    let result = if let Some(path) = &opts.socket {
        serve_socket(&mut daemon, path)
    } else if opts.batch {
        let mut lines = Vec::new();
        for line in io::stdin().lines() {
            match line {
                Ok(l) if l.trim().is_empty() => {}
                Ok(l) => lines.push(l),
                Err(e) => {
                    eprintln!("katod: stdin error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let responses = daemon.handle_batch(&lines);
        let mut out = io::stdout().lock();
        use std::io::Write as _;
        responses
            .iter()
            .try_for_each(|r| writeln!(out, "{r}"))
            .and_then(|()| out.flush())
    } else {
        let stdin = io::stdin().lock();
        let stdout = io::stdout().lock();
        daemon.serve(stdin, stdout)
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("katod: {e}");
            ExitCode::FAILURE
        }
    }
}
