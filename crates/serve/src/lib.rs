#![deny(missing_docs)]

//! Sizing-as-a-service for KATO: the `katod` daemon, its request protocol,
//! and the persistent transfer-archive **knowledge bank**.
//!
//! The serving layer turns the one-shot optimiser in [`kato`] into an
//! accumulating system:
//!
//! * [`json`] — the serde-free JSON value tree (writer + parser) shared by
//!   the daemon protocol, the bank files and the `kato` CLI.
//! * [`archive`] — lossless `RunHistory` ⇄ JSON codec (non-finite values
//!   survive the roundtrip as tagged strings).
//! * [`bank`] — the on-disk knowledge bank: every completed run is
//!   appended to a per-`scenario×tech` archive file under a versioned
//!   index, and new requests query it for the best-aligned source archive
//!   to warm-start from.
//! * [`protocol`] — newline-delimited JSON sizing requests/responses.
//! * [`cache`] — in-memory dedupe of identical requests by cache key.
//! * [`daemon`] — the request loop gluing it all together, including the
//!   probe → align → resume warm-start flow, a concurrent batch path
//!   over the [`kato_par`] pool with per-job panic isolation, request
//!   deadlines (`deadline_ms` → degraded best-so-far), and the
//!   `{"op":"health"}` report.
//! * [`faults`] — dependency-free deterministic failpoints
//!   (`KATO_FAILPOINTS=bank_write=2,sim_panic=5`) used to test all of the
//!   above under injected crashes, torn writes and I/O errors.
//!
//! # Request lifecycle
//!
//! ```text
//! request ── cache hit? ──► replay stored response (cache_hit: true)
//!    │ miss
//!    ▼
//! bank has archives for the scenario?
//!    │ yes: probe sims → alignment-score candidates → attach best
//!    │      source → Kato::resume (probe counts toward budget)
//!    │ no:  cold Kato::run
//!    ▼
//! append RunHistory to bank ──► store in cache ──► respond
//! ```

pub mod archive;
pub mod bank;
pub mod cache;
pub mod daemon;
pub mod faults;
pub mod json;
pub mod protocol;

pub use bank::{Bank, BankError, SourceChoice};
pub use cache::ResultCache;
pub use daemon::Daemon;
pub use json::Json;
pub use protocol::SizingRequest;
