#![warn(missing_docs)]

//! Tape-based reverse-mode automatic differentiation.
//!
//! The KATO paper trains its Neural Kernel (Neuk) and the encoder/decoder of
//! KAT-GP by gradient ascent on Gaussian-process log-likelihoods (paper
//! Eq. 3 and Eq. 12). The original implementation leans on PyTorch; this crate
//! is the from-scratch substitute: a classic Wengert-list (tape) reverse-mode
//! AD over `f64` scalars.
//!
//! Key pieces:
//!
//! * [`Tape`] — arena of operations; cleared and rebuilt every optimisation
//!   step.
//! * [`Var`] — a copyable handle (value + node index) with full operator
//!   overloading.
//! * [`Scalar`] — a trait implemented by both `f64` and [`Var`], so kernel
//!   and network code in `kato-gp` is written once and used for both fast
//!   inference (plain `f64`) and training (taped).
//! * [`Adam`] — the stochastic optimiser used for all MLE fits.
//! * [`Tape::backward_seeded`] — multi-output backward pass used by the GP
//!   "B-matrix" gradient trick, where each Gram-matrix entry gets its own
//!   adjoint seed `∂L/∂K_ij` and one sweep yields `∂L/∂θ` for every
//!   hyperparameter.
//!
//! # Example
//!
//! ```
//! use kato_autodiff::Tape;
//!
//! let tape = Tape::new();
//! let x = tape.var(2.0);
//! let y = tape.var(3.0);
//! let z = (x * y + x.sin()).exp();
//! let grads = tape.backward(z);
//! // dz/dx = exp(xy + sin x) * (y + cos x)
//! let expect = (2.0_f64 * 3.0 + 2.0_f64.sin()).exp() * (3.0 + 2.0_f64.cos());
//! assert!((grads.wrt(x) - expect).abs() < 1e-9);
//! ```

mod check;
mod optim;
mod scalar;
mod tape;

pub use check::{check_gradient, GradientCheck};
pub use optim::{clip_gradients, Adam};
pub use scalar::{lift_slice, Scalar};
pub use tape::{Grads, Tape, Var};
