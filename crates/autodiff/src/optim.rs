/// Adam optimiser (Kingma & Ba, 2015) over a flat parameter vector.
///
/// Used for every maximum-likelihood fit in the workspace: Neuk GP
/// hyperparameters (paper Eq. 3) and the KAT-GP encoder/decoder (Eq. 12).
///
/// # Example
///
/// ```
/// use kato_autodiff::Adam;
///
/// // Minimise (p-3)² by stepping along -grad.
/// let mut p = vec![0.0];
/// let mut opt = Adam::new(1, 0.1);
/// for _ in 0..500 {
///     let grad = vec![2.0 * (p[0] - 3.0)];
///     opt.step(&mut p, &grad);
/// }
/// assert!((p[0] - 3.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an optimiser for `dim` parameters with learning rate `lr` and
    /// the standard moment decay rates (β₁ = 0.9, β₂ = 0.999).
    #[must_use]
    pub fn new(dim: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
        }
    }

    /// Overrides the moment decay rates. Returns `self` for builder chaining.
    #[must_use]
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Sets the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Takes one *descent* step: `params ← params − lr · m̂/(√v̂+ε)`.
    ///
    /// To maximise an objective, pass the negated gradient.
    ///
    /// Non-finite gradient entries are treated as zero, which keeps a single
    /// degenerate likelihood evaluation from destroying the moment estimates.
    ///
    /// # Panics
    ///
    /// Panics if `params` or `grads` length differs from the optimiser
    /// dimension.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "Adam: params length mismatch");
        assert_eq!(grads.len(), self.m.len(), "Adam: grads length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = if grads[i].is_finite() { grads[i] } else { 0.0 };
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Number of steps taken so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.t
    }
}

/// Rescales `grads` in place so its L2 norm does not exceed `max_norm`.
/// Returns the original norm.
pub fn clip_gradients(grads: &mut [f64], max_norm: f64) -> f64 {
    let norm = grads.iter().map(|g| g * g).sum::<f64>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic_bowl() {
        let mut p = vec![5.0, -4.0];
        let mut opt = Adam::new(2, 0.05);
        for _ in 0..2000 {
            let g = vec![2.0 * (p[0] - 1.0), 2.0 * (p[1] + 2.0)];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 1.0).abs() < 1e-3);
        assert!((p[1] + 2.0).abs() < 1e-3);
    }

    #[test]
    fn nan_gradients_are_ignored() {
        let mut p = vec![1.0];
        let mut opt = Adam::new(1, 0.1);
        opt.step(&mut p, &[f64::NAN]);
        assert!(p[0].is_finite());
        assert_eq!(p[0], 1.0); // zero effective gradient
    }

    #[test]
    fn step_counter_increments() {
        let mut opt = Adam::new(1, 0.1);
        assert_eq!(opt.steps(), 0);
        opt.step(&mut [0.0], &[1.0]);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn clip_shrinks_only_large_gradients() {
        let mut g = vec![3.0, 4.0];
        let norm = clip_gradients(&mut g, 10.0);
        assert_eq!(norm, 5.0);
        assert_eq!(g, vec![3.0, 4.0]);
        let _ = clip_gradients(&mut g, 1.0);
        let new_norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "params length mismatch")]
    fn wrong_dimension_panics() {
        let mut opt = Adam::new(2, 0.1);
        opt.step(&mut [0.0], &[1.0]);
    }

    #[test]
    fn learning_rate_mutable() {
        let mut opt = Adam::new(1, 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
