#[cfg(test)]
use crate::Tape;
use crate::Var;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Write-once numeric abstraction over plain `f64` and taped [`Var`].
///
/// All kernel functions and neural-network layers in `kato-gp` are generic
/// over `Scalar`, which means the *same* code path is exercised during fast
/// `f64` prediction and taped gradient-based training — eliminating a whole
/// class of "training math disagrees with inference math" bugs.
///
/// Constants are introduced with [`Scalar::lift`], which creates the constant
/// in the same differentiation context as `self` (a no-op for `f64`, a tape
/// push for `Var`).
///
/// # Example
///
/// ```
/// use kato_autodiff::{Scalar, Tape};
///
/// fn softplus<S: Scalar>(x: S) -> S {
///     (x.exp() + x.lift(1.0)).ln()
/// }
///
/// assert!((softplus(0.0_f64) - 2.0_f64.ln()).abs() < 1e-12);
/// let tape = Tape::new();
/// let v = tape.var(0.0);
/// assert!((softplus(v).value() - 2.0_f64.ln()).abs() < 1e-12);
/// ```
pub trait Scalar:
    Copy
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + Add<f64, Output = Self>
    + Sub<f64, Output = Self>
    + Mul<f64, Output = Self>
    + Div<f64, Output = Self>
{
    /// The primitive value (identity for `f64`).
    fn value(self) -> f64;
    /// Creates a constant in the same differentiation context as `self`.
    fn lift(self, v: f64) -> Self;
    /// `e^self`.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Logistic sigmoid.
    fn sigmoid(self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// Absolute value (subgradient at 0 for `Var`).
    fn abs(self) -> Self;
    /// Value-wise maximum.
    fn max_val(self, other: Self) -> Self;
}

impl Scalar for f64 {
    fn value(self) -> f64 {
        self
    }
    fn lift(self, v: f64) -> f64 {
        v
    }
    fn exp(self) -> f64 {
        f64::exp(self)
    }
    fn ln(self) -> f64 {
        f64::ln(self)
    }
    fn sqrt(self) -> f64 {
        f64::sqrt(self)
    }
    fn tanh(self) -> f64 {
        f64::tanh(self)
    }
    fn sigmoid(self) -> f64 {
        1.0 / (1.0 + f64::exp(-self))
    }
    fn sin(self) -> f64 {
        f64::sin(self)
    }
    fn cos(self) -> f64 {
        f64::cos(self)
    }
    fn powi(self, n: i32) -> f64 {
        f64::powi(self, n)
    }
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    fn max_val(self, other: f64) -> f64 {
        f64::max(self, other)
    }
}

impl<'t> Scalar for Var<'t> {
    fn value(self) -> f64 {
        Var::value(self)
    }
    fn lift(self, v: f64) -> Var<'t> {
        self.tape().constant(v)
    }
    fn exp(self) -> Var<'t> {
        Var::exp(self)
    }
    fn ln(self) -> Var<'t> {
        Var::ln(self)
    }
    fn sqrt(self) -> Var<'t> {
        Var::sqrt(self)
    }
    fn tanh(self) -> Var<'t> {
        Var::tanh(self)
    }
    fn sigmoid(self) -> Var<'t> {
        Var::sigmoid(self)
    }
    fn sin(self) -> Var<'t> {
        Var::sin(self)
    }
    fn cos(self) -> Var<'t> {
        Var::cos(self)
    }
    fn powi(self, n: i32) -> Var<'t> {
        Var::powi(self, n)
    }
    fn abs(self) -> Var<'t> {
        Var::abs(self)
    }
    fn max_val(self, other: Var<'t>) -> Var<'t> {
        Var::max_val(self, other)
    }
}

/// Lifts a slice of `f64` into the differentiation context of `ctx`.
pub fn lift_slice<S: Scalar>(ctx: S, xs: &[f64]) -> Vec<S> {
    xs.iter().map(|&x| ctx.lift(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A generic function exercised through both implementations.
    fn rbf_toy<S: Scalar>(x: S, y: S, ls: S) -> S {
        let d = x - y;
        (-(d * d) / (ls * ls)).exp()
    }

    #[test]
    fn f64_and_var_agree_on_values() {
        let f_plain = rbf_toy(1.0_f64, 0.2, 0.8);
        let tape = Tape::new();
        let f_taped = rbf_toy(tape.var(1.0), tape.var(0.2), tape.var(0.8));
        assert!((f_plain - f_taped.value()).abs() < 1e-15);
    }

    #[test]
    fn var_gradient_matches_f64_finite_difference() {
        let tape = Tape::new();
        let x = tape.var(1.0);
        let y = tape.var(0.2);
        let ls = tape.var(0.8);
        let f = rbf_toy(x, y, ls);
        let g = tape.backward(f);

        let h = 1e-6;
        let fd = (rbf_toy(1.0 + h, 0.2, 0.8) - rbf_toy(1.0 - h, 0.2, 0.8)) / (2.0 * h);
        assert!((g.wrt(x) - fd).abs() < 1e-6);
        let fd_ls = (rbf_toy(1.0, 0.2, 0.8 + h) - rbf_toy(1.0, 0.2, 0.8 - h)) / (2.0 * h);
        assert!((g.wrt(ls) - fd_ls).abs() < 1e-6);
    }

    #[test]
    fn lift_creates_context_constant() {
        let tape = Tape::new();
        let x = tape.var(3.0);
        let two = x.lift(2.0);
        assert_eq!(two.value(), 2.0);
        assert_eq!(1.0_f64.lift(2.0), 2.0);
    }

    #[test]
    fn sigmoid_consistent_between_impls() {
        let tape = Tape::new();
        for &v in &[-3.0, 0.0, 0.5, 4.0] {
            let a = v.sigmoid();
            let b = tape.var(v).sigmoid().value();
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn lift_slice_roundtrip() {
        let xs = [1.0, 2.0, 3.0];
        let lifted = lift_slice(0.0_f64, &xs);
        assert_eq!(lifted, xs.to_vec());
    }
}
