/// Result of comparing an analytic gradient against central finite
/// differences.
#[derive(Debug, Clone)]
pub struct GradientCheck {
    /// Largest absolute discrepancy across coordinates.
    pub max_abs_err: f64,
    /// Largest relative discrepancy across coordinates (denominator floored
    /// at 1.0 to avoid blowups near zero gradients).
    pub max_rel_err: f64,
    /// Per-coordinate finite-difference estimates.
    pub numeric: Vec<f64>,
}

impl GradientCheck {
    /// `true` when both error measures are below `tol`.
    #[must_use]
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Verifies `analytic` against central finite differences of `f` at `x`.
///
/// `f` must be deterministic. Step size `h` is scaled per-coordinate by
/// `max(1, |x_i|)`.
///
/// This is a *test utility*: the GP crates use it in their unit tests to
/// guarantee that every kernel's taped gradient matches its math.
pub fn check_gradient<F>(f: F, x: &[f64], analytic: &[f64], h: f64) -> GradientCheck
where
    F: Fn(&[f64]) -> f64,
{
    assert_eq!(
        x.len(),
        analytic.len(),
        "check_gradient: dimension mismatch"
    );
    let mut numeric = vec![0.0; x.len()];
    let mut max_abs = 0.0_f64;
    let mut max_rel = 0.0_f64;
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let hi = h * x[i].abs().max(1.0);
        xp[i] = x[i] + hi;
        let fp = f(&xp);
        xp[i] = x[i] - hi;
        let fm = f(&xp);
        xp[i] = x[i];
        numeric[i] = (fp - fm) / (2.0 * hi);
        let abs_err = (numeric[i] - analytic[i]).abs();
        let rel_err = abs_err / numeric[i].abs().max(analytic[i].abs()).max(1.0);
        max_abs = max_abs.max(abs_err);
        max_rel = max_rel.max(rel_err);
    }
    GradientCheck {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        numeric,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    #[test]
    fn tape_gradient_passes_check_on_rosenbrock() {
        let rosen = |p: &[f64]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
        let x = [0.3, -0.7];
        let tape = Tape::new();
        let a = tape.var(x[0]);
        let b = tape.var(x[1]);
        let one = tape.constant(1.0);
        let f = (one - a).powi(2) + 100.0 * (b - a * a).powi(2);
        let g = tape.backward(f);
        let check = check_gradient(rosen, &x, &[g.wrt(a), g.wrt(b)], 1e-6);
        assert!(check.passes(1e-5), "check: {check:?}");
    }

    #[test]
    fn detects_wrong_gradient() {
        let f = |p: &[f64]| p[0] * p[0];
        let check = check_gradient(f, &[2.0], &[100.0], 1e-6);
        assert!(!check.passes(1e-3));
        assert!((check.numeric[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = check_gradient(|p| p[0], &[1.0, 2.0], &[1.0], 1e-6);
    }
}
