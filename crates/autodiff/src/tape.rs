use std::cell::RefCell;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// One entry of the Wengert list: up to two parents with precomputed local
/// partial derivatives.
#[derive(Debug, Clone, Copy)]
struct Node {
    parents: [usize; 2],
    partials: [f64; 2],
}

/// Arena recording every elementary operation for reverse-mode AD.
///
/// A tape is cheap to create and intended to be rebuilt for every evaluation
/// of the objective (gradients are exact for the recorded computation). All
/// [`Var`]s borrow the tape, which statically prevents mixing variables from
/// different tapes.
///
/// # Example
///
/// ```
/// use kato_autodiff::Tape;
///
/// let tape = Tape::new();
/// let a = tape.var(1.5);
/// let b = a * a + a;
/// let g = tape.backward(b);
/// assert!((g.wrt(a) - 4.0).abs() < 1e-12); // d(a²+a)/da = 2a+1
/// ```
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tape")
            .field("len", &self.nodes.borrow().len())
            .finish()
    }
}

impl Tape {
    /// Creates an empty tape.
    #[must_use]
    pub fn new() -> Self {
        Tape {
            nodes: RefCell::new(Vec::new()),
        }
    }

    /// Creates an empty tape with room for `cap` nodes (avoids reallocation
    /// in the hot GP-training loop).
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Tape {
            nodes: RefCell::new(Vec::with_capacity(cap)),
        }
    }

    /// Number of recorded nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Clears the tape, keeping its allocation. All outstanding [`Var`]s
    /// become logically invalid (using them afterwards is a logic error that
    /// `debug_assert`s catch in tests).
    pub fn clear(&self) {
        self.nodes.borrow_mut().clear();
    }

    /// Registers a new leaf variable with the given value.
    #[must_use]
    pub fn var(&self, value: f64) -> Var<'_> {
        let idx = self.push_leaf();
        Var {
            tape: self,
            idx,
            value,
        }
    }

    /// Registers a constant. Gradients flow *to* it (its adjoint is simply
    /// never read), so it is represented as a leaf too.
    #[must_use]
    pub fn constant(&self, value: f64) -> Var<'_> {
        self.var(value)
    }

    fn push_leaf(&self) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        let idx = nodes.len();
        nodes.push(Node {
            parents: [idx, idx],
            partials: [0.0, 0.0],
        });
        idx
    }

    fn push_unary(&self, parent: usize, partial: f64) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        let idx = nodes.len();
        nodes.push(Node {
            parents: [parent, idx],
            partials: [partial, 0.0],
        });
        idx
    }

    fn push_binary(&self, p0: usize, d0: f64, p1: usize, d1: f64) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        let idx = nodes.len();
        nodes.push(Node {
            parents: [p0, p1],
            partials: [d0, d1],
        });
        idx
    }

    /// Reverse sweep from a single scalar output (adjoint seed `1.0`).
    #[must_use]
    pub fn backward(&self, output: Var<'_>) -> Grads {
        self.backward_seeded(&[(output, 1.0)])
    }

    /// Reverse sweep with explicit adjoint seeds on several outputs.
    ///
    /// Computes `Σ_k seed_k · ∂(output_k)/∂(leaf)` for every leaf in one pass
    /// — the workhorse behind the GP marginal-likelihood gradient, where each
    /// Gram entry `K_ij` is seeded with `∂L/∂K_ij`.
    #[must_use]
    pub fn backward_seeded(&self, seeds: &[(Var<'_>, f64)]) -> Grads {
        let nodes = self.nodes.borrow();
        let mut adjoints = vec![0.0; nodes.len()];
        for (var, seed) in seeds {
            debug_assert!(var.idx < nodes.len(), "Var from a cleared/foreign tape");
            adjoints[var.idx] += seed;
        }
        for i in (0..nodes.len()).rev() {
            let a = adjoints[i];
            if a == 0.0 {
                continue;
            }
            let node = nodes[i];
            if node.parents[0] != i {
                adjoints[node.parents[0]] += a * node.partials[0];
            }
            if node.parents[1] != i {
                adjoints[node.parents[1]] += a * node.partials[1];
            }
        }
        Grads { adjoints }
    }
}

/// Result of a backward pass: adjoints for every node, queried per-[`Var`].
#[derive(Debug, Clone)]
pub struct Grads {
    adjoints: Vec<f64>,
}

impl Grads {
    /// Gradient of the seeded output(s) with respect to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the tape that produced these
    /// gradients (index out of range).
    #[must_use]
    pub fn wrt(&self, v: Var<'_>) -> f64 {
        self.adjoints[v.idx]
    }

    /// Gradients for a slice of variables, in order.
    #[must_use]
    pub fn wrt_slice(&self, vars: &[Var<'_>]) -> Vec<f64> {
        vars.iter().map(|v| self.wrt(*v)).collect()
    }
}

/// Differentiable scalar: a value plus its position on a [`Tape`].
///
/// `Var` is `Copy` and supports the full set of arithmetic operators against
/// both `Var` and `f64`, plus the transcendental functions the GP kernels
/// need.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    idx: usize,
    value: f64,
}

impl fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Var")
            .field("idx", &self.idx)
            .field("value", &self.value)
            .finish()
    }
}

impl<'t> Var<'t> {
    /// Current value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.value
    }

    /// The tape this variable lives on.
    #[must_use]
    pub fn tape(self) -> &'t Tape {
        self.tape
    }

    fn unary(self, value: f64, partial: f64) -> Var<'t> {
        Var {
            tape: self.tape,
            idx: self.tape.push_unary(self.idx, partial),
            value,
        }
    }

    fn binary(self, rhs: Var<'t>, value: f64, d_self: f64, d_rhs: f64) -> Var<'t> {
        debug_assert!(
            std::ptr::eq(self.tape, rhs.tape),
            "mixing Vars from different tapes"
        );
        Var {
            tape: self.tape,
            idx: self.tape.push_binary(self.idx, d_self, rhs.idx, d_rhs),
            value,
        }
    }

    /// `e^self`.
    #[must_use]
    pub fn exp(self) -> Var<'t> {
        let v = self.value.exp();
        self.unary(v, v)
    }

    /// Natural logarithm. Non-positive inputs yield non-finite values, as
    /// with `f64::ln`.
    #[must_use]
    pub fn ln(self) -> Var<'t> {
        self.unary(self.value.ln(), 1.0 / self.value)
    }

    /// Square root.
    #[must_use]
    pub fn sqrt(self) -> Var<'t> {
        let v = self.value.sqrt();
        self.unary(v, 0.5 / v)
    }

    /// Hyperbolic tangent.
    #[must_use]
    pub fn tanh(self) -> Var<'t> {
        let v = self.value.tanh();
        self.unary(v, 1.0 - v * v)
    }

    /// Logistic sigmoid `1/(1+e^{-x})` (the activation of KAT-GP's
    /// encoder/decoder networks).
    #[must_use]
    pub fn sigmoid(self) -> Var<'t> {
        let v = 1.0 / (1.0 + (-self.value).exp());
        self.unary(v, v * (1.0 - v))
    }

    /// Sine (used by the Periodic primitive kernel).
    #[must_use]
    pub fn sin(self) -> Var<'t> {
        self.unary(self.value.sin(), self.value.cos())
    }

    /// Cosine.
    #[must_use]
    pub fn cos(self) -> Var<'t> {
        self.unary(self.value.cos(), -self.value.sin())
    }

    /// Integer power.
    #[must_use]
    pub fn powi(self, n: i32) -> Var<'t> {
        let v = self.value.powi(n);
        self.unary(v, f64::from(n) * self.value.powi(n - 1))
    }

    /// Absolute value with the `sign(x)` subgradient (`0` at the kink).
    #[must_use]
    pub fn abs(self) -> Var<'t> {
        let s = if self.value > 0.0 {
            1.0
        } else if self.value < 0.0 {
            -1.0
        } else {
            0.0
        };
        self.unary(self.value.abs(), s)
    }

    /// Value-wise maximum with the argmax subgradient.
    #[must_use]
    pub fn max_val(self, other: Var<'t>) -> Var<'t> {
        if self.value >= other.value {
            self.binary(other, self.value, 1.0, 0.0)
        } else {
            self.binary(other, other.value, 0.0, 1.0)
        }
    }
}

impl<'t> Add for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: Var<'t>) -> Var<'t> {
        self.binary(rhs, self.value + rhs.value, 1.0, 1.0)
    }
}

impl<'t> Sub for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        self.binary(rhs, self.value - rhs.value, 1.0, -1.0)
    }
}

impl<'t> Mul for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        self.binary(rhs, self.value * rhs.value, rhs.value, self.value)
    }
}

impl<'t> Div for Var<'t> {
    type Output = Var<'t>;
    fn div(self, rhs: Var<'t>) -> Var<'t> {
        self.binary(
            rhs,
            self.value / rhs.value,
            1.0 / rhs.value,
            -self.value / (rhs.value * rhs.value),
        )
    }
}

impl<'t> Neg for Var<'t> {
    type Output = Var<'t>;
    fn neg(self) -> Var<'t> {
        self.unary(-self.value, -1.0)
    }
}

impl<'t> Add<f64> for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: f64) -> Var<'t> {
        self.unary(self.value + rhs, 1.0)
    }
}

impl<'t> Sub<f64> for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, rhs: f64) -> Var<'t> {
        self.unary(self.value - rhs, 1.0)
    }
}

impl<'t> Mul<f64> for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: f64) -> Var<'t> {
        self.unary(self.value * rhs, rhs)
    }
}

impl<'t> Div<f64> for Var<'t> {
    type Output = Var<'t>;
    fn div(self, rhs: f64) -> Var<'t> {
        self.unary(self.value / rhs, 1.0 / rhs)
    }
}

impl<'t> Add<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn add(self, rhs: Var<'t>) -> Var<'t> {
        rhs + self
    }
}

impl<'t> Sub<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        rhs.unary(self - rhs.value, -1.0)
    }
}

impl<'t> Mul<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        rhs * self
    }
}

impl<'t> Div<Var<'t>> for f64 {
    type Output = Var<'t>;
    fn div(self, rhs: Var<'t>) -> Var<'t> {
        rhs.unary(self / rhs.value, -self / (rhs.value * rhs.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_value() {
        let tape = Tape::new();
        let x = tape.var(42.0);
        assert_eq!(x.value(), 42.0);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn simple_polynomial_gradient() {
        // f = 3x² + 2x + 1 at x=4 → f' = 6x+2 = 26
        let tape = Tape::new();
        let x = tape.var(4.0);
        let f = 3.0 * x * x + 2.0 * x + 1.0;
        assert_eq!(f.value(), 57.0);
        let g = tape.backward(f);
        assert!((g.wrt(x) - 26.0).abs() < 1e-12);
    }

    #[test]
    fn product_and_quotient_rules() {
        let tape = Tape::new();
        let x = tape.var(2.0);
        let y = tape.var(5.0);
        let f = (x * y) / (x + y);
        let g = tape.backward(f);
        // d/dx [xy/(x+y)] = y²/(x+y)²
        assert!((g.wrt(x) - 25.0 / 49.0).abs() < 1e-12);
        assert!((g.wrt(y) - 4.0 / 49.0).abs() < 1e-12);
    }

    #[test]
    fn transcendental_chain() {
        let tape = Tape::new();
        let x = tape.var(0.7);
        let f = (x.sin() * x.cos()).tanh();
        let g = tape.backward(f);
        // f = tanh(sin x cos x); f' = (1-f²)(cos²x − sin²x)
        let fv = (0.7_f64.sin() * 0.7_f64.cos()).tanh();
        let expect = (1.0 - fv * fv) * (0.7_f64.cos().powi(2) - 0.7_f64.sin().powi(2));
        assert!((g.wrt(x) - expect).abs() < 1e-12);
    }

    #[test]
    fn ln_sqrt_powi() {
        let tape = Tape::new();
        let x = tape.var(3.0);
        let f = x.ln() + x.sqrt() + x.powi(3);
        let g = tape.backward(f);
        let expect = 1.0 / 3.0 + 0.5 / 3.0_f64.sqrt() + 3.0 * 9.0;
        assert!((g.wrt(x) - expect).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_derivative() {
        let tape = Tape::new();
        let x = tape.var(0.3);
        let f = x.sigmoid();
        let g = tape.backward(f);
        let s = 1.0 / (1.0 + (-0.3_f64).exp());
        assert!((g.wrt(x) - s * (1.0 - s)).abs() < 1e-12);
    }

    #[test]
    fn abs_subgradient() {
        let tape = Tape::new();
        let x = tape.var(-2.0);
        let g = tape.backward(x.abs());
        assert_eq!(g.wrt(x), -1.0);
        let z = tape.var(0.0);
        let g = tape.backward(z.abs());
        assert_eq!(g.wrt(z), 0.0);
    }

    #[test]
    fn max_val_routes_gradient() {
        let tape = Tape::new();
        let a = tape.var(1.0);
        let b = tape.var(2.0);
        let m = a.max_val(b);
        assert_eq!(m.value(), 2.0);
        let g = tape.backward(m);
        assert_eq!(g.wrt(a), 0.0);
        assert_eq!(g.wrt(b), 1.0);
    }

    #[test]
    fn scalar_mixed_operations() {
        let tape = Tape::new();
        let x = tape.var(2.0);
        let f = 1.0 / x + (3.0 - x) * 2.0 + x / 4.0;
        let g = tape.backward(f);
        // d/dx [1/x + 6 − 2x + x/4] = −1/x² − 2 + 1/4
        assert!((g.wrt(x) - (-0.25 - 2.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn fan_out_accumulates() {
        // x used twice: f = x·x + x → f' = 2x + 1
        let tape = Tape::new();
        let x = tape.var(5.0);
        let f = x * x + x;
        let g = tape.backward(f);
        assert!((g.wrt(x) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn seeded_backward_combines_outputs() {
        // Two outputs y1=x², y2=3x. Seeds (2, −1) → grad = 2·2x − 3 = 4x−3.
        let tape = Tape::new();
        let x = tape.var(1.5);
        let y1 = x * x;
        let y2 = 3.0 * x;
        let g = tape.backward_seeded(&[(y1, 2.0), (y2, -1.0)]);
        assert!((g.wrt(x) - (4.0 * 1.5 - 3.0)).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_length() {
        let tape = Tape::new();
        let _ = tape.var(1.0) + tape.var(2.0);
        assert_eq!(tape.len(), 3);
        tape.clear();
        assert!(tape.is_empty());
    }

    #[test]
    fn constant_receives_no_meaningful_grad_use() {
        let tape = Tape::new();
        let x = tape.var(2.0);
        let c = tape.constant(10.0);
        let f = x * c;
        let g = tape.backward(f);
        assert_eq!(g.wrt(x), 10.0);
        // The constant's adjoint exists but callers simply don't read it.
        assert_eq!(g.wrt(c), 2.0);
    }

    #[test]
    fn wrt_slice_orders_match() {
        let tape = Tape::new();
        let a = tape.var(1.0);
        let b = tape.var(2.0);
        let f = a * 2.0 + b * 3.0;
        let g = tape.backward(f);
        assert_eq!(g.wrt_slice(&[a, b]), vec![2.0, 3.0]);
    }
}
