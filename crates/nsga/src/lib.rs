#![warn(missing_docs)]

//! NSGA-II multi-objective genetic search.
//!
//! MACE (and KATO's modified constrained MACE, paper §3.3) propose batch
//! candidates from the Pareto frontier of several acquisition functions,
//! found with NSGA-II. This crate is that substrate: fast non-dominated
//! sorting, crowding distance, binary tournament selection, SBX crossover
//! and polynomial mutation over box-constrained real vectors in `[0,1]^d`.
//!
//! All objectives are **maximised**; flip signs for minimisation.
//!
//! # Example — bi-objective trade-off
//!
//! ```
//! use kato_nsga::{Nsga2, Nsga2Config};
//!
//! // Maximise (x, 1-x): the Pareto front spans the whole segment.
//! let front = Nsga2::new(Nsga2Config { dim: 1, seed: 3, ..Nsga2Config::default() })
//!     .run(|x| vec![x[0], 1.0 - x[0]]);
//! assert!(front.len() > 10);
//! ```

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration for an NSGA-II run.
#[derive(Debug, Clone)]
pub struct Nsga2Config {
    /// Decision-vector dimensionality (box `[0,1]^dim`).
    pub dim: usize,
    /// Population size.
    pub pop_size: usize,
    /// Number of generations.
    pub generations: usize,
    /// SBX crossover probability.
    pub crossover_prob: f64,
    /// SBX distribution index (higher = children closer to parents).
    pub eta_crossover: f64,
    /// Per-gene polynomial mutation probability (defaults to `1/dim` when
    /// `None`).
    pub mutation_prob: Option<f64>,
    /// Polynomial mutation distribution index.
    pub eta_mutation: f64,
    /// RNG seed.
    pub seed: u64,
    /// Points injected into the initial population (e.g. current best
    /// designs), truncated to `pop_size`.
    pub initial: Vec<Vec<f64>>,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            dim: 1,
            pop_size: 60,
            generations: 40,
            crossover_prob: 0.9,
            eta_crossover: 15.0,
            mutation_prob: None,
            eta_mutation: 20.0,
            seed: 0,
            initial: Vec::new(),
        }
    }
}

/// One individual on the final Pareto front.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Decision vector in `[0,1]^dim`.
    pub x: Vec<f64>,
    /// Objective values (maximised).
    pub objectives: Vec<f64>,
}

/// NSGA-II driver. Construct with a config, then [`Nsga2::run`] with the
/// objective closure.
#[derive(Debug, Clone)]
pub struct Nsga2 {
    config: Nsga2Config,
}

impl Nsga2 {
    /// Creates a driver.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `pop_size < 4`.
    #[must_use]
    pub fn new(config: Nsga2Config) -> Self {
        assert!(config.dim > 0, "dim must be positive");
        assert!(config.pop_size >= 4, "population too small");
        Nsga2 { config }
    }

    /// Runs the search, returning the non-dominated set of the final
    /// population.
    pub fn run<F>(&self, mut objectives: F) -> Vec<ParetoPoint>
    where
        F: FnMut(&[f64]) -> Vec<f64>,
    {
        self.run_batch(|xs| xs.iter().map(|x| objectives(x)).collect())
    }

    /// Like [`Nsga2::run`], but the objective closure scores a whole
    /// population per call (one `Vec<f64>` of objective values per
    /// individual, in input order).
    ///
    /// This is the hook that lets surrogate-backed acquisition searches
    /// batch their posterior inference: every generation issues exactly one
    /// call for the offspring population (plus one for the initial
    /// population) instead of `pop_size` point-wise calls, so the caller
    /// can amortise shared linear algebra and fan the batch out across
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if the closure returns a different number of objective
    /// vectors than it was given.
    pub fn run_batch<F>(&self, mut objectives: F) -> Vec<ParetoPoint>
    where
        F: FnMut(&[Vec<f64>]) -> Vec<Vec<f64>>,
    {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pm = cfg.mutation_prob.unwrap_or(1.0 / cfg.dim as f64);

        let mut pop: Vec<Vec<f64>> = Vec::with_capacity(cfg.pop_size);
        for init in cfg.initial.iter().take(cfg.pop_size) {
            let mut v = init.clone();
            v.resize(cfg.dim, 0.5);
            for g in v.iter_mut() {
                *g = g.clamp(0.0, 1.0);
            }
            pop.push(v);
        }
        while pop.len() < cfg.pop_size {
            pop.push((0..cfg.dim).map(|_| rng.gen::<f64>()).collect());
        }
        let mut objs: Vec<Vec<f64>> = objectives(&pop);
        assert_eq!(objs.len(), pop.len(), "batch objective count mismatch");

        for _ in 0..cfg.generations {
            // Rank current population for tournament selection.
            let (ranks, crowding) = rank_and_crowd(&objs);

            // Offspring.
            let mut children: Vec<Vec<f64>> = Vec::with_capacity(cfg.pop_size);
            while children.len() < cfg.pop_size {
                let p1 = tournament(&ranks, &crowding, &mut rng);
                let p2 = tournament(&ranks, &crowding, &mut rng);
                let (mut c1, mut c2) = sbx(
                    &pop[p1],
                    &pop[p2],
                    cfg.crossover_prob,
                    cfg.eta_crossover,
                    &mut rng,
                );
                mutate(&mut c1, pm, cfg.eta_mutation, &mut rng);
                mutate(&mut c2, pm, cfg.eta_mutation, &mut rng);
                children.push(c1);
                if children.len() < cfg.pop_size {
                    children.push(c2);
                }
            }
            let child_objs: Vec<Vec<f64>> = objectives(&children);
            assert_eq!(
                child_objs.len(),
                children.len(),
                "batch objective count mismatch"
            );

            // Environmental selection over the union.
            pop.extend(children);
            objs.extend(child_objs);
            let survivors = select(&objs, cfg.pop_size);
            pop = survivors.iter().map(|&i| pop[i].clone()).collect();
            objs = survivors.iter().map(|&i| objs[i].clone()).collect();
        }

        // Final non-dominated set.
        let fronts = fast_non_dominated_sort(&objs);
        fronts[0]
            .iter()
            .map(|&i| ParetoPoint {
                x: pop[i].clone(),
                objectives: objs[i].clone(),
            })
            .collect()
    }
}

/// `true` when `a` Pareto-dominates `b` (all ≥, one >), maximisation.
#[must_use]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly = true;
        }
    }
    strictly
}

/// Fast non-dominated sort: returns fronts as index lists, best first.
#[must_use]
pub fn fast_non_dominated_sort(objs: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = objs.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut counts = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&objs[i], &objs[j]) {
                dominated_by[i].push(j);
                counts[j] += 1;
            } else if dominates(&objs[j], &objs[i]) {
                dominated_by[j].push(i);
                counts[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| counts[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                counts[j] -= 1;
                if counts[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// Crowding distance of each index within one front.
#[must_use]
pub fn crowding_distance(objs: &[Vec<f64>], front: &[usize]) -> Vec<f64> {
    let m = objs.first().map_or(0, Vec::len);
    let mut dist = vec![0.0_f64; front.len()];
    if front.len() <= 2 {
        return vec![f64::INFINITY; front.len()];
    }
    for k in 0..m {
        let mut order: Vec<usize> = (0..front.len()).collect();
        // NaN objectives (e.g. from a misbehaving simulator feeding the
        // surrogate) rank last instead of aborting the run.
        order.sort_by(|&a, &b| kato_linalg::cmp_nan_last(&objs[front[a]][k], &objs[front[b]][k]));
        let lo = objs[front[order[0]]][k];
        let hi = objs[front[order[front.len() - 1]]][k];
        let span = (hi - lo).max(1e-12);
        dist[order[0]] = f64::INFINITY;
        dist[order[front.len() - 1]] = f64::INFINITY;
        for w in 1..front.len() - 1 {
            let prev = objs[front[order[w - 1]]][k];
            let next = objs[front[order[w + 1]]][k];
            dist[order[w]] += (next - prev) / span;
        }
    }
    dist
}

/// Per-individual (rank, crowding) for tournament selection.
fn rank_and_crowd(objs: &[Vec<f64>]) -> (Vec<usize>, Vec<f64>) {
    let fronts = fast_non_dominated_sort(objs);
    let mut ranks = vec![0usize; objs.len()];
    let mut crowding = vec![0.0; objs.len()];
    for (r, front) in fronts.iter().enumerate() {
        let dist = crowding_distance(objs, front);
        for (&i, &d) in front.iter().zip(&dist) {
            ranks[i] = r;
            crowding[i] = d;
        }
    }
    (ranks, crowding)
}

fn tournament(ranks: &[usize], crowding: &[f64], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..ranks.len());
    let b = rng.gen_range(0..ranks.len());
    if ranks[a] < ranks[b] || (ranks[a] == ranks[b] && crowding[a] > crowding[b]) {
        a
    } else {
        b
    }
}

/// Environmental selection: keep the best `k` indices by (rank, crowding).
fn select(objs: &[Vec<f64>], k: usize) -> Vec<usize> {
    let fronts = fast_non_dominated_sort(objs);
    let mut out = Vec::with_capacity(k);
    for front in fronts {
        if out.len() + front.len() <= k {
            out.extend(front);
        } else {
            let dist = crowding_distance(objs, &front);
            let mut order: Vec<usize> = (0..front.len()).collect();
            // Descending crowding with NaN ranked last (worst).
            order.sort_by(|&a, &b| kato_linalg::cmp_nan_worst(&dist[b], &dist[a]));
            for &w in order.iter().take(k - out.len()) {
                out.push(front[w]);
            }
            break;
        }
    }
    out
}

/// Simulated binary crossover (SBX) on `[0,1]` boxes.
fn sbx(p1: &[f64], p2: &[f64], prob: f64, eta: f64, rng: &mut StdRng) -> (Vec<f64>, Vec<f64>) {
    let mut c1 = p1.to_vec();
    let mut c2 = p2.to_vec();
    if rng.gen::<f64>() < prob {
        for i in 0..p1.len() {
            if rng.gen::<f64>() < 0.5 {
                let u: f64 = rng.gen();
                let beta = if u <= 0.5 {
                    (2.0 * u).powf(1.0 / (eta + 1.0))
                } else {
                    (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (eta + 1.0))
                };
                let (a, b) = (p1[i], p2[i]);
                c1[i] = (0.5 * ((1.0 + beta) * a + (1.0 - beta) * b)).clamp(0.0, 1.0);
                c2[i] = (0.5 * ((1.0 - beta) * a + (1.0 + beta) * b)).clamp(0.0, 1.0);
            }
        }
    }
    (c1, c2)
}

/// Polynomial mutation on `[0,1]` boxes.
fn mutate(x: &mut [f64], prob: f64, eta: f64, rng: &mut StdRng) {
    for g in x.iter_mut() {
        if rng.gen::<f64>() < prob {
            let u: f64 = rng.gen();
            let delta = if u < 0.5 {
                (2.0 * u).powf(1.0 / (eta + 1.0)) - 1.0
            } else {
                1.0 - (2.0 * (1.0 - u)).powf(1.0 / (eta + 1.0))
            };
            *g = (*g + delta).clamp(0.0, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominance_relation() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[2.0, 0.0], &[1.0, 1.0]));
    }

    #[test]
    fn sort_separates_fronts() {
        let objs = vec![
            vec![1.0, 1.0], // dominated by 2,2
            vec![2.0, 2.0],
            vec![3.0, 0.0], // incomparable with 2,2
        ];
        let fronts = fast_non_dominated_sort(&objs);
        assert_eq!(fronts[0].len(), 2);
        assert!(fronts[0].contains(&1) && fronts[0].contains(&2));
        assert_eq!(fronts[1], vec![0]);
    }

    #[test]
    fn crowding_prefers_extremes() {
        let objs = vec![
            vec![0.0, 1.0],
            vec![0.5, 0.5],
            vec![0.45, 0.55],
            vec![1.0, 0.0],
        ];
        let front: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&objs, &front);
        assert!(d[0].is_infinite() && d[3].is_infinite());
        assert!(d[1] < d[0] && d[2] < d[3]);
    }

    #[test]
    fn finds_single_objective_optimum() {
        // Maximise -(x-0.7)²: degenerate single-objective case.
        let front = Nsga2::new(Nsga2Config {
            dim: 1,
            pop_size: 30,
            generations: 30,
            seed: 1,
            ..Nsga2Config::default()
        })
        .run(|x| vec![-(x[0] - 0.7) * (x[0] - 0.7)]);
        let best = front.iter().map(|p| p.x[0]).fold(0.0, |acc, v| {
            if (v - 0.7).abs() < (acc - 0.7_f64).abs() {
                v
            } else {
                acc
            }
        });
        assert!((best - 0.7).abs() < 0.02, "best {best}");
    }

    #[test]
    fn covers_biobjective_front() {
        // Maximise (x, 1-x): the front is the whole segment; expect spread.
        let front = Nsga2::new(Nsga2Config {
            dim: 2,
            pop_size: 40,
            generations: 30,
            seed: 2,
            ..Nsga2Config::default()
        })
        .run(|x| vec![x[0], 1.0 - x[0]]);
        let min = front.iter().map(|p| p.objectives[0]).fold(1.0, f64::min);
        let max = front.iter().map(|p| p.objectives[0]).fold(0.0, f64::max);
        assert!(max - min > 0.6, "front spread {min}..{max}");
    }

    #[test]
    fn respects_bounds() {
        let front = Nsga2::new(Nsga2Config {
            dim: 3,
            pop_size: 20,
            generations: 10,
            seed: 3,
            ..Nsga2Config::default()
        })
        .run(|x| vec![x.iter().sum::<f64>()]);
        for p in &front {
            assert!(p.x.iter().all(|&g| (0.0..=1.0).contains(&g)));
        }
    }

    #[test]
    fn initial_seeds_are_used() {
        // With zero generations the returned front comes straight from the
        // initial population, which must include the seed point.
        let front = Nsga2::new(Nsga2Config {
            dim: 2,
            pop_size: 10,
            generations: 0,
            seed: 4,
            initial: vec![vec![0.123, 0.456]],
            ..Nsga2Config::default()
        })
        .run(|x| vec![-(x[0] - 0.123).abs() - (x[1] - 0.456).abs()]);
        assert!(front.iter().any(|p| p.x == vec![0.123, 0.456]));
    }

    #[test]
    fn run_batch_matches_pointwise_run() {
        let cfg = Nsga2Config {
            dim: 2,
            pop_size: 16,
            generations: 6,
            seed: 12,
            ..Nsga2Config::default()
        };
        let obj = |x: &[f64]| vec![x[0], 1.0 - x[0] * x[1]];
        let a = Nsga2::new(cfg.clone()).run(obj);
        let b = Nsga2::new(cfg).run_batch(|xs| xs.iter().map(|x| obj(x)).collect());
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.x, pb.x);
            assert_eq!(pa.objectives, pb.objectives);
        }
    }

    #[test]
    fn nan_objectives_do_not_panic() {
        // A sub-region of the objective landscape returns NaN; the search
        // must complete and still return finite non-dominated points.
        let front = Nsga2::new(Nsga2Config {
            dim: 2,
            pop_size: 20,
            generations: 10,
            seed: 5,
            ..Nsga2Config::default()
        })
        .run(|x| {
            if x[0] < 0.3 {
                vec![f64::NAN, f64::NAN]
            } else {
                vec![x[0], 1.0 - x[0]]
            }
        });
        assert!(!front.is_empty());
        assert!(front
            .iter()
            .any(|p| p.objectives.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            Nsga2::new(Nsga2Config {
                dim: 2,
                pop_size: 16,
                generations: 5,
                seed: 9,
                ..Nsga2Config::default()
            })
            .run(|x| vec![x[0], 1.0 - x[0] * x[1]])
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].x, b[0].x);
    }

    proptest! {
        #[test]
        fn prop_front_is_mutually_nondominated(seed in 0u64..50) {
            let front = Nsga2::new(Nsga2Config {
                dim: 2,
                pop_size: 16,
                generations: 8,
                seed,
                ..Nsga2Config::default()
            })
            .run(|x| vec![x[0], 1.0 - x[0] - 0.3 * x[1]]);
            for a in &front {
                for b in &front {
                    prop_assert!(!dominates(&a.objectives, &b.objectives));
                }
            }
        }
    }
}

/// 2-D hypervolume indicator (maximisation) of a point set relative to a
/// reference point dominated by every member — the standard quality measure
/// for Pareto fronts like MACE's acquisition ensembles.
///
/// Points not dominating `reference` contribute nothing.
///
/// # Panics
///
/// Panics if any point or the reference is not 2-dimensional.
#[must_use]
pub fn hypervolume_2d(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    assert_eq!(reference.len(), 2, "hypervolume_2d needs 2-D objectives");
    let mut pts: Vec<(f64, f64)> = points
        .iter()
        .map(|p| {
            assert_eq!(p.len(), 2, "hypervolume_2d needs 2-D objectives");
            (p[0], p[1])
        })
        .filter(|&(a, b)| a > reference[0] && b > reference[1])
        .collect();
    // Sort by first objective descending; sweep, keeping the running best of
    // the second objective to skip dominated points.
    // Descending by the first objective; NaN points sort last and, being
    // non-dominating, contribute no area.
    pts.sort_by(|x, y| kato_linalg::cmp_nan_worst(&y.0, &x.0));
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for &(x, y) in &pts {
        if y > prev_y {
            hv += (x - reference[0]) * (y - prev_y);
            prev_y = y;
        }
    }
    hv
}

#[cfg(test)]
mod hv_tests {
    use super::hypervolume_2d;

    #[test]
    fn single_point_rectangle() {
        let hv = hypervolume_2d(&[vec![2.0, 3.0]], &[0.0, 0.0]);
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_point_adds_nothing() {
        let base = hypervolume_2d(&[vec![2.0, 3.0]], &[0.0, 0.0]);
        let with_dom = hypervolume_2d(&[vec![2.0, 3.0], vec![1.0, 1.0]], &[0.0, 0.0]);
        assert!((base - with_dom).abs() < 1e-12);
    }

    #[test]
    fn two_point_staircase() {
        // (1,3) and (3,1) over (0,0): 1*3 + (3-1)*1 = 5.
        let hv = hypervolume_2d(&[vec![1.0, 3.0], vec![3.0, 1.0]], &[0.0, 0.0]);
        assert!((hv - 5.0).abs() < 1e-12);
    }

    #[test]
    fn points_below_reference_ignored() {
        let hv = hypervolume_2d(&[vec![-1.0, 5.0], vec![5.0, -1.0]], &[0.0, 0.0]);
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn larger_front_dominates_smaller() {
        let small = hypervolume_2d(&[vec![1.0, 1.0]], &[0.0, 0.0]);
        let large = hypervolume_2d(&[vec![1.0, 1.0], vec![2.0, 0.5]], &[0.0, 0.0]);
        assert!(large > small);
    }
}
