//! Smoke tests for the `kato` CLI binary: every subcommand must complete
//! against the real registry, and the `run` path must work end to end on
//! each of the new MNA testbenches with a small budget (one BO iteration
//! on top of the random init).

use std::process::Command;

fn kato() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kato"))
}

fn out_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("kato_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn list_shows_every_registered_scenario() {
    let out = kato().arg("list").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "opamp2",
        "opamp3",
        "bandgap",
        "folded_cascode",
        "telescopic",
        "ldo",
    ] {
        assert!(text.contains(name), "list output missing {name}:\n{text}");
    }
    assert!(text.contains("ss_125c"), "corners missing:\n{text}");
}

#[test]
fn run_completes_on_each_new_testbench() {
    for scenario in ["folded_cascode", "telescopic", "ldo"] {
        let path = out_path(&format!("run_{scenario}.json"));
        let out = kato()
            .args([
                "run",
                scenario,
                "--budget",
                "15",
                "--seeds",
                "1",
                "--out",
                path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{scenario}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(
            json.contains(&format!("\"scenario\":\"{scenario}\"")),
            "{json}"
        );
        assert!(json.contains("\"runs\":["), "{json}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn run_supports_tech_and_corner_flags() {
    let path = out_path("run_flags.json");
    let out = kato()
        .args([
            "run",
            "ldo",
            "--tech",
            "40nm",
            "--corner",
            "ss_125c",
            "--budget",
            "12",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"tech\":\"40nm\""), "{json}");
    assert!(json.contains("\"corner\":\"ss_125c\""), "{json}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_supports_backend_flag() {
    // A LUT-native scenario forced onto each backend explicitly.
    for backend in ["lut", "square_law"] {
        let path = out_path(&format!("run_backend_{backend}.json"));
        let out = kato()
            .args([
                "run",
                "switch",
                "--backend",
                backend,
                "--budget",
                "12",
                "--out",
                path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{backend}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(
            json.contains(&format!("\"backend\":\"{backend}\"")),
            "{json}"
        );
        std::fs::remove_file(&path).ok();
    }

    let out = kato()
        .args(["run", "switch", "--backend", "spice"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("square_law"), "{err}");

    // `transfer` does not own --backend: rejected, not swallowed.
    let out = kato()
        .args(["transfer", "opamp2", "opamp3", "--backend", "lut"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn transfer_completes_and_writes_json() {
    let path = out_path("transfer.json");
    let out = kato()
        .args([
            "transfer",
            "opamp2",
            "folded_cascode",
            "--budget",
            "15",
            "--seeds",
            "1",
            "--source-n",
            "20",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"source\":\"opamp2_180nm\""), "{json}");
    assert!(json.contains("\"kato_tl\":["), "{json}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_scenario_is_a_clean_error() {
    let out = kato().args(["run", "opamp9"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("opamp9") && err.contains("available"), "{err}");
}

#[test]
fn foreign_subcommand_flags_are_rejected_not_swallowed() {
    // `transfer --corner ...` would otherwise silently run at TT.
    let out = kato()
        .args(["transfer", "opamp2", "opamp3", "--corner", "ss_125c"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--corner") && err.contains("transfer"),
        "{err}"
    );

    let out = kato()
        .args(["run", "opamp2", "--source-n", "10"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_prints_usage() {
    let out = kato().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("USAGE") && text.contains("transfer"),
        "{text}"
    );
}
