//! Reproduces **Fig. 1(b)**: prediction quality of the Neural Kernel versus
//! single primitive kernels on the 180 nm two-stage amplifier (100 training,
//! 50 test points), as in paper §3.1.

use kato_bench::write_csv;
use kato_circuits::{random_design, SizingProblem, TechNode, TwoStageOpAmp};
use kato_gp::{Gp, GpConfig, KernelSpec, NeukSpec, PrimitiveKernel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn single_primitive(dim: usize, prim: PrimitiveKernel) -> KernelSpec {
    KernelSpec::Neuk(NeukSpec {
        input_dim: dim,
        latent_dim: 2,
        primitives: vec![prim],
        mix_dim: 1,
    })
}

fn main() {
    let problem = TwoStageOpAmp::new(TechNode::n180());
    let gain_idx = problem.metric_index("gain_db").expect("gain metric");
    let mut rng = StdRng::seed_from_u64(2024);
    let n_train = 100;
    let n_test = 50;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..(n_train + n_test) {
        let x = random_design(problem.dim(), &mut rng);
        ys.push(problem.evaluate(&x).get(gain_idx));
        xs.push(x);
    }
    let (x_train, x_test) = xs.split_at(n_train);
    let (y_train, y_test) = ys.split_at(n_train);

    let kernels: Vec<(&str, KernelSpec)> = vec![
        ("Neuk", KernelSpec::neuk(problem.dim())),
        ("ARD-RBF", KernelSpec::ard_rbf(problem.dim())),
        (
            "RBF-only",
            single_primitive(problem.dim(), PrimitiveKernel::Rbf),
        ),
        (
            "RQ-only",
            single_primitive(problem.dim(), PrimitiveKernel::RationalQuadratic),
        ),
        (
            "PER-only",
            single_primitive(problem.dim(), PrimitiveKernel::Periodic),
        ),
    ];

    println!("=== Fig. 1(b): kernel assessment on opamp2_180nm gain (100 train / 50 test) ===");
    let cfg = GpConfig {
        train_iters: 80,
        ..GpConfig::default()
    };
    let mut rows = Vec::new();
    for (name, kernel) in kernels {
        match Gp::fit(kernel, x_train, y_train, &cfg) {
            Ok(gp) => {
                let mut sse = 0.0;
                let mut nll = 0.0;
                for (x, &y) in x_test.iter().zip(y_test) {
                    let (m, v) = gp.predict(x);
                    sse += (m - y) * (m - y);
                    let vt = v.max(1e-9);
                    nll += 0.5 * ((2.0 * std::f64::consts::PI * vt).ln() + (y - m) * (y - m) / vt);
                }
                let rmse = (sse / n_test as f64).sqrt();
                let nll = nll / n_test as f64;
                println!("{name:>10}: test RMSE = {rmse:8.3} dB   mean NLL = {nll:8.3}");
                rows.push(format!("{name},{rmse:.4},{nll:.4}"));
            }
            Err(e) => println!("{name:>10}: fit failed: {e}"),
        }
    }
    write_csv("fig1_neuk.csv", "kernel,rmse_db,nll", &rows);
    println!("\nExpected shape (paper Fig. 1b): Neuk at or below every single-primitive kernel.");
}
