//! Ablation for paper **§3.3**: the modified three-objective constrained
//! MACE versus the original six-objective ensemble — equal-or-better
//! optimisation quality at lower acquisition-search cost.

use kato::baselines::MaceOptimizer;
use kato::{BoSettings, MaceVariant, Mode};
use kato_bench::{final_stats, write_csv, Profile};
use kato_circuits::{SizingProblem, TechNode, TwoStageOpAmp};
use std::time::Instant;

fn main() {
    let profile = Profile::from_args();
    let problem = TwoStageOpAmp::new(TechNode::n180());
    println!(
        "=== Ablation (paper 3.3): full vs modified MACE on {} ===",
        problem.name()
    );

    let mut rows = Vec::new();
    for (variant, label) in [
        (MaceVariant::Full, "MACE-6obj"),
        (MaceVariant::Modified, "MACE-3obj"),
    ] {
        // Time each run inside its own worker so the per-run cost stays
        // honest when the seeds fan out in parallel (elapsed-total divided
        // by seed count would under-report by the pool width).
        let timed: Vec<(kato::RunHistory, f64)> = kato_par::par_map(&profile.seeds, |&seed| {
            let mut s = if profile.full {
                BoSettings::paper(profile.budget + profile.n_init_con, seed)
            } else {
                BoSettings::quick(profile.budget + profile.n_init_con, seed)
            };
            s.n_init = profile.n_init_con;
            let t0 = Instant::now();
            let h = MaceOptimizer::new(s)
                .with_variant(variant, label)
                .run(&problem, Mode::Constrained);
            (h, t0.elapsed().as_secs_f64())
        });
        let wall = timed.iter().map(|(_, w)| w).sum::<f64>() / profile.seeds.len().max(1) as f64;
        let runs: Vec<kato::RunHistory> = timed.into_iter().map(|(h, _)| h).collect();
        let (mean, std) = final_stats(&runs);
        println!(
            "{label:>10}: final best score {mean:9.3} +/- {std:6.3}   wall {wall:7.2}s/run \
             ({} Pareto objectives)",
            variant.objective_count()
        );
        rows.push(format!("{label},{mean:.4},{std:.4},{wall:.3}"));
    }
    write_csv(
        "ablation_mace.csv",
        "variant,final_mean,final_std,wall_s",
        &rows,
    );
    println!("\nExpected shape: comparable final scores; the 3-objective search is cheaper");
    println!("(NSGA-II front complexity grows exponentially with objective count).");
}
