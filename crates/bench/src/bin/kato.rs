//! `kato` — command-line front end for the scenario registry.
//!
//! Runs any registered sizing scenario end to end through [`Kato::run`]
//! without writing code:
//!
//! ```bash
//! kato list
//! kato run ldo --tech 40nm --seeds 2 --out results/ldo.json
//! kato run opamp2 --corner ss_125c --budget 60
//! kato run telescopic --corner worst          # optimise the worst corner
//! kato transfer opamp2 folded_cascode         # KATO vs KATO+TL
//! ```
//!
//! Budgets default to a quick profile (40 simulations) so every command
//! finishes in seconds; raise `--budget` for real experiments. Results are
//! written as JSON under `results/` (override with `--out`).

use kato::{corner_audit_at, BoSettings, Kato, Mode, RunHistory, SourceData, WorstCaseProblem};
use kato_bench::json::Json;
use kato_bench::{final_stats, mean_sims_to_reach, run_seeds};
use kato_circuits::{Backend, Corner, ScenarioRegistry, SizingProblem, YieldSettings};
use kato_serve::daemon::run_with_bank;
use kato_serve::{Bank, SourceChoice};
use std::process::ExitCode;

const USAGE: &str = "kato — transistor-sizing scenarios from the KATO reproduction

USAGE:
    kato list
    kato run <scenario> [--tech <node>] [--corner <c>|worst] [--seeds <n>]
                        [--budget <b>] [--backend <be>] [--bank <dir>]
                        [--yield <n>] [--out <path>]
    kato transfer <src> <dst> [--tech <node>] [--src-tech <node>]
                        [--seeds <n>] [--budget <b>] [--source-n <m>]
                        [--out <path>]

SUBCOMMANDS:
    list        show every registered scenario with tech nodes and corners
    run         optimise one scenario with KATO (constrained mode)
    transfer    optimise <dst> plain and with a <src> knowledge archive

OPTIONS:
    --tech <node>    tech card (default: the scenario's default node)
    --corner <c>     PVT corner name (tt, ss_125c, ff_m40c, ...) or
                     'worst' to optimise the across-corner worst case
    --seeds <n>      independent repetitions (default 1)
    --budget <b>     simulations per run, incl. 10 random init (default 40)
    --source-n <m>   source archive size for transfer (default 120)
    --backend <be>   device backend: 'square_law' or 'lut' (default: the
                     scenario's native backend — LUT for switch/varactor)
    --bank <dir>     knowledge bank: warm-start from archived runs of the
                     same scenario (any tech node) and persist this run
    --yield <n>      Monte-Carlo yield mode: score each design by its
                     pass-rate over <n> Pelgrom mismatch samples (x the
                     corner set) and constrain yield >= the scenario's
                     threshold preset; --corner worst sweeps all registered
                     corners per sample, a named corner estimates yield
                     there only (not combinable with --bank)
    --out <path>     results JSON path (default results/kato_<...>.json)
";

fn seed_list(n: usize) -> Vec<u64> {
    const BASE: [u64; 5] = [11, 23, 37, 53, 71];
    (0..n).map(|i| BASE[i % 5] + 100 * (i / 5) as u64).collect()
}

/// Parsed `--key value` options after the positional arguments.
struct Opts {
    tech: Option<String>,
    src_tech: Option<String>,
    corner: Option<String>,
    backend: Option<Backend>,
    seeds: usize,
    budget: usize,
    source_n: usize,
    bank: Option<String>,
    yield_samples: Option<usize>,
    out: Option<String>,
}

fn parse_opts(subcommand: &str, allowed: &[&str], args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        tech: None,
        src_tech: None,
        corner: None,
        backend: None,
        seeds: 1,
        budget: 40,
        source_n: 120,
        bank: None,
        yield_samples: None,
        out: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        // Reject flags another subcommand owns instead of silently
        // swallowing them (e.g. `transfer --corner ...` would otherwise
        // run at TT while looking corner-aware).
        if flag.starts_with("--") && !allowed.contains(&flag.as_str()) {
            return Err(format!(
                "option '{flag}' is not supported by '{subcommand}'"
            ));
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--tech" => opts.tech = Some(value()?),
            "--src-tech" => opts.src_tech = Some(value()?),
            "--corner" => opts.corner = Some(value()?),
            "--backend" => {
                let v = value()?;
                opts.backend = Some(Backend::parse(&v).ok_or_else(|| {
                    format!("unknown backend '{v}' (expected 'square_law' or 'lut')")
                })?);
            }
            "--seeds" => {
                opts.seeds = value()?
                    .parse()
                    .map_err(|_| "unparsable --seeds".to_string())?;
            }
            "--budget" => {
                opts.budget = value()?
                    .parse()
                    .map_err(|_| "unparsable --budget".to_string())?;
            }
            "--source-n" => {
                opts.source_n = value()?
                    .parse()
                    .map_err(|_| "unparsable --source-n".to_string())?;
            }
            "--bank" => opts.bank = Some(value()?),
            "--yield" => {
                let n: usize = value()?
                    .parse()
                    .map_err(|_| "unparsable --yield".to_string())?;
                if n == 0 {
                    return Err("--yield must be at least 1".to_string());
                }
                opts.yield_samples = Some(n);
            }
            "--out" => opts.out = Some(value()?),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if opts.seeds == 0 {
        return Err("--seeds must be at least 1".to_string());
    }
    Ok(opts)
}

fn cmd_list(registry: &ScenarioRegistry) {
    println!(
        "{:<16} {:<12} {:<4} {:<10} {:<28} corners",
        "scenario", "tech nodes", "dim", "backend", "metrics"
    );
    for s in registry.scenarios() {
        let p = s.build_default();
        let corners: Vec<String> = s.corners.iter().map(Corner::name).collect();
        println!(
            "{:<16} {:<12} {:<4} {:<10} {:<28} {}",
            s.name,
            s.tech_names.join(","),
            p.dim(),
            s.default_backend.name(),
            p.metric_names().join(","),
            corners.join(",")
        );
        println!("{:<16} {}", "", s.summary);
    }
}

fn metrics_obj(problem: &dyn SizingProblem, values: &[f64]) -> Json {
    Json::Obj(
        problem
            .metric_names()
            .iter()
            .zip(values)
            .map(|(n, &v)| ((*n).to_string(), Json::Num(v)))
            .collect(),
    )
}

fn best_json(problem: &dyn SizingProblem, history: &RunHistory) -> Json {
    match history.best() {
        Some(best) => Json::obj(vec![
            ("score", Json::Num(best.score)),
            ("feasible", Json::Bool(best.feasible)),
            ("x", Json::nums(&best.x)),
            ("metrics", metrics_obj(problem, best.metrics.values())),
        ]),
        None => Json::Null,
    }
}

fn write_json(path: &str, doc: &Json) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, format!("{doc}\n")).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("[written {path}]");
    Ok(())
}

fn quick_settings(budget: usize, seed: u64) -> BoSettings {
    let mut s = BoSettings::quick(budget, seed);
    s.n_init = s.n_init.min(budget.saturating_sub(1).max(1));
    s
}

fn cmd_run(registry: &ScenarioRegistry, name: &str, opts: &Opts) -> Result<(), String> {
    let scenario = registry.get(name).map_err(|e| e.to_string())?;
    let tech = opts.tech.as_deref().unwrap_or(scenario.default_tech);
    let corner_arg = opts.corner.as_deref().unwrap_or("tt");
    if opts.yield_samples.is_some() && opts.bank.is_some() {
        return Err(
            "--yield does not combine with --bank: yield runs carry an extra \
             metric and do not align with nominal bank archives"
                .to_string(),
        );
    }

    // Yield mode: the mismatch stream is keyed on the run seed, so each
    // repetition gets its own problem instance (same circuit, same
    // threshold, seed-specific Monte-Carlo draws).
    let make_yield = |seed: u64| -> Result<Box<dyn SizingProblem>, String> {
        let samples = opts.yield_samples.expect("yield mode");
        let corners = if corner_arg == "worst" {
            None // the scenario's registered sweep, worst-cased per sample
        } else {
            Some(vec![scenario
                .corner(corner_arg)
                .map_err(|e| e.to_string())?])
        };
        Ok(Box::new(
            scenario
                .build_yield(
                    tech,
                    opts.backend,
                    YieldSettings {
                        samples,
                        threshold: scenario.yield_preset.threshold,
                        seed,
                        early_abort: true,
                        corners,
                    },
                )
                .map_err(|e| e.to_string())?,
        ))
    };

    // Build the problem: a single named corner, the worst-case wrapper, or
    // the Monte-Carlo yield wrapper. In yield mode this instance (first
    // seed) provides names/metrics; per-seed instances run the search.
    let worst = corner_arg == "worst";
    let seeds = seed_list(opts.seeds);
    let problem: Box<dyn SizingProblem> = if opts.yield_samples.is_some() {
        make_yield(seeds[0])?
    } else if worst {
        Box::new(
            WorstCaseProblem::with_backend(scenario, tech, opts.backend)
                .map_err(|e| e.to_string())?,
        )
    } else {
        registry
            .build_with(name, Some(tech), Some(corner_arg), opts.backend)
            .map_err(|e| e.to_string())?
    };
    let backend_name = opts.backend.unwrap_or(scenario.default_backend).name();
    println!(
        "run: {} (dim {}, backend {}, budget {}, {} seed(s))",
        problem.name(),
        problem.dim(),
        backend_name,
        opts.budget,
        opts.seeds
    );
    if let Some(n) = opts.yield_samples {
        println!(
            "  yield mode: {n} mismatch samples x {} corner(s), threshold {:.2}, early abort on",
            if worst { scenario.corners.len() } else { 1 },
            scenario.yield_preset.threshold
        );
    }
    let mut bank = opts
        .bank
        .as_deref()
        .map(Bank::open)
        .transpose()
        .map_err(|e| e.to_string())?;
    let (histories, warm_choices): (Vec<RunHistory>, Vec<Option<SourceChoice>>) =
        match bank.as_mut() {
            // The bank path is sequential on purpose: each completed run is
            // appended before the next starts, so later seeds can
            // warm-start from earlier ones in the same invocation.
            Some(bank) => {
                let mut histories = Vec::with_capacity(seeds.len());
                let mut warm = Vec::with_capacity(seeds.len());
                for &seed in &seeds {
                    let (h, choice) = run_with_bank(
                        Some(bank),
                        name,
                        tech,
                        problem.as_ref(),
                        quick_settings(opts.budget, seed),
                        None,
                    );
                    bank.append(name, tech, &h).map_err(|e| e.to_string())?;
                    histories.push(h);
                    warm.push(choice);
                }
                (histories, warm)
            }
            None => {
                let histories = run_seeds(&seeds, |seed| {
                    // Yield mode rebuilds per seed so the mismatch stream
                    // key follows the run seed; validation already passed
                    // on the first-seed instance above.
                    let per_seed: Option<Box<dyn SizingProblem>> = opts
                        .yield_samples
                        .map(|_| make_yield(seed).expect("first-seed build validated settings"));
                    let target = per_seed.as_deref().unwrap_or(problem.as_ref());
                    Kato::new(quick_settings(opts.budget, seed)).run(target, Mode::Constrained)
                });
                let n = histories.len();
                (histories, vec![None; n])
            }
        };

    let mut runs = Vec::new();
    for (h, choice) in histories.iter().zip(&warm_choices) {
        if let Some(c) = choice {
            println!(
                "  seed {:>3}: warm start from {} [{}] (alignment {:.3}, {} archived evals)",
                h.seed, c.label, c.tech, c.alignment, c.n_evals
            );
        }
        match h.best() {
            Some(b) => println!(
                "  seed {:>3}: best score {:.4} after {} sims  {}",
                h.seed,
                b.score,
                h.len(),
                b.metrics
            ),
            None => println!("  seed {:>3}: nothing feasible in {} sims", h.seed, h.len()),
        }
        let warm_json = match choice {
            Some(c) => Json::obj(vec![
                ("source", Json::str(&c.label)),
                ("tech", Json::str(&c.tech)),
                ("same_tech", Json::Bool(c.same_tech)),
                ("alignment", Json::Num(c.alignment)),
                ("n_evals", Json::Num(c.n_evals as f64)),
            ]),
            None => Json::Null,
        };
        runs.push(Json::obj(vec![
            ("seed", Json::Num(h.seed as f64)),
            ("n_evals", Json::Num(h.len() as f64)),
            ("warm_start", warm_json),
            ("best", best_json(problem.as_ref(), h)),
        ]));
    }
    let n_feasible = histories.iter().filter(|h| h.best().is_some()).count();
    if n_feasible > 0 {
        let (mean, std) = final_stats(&histories);
        println!(
            "  final best over seeds: {mean:.4} +/- {std:.4} ({n_feasible}/{} seeds feasible)",
            histories.len()
        );
    }

    // Corner audit of the best design found (single-corner runs only; a
    // worst-case run already evaluated every corner per simulation). An
    // infeasible run has no design worth auditing: report that cleanly and
    // keep `corner_audit` null so consumers can tell "not audited" from
    // "audited zero corners".
    let audit_json = if worst || opts.yield_samples.is_some() {
        // Worst-case and yield runs already evaluated every corner of
        // interest per simulation; a separate audit adds nothing.
        Json::Null
    } else if n_feasible == 0 {
        println!(
            "  no feasible design found in {} sims — corner audit skipped",
            opts.budget
        );
        Json::Null
    } else {
        let best = histories
            .iter()
            .filter_map(RunHistory::best)
            .filter(|b| b.feasible)
            .max_by(|a, b| {
                a.score
                    .partial_cmp(&b.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("n_feasible > 0");
        let audit =
            corner_audit_at(scenario, tech, &best.x, opts.backend).map_err(|e| e.to_string())?;
        println!("  corner audit of the best design:");
        let mut rows = Vec::new();
        for eval in &audit {
            println!(
                "    {:<8} feasible={:<5} {}",
                eval.corner.name(),
                eval.feasible,
                eval.metrics
            );
            rows.push(Json::obj(vec![
                ("corner", Json::str(eval.corner.name())),
                ("feasible", Json::Bool(eval.feasible)),
                (
                    "metrics",
                    metrics_obj(problem.as_ref(), eval.metrics.values()),
                ),
            ]));
        }
        Json::Arr(rows)
    };

    let doc = Json::obj(vec![
        ("command", Json::str("run")),
        ("scenario", Json::str(name)),
        ("tech", Json::str(tech)),
        ("corner", Json::str(corner_arg)),
        ("backend", Json::str(backend_name)),
        ("budget", Json::Num(opts.budget as f64)),
        (
            "seeds",
            Json::nums(&seeds.iter().map(|&s| s as f64).collect::<Vec<_>>()),
        ),
        ("bank", opts.bank.as_deref().map_or(Json::Null, Json::str)),
        (
            "yield_samples",
            opts.yield_samples
                .map_or(Json::Null, |n| Json::Num(n as f64)),
        ),
        (
            "yield_threshold",
            opts.yield_samples
                .map_or(Json::Null, |_| Json::Num(scenario.yield_preset.threshold)),
        ),
        ("feasible", Json::Bool(n_feasible > 0)),
        ("runs", Json::Arr(runs)),
        ("corner_audit", audit_json),
    ]);
    let default_path = match opts.yield_samples {
        Some(n) => format!("results/kato_run_{name}_{tech}_{corner_arg}_yield{n}.json"),
        None => format!("results/kato_run_{name}_{tech}_{corner_arg}.json"),
    };
    write_json(opts.out.as_deref().unwrap_or(&default_path), &doc)
}

fn cmd_transfer(
    registry: &ScenarioRegistry,
    src_name: &str,
    dst_name: &str,
    opts: &Opts,
) -> Result<(), String> {
    let src_scenario = registry.get(src_name).map_err(|e| e.to_string())?;
    let dst_scenario = registry.get(dst_name).map_err(|e| e.to_string())?;
    let src_tech = opts
        .src_tech
        .as_deref()
        .unwrap_or(src_scenario.default_tech);
    let dst_tech = opts.tech.as_deref().unwrap_or(dst_scenario.default_tech);
    let source = src_scenario
        .build(src_tech, &Corner::tt())
        .map_err(|e| e.to_string())?;
    let target = dst_scenario
        .build(dst_tech, &Corner::tt())
        .map_err(|e| e.to_string())?;
    println!(
        "transfer: {} -> {} (source archive {}, budget {}, {} seed(s))",
        source.name(),
        target.name(),
        opts.source_n,
        opts.budget,
        opts.seeds
    );

    let seeds = seed_list(opts.seeds);
    let plain = run_seeds(&seeds, |seed| {
        Kato::new(quick_settings(opts.budget, seed)).run(target.as_ref(), Mode::Constrained)
    });
    let with_tl = run_seeds(&seeds, |seed| {
        let archive = SourceData::from_problem_random(source.as_ref(), opts.source_n, seed ^ 0xA5);
        Kato::new(quick_settings(opts.budget, seed))
            .with_source(archive)
            .with_label("KATO+TL")
            .run(target.as_ref(), Mode::Constrained)
    });

    let report = |label: &str, hs: &[RunHistory]| {
        let feasible = hs.iter().filter(|h| h.best().is_some()).count();
        if feasible == 0 {
            println!("  {label} found nothing feasible in {} sims", opts.budget);
        } else {
            let (mean, std) = final_stats(hs);
            println!(
                "  {label} final best: {mean:.4} +/- {std:.4} ({feasible}/{} seeds feasible)",
                hs.len()
            );
        }
    };
    report("KATO   ", &plain);
    report("KATO+TL", &with_tl);
    let plain_feasible = plain.iter().filter(|h| h.best().is_some()).count();
    if plain_feasible > 0 {
        let (plain_mean, _) = final_stats(&plain);
        let tl_sims = mean_sims_to_reach(&with_tl, plain_mean);
        let plain_sims = mean_sims_to_reach(&plain, plain_mean);
        if tl_sims > 0.0 {
            println!(
                "  speed-up to plain-KATO final best: {:.2}x",
                plain_sims / tl_sims
            );
        }
    }

    let run_list = |hs: &[RunHistory]| {
        Json::Arr(
            hs.iter()
                .map(|h| {
                    Json::obj(vec![
                        ("seed", Json::Num(h.seed as f64)),
                        ("n_evals", Json::Num(h.len() as f64)),
                        ("best", best_json(target.as_ref(), h)),
                        ("best_curve", Json::nums(&h.best_curve())),
                    ])
                })
                .collect(),
        )
    };
    let doc = Json::obj(vec![
        ("command", Json::str("transfer")),
        ("source", Json::str(source.name())),
        ("target", Json::str(target.name())),
        ("budget", Json::Num(opts.budget as f64)),
        ("source_n", Json::Num(opts.source_n as f64)),
        ("kato", run_list(&plain)),
        ("kato_tl", run_list(&with_tl)),
    ]);
    let default_path = format!("results/kato_transfer_{src_name}_to_{dst_name}.json");
    write_json(opts.out.as_deref().unwrap_or(&default_path), &doc)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = ScenarioRegistry::standard();
    let result = match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list(&registry);
            Ok(())
        }
        Some("run") => match args.get(1) {
            Some(name) if !name.starts_with("--") => parse_opts(
                "run",
                &[
                    "--tech",
                    "--corner",
                    "--backend",
                    "--seeds",
                    "--budget",
                    "--bank",
                    "--yield",
                    "--out",
                ],
                &args[2..],
            )
            .and_then(|opts| cmd_run(&registry, name, &opts)),
            _ => Err("run needs a scenario name (try 'kato list')".to_string()),
        },
        Some("transfer") => match (args.get(1), args.get(2)) {
            (Some(src), Some(dst)) if !src.starts_with("--") && !dst.starts_with("--") => {
                parse_opts(
                    "transfer",
                    &[
                        "--tech",
                        "--src-tech",
                        "--seeds",
                        "--budget",
                        "--source-n",
                        "--out",
                    ],
                    &args[3..],
                )
                .and_then(|opts| cmd_transfer(&registry, src, dst, &opts))
            }
            _ => Err("transfer needs <src> and <dst> scenario names".to_string()),
        },
        Some("help" | "--help" | "-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run 'kato help' for usage");
            ExitCode::from(2)
        }
    }
}
