//! Reproduces **Fig. 6**: constrained sizing with transfer learning across
//! technology nodes and topologies (paper §4.3) — KATO with and without
//! transfer on six source→target panels, plus the TLMBO comparison (FOM
//! mode, node transfer only, as in the paper).

use kato::baselines::{source_fom_archive, Tlmbo};
use kato::{BoSettings, Kato, Mode, SourceData};
use kato_bench::{final_stats, mean_sims_to_reach, print_series, run_seeds, Profile};
use kato_circuits::{FomSpec, SizingProblem, TechNode, ThreeStageOpAmp, TwoStageOpAmp};

fn settings(profile: &Profile, seed: u64) -> BoSettings {
    let mut s = if profile.full {
        BoSettings::paper(profile.budget + profile.n_init_con, seed)
    } else {
        BoSettings::quick(profile.budget + profile.n_init_con, seed)
    };
    s.n_init = profile.n_init_con;
    s
}

fn problem_by_key(key: &str) -> Box<dyn SizingProblem> {
    match key {
        "opamp2_180nm" => Box::new(TwoStageOpAmp::new(TechNode::n180())),
        "opamp2_40nm" => Box::new(TwoStageOpAmp::new(TechNode::n40())),
        "opamp3_180nm" => Box::new(ThreeStageOpAmp::new(TechNode::n180())),
        "opamp3_40nm" => Box::new(ThreeStageOpAmp::new(TechNode::n40())),
        other => panic!("unknown problem key {other}"),
    }
}

fn run_panel(panel: &str, source_key: &str, target_key: &str, profile: &Profile) {
    let source = problem_by_key(source_key);
    let target = problem_by_key(target_key);
    let plain = run_seeds(&profile.seeds, |seed| {
        Kato::new(settings(profile, seed)).run(target.as_ref(), Mode::Constrained)
    });
    let transfer = run_seeds(&profile.seeds, |seed| {
        let src = SourceData::from_problem_random(source.as_ref(), profile.source_n, seed ^ 0xA5);
        Kato::new(settings(profile, seed))
            .with_source(src)
            .with_label("KATO+TL")
            .run(target.as_ref(), Mode::Constrained)
    });
    // Speed-up: sims for KATO+TL to reach plain-KATO's final best.
    let (plain_final, _) = final_stats(&plain);
    let tl_sims = mean_sims_to_reach(&transfer, plain_final);
    let plain_sims = mean_sims_to_reach(&plain, plain_final);
    print_series(
        &format!("Fig. 6({panel}): {source_key} -> {target_key}"),
        &[("KATO", plain), ("KATO+TL", transfer)],
        10,
        &format!("fig6_{panel}.csv"),
    );
    if tl_sims > 0.0 {
        println!(
            "  speed-up to plain-KATO final best: {:.2}x",
            plain_sims / tl_sims
        );
    }
}

fn tlmbo_comparison(profile: &Profile) {
    // TLMBO handles FOM optimisation with same-design (node) transfer only.
    let source = TwoStageOpAmp::new(TechNode::n180());
    let target = TwoStageOpAmp::new(TechNode::n40());
    let fom_src = FomSpec::calibrate(&source, profile.fom_samples, 2024);
    let fom_tgt = FomSpec::calibrate(&target, profile.fom_samples, 2024);
    let fom_settings = |seed: u64| {
        let mut s = if profile.full {
            BoSettings::paper(profile.budget, seed)
        } else {
            BoSettings::quick(profile.budget, seed)
        };
        s.n_init = profile.n_init_fom;
        s
    };
    // Each seed's source archive is shared by both methods, so build it
    // once per seed up front instead of once per (seed, method).
    type FomArchive = (Vec<Vec<f64>>, Vec<f64>);
    let archives: Vec<(u64, FomArchive)> = profile
        .seeds
        .iter()
        .map(|&seed| {
            (
                seed,
                source_fom_archive(&source, &fom_src, profile.source_n, seed ^ 0x5A),
            )
        })
        .collect();
    let archive_for = |seed: u64| {
        archives
            .iter()
            .find(|(s, _)| *s == seed)
            .map(|(_, a)| a.clone())
            .expect("archive per seed")
    };
    let tlmbo_runs = run_seeds(&profile.seeds, |seed| {
        let (sx, sy) = archive_for(seed);
        Tlmbo::new(fom_settings(seed), sx, sy).run(&target, Mode::Fom(fom_tgt.clone()))
    });
    let kato_tl_runs = run_seeds(&profile.seeds, |seed| {
        let (sx, sy) = archive_for(seed);
        let src = SourceData {
            dim: source.dim(),
            xs: sx,
            columns: vec![sy],
            label: source.name(),
        };
        Kato::new(fom_settings(seed))
            .with_source(src)
            .with_label("KATO+TL")
            .run(&target, Mode::Fom(fom_tgt.clone()))
    });
    print_series(
        "Fig. 6 companion: TLMBO vs KATO+TL (FOM, opamp2 180nm -> 40nm)",
        &[("TLMBO", tlmbo_runs), ("KATO+TL", kato_tl_runs)],
        5,
        "fig6_tlmbo.csv",
    );
}

fn main() {
    let profile = Profile::from_args();
    let only: Option<String> = std::env::args().skip_while(|a| a != "--panel").nth(1);
    println!(
        "Fig. 6 reproduction — profile: {} ({} seeds)",
        if profile.full { "FULL" } else { "quick" },
        profile.seeds.len()
    );
    let panels: [(&str, &str, &str); 6] = [
        ("a", "opamp2_180nm", "opamp2_40nm"), // node transfer
        ("b", "opamp3_180nm", "opamp3_40nm"), // node transfer
        ("c", "opamp3_40nm", "opamp2_40nm"),  // topology transfer
        ("d", "opamp2_40nm", "opamp3_40nm"),  // topology transfer
        ("e", "opamp3_180nm", "opamp2_40nm"), // topology + node
        ("f", "opamp2_180nm", "opamp3_40nm"), // topology + node
    ];
    for (p, src, tgt) in panels {
        if only.as_deref().is_none_or(|o| o == p) {
            run_panel(p, src, tgt, &profile);
        }
    }
    if only.is_none() {
        tlmbo_comparison(&profile);
    }
    println!("\nExpected shape (paper Fig. 6): KATO+TL reaches plain KATO's final best with");
    println!("~2-2.5x fewer simulations and ends ~1.1-1.2x better on every panel.");
}
