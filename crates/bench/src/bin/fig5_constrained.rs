//! Reproduces **Fig. 5**: constrained sizing (paper §4.2) on the three
//! circuits at 180 nm — KATO vs MACE vs MESMOC vs USEMOC, best feasible
//! objective versus simulation count.

use kato::baselines::{MaceOptimizer, Mesmoc, Usemoc};
use kato::{BoSettings, Kato, Mode};
use kato_bench::{print_series, run_seeds, Profile};
use kato_circuits::{Bandgap, SizingProblem, TechNode, ThreeStageOpAmp, TwoStageOpAmp};

fn settings(profile: &Profile, seed: u64) -> BoSettings {
    let mut s = if profile.full {
        BoSettings::paper(profile.budget + profile.n_init_con, seed)
    } else {
        BoSettings::quick(profile.budget + profile.n_init_con, seed)
    };
    s.n_init = profile.n_init_con;
    s
}

fn run_panel(panel: &str, problem: &dyn SizingProblem, profile: &Profile) {
    // Seeds fan out across the kato_par pool (order-stable, see run_seeds).
    let kato_runs = run_seeds(&profile.seeds, |seed| {
        Kato::new(settings(profile, seed)).run(problem, Mode::Constrained)
    });
    let mace_runs = run_seeds(&profile.seeds, |seed| {
        MaceOptimizer::new(settings(profile, seed)).run(problem, Mode::Constrained)
    });
    let mesmoc_runs = run_seeds(&profile.seeds, |seed| {
        Mesmoc::new(settings(profile, seed)).run(problem, Mode::Constrained)
    });
    let usemoc_runs = run_seeds(&profile.seeds, |seed| {
        Usemoc::new(settings(profile, seed)).run(problem, Mode::Constrained)
    });
    print_series(
        &format!(
            "Fig. 5({panel}): constrained optimisation, {} (score = signed objective; \
             e.g. −I_total µA for op-amps)",
            problem.name()
        ),
        &[
            ("KATO", kato_runs),
            ("MACE", mace_runs),
            ("MESMOC", mesmoc_runs),
            ("USEMOC", usemoc_runs),
        ],
        10,
        &format!("fig5_{}.csv", problem.name()),
    );
}

fn main() {
    let profile = Profile::from_args();
    println!(
        "Fig. 5 reproduction — profile: {} ({} seeds, {} init + {} BO sims)",
        if profile.full { "FULL" } else { "quick" },
        profile.seeds.len(),
        profile.n_init_con,
        profile.budget
    );
    run_panel("a", &TwoStageOpAmp::new(TechNode::n180()), &profile);
    run_panel("b", &ThreeStageOpAmp::new(TechNode::n180()), &profile);
    run_panel("c", &Bandgap::new(TechNode::n180()), &profile);
    println!("\nExpected shape (paper Fig. 5): KATO best with a clear margin and ~2x fewer");
    println!("sims to match the best baseline; MESMOC weakest (limited exploration).");
}
