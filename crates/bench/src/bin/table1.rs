//! Reproduces **Table 1**: final constrained-optimisation performance at
//! 180 nm for all three circuits — Human Expert, MESMOC, USEMOC, MACE and
//! KATO rows with the paper's metric columns.

use kato::baselines::{MaceOptimizer, Mesmoc, Usemoc};
use kato::{BoSettings, Kato, Mode, RunHistory};
use kato_bench::{metrics_row, run_seeds, write_csv, Profile};
use kato_circuits::{Bandgap, Metrics, SizingProblem, TechNode, ThreeStageOpAmp, TwoStageOpAmp};

fn settings(profile: &Profile, seed: u64) -> BoSettings {
    let mut s = if profile.full {
        BoSettings::paper(profile.budget + profile.n_init_con, seed)
    } else {
        BoSettings::quick(profile.budget + profile.n_init_con, seed)
    };
    s.n_init = profile.n_init_con;
    s
}

/// Best feasible metrics across seeds (the paper reports the best final
/// design per method).
fn best_metrics(runs: &[RunHistory]) -> Option<Metrics> {
    runs.iter()
        .filter_map(RunHistory::best)
        .max_by(|a, b| kato_linalg::cmp_nan_worst(&a.score, &b.score))
        .map(|e| e.metrics.clone())
}

/// A named optimizer launcher: seed in, full run history out.
type MethodRunner<'a> = Box<dyn Fn(u64) -> RunHistory + Sync + 'a>;

fn run_circuit(problem: &dyn SizingProblem, profile: &Profile, rows: &mut Vec<String>) {
    println!("\n--- {} ---", problem.name());
    let names = problem.metric_names().join(" / ");
    println!("{:<28}{names}", "method");

    let expert = problem.evaluate(&problem.expert_design());
    println!("{}", metrics_row("Human Expert", expert.values()));
    rows.push(format!(
        "{},Human Expert,{}",
        problem.name(),
        expert
            .values()
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
            .join(",")
    ));

    let methods: Vec<(&str, MethodRunner)> = vec![
        (
            "MESMOC",
            Box::new(|seed| Mesmoc::new(settings(profile, seed)).run(problem, Mode::Constrained)),
        ),
        (
            "USEMOC",
            Box::new(|seed| Usemoc::new(settings(profile, seed)).run(problem, Mode::Constrained)),
        ),
        (
            "MACE",
            Box::new(|seed| {
                MaceOptimizer::new(settings(profile, seed)).run(problem, Mode::Constrained)
            }),
        ),
        (
            "KATO",
            Box::new(|seed| Kato::new(settings(profile, seed)).run(problem, Mode::Constrained)),
        ),
    ];
    for (name, run) in methods {
        let runs = run_seeds(&profile.seeds, &run);
        match best_metrics(&runs) {
            Some(m) => {
                println!("{}", metrics_row(name, m.values()));
                rows.push(format!(
                    "{},{},{}",
                    problem.name(),
                    name,
                    m.values()
                        .iter()
                        .map(|v| format!("{v:.3}"))
                        .collect::<Vec<_>>()
                        .join(",")
                ));
            }
            None => println!("{name:<28}(no feasible design found)"),
        }
    }
}

fn main() {
    let profile = Profile::from_args();
    println!(
        "Table 1 reproduction — profile: {} ({} seeds)",
        if profile.full { "FULL" } else { "quick" },
        profile.seeds.len()
    );
    let mut rows = Vec::new();
    run_circuit(&TwoStageOpAmp::new(TechNode::n180()), &profile, &mut rows);
    run_circuit(&ThreeStageOpAmp::new(TechNode::n180()), &profile, &mut rows);
    run_circuit(&Bandgap::new(TechNode::n180()), &profile, &mut rows);
    write_csv("table1.csv", "problem,method,metrics...", &rows);
    println!("\nExpected shape (paper Table 1): KATO minimises the objective hardest while");
    println!("trading constraint metrics down to just above their bounds.");
}
