//! Reproduces **Table 2**: final 40 nm constrained performance with the
//! transfer-learning variants — KATO, KATO (TL Node), KATO (TL Design),
//! KATO (TL Node&Design) — for both op-amps, plus the expert rows.

use kato::{BoSettings, Kato, Mode, RunHistory, SourceData};
use kato_bench::{metrics_row, run_seeds, write_csv, Profile};
use kato_circuits::{Metrics, SizingProblem, TechNode, ThreeStageOpAmp, TwoStageOpAmp};

fn settings(profile: &Profile, seed: u64) -> BoSettings {
    let mut s = if profile.full {
        BoSettings::paper(profile.budget + profile.n_init_con, seed)
    } else {
        BoSettings::quick(profile.budget + profile.n_init_con, seed)
    };
    s.n_init = profile.n_init_con;
    s
}

fn best_metrics(runs: &[RunHistory]) -> Option<Metrics> {
    runs.iter()
        .filter_map(RunHistory::best)
        .max_by(|a, b| kato_linalg::cmp_nan_worst(&a.score, &b.score))
        .map(|e| e.metrics.clone())
}

fn source_for(key: &str, n: usize, seed: u64) -> SourceData {
    match key {
        "opamp2_180nm" => {
            SourceData::from_problem_random(&TwoStageOpAmp::new(TechNode::n180()), n, seed)
        }
        "opamp3_180nm" => {
            SourceData::from_problem_random(&ThreeStageOpAmp::new(TechNode::n180()), n, seed)
        }
        "opamp2_40nm" => {
            SourceData::from_problem_random(&TwoStageOpAmp::new(TechNode::n40()), n, seed)
        }
        "opamp3_40nm" => {
            SourceData::from_problem_random(&ThreeStageOpAmp::new(TechNode::n40()), n, seed)
        }
        other => panic!("unknown source key {other}"),
    }
}

fn run_target(
    problem: &dyn SizingProblem,
    node_src: &str,
    design_src: &str,
    both_src: &str,
    profile: &Profile,
    rows: &mut Vec<String>,
) {
    println!("\n--- {} ---", problem.name());
    println!("{:<28}{}", "method", problem.metric_names().join(" / "));
    let expert = problem.evaluate(&problem.expert_design());
    println!("{}", metrics_row("Human Expert", expert.values()));

    let variants: Vec<(&str, Option<&str>)> = vec![
        ("KATO", None),
        ("KATO (TL Node)", Some(node_src)),
        ("KATO (TL Design)", Some(design_src)),
        ("KATO (TL Node&Design)", Some(both_src)),
    ];
    for (label, source_key) in variants {
        let runs = run_seeds(&profile.seeds, |seed| {
            let mut opt = Kato::new(settings(profile, seed));
            if let Some(key) = source_key {
                opt = opt
                    .with_source(source_for(key, profile.source_n, seed ^ 0x77))
                    .with_label(label);
            }
            opt.run(problem, Mode::Constrained)
        });
        match best_metrics(&runs) {
            Some(m) => {
                println!("{}", metrics_row(label, m.values()));
                rows.push(format!(
                    "{},{},{}",
                    problem.name(),
                    label,
                    m.values()
                        .iter()
                        .map(|v| format!("{v:.3}"))
                        .collect::<Vec<_>>()
                        .join(",")
                ));
            }
            None => println!("{label:<28}(no feasible design found)"),
        }
    }
}

fn main() {
    let profile = Profile::from_args();
    println!(
        "Table 2 reproduction — profile: {} ({} seeds)",
        if profile.full { "FULL" } else { "quick" },
        profile.seeds.len()
    );
    let mut rows = Vec::new();
    run_target(
        &TwoStageOpAmp::new(TechNode::n40()),
        "opamp2_180nm", // node transfer
        "opamp3_40nm",  // design transfer
        "opamp3_180nm", // node + design
        &profile,
        &mut rows,
    );
    run_target(
        &ThreeStageOpAmp::new(TechNode::n40()),
        "opamp3_180nm",
        "opamp2_40nm",
        "opamp2_180nm",
        &profile,
        &mut rows,
    );
    write_csv("table2.csv", "problem,method,metrics...", &rows);
    println!("\nExpected shape (paper Table 2): every TL variant beats plain KATO on the");
    println!("objective; differences between TL variants are small.");
}
