//! Ablation for paper **§3.4**: Selective Transfer Learning with a
//! deliberately *mismatched* source (bandgap → two-stage op-amp). Forced
//! transfer should suffer; STL should track the no-transfer baseline.

use kato::{BoSettings, Kato, Mode, SourceData};
use kato_bench::{final_stats, print_series, run_seeds, Profile};
use kato_circuits::{Bandgap, SizingProblem, TechNode, TwoStageOpAmp};

fn main() {
    let profile = Profile::from_args();
    let target = TwoStageOpAmp::new(TechNode::n180());
    let bad_source_problem = Bandgap::new(TechNode::n180());
    println!(
        "=== Ablation (paper 3.4): STL under negative transfer ({} -> {}) ===",
        bad_source_problem.name(),
        target.name()
    );

    let s_for = |seed: u64| {
        let mut s = if profile.full {
            BoSettings::paper(profile.budget + profile.n_init_con, seed)
        } else {
            BoSettings::quick(profile.budget + profile.n_init_con, seed)
        };
        s.n_init = profile.n_init_con;
        s
    };
    // One source archive per seed, shared by the STL and forced-transfer
    // variants (built once instead of once per variant).
    let sources: Vec<(u64, SourceData)> = profile
        .seeds
        .iter()
        .map(|&seed| {
            (
                seed,
                SourceData::from_problem_random(&bad_source_problem, profile.source_n, seed ^ 0x33),
            )
        })
        .collect();
    let src_for = |seed: u64| {
        sources
            .iter()
            .find(|(s, _)| *s == seed)
            .map(|(_, src)| src.clone())
            .expect("source per seed")
    };
    let none = run_seeds(&profile.seeds, |seed| {
        Kato::new(s_for(seed)).run(&target, Mode::Constrained)
    });
    let stl = run_seeds(&profile.seeds, |seed| {
        Kato::new(s_for(seed))
            .with_source(src_for(seed))
            .with_label("KATO+STL(bad src)")
            .run(&target, Mode::Constrained)
    });
    let forced = run_seeds(&profile.seeds, |seed| {
        Kato::new(s_for(seed))
            .with_source(src_for(seed))
            .with_forced_transfer()
            .with_label("KATO forced-TL(bad src)")
            .run(&target, Mode::Constrained)
    });
    print_series(
        "STL vs forced transfer vs no transfer (mismatched source)",
        &[
            ("no-transfer", none.clone()),
            ("STL", stl.clone()),
            ("forced-TL", forced.clone()),
        ],
        10,
        "ablation_stl.csv",
    );
    let (m_none, _) = final_stats(&none);
    let (m_stl, _) = final_stats(&stl);
    let (m_forced, _) = final_stats(&forced);
    println!("\nfinal means: no-transfer {m_none:.3}, STL {m_stl:.3}, forced {m_forced:.3}");
    println!("Expected shape: STL within noise of no-transfer; forced transfer degraded.");
}
