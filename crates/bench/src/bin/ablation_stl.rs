//! Ablation for paper **§3.4**: Selective Transfer Learning with a
//! deliberately *mismatched* source (bandgap → two-stage op-amp). Forced
//! transfer should suffer; STL should track the no-transfer baseline.

use kato::{BoSettings, Kato, Mode, RunHistory, SourceData};
use kato_bench::{final_stats, print_series, Profile};
use kato_circuits::{Bandgap, SizingProblem, TechNode, TwoStageOpAmp};

fn main() {
    let profile = Profile::from_args();
    let target = TwoStageOpAmp::new(TechNode::n180());
    let bad_source_problem = Bandgap::new(TechNode::n180());
    println!(
        "=== Ablation (paper 3.4): STL under negative transfer ({} -> {}) ===",
        bad_source_problem.name(),
        target.name()
    );

    let mut none: Vec<RunHistory> = Vec::new();
    let mut stl: Vec<RunHistory> = Vec::new();
    let mut forced: Vec<RunHistory> = Vec::new();
    for &seed in &profile.seeds {
        let mut s = if profile.full {
            BoSettings::paper(profile.budget + profile.n_init_con, seed)
        } else {
            BoSettings::quick(profile.budget + profile.n_init_con, seed)
        };
        s.n_init = profile.n_init_con;
        let src =
            SourceData::from_problem_random(&bad_source_problem, profile.source_n, seed ^ 0x33);
        none.push(Kato::new(s.clone()).run(&target, Mode::Constrained));
        stl.push(
            Kato::new(s.clone())
                .with_source(src.clone())
                .with_label("KATO+STL(bad src)")
                .run(&target, Mode::Constrained),
        );
        forced.push(
            Kato::new(s)
                .with_source(src)
                .with_forced_transfer()
                .with_label("KATO forced-TL(bad src)")
                .run(&target, Mode::Constrained),
        );
    }
    print_series(
        "STL vs forced transfer vs no transfer (mismatched source)",
        &[
            ("no-transfer", none.clone()),
            ("STL", stl.clone()),
            ("forced-TL", forced.clone()),
        ],
        10,
        "ablation_stl.csv",
    );
    let (m_none, _) = final_stats(&none);
    let (m_stl, _) = final_stats(&stl);
    let (m_forced, _) = final_stats(&forced);
    println!("\nfinal means: no-transfer {m_none:.3}, STL {m_stl:.3}, forced {m_forced:.3}");
    println!("Expected shape: STL within noise of no-transfer; forced transfer degraded.");
}
