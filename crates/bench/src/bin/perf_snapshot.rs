//! `perf_snapshot` — writes a committable `BENCH_*.json` perf snapshot.
//!
//! Re-runs the `proposal_parallel` criterion measurements programmatically
//! (serial point-wise MACE proposal vs the batched+parallel path), measures
//! the surrogate refit hot path (full `Gp::refit` vs incremental
//! `Gp::append` when an archive of 64 grows by a batch of 8), and adds one
//! end-to-end timing (a full seeded KATO run on `opamp2@180nm`), then
//! writes the medians as JSON so the perf trajectory lives in the repo
//! instead of in scroll-back:
//!
//! ```bash
//! cargo run --release --bin perf_snapshot -- --label 2026-08-08 \
//!     [--out BENCH_2026-08-08.json] [--samples 10]
//! ```
//!
//! Timings are wall-clock medians over `--samples` runs on whatever
//! machine executes them — snapshots are comparable *within* a machine
//! generation, which is what catching a 2x regression needs.

use kato::mace::{MaceProposer, MaceVariant};
use kato::{
    evaluate_batch_sharded, metric_columns, BoSettings, Kato, MetricModels, Mode, ModelConfig,
    RunHistory,
};
use kato_bench::json::Json;
use kato_circuits::{random_design, Backend, SizingProblem, TechNode, TwoStageOpAmp};
use kato_gp::{Gp, GpConfig, KatConfig, KernelSpec};
use kato_nsga::{Nsga2, Nsga2Config};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "perf_snapshot — write a BENCH_*.json perf snapshot

USAGE:
    perf_snapshot [--label <tag>] [--out <path>] [--samples <n>]

OPTIONS:
    --label <tag>    snapshot tag baked into the file (default 'local')
    --out <path>     output path (default BENCH_<label>.json)
    --samples <n>    timed repetitions per measurement (default 10)
";

/// Median of a sample vector, in place.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times `f` over `n` samples and returns the median seconds per call.
fn time_median(n: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    median(&mut samples)
}

/// The same fitted surrogate stack the `proposal_parallel` bench uses: 40
/// seeded random evaluations of opamp2@180nm, fast-config GPs.
fn fitted_stack() -> (TwoStageOpAmp, MetricModels, f64) {
    let problem = TwoStageOpAmp::new(TechNode::n180());
    let mut history = RunHistory::new("bench", "bench", 0);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..40 {
        let x = random_design(problem.dim(), &mut rng);
        history.evaluate_and_push(&problem, &Mode::Constrained, x);
    }
    let xs: Vec<Vec<f64>> = history.evals.iter().map(|e| e.x.clone()).collect();
    let refs: Vec<&kato_circuits::Metrics> = history.evals.iter().map(|e| &e.metrics).collect();
    let cols = metric_columns(&refs);
    let cfg = ModelConfig {
        gp: GpConfig {
            train_iters: 10,
            ..GpConfig::fast()
        },
        kat: KatConfig::fast(),
        ..ModelConfig::default()
    };
    let models = MetricModels::fit_gp(problem.dim(), &xs, &cols, problem.specs(), &cfg).unwrap();
    let incumbent = history
        .evals
        .iter()
        .map(|e| {
            e.metrics.objective(problem.specs()).unwrap_or(0.0)
                - 10.0 * e.metrics.violation(problem.specs())
        })
        .fold(f64::NEG_INFINITY, f64::max);
    (problem, models, incumbent)
}

fn run(label: &str, out: Option<&str>, samples: usize) -> Result<(), String> {
    let threads = std::env::var("KATO_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get));

    let (problem, models, incumbent) = fitted_stack();
    let settings = BoSettings::quick(50, 1);
    let proposer = MaceProposer::new(MaceVariant::Modified);
    let nsga_cfg = || Nsga2Config {
        dim: problem.dim(),
        pop_size: settings.nsga_pop,
        generations: settings.nsga_gens,
        seed: settings.seed,
        ..Nsga2Config::default()
    };

    eprintln!("[timing mace_proposal_serial_pointwise x{samples}]");
    let serial_s = time_median(samples, || {
        black_box(
            Nsga2::new(nsga_cfg())
                .run(|x| proposer.objectives(&models, x, incumbent, settings.ucb_beta)),
        );
    });
    eprintln!("[timing mace_proposal_batched_parallel x{samples}]");
    let batched_s = time_median(samples, || {
        black_box(proposer.pareto_front(&models, problem.dim(), incumbent, &settings, 0, &[]));
    });

    // Surrogate refit at archive size 64 growing by one batch of 8: the
    // pre-redesign path (full re-standardise + O(n³) refactorise +
    // retrain) vs the incremental path (frozen scalers, rank-k Cholesky
    // extension, warm-start likelihood check). This is the per-metric,
    // per-iteration cost of the BO loop.
    let archive_n = 64usize;
    let batch_k = 8usize;
    let (ref_xs, ref_ys) = {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<Vec<f64>> = (0..archive_n + batch_k)
            .map(|_| random_design(problem.dim(), &mut rng))
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| problem.evaluate(x).get(0)).collect();
        (xs, ys)
    };
    let refit_cfg = GpConfig {
        train_iters: 8, // BoSettings::quick's refit_iters profile
        ..GpConfig::fast()
    };
    let fitted = Gp::fit(
        KernelSpec::neuk(problem.dim()),
        &ref_xs[..archive_n],
        &ref_ys[..archive_n],
        &refit_cfg,
    )
    .map_err(|e| format!("refit-bench GP fit failed: {e}"))?;
    eprintln!("[timing refit_full n={archive_n}+{batch_k} x{samples}]");
    let full_refit_s = time_median(samples, || {
        let mut gp = fitted.clone();
        gp.refit(black_box(&ref_xs), black_box(&ref_ys), &refit_cfg)
            .unwrap();
        black_box(gp);
    });
    eprintln!("[timing refit_incremental n={archive_n}+{batch_k} x{samples}]");
    let incr_refit_s = time_median(samples, || {
        let mut gp = fitted.clone();
        gp.append(
            black_box(&ref_xs[archive_n..]),
            black_box(&ref_ys[archive_n..]),
            &refit_cfg,
        )
        .unwrap();
        black_box(gp);
    });

    // Batched evaluation pipeline, two granularities over one 64-candidate
    // population. (a) Whole-problem evaluation on opamp2: the historical
    // scalar loop vs `evaluate_batch_sharded` (the path the optimizer,
    // corner audits and daemon now take) on each device backend — here the
    // MNA solves dominate, so backend choice moves the needle modestly.
    // (b) The device-layer operating-point solve, which is where the LUT
    // earns its keep: 64 `vgs`-for-`id` inversions as one batched grid
    // walk (~7 four-load probes each) vs the square-law scalar loop's
    // 60-iteration bisection with two transcendental-heavy model calls per
    // step. The headline `speedup` is (b): batched LUT vs scalar
    // square-law, and must clear 2x.
    let pop_n = 64usize;
    let population: Vec<Vec<f64>> = {
        let mut rng = StdRng::seed_from_u64(29);
        (0..pop_n)
            .map(|_| random_design(problem.dim(), &mut rng))
            .collect()
    };
    let lut_problem = TwoStageOpAmp::new(TechNode::n180().with_backend(Backend::Lut));
    eprintln!("[timing eval scalar/batched x square_law/lut, {pop_n} candidates x{samples}]");
    let eval_scalar_sq_s = time_median(samples, || {
        for x in &population {
            black_box(problem.evaluate(black_box(x)));
        }
    });
    let eval_batched_sq_s = time_median(samples, || {
        black_box(evaluate_batch_sharded(&problem, black_box(&population)));
    });
    let eval_scalar_lut_s = time_median(samples, || {
        for x in &population {
            black_box(lut_problem.evaluate(black_box(x)));
        }
    });
    let eval_batched_lut_s = time_median(samples, || {
        black_box(evaluate_batch_sharded(&lut_problem, black_box(&population)));
    });

    // (b): one operating-point inversion per candidate, targets taken from
    // the model itself so every request is reachable.
    let node_sq = TechNode::n180();
    let node_lut = TechNode::n180().with_backend(Backend::Lut);
    let requests: Vec<(f64, f64, f64, f64)> = {
        let mut rng = StdRng::seed_from_u64(31);
        (0..pop_n)
            .map(|_| {
                let r = random_design(4, &mut rng);
                let w = 1e-6 * (1.0 + 39.0 * r[0]);
                let l = 0.18e-6 + (2.0e-6 - 0.18e-6) * r[1];
                let vds = 0.3 + 1.4 * r[2];
                let vgs = 0.6 + 0.6 * r[3];
                let (id, _, _) = node_sq.mos_iv(&node_sq.nmos, w, l, vgs, vds);
                (w, l, vds, id)
            })
            .collect()
    };
    eprintln!(
        "[timing op_point_solve scalar square_law vs batched lut, {pop_n} requests x{samples}]"
    );
    let vgs_scalar_sq_s = time_median(samples, || {
        for &(w, l, vds, id) in &requests {
            black_box(node_sq.vgs_for_id(&node_sq.nmos, w, l, vds, id));
        }
    });
    let vgs_batched_lut_s = time_median(samples, || {
        black_box(node_lut.vgs_for_id_batch(&node_lut.nmos, black_box(&requests)));
    });

    // Monte-Carlo yield with the streaming early-abort pipeline vs the
    // same estimator forced to simulate every sample. The population is
    // infeasible-heavy on purpose (random opamp2 designs rarely meet spec
    // at the worst corner), which is exactly the regime the abort is for:
    // a candidate whose nominal sample fails — or whose failure count
    // already rules the threshold out — stops consuming samples. Recorded
    // metrics are bitwise identical either way (asserted below); only the
    // wall clock may differ.
    let registry = kato_circuits::ScenarioRegistry::standard();
    let yield_scenario = registry.get("opamp2").map_err(|e| e.to_string())?;
    let yield_settings = || kato_circuits::YieldSettings {
        samples: 12,
        threshold: 0.7,
        seed: 11,
        early_abort: true,
        corners: None, // the registered five-corner sweep, per sample
    };
    let yield_abort = yield_scenario
        .build_yield("180nm", None, yield_settings())
        .map_err(|e| e.to_string())?;
    let yield_full = yield_scenario
        .build_yield(
            "180nm",
            None,
            kato_circuits::YieldSettings {
                early_abort: false,
                ..yield_settings()
            },
        )
        .map_err(|e| e.to_string())?;
    let yield_pop: Vec<Vec<f64>> = {
        let mut rng = StdRng::seed_from_u64(37);
        let mut pop: Vec<Vec<f64>> = (0..24)
            .map(|_| random_design(yield_abort.dim(), &mut rng))
            .collect();
        // A couple of feasible-ish candidates so the abort path still
        // exercises full sample scans.
        pop.push(yield_abort.expert_design());
        pop.push(yield_abort.expert_design());
        pop
    };
    eprintln!(
        "[timing yield early-abort vs full-sample, {} candidates x {} samples x {} corners x{samples}]",
        yield_pop.len(),
        yield_abort.samples(),
        yield_abort.corner_count()
    );
    let yield_abort_s = time_median(samples, || {
        black_box(evaluate_batch_sharded(&yield_abort, black_box(&yield_pop)));
    });
    let yield_full_s = time_median(samples, || {
        black_box(evaluate_batch_sharded(&yield_full, black_box(&yield_pop)));
    });
    // The abort contract: identical recorded results on both schedules.
    assert_eq!(
        evaluate_batch_sharded(&yield_abort, &yield_pop),
        evaluate_batch_sharded(&yield_full, &yield_pop),
        "early abort changed recorded yield results"
    );

    // End to end: one full seeded KATO run, quick profile. Reported per
    // simulation so budget changes don't silently rescale the trajectory.
    let budget = 40usize;
    eprintln!("[timing end_to_end kato run opamp2@180nm budget {budget} x3]");
    let e2e_s = time_median(3.min(samples), || {
        black_box(Kato::new(BoSettings::quick(budget, 11)).run(&problem, Mode::Constrained));
    });

    let doc = Json::obj(vec![
        ("schema", Json::Num(1.0)),
        ("label", Json::str(label)),
        ("threads", Json::Num(threads as f64)),
        ("samples", Json::Num(samples as f64)),
        (
            "proposal",
            Json::obj(vec![
                ("serial_pointwise_ms", Json::Num(serial_s * 1e3)),
                ("batched_parallel_ms", Json::Num(batched_s * 1e3)),
                ("speedup", Json::Num(serial_s / batched_s)),
            ]),
        ),
        (
            "refit",
            Json::obj(vec![
                ("archive_n", Json::Num(archive_n as f64)),
                ("batch_k", Json::Num(batch_k as f64)),
                ("full_refit_ms", Json::Num(full_refit_s * 1e3)),
                ("incremental_append_ms", Json::Num(incr_refit_s * 1e3)),
                ("speedup", Json::Num(full_refit_s / incr_refit_s)),
            ]),
        ),
        (
            "eval",
            Json::obj(vec![
                ("population", Json::Num(pop_n as f64)),
                (
                    "problem_eval",
                    Json::obj(vec![
                        ("scenario", Json::str("opamp2_180nm")),
                        ("scalar_square_law_ms", Json::Num(eval_scalar_sq_s * 1e3)),
                        ("batched_square_law_ms", Json::Num(eval_batched_sq_s * 1e3)),
                        ("scalar_lut_ms", Json::Num(eval_scalar_lut_s * 1e3)),
                        ("batched_lut_ms", Json::Num(eval_batched_lut_s * 1e3)),
                        ("speedup", Json::Num(eval_scalar_sq_s / eval_batched_lut_s)),
                    ]),
                ),
                (
                    "op_point_solve",
                    Json::obj(vec![
                        ("device", Json::str("nmos_180nm")),
                        ("scalar_square_law_ms", Json::Num(vgs_scalar_sq_s * 1e3)),
                        ("batched_lut_ms", Json::Num(vgs_batched_lut_s * 1e3)),
                        ("speedup", Json::Num(vgs_scalar_sq_s / vgs_batched_lut_s)),
                    ]),
                ),
                // Headline: batched LUT operating-point evaluation vs the
                // scalar square-law loop on the 64-candidate population.
                ("speedup", Json::Num(vgs_scalar_sq_s / vgs_batched_lut_s)),
            ]),
        ),
        (
            "yield",
            Json::obj(vec![
                ("scenario", Json::str("opamp2_180nm")),
                ("population", Json::Num(yield_pop.len() as f64)),
                (
                    "samples_per_candidate",
                    Json::Num(yield_abort.samples() as f64),
                ),
                ("corners", Json::Num(yield_abort.corner_count() as f64)),
                ("threshold", Json::Num(yield_abort.threshold())),
                ("early_abort_ms", Json::Num(yield_abort_s * 1e3)),
                ("full_sample_ms", Json::Num(yield_full_s * 1e3)),
                ("speedup", Json::Num(yield_full_s / yield_abort_s)),
            ]),
        ),
        (
            "end_to_end",
            Json::obj(vec![
                ("scenario", Json::str("opamp2_180nm")),
                ("budget", Json::Num(budget as f64)),
                ("total_s", Json::Num(e2e_s)),
                ("ms_per_sim", Json::Num(e2e_s * 1e3 / budget as f64)),
            ]),
        ),
    ]);
    let default_path = format!("BENCH_{label}.json");
    let path = out.unwrap_or(&default_path);
    std::fs::write(path, format!("{doc}\n")).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("{doc}");
    eprintln!("[written {path}]");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = "local".to_string();
    let mut out: Option<String> = None;
    let mut samples = 10usize;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        let result = match flag.as_str() {
            "--label" => value().map(|v| label = v),
            "--out" => value().map(|v| out = Some(v)),
            "--samples" => value().and_then(|v| {
                v.parse()
                    .map(|n| samples = n)
                    .map_err(|_| "unparsable --samples".to_string())
            }),
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown option '{other}'")),
        };
        if let Err(msg) = result {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    }
    if samples == 0 {
        eprintln!("error: --samples must be at least 1");
        return ExitCode::from(2);
    }
    match run(&label, out.as_deref(), samples) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
