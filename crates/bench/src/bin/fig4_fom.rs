//! Reproduces **Fig. 4**: FOM-based sizing (paper §4.1) on the three
//! circuits at 180 nm — KATO vs SMAC-RF vs MACE vs random search,
//! best-FOM-so-far versus simulation count.

use kato::baselines::{MaceOptimizer, RandomSearch, SmacRf};
use kato::{BoSettings, Kato, Mode, RunHistory};
use kato_bench::{print_series, Profile};
use kato_circuits::{Bandgap, FomSpec, SizingProblem, TechNode, ThreeStageOpAmp, TwoStageOpAmp};

fn settings(profile: &Profile, seed: u64) -> BoSettings {
    let mut s = if profile.full {
        BoSettings::paper(profile.budget, seed)
    } else {
        BoSettings::quick(profile.budget, seed)
    };
    s.n_init = profile.n_init_fom;
    s
}

fn run_panel(panel: &str, problem: &dyn SizingProblem, profile: &Profile) {
    let fom = FomSpec::calibrate(problem, profile.fom_samples, 2024);
    let mut kato_runs: Vec<RunHistory> = Vec::new();
    let mut mace_runs = Vec::new();
    let mut smac_runs = Vec::new();
    let mut rs_runs = Vec::new();
    for &seed in &profile.seeds {
        let s = settings(profile, seed);
        kato_runs.push(Kato::new(s.clone()).run(problem, Mode::Fom(fom.clone())));
        mace_runs.push(MaceOptimizer::new(s.clone()).run(problem, Mode::Fom(fom.clone())));
        smac_runs.push(SmacRf::new(s.clone()).run(problem, Mode::Fom(fom.clone())));
        rs_runs.push(RandomSearch::new(s).run(problem, Mode::Fom(fom.clone())));
    }
    print_series(
        &format!("Fig. 4({panel}): FOM optimisation, {}", problem.name()),
        &[
            ("KATO", kato_runs),
            ("MACE", mace_runs),
            ("SMAC-RF", smac_runs),
            ("RS", rs_runs),
        ],
        5,
        &format!("fig4_{}.csv", problem.name()),
    );
}

fn main() {
    let profile = Profile::from_args();
    println!(
        "Fig. 4 reproduction — profile: {} ({} seeds, budget {})",
        if profile.full { "FULL" } else { "quick" },
        profile.seeds.len(),
        profile.budget
    );
    run_panel("a", &TwoStageOpAmp::new(TechNode::n180()), &profile);
    run_panel("b", &ThreeStageOpAmp::new(TechNode::n180()), &profile);
    run_panel("c", &Bandgap::new(TechNode::n180()), &profile);
    println!("\nExpected shape (paper Fig. 4): KATO reaches the highest FOM with the fewest sims;");
    println!("SMAC-RF and MACE trail; RS is the floor.");
}
