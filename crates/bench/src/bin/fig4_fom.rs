//! Reproduces **Fig. 4**: FOM-based sizing (paper §4.1) on the three
//! circuits at 180 nm — KATO vs SMAC-RF vs MACE vs random search,
//! best-FOM-so-far versus simulation count.

use kato::baselines::{MaceOptimizer, RandomSearch, SmacRf};
use kato::{BoSettings, Kato, Mode};
use kato_bench::{print_series, run_seeds, Profile};
use kato_circuits::{Bandgap, FomSpec, SizingProblem, TechNode, ThreeStageOpAmp, TwoStageOpAmp};

fn settings(profile: &Profile, seed: u64) -> BoSettings {
    let mut s = if profile.full {
        BoSettings::paper(profile.budget, seed)
    } else {
        BoSettings::quick(profile.budget, seed)
    };
    s.n_init = profile.n_init_fom;
    s
}

fn run_panel(panel: &str, problem: &dyn SizingProblem, profile: &Profile) {
    let fom = FomSpec::calibrate(problem, profile.fom_samples, 2024);
    // Seeds fan out across the kato_par pool; each seed's run is fully
    // determined by its own settings, so the fan-out is order-stable.
    let kato_runs = run_seeds(&profile.seeds, |seed| {
        Kato::new(settings(profile, seed)).run(problem, Mode::Fom(fom.clone()))
    });
    let mace_runs = run_seeds(&profile.seeds, |seed| {
        MaceOptimizer::new(settings(profile, seed)).run(problem, Mode::Fom(fom.clone()))
    });
    let smac_runs = run_seeds(&profile.seeds, |seed| {
        SmacRf::new(settings(profile, seed)).run(problem, Mode::Fom(fom.clone()))
    });
    let rs_runs = run_seeds(&profile.seeds, |seed| {
        RandomSearch::new(settings(profile, seed)).run(problem, Mode::Fom(fom.clone()))
    });
    print_series(
        &format!("Fig. 4({panel}): FOM optimisation, {}", problem.name()),
        &[
            ("KATO", kato_runs),
            ("MACE", mace_runs),
            ("SMAC-RF", smac_runs),
            ("RS", rs_runs),
        ],
        5,
        &format!("fig4_{}.csv", problem.name()),
    );
}

fn main() {
    let profile = Profile::from_args();
    println!(
        "Fig. 4 reproduction — profile: {} ({} seeds, budget {})",
        if profile.full { "FULL" } else { "quick" },
        profile.seeds.len(),
        profile.budget
    );
    run_panel("a", &TwoStageOpAmp::new(TechNode::n180()), &profile);
    run_panel("b", &ThreeStageOpAmp::new(TechNode::n180()), &profile);
    run_panel("c", &Bandgap::new(TechNode::n180()), &profile);
    println!("\nExpected shape (paper Fig. 4): KATO reaches the highest FOM with the fewest sims;");
    println!("SMAC-RF and MACE trail; RS is the floor.");
}
