#![warn(missing_docs)]

//! Experiment harness shared by the per-figure/per-table binaries.
//!
//! Every binary regenerates one artefact of the KATO paper's evaluation
//! (see DESIGN.md's per-experiment index) and prints the same rows/series
//! the paper reports, plus CSV files under `results/`.
//!
//! Binaries default to a **quick profile** (2 seeds, reduced budgets) and
//! accept `--full` for paper-scale runs.

pub use kato_serve::json;

use kato::RunHistory;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Budget/seed profile for one experiment binary.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Seeds to repeat each configuration over.
    pub seeds: Vec<u64>,
    /// Simulation budget per run (including init).
    pub budget: usize,
    /// Random initial designs (FOM experiments).
    pub n_init_fom: usize,
    /// Random initial designs (constrained experiments, paper uses 300).
    pub n_init_con: usize,
    /// Source-archive size for transfer experiments (paper uses 200).
    pub source_n: usize,
    /// Samples used to calibrate FOM normalisation (paper uses 10 000).
    pub fom_samples: usize,
    /// `true` when running at paper scale.
    pub full: bool,
}

impl Profile {
    /// Quick profile: minutes, not hours.
    #[must_use]
    pub fn quick() -> Self {
        Profile {
            seeds: vec![11, 23],
            budget: 70,
            n_init_fom: 10,
            n_init_con: 40,
            source_n: 120,
            fom_samples: 300,
            full: false,
        }
    }

    /// Paper-scale profile (5 seeds, larger budgets).
    #[must_use]
    pub fn full() -> Self {
        Profile {
            seeds: vec![11, 23, 37, 53, 71],
            budget: 150,
            n_init_fom: 10,
            n_init_con: 300,
            source_n: 200,
            fom_samples: 10_000,
            full: true,
        }
    }

    /// Parses `--full` from the CLI args.
    #[must_use]
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Profile::full()
        } else {
            Profile::quick()
        }
    }
}

/// Runs one configuration once per seed, fanning the independent runs out
/// over the [`kato_par`] pool (`KATO_THREADS` controls the width). Results
/// come back in seed order, so multi-seed experiment tables are identical
/// for every thread count.
pub fn run_seeds<F>(seeds: &[u64], run: F) -> Vec<RunHistory>
where
    F: Fn(u64) -> RunHistory + Sync,
{
    kato_par::par_map(seeds, |&seed| run(seed))
}

/// Mean best-so-far curve across runs; −∞ entries (nothing feasible yet)
/// are dropped per-position so means stay meaningful.
#[must_use]
pub fn mean_curve(histories: &[RunHistory]) -> Vec<f64> {
    let len = histories.iter().map(RunHistory::len).min().unwrap_or(0);
    (0..len)
        .map(|i| {
            let vals: Vec<f64> = histories
                .iter()
                .map(|h| h.best_curve()[i])
                .filter(|v| v.is_finite())
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect()
}

/// Mean and sample std of the final best score across runs (ignoring runs
/// that never found a feasible design).
#[must_use]
pub fn final_stats(histories: &[RunHistory]) -> (f64, f64) {
    let finals: Vec<f64> = histories
        .iter()
        .filter_map(|h| h.best().map(|b| b.score))
        .collect();
    (
        kato_linalg::stats::mean(&finals),
        kato_linalg::stats::std_dev(&finals),
    )
}

/// Mean simulations to reach `threshold` across runs (runs that never reach
/// it count as the full budget) — the paper's speed-up numerator.
#[must_use]
pub fn mean_sims_to_reach(histories: &[RunHistory], threshold: f64) -> f64 {
    let vals: Vec<f64> = histories
        .iter()
        .map(|h| h.sims_to_reach(threshold).unwrap_or(h.len()) as f64)
        .collect();
    kato_linalg::stats::mean(&vals)
}

/// Prints aligned best-so-far series for several methods and writes a CSV.
pub fn print_series(
    title: &str,
    methods: &[(&str, Vec<RunHistory>)],
    stride: usize,
    csv_name: &str,
) {
    println!("\n=== {title} ===");
    let curves: Vec<(String, Vec<f64>)> = methods
        .iter()
        .map(|(name, hs)| ((*name).to_string(), mean_curve(hs)))
        .collect();
    let len = curves.iter().map(|(_, c)| c.len()).min().unwrap_or(0);
    print!("{:>6}", "sims");
    for (name, _) in &curves {
        print!("{name:>16}");
    }
    println!();
    let mut rows = Vec::new();
    let mut i = stride.max(1) - 1;
    while i < len {
        print!("{:>6}", i + 1);
        let mut row = vec![format!("{}", i + 1)];
        for (_, c) in &curves {
            print!("{:>16.4}", c[i]);
            row.push(format!("{:.6}", c[i]));
        }
        println!();
        rows.push(row.join(","));
        i += stride.max(1);
    }
    for (name, hs) in methods {
        let (m, s) = final_stats(hs);
        println!("  final {name}: {m:.4} +/- {s:.4}");
    }
    let mut header = vec!["sims".to_string()];
    header.extend(curves.iter().map(|(n, _)| n.clone()));
    write_csv(csv_name, &header.join(","), &rows);
}

/// Writes rows to `results/<name>` (best-effort; failures are reported but
/// non-fatal so experiments still print to stdout).
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(name);
    match fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{header}");
            for r in rows {
                let _ = writeln!(f, "{r}");
            }
            println!("  [written {}]", path.display());
        }
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Formats a metrics row like the paper's Tables 1–2.
#[must_use]
pub fn metrics_row(label: &str, values: &[f64]) -> String {
    let mut out = format!("{label:<28}");
    for v in values {
        out.push_str(&format!("{v:>12.2}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato::Mode;
    use kato_circuits::{Goal, Metrics, SizingProblem, Spec, SpecKind, VarSpec};

    struct Toy {
        vars: Vec<VarSpec>,
        specs: Vec<Spec>,
    }

    impl Toy {
        fn new() -> Self {
            Toy {
                vars: vec![VarSpec::lin("a", 0.0, 1.0)],
                specs: vec![Spec {
                    metric: 0,
                    kind: SpecKind::Objective(Goal::Maximize),
                }],
            }
        }
    }

    impl SizingProblem for Toy {
        fn name(&self) -> String {
            "toy".into()
        }
        fn variables(&self) -> &[VarSpec] {
            &self.vars
        }
        fn metric_names(&self) -> &[&'static str] {
            &["obj"]
        }
        fn specs(&self) -> &[Spec] {
            &self.specs
        }
        fn evaluate(&self, x: &[f64]) -> Metrics {
            Metrics::new(vec![x[0]])
        }
        fn expert_design(&self) -> Vec<f64> {
            vec![0.9]
        }
    }

    fn history_with(values: &[f64]) -> RunHistory {
        let toy = Toy::new();
        let mut h = RunHistory::new("toy", "m", 0);
        for &v in values {
            h.evaluate_and_push(&toy, &Mode::Constrained, vec![v]);
        }
        h
    }

    #[test]
    fn mean_curve_averages_runs() {
        let h1 = history_with(&[0.1, 0.5, 0.2]);
        let h2 = history_with(&[0.3, 0.3, 0.9]);
        let c = mean_curve(&[h1, h2]);
        assert_eq!(c.len(), 3);
        assert!((c[0] - 0.2).abs() < 1e-12);
        assert!((c[2] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn final_stats_and_speed() {
        let h1 = history_with(&[0.1, 0.8]);
        let h2 = history_with(&[0.6, 0.7]);
        let (m, s) = final_stats(&[h1.clone(), h2.clone()]);
        assert!((m - 0.75).abs() < 1e-12);
        assert!(s > 0.0);
        let sims = mean_sims_to_reach(&[h1, h2], 0.65);
        assert!((sims - 2.0).abs() < 1e-12);
    }

    #[test]
    fn profile_flags() {
        assert!(!Profile::quick().full);
        assert!(Profile::full().full);
        assert!(Profile::full().seeds.len() > Profile::quick().seeds.len());
    }

    #[test]
    fn metrics_row_formats() {
        let r = metrics_row("KATO", &[124.21, 61.18]);
        assert!(r.contains("KATO") && r.contains("124.21"));
    }
}
