//! Minimal JSON document builder for the CLI's result files.
//!
//! The workspace vendors no serde, so results are serialised through this
//! small value tree instead. Output is deterministic (object keys keep
//! insertion order) and non-finite numbers — which a sizing run produces
//! legitimately, e.g. a `−∞` score before anything is feasible — are
//! written as `null`, matching what `JSON.parse`-style consumers expect.

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// A number; non-finite values serialise as `null`.
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Convenience constructor for an array of numbers.
    #[must_use]
    pub fn nums(values: &[f64]) -> Self {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest round-trip representation; integers print
                    // without a trailing ".0" which JSON also accepts.
                    write!(f, "{v}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape(s, &mut buf);
                write!(f, "\"{buf}\"")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    escape(k, &mut buf);
                    write!(f, "\"{buf}\":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialise() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures_keep_order() {
        let doc = Json::obj(vec![
            ("b", Json::Num(2.0)),
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Null])),
        ]);
        assert_eq!(doc.to_string(), "{\"b\":2,\"a\":[1,null]}");
    }

    #[test]
    fn nums_helper_maps_slice() {
        assert_eq!(Json::nums(&[1.0, 0.5]).to_string(), "[1,0.5]");
    }
}
