//! Criterion bench backing the paper's §3.3 claim: the modified
//! three-objective MACE acquisition search is cheaper than the original
//! six-objective ensemble at equal NSGA-II budgets.

use criterion::{criterion_group, criterion_main, Criterion};
use kato::mace::{MaceProposer, MaceVariant};
use kato::{metric_columns, BoSettings, MetricModels, Mode, ModelConfig, RunHistory};
use kato_circuits::{random_design, SizingProblem, TechNode, TwoStageOpAmp};
use kato_gp::{GpConfig, KatConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fitted_stack() -> (TwoStageOpAmp, MetricModels, f64) {
    let problem = TwoStageOpAmp::new(TechNode::n180());
    let mut history = RunHistory::new("bench", "bench", 0);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..30 {
        let x = random_design(problem.dim(), &mut rng);
        history.evaluate_and_push(&problem, &Mode::Constrained, x);
    }
    let xs: Vec<Vec<f64>> = history.evals.iter().map(|e| e.x.clone()).collect();
    let refs: Vec<&kato_circuits::Metrics> = history.evals.iter().map(|e| &e.metrics).collect();
    let cols = metric_columns(&refs);
    let cfg = ModelConfig {
        gp: GpConfig {
            train_iters: 10,
            ..GpConfig::fast()
        },
        kat: KatConfig::fast(),
        ..ModelConfig::default()
    };
    let models = MetricModels::fit_gp(problem.dim(), &xs, &cols, problem.specs(), &cfg).unwrap();
    // Soft incumbent (nothing may be feasible in 30 random samples).
    let incumbent = history
        .evals
        .iter()
        .map(|e| {
            e.metrics.objective(problem.specs()).unwrap_or(0.0)
                - 10.0 * e.metrics.violation(problem.specs())
        })
        .fold(f64::NEG_INFINITY, f64::max);
    (problem, models, incumbent)
}

fn bench_variants(c: &mut Criterion) {
    let (problem, models, incumbent) = fitted_stack();
    let settings = BoSettings::quick(50, 1);
    for (variant, name) in [
        (MaceVariant::Full, "mace_front_6obj"),
        (MaceVariant::Modified, "mace_front_3obj"),
    ] {
        let proposer = MaceProposer::new(variant);
        c.bench_function(name, |b| {
            b.iter(|| {
                black_box(proposer.pareto_front(
                    &models,
                    problem.dim(),
                    incumbent,
                    &settings,
                    0,
                    &[],
                ))
            })
        });
    }
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = bench_variants
}
criterion_main!(ablation);
