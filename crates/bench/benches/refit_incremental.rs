//! Criterion bench for the incremental-refit hot path: growing a surrogate
//! archive by one BO batch via `Gp::refit` (full re-standardise +
//! re-factorise, the pre-redesign path) versus `Gp::append` (frozen
//! scalers, rank-k Cholesky extension, warm-started hyperparameters).
//!
//! Archive sizes mirror the acceptance gate (≥64 points) and the batch
//! size mirrors the default BO batch.

use criterion::{criterion_group, criterion_main, Criterion};
use kato_circuits::{random_design, SizingProblem, TechNode, TwoStageOpAmp};
use kato_gp::{Gp, GpConfig, KernelSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const ARCHIVE_N: usize = 64;
const BATCH_K: usize = 8;

/// Seeded opamp2@180nm archive: designs plus one metric column (the
/// objective current), the shape every per-metric surrogate sees.
fn archive(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let problem = TwoStageOpAmp::new(TechNode::n180());
    let mut rng = StdRng::seed_from_u64(7);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| random_design(problem.dim(), &mut rng))
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| problem.evaluate(x).get(0)).collect();
    (xs, ys)
}

fn bench_refit(c: &mut Criterion) {
    let (xs, ys) = archive(ARCHIVE_N + BATCH_K);
    let dim = xs[0].len();
    // The per-iteration refit profile of BoSettings::quick.
    let cfg = GpConfig {
        train_iters: 8,
        ..GpConfig::fast()
    };
    let fitted = Gp::fit(
        KernelSpec::neuk(dim),
        &xs[..ARCHIVE_N],
        &ys[..ARCHIVE_N],
        &cfg,
    )
    .unwrap();

    c.bench_function("refit_full_n64_plus8", |b| {
        b.iter(|| {
            let mut gp = fitted.clone();
            gp.refit(black_box(&xs), black_box(&ys), &cfg).unwrap();
            black_box(gp)
        })
    });
    c.bench_function("refit_incremental_n64_plus8", |b| {
        b.iter(|| {
            let mut gp = fitted.clone();
            gp.append(
                black_box(&xs[ARCHIVE_N..]),
                black_box(&ys[ARCHIVE_N..]),
                &cfg,
            )
            .unwrap();
            black_box(gp)
        })
    });
}

criterion_group! {
    name = refit_incremental;
    config = Criterion::default().sample_size(10);
    targets = bench_refit
}
criterion_main!(refit_incremental);
