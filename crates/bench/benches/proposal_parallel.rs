//! Criterion bench backing the parallel batched inference engine: one MACE
//! proposal (NSGA-II acquisition search) on opamp2 at 180 nm, scored
//! point-by-point through `MaceProposer::objectives` (the pre-batching
//! serial path) versus through the batched `run_batch` +
//! `objectives_batch` path that `MaceProposer::pareto_front` now uses.
//!
//! The batched path amortises one Cholesky application across the whole
//! NSGA-II population and fans kernel cross-rows out over the `kato_par`
//! pool, so it should win even at `KATO_THREADS=1` and scale further with
//! threads. Run with e.g. `KATO_THREADS=4 cargo bench --bench
//! proposal_parallel`.

use criterion::{criterion_group, criterion_main, Criterion};
use kato::mace::{MaceProposer, MaceVariant};
use kato::{metric_columns, BoSettings, MetricModels, Mode, ModelConfig, RunHistory};
use kato_circuits::{random_design, SizingProblem, TechNode, TwoStageOpAmp};
use kato_gp::{GpConfig, KatConfig};
use kato_nsga::{Nsga2, Nsga2Config};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fitted_stack() -> (TwoStageOpAmp, MetricModels, f64) {
    let problem = TwoStageOpAmp::new(TechNode::n180());
    let mut history = RunHistory::new("bench", "bench", 0);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..40 {
        let x = random_design(problem.dim(), &mut rng);
        history.evaluate_and_push(&problem, &Mode::Constrained, x);
    }
    let xs: Vec<Vec<f64>> = history.evals.iter().map(|e| e.x.clone()).collect();
    let refs: Vec<&kato_circuits::Metrics> = history.evals.iter().map(|e| &e.metrics).collect();
    let cols = metric_columns(&refs);
    let cfg = ModelConfig {
        gp: GpConfig {
            train_iters: 10,
            ..GpConfig::fast()
        },
        kat: KatConfig::fast(),
        ..ModelConfig::default()
    };
    let models = MetricModels::fit_gp(problem.dim(), &xs, &cols, problem.specs(), &cfg).unwrap();
    let incumbent = history
        .evals
        .iter()
        .map(|e| {
            e.metrics.objective(problem.specs()).unwrap_or(0.0)
                - 10.0 * e.metrics.violation(problem.specs())
        })
        .fold(f64::NEG_INFINITY, f64::max);
    (problem, models, incumbent)
}

fn bench_serial_vs_batched(c: &mut Criterion) {
    let (problem, models, incumbent) = fitted_stack();
    let settings = BoSettings::quick(50, 1);
    let proposer = MaceProposer::new(MaceVariant::Modified);
    let nsga_cfg = || Nsga2Config {
        dim: problem.dim(),
        pop_size: settings.nsga_pop,
        generations: settings.nsga_gens,
        seed: settings.seed,
        ..Nsga2Config::default()
    };
    // Pre-batching baseline: one O(n^2) posterior solve per candidate, all
    // on one thread.
    c.bench_function("mace_proposal_serial_pointwise", |b| {
        b.iter(|| {
            black_box(
                Nsga2::new(nsga_cfg())
                    .run(|x| proposer.objectives(&models, x, incumbent, settings.ucb_beta)),
            )
        })
    });
    // Batched + parallel: whole populations per surrogate call, fanned over
    // KATO_THREADS workers (the path `pareto_front` uses in production).
    c.bench_function("mace_proposal_batched_parallel", |b| {
        b.iter(|| {
            black_box(proposer.pareto_front(&models, problem.dim(), incumbent, &settings, 0, &[]))
        })
    });
}

criterion_group! {
    name = proposal;
    config = Criterion::default().sample_size(10);
    targets = bench_serial_vs_batched
}
criterion_main!(proposal);
