//! Criterion micro-benchmarks for the performance-critical substrates:
//! circuit evaluation (the "simulator" cost), GP fitting (the BO overhead),
//! Neural-Kernel prediction and NSGA-II generations.

use criterion::{criterion_group, criterion_main, Criterion};
use kato_circuits::{Bandgap, SizingProblem, TechNode, TwoStageOpAmp};
use kato_gp::{Gp, GpConfig, KernelSpec};
use kato_nsga::{Nsga2, Nsga2Config};
use std::hint::black_box;

fn bench_circuits(c: &mut Criterion) {
    let opamp = TwoStageOpAmp::new(TechNode::n180());
    let x2 = vec![0.5; opamp.dim()];
    c.bench_function("opamp2_eval", |b| {
        b.iter(|| black_box(opamp.evaluate(black_box(&x2))))
    });

    let bandgap = Bandgap::new(TechNode::n180());
    let xb = vec![0.5; bandgap.dim()];
    c.bench_function("bandgap_eval_tempsweep", |b| {
        b.iter(|| black_box(bandgap.evaluate(black_box(&xb))))
    });
}

fn bench_gp(c: &mut Criterion) {
    let xs: Vec<Vec<f64>> = (0..30)
        .map(|i| {
            let t = i as f64 / 29.0;
            vec![t, (t * 3.3) % 1.0, (t * 7.1) % 1.0]
        })
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin() + x[1]).collect();
    let cfg = GpConfig {
        train_iters: 10,
        ..GpConfig::fast()
    };
    c.bench_function("gp_fit_neuk_n30", |b| {
        b.iter(|| Gp::fit(KernelSpec::neuk(3), black_box(&xs), black_box(&ys), &cfg).unwrap())
    });
    let gp = Gp::fit(KernelSpec::neuk(3), &xs, &ys, &cfg).unwrap();
    c.bench_function("gp_predict_neuk_n30", |b| {
        b.iter(|| black_box(gp.predict(black_box(&[0.4, 0.6, 0.1]))))
    });
}

fn bench_nsga(c: &mut Criterion) {
    c.bench_function("nsga2_pop32_gen10_2obj", |b| {
        b.iter(|| {
            Nsga2::new(Nsga2Config {
                dim: 6,
                pop_size: 32,
                generations: 10,
                seed: 1,
                ..Nsga2Config::default()
            })
            .run(|x| vec![x[0], 1.0 - x.iter().sum::<f64>() / 6.0])
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_circuits, bench_gp, bench_nsga
}
criterion_main!(micro);
