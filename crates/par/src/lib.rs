#![warn(missing_docs)]

//! Scoped data-parallel helpers for the KATO workspace.
//!
//! Everything here is built on [`std::thread::scope`] — no external
//! dependencies, no global pool, no `unsafe`. Work is split into contiguous
//! chunks, one scoped worker per chunk, and results are re-assembled **in
//! input order**, so as long as the per-item closure is a pure function of
//! its input the output is *bitwise identical* for every thread count.
//! That is the property the optimizer stack relies on: a seeded run under
//! `KATO_THREADS=1` and `KATO_THREADS=8` produces the same trace.
//!
//! There is deliberately **no persistent pool**: each call spawns scoped OS
//! threads and joins them before returning. That keeps the crate
//! dependency- and state-free, but two consequences follow: (1) per-call
//! spawn/join overhead (~tens of µs) means very fine-grained fan-outs
//! should batch enough work per item to amortise it, and (2) **nested**
//! fan-outs multiply — a `par_map` whose closure itself calls `par_map`
//! can run up to `KATO_THREADS²` threads at once. The optimizer stack
//! keeps nesting shallow (outer seed/proposer fan-outs over inner batched
//! kernels); set `KATO_THREADS` to the physical core count, not higher.
//!
//! # Thread-count control
//!
//! The worker count comes from the `KATO_THREADS` environment variable when
//! set to a positive integer, and from
//! [`std::thread::available_parallelism`] otherwise (`0`, empty or
//! unparsable values fall back to the same default). It is re-read on every
//! call, so tests and long-lived processes can re-tune without restarting.
//!
//! # Example
//!
//! ```
//! let squares = kato_par::par_map(&[1.0_f64, 2.0, 3.0], |x| x * x);
//! assert_eq!(squares, vec![1.0, 4.0, 9.0]);
//! let (a, b) = kato_par::join(|| 2 + 2, || "two");
//! assert_eq!((a, b), (4, "two"));
//! ```

use std::num::NonZeroUsize;
use std::thread;

/// Number of worker threads the helpers in this crate will use:
/// `KATO_THREADS` when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 when even that is unknown).
#[must_use]
pub fn num_threads() -> usize {
    match std::env::var("KATO_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn join_in_order<R>(handles: Vec<thread::ScopedJoinHandle<'_, Vec<R>>>, capacity: usize) -> Vec<R> {
    let mut out = Vec::with_capacity(capacity);
    for h in handles {
        match h.join() {
            Ok(part) => out.extend(part),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    out
}

/// Applies `f` to every item, fanning out across the pool, and returns the
/// results **in input order**. With one thread (or one item) this is exactly
/// `items.iter().map(f).collect()`, so seeded pipelines stay reproducible
/// across thread counts.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        join_in_order(handles, items.len())
    })
}

/// Mutable sibling of [`par_map`]: applies `f` to every item through a
/// mutable reference (e.g. warm-started surrogate refits) and returns the
/// per-item results in input order.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let n = items.len();
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|c| s.spawn(move || c.iter_mut().map(f).collect::<Vec<R>>()))
            .collect();
        join_in_order(handles, n)
    })
}

/// Splits `items` into at most [`num_threads`] contiguous chunks, maps each
/// chunk through `f` concurrently, and concatenates the per-chunk outputs
/// in input order — the entry point for closures that already work on
/// batches (e.g. one batched linear-algebra call per chunk).
pub fn par_chunks<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return f(items);
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = items.chunks(chunk).map(|c| s.spawn(move || f(c))).collect();
        join_in_order(handles, items.len())
    })
}

/// Runs two closures concurrently (serially under a single-thread
/// configuration) and returns both results.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    if num_threads() <= 1 {
        return (a(), b());
    }
    thread::scope(|s| {
        let ha = s.spawn(a);
        let rb = b();
        match ha.join() {
            Ok(ra) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..103).collect();
        let out = par_map(&items, |&i| i * 2);
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_bitwise() {
        let items: Vec<f64> = (0..57).map(|i| f64::from(i) * 0.37).collect();
        let f = |x: &f64| (x.sin() * 1e3).exp().ln() + x.sqrt();
        let serial: Vec<f64> = items.iter().map(f).collect();
        let parallel = par_map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_handles_edge_sizes() {
        assert!(par_map::<usize, usize, _>(&[], |&i| i).is_empty());
        assert_eq!(par_map(&[7], |&i: &usize| i + 1), vec![8]);
    }

    #[test]
    fn par_map_mut_updates_in_place() {
        let mut items: Vec<usize> = (0..41).collect();
        let olds = par_map_mut(&mut items, |v| {
            let old = *v;
            *v += 100;
            old
        });
        assert_eq!(olds, (0..41).collect::<Vec<_>>());
        assert_eq!(items, (100..141).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_concatenates_in_order() {
        let items: Vec<usize> = (0..37).collect();
        let out = par_chunks(&items, |c| c.iter().map(|&i| i + 1).collect());
        assert_eq!(out, (1..38).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 21 * 2, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
