#![warn(missing_docs)]

//! Scoped data-parallel helpers for the KATO workspace.
//!
//! Everything here is built on [`std::thread::scope`] — no external
//! dependencies, no global pool, no `unsafe`. Work is split into contiguous
//! chunks, one scoped worker per chunk, and results are re-assembled **in
//! input order**, so as long as the per-item closure is a pure function of
//! its input the output is *bitwise identical* for every thread count.
//! That is the property the optimizer stack relies on: a seeded run under
//! `KATO_THREADS=1` and `KATO_THREADS=8` produces the same trace.
//!
//! There is deliberately **no persistent pool**: each call spawns scoped OS
//! threads and joins them before returning. That keeps the crate
//! dependency- and state-free, but two consequences follow: (1) per-call
//! spawn/join overhead (~tens of µs) means very fine-grained fan-outs
//! should batch enough work per item to amortise it, and (2) **nested**
//! fan-outs multiply — a `par_map` whose closure itself calls `par_map`
//! can run up to `KATO_THREADS²` threads at once. The optimizer stack
//! keeps nesting shallow (outer seed/proposer fan-outs over inner batched
//! kernels); set `KATO_THREADS` to the physical core count, not higher.
//!
//! # Thread-count control
//!
//! The worker count comes from the `KATO_THREADS` environment variable when
//! set to a positive integer, and from
//! [`std::thread::available_parallelism`] otherwise (`0`, empty or
//! unparsable values fall back to the same default). It is re-read on every
//! call, so tests and long-lived processes can re-tune without restarting.
//!
//! # Panic isolation
//!
//! The `try_*` variants ([`try_par_map`], [`try_par_chunks`], [`try_join`])
//! catch a panicking work item with [`std::panic::catch_unwind`] and return
//! it as an `Err` carrying the panic payload's message, while every other
//! item completes normally — the property a serving process needs to turn
//! one crashing job into one failed response instead of a dead daemon. The
//! panicking APIs delegate to them and re-panic with the first captured
//! message, so legacy callers keep fail-fast semantics (note the re-raised
//! panic carries the message string, not the original payload object).
//!
//! # Example
//!
//! ```
//! let squares = kato_par::par_map(&[1.0_f64, 2.0, 3.0], |x| x * x);
//! assert_eq!(squares, vec![1.0, 4.0, 9.0]);
//! let (a, b) = kato_par::join(|| 2 + 2, || "two");
//! assert_eq!((a, b), (4, "two"));
//!
//! let out = kato_par::try_par_map(&[1, 2, 3], |&i| {
//!     assert!(i != 2, "boom on {i}");
//!     i * 10
//! });
//! assert_eq!(out[0], Ok(10));
//! assert!(out[1].as_ref().is_err_and(|m| m.contains("boom on 2")));
//! assert_eq!(out[2], Ok(30));
//! ```

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// Number of worker threads the helpers in this crate will use:
/// `KATO_THREADS` when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 when even that is unknown).
#[must_use]
pub fn num_threads() -> usize {
    match std::env::var("KATO_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn join_in_order<R>(handles: Vec<thread::ScopedJoinHandle<'_, Vec<R>>>, capacity: usize) -> Vec<R> {
    let mut out = Vec::with_capacity(capacity);
    for h in handles {
        match h.join() {
            Ok(part) => out.extend(part),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    out
}

/// Extracts a human-readable message from a panic payload: the `&str` or
/// `String` that `panic!` produces, or a placeholder for exotic payloads
/// (`panic_any` with a non-string type).
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fault-isolating sibling of [`par_map`]: applies `f` to every item across
/// the pool and returns, **in input order**, `Ok(result)` per item — or
/// `Err(message)` for an item whose closure panicked, without disturbing
/// any other item. The catch is per *item*, so one poisoned input in a
/// chunk does not take its chunk-mates down with it.
pub fn try_par_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let caught =
        move |t: &T| catch_unwind(AssertUnwindSafe(|| f(t))).map_err(|p| panic_message(&*p));
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(caught).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let caught = &caught;
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(caught).collect::<Vec<_>>()))
            .collect();
        // Workers catch their own panics, so joins only fail on the
        // unrecoverable (worker killed by the runtime) — propagate that.
        join_in_order(handles, items.len())
    })
}

/// Applies `f` to every item, fanning out across the pool, and returns the
/// results **in input order**. With one thread (or one item) this is exactly
/// `items.iter().map(f).collect()`, so seeded pipelines stay reproducible
/// across thread counts.
///
/// Delegates to [`try_par_map`]; a panicking item re-raises here (with the
/// captured message) after the rest of the fan-out completed.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_par_map(items, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|msg| panic!("{msg}")))
        .collect()
}

/// Fault-isolating sibling of [`par_map_dynamic`]: streams items through
/// the pool with dynamic work-claiming and returns, **in input order**,
/// `Ok(result)` per item or `Err(message)` for an item whose closure
/// panicked.
///
/// Where [`try_par_map`] pre-shards the input into equal contiguous chunks
/// (one sync point, best locality), this variant lets each worker claim
/// the next unprocessed index from a shared atomic counter as soon as it
/// finishes its current item. That is the right schedule when per-item
/// cost is wildly uneven — e.g. an early-aborting Monte-Carlo yield
/// evaluation, where one candidate costs a single sample and its neighbour
/// costs `corners × samples` — because a run of expensive items can no
/// longer serialise a whole chunk behind the same worker.
///
/// The claim order is scheduler-dependent, but each result is written back
/// to its item's own slot, so the *output* is in input order and — for a
/// pure `f` — bitwise identical to the serial loop at any thread count.
pub fn try_par_map_dynamic<T, R, F>(items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let caught =
        move |t: &T| catch_unwind(AssertUnwindSafe(|| f(t))).map_err(|p| panic_message(&*p));
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(caught).collect();
    }
    let next = AtomicUsize::new(0);
    let next = &next;
    let caught = &caught;
    let mut parts = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        mine.push((i, caught(item)));
                    }
                    mine
                })
            })
            .collect();
        let mut parts = Vec::with_capacity(items.len());
        for h in handles {
            match h.join() {
                Ok(part) => parts.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        parts
    });
    // Scatter claimed results back into input order.
    let mut out: Vec<Option<Result<R, String>>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in parts.drain(..) {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|slot| slot.expect("every index is claimed exactly once"))
        .collect()
}

/// Streams items through the pool with dynamic work-claiming and returns
/// the results **in input order** — the schedule of choice when per-item
/// cost is heavily data-dependent (see [`try_par_map_dynamic`] for the
/// rationale and the determinism argument). With one thread (or one item)
/// this is exactly `items.iter().map(f).collect()`.
///
/// Delegates to [`try_par_map_dynamic`]; a panicking item re-raises here
/// (with the captured message) after the rest of the fan-out completed.
pub fn par_map_dynamic<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_par_map_dynamic(items, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|msg| panic!("{msg}")))
        .collect()
}

/// Mutable sibling of [`par_map`]: applies `f` to every item through a
/// mutable reference (e.g. warm-started surrogate refits) and returns the
/// per-item results in input order.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let n = items.len();
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|c| s.spawn(move || c.iter_mut().map(f).collect::<Vec<R>>()))
            .collect();
        join_in_order(handles, n)
    })
}

/// Fault-isolating sibling of [`par_chunks`]: maps each contiguous chunk
/// through `f` concurrently and returns one `Result` **per chunk**, in
/// input order — `Ok(outputs)` or `Err(message)` when that chunk's closure
/// panicked. Chunk boundaries follow [`num_threads`]: `ceil(len/threads)`
/// items per chunk (a single chunk — and a single `Result` — under a
/// one-thread configuration).
pub fn try_par_chunks<T, R, F>(items: &[T], f: F) -> Vec<Result<Vec<R>, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let caught =
        move |c: &[T]| catch_unwind(AssertUnwindSafe(|| f(c))).map_err(|p| panic_message(&*p));
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return vec![caught(items)];
    }
    let chunk = items.len().div_ceil(threads);
    let caught = &caught;
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || caught(c)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Splits `items` into at most [`num_threads`] contiguous chunks, maps each
/// chunk through `f` concurrently, and concatenates the per-chunk outputs
/// in input order — the entry point for closures that already work on
/// batches (e.g. one batched linear-algebra call per chunk).
///
/// Delegates to [`try_par_chunks`]; a panicking chunk re-raises here (with
/// the captured message) after the other chunks completed.
pub fn par_chunks<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    try_par_chunks(items, f)
        .into_iter()
        .flat_map(|r| r.unwrap_or_else(|msg| panic!("{msg}")))
        .collect()
}

/// Fault-isolating sibling of [`join`]: runs two closures concurrently
/// (serially under a single-thread configuration) and returns both
/// outcomes, each `Ok(result)` or `Err(message)` when that closure
/// panicked — one side crashing never loses the other side's work.
pub fn try_join<RA, RB, A, B>(a: A, b: B) -> (Result<RA, String>, Result<RB, String>)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    let ca = move || catch_unwind(AssertUnwindSafe(a)).map_err(|p| panic_message(&*p));
    let cb = move || catch_unwind(AssertUnwindSafe(b)).map_err(|p| panic_message(&*p));
    if num_threads() <= 1 {
        return (ca(), cb());
    }
    thread::scope(|s| {
        let ha = s.spawn(ca);
        let rb = cb();
        match ha.join() {
            Ok(ra) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Runs two closures concurrently (serially under a single-thread
/// configuration) and returns both results.
///
/// Delegates to [`try_join`]; if either closure panicked the panic
/// re-raises here (with the captured message) after both finished.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    match try_join(a, b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(msg), _) | (_, Err(msg)) => panic!("{msg}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..103).collect();
        let out = par_map(&items, |&i| i * 2);
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_bitwise() {
        let items: Vec<f64> = (0..57).map(|i| f64::from(i) * 0.37).collect();
        let f = |x: &f64| (x.sin() * 1e3).exp().ln() + x.sqrt();
        let serial: Vec<f64> = items.iter().map(f).collect();
        let parallel = par_map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_handles_edge_sizes() {
        assert!(par_map::<usize, usize, _>(&[], |&i| i).is_empty());
        assert_eq!(par_map(&[7], |&i: &usize| i + 1), vec![8]);
    }

    #[test]
    fn par_map_mut_updates_in_place() {
        let mut items: Vec<usize> = (0..41).collect();
        let olds = par_map_mut(&mut items, |v| {
            let old = *v;
            *v += 100;
            old
        });
        assert_eq!(olds, (0..41).collect::<Vec<_>>());
        assert_eq!(items, (100..141).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_dynamic_matches_serial_bitwise() {
        let items: Vec<f64> = (0..157).map(|i| f64::from(i) * 0.73).collect();
        let f = |x: &f64| (x.cos() * 1e2).exp().ln() - x.cbrt();
        let serial: Vec<f64> = items.iter().map(f).collect();
        assert_eq!(par_map_dynamic(&items, f), serial);
        assert!(par_map_dynamic::<usize, usize, _>(&[], |&i| i).is_empty());
        assert_eq!(par_map_dynamic(&[9], |&i: &usize| i * i), vec![81]);
    }

    #[test]
    fn par_map_dynamic_keeps_order_under_uneven_cost() {
        // Items deliberately cost wildly different amounts; the output must
        // still land in input order.
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_dynamic(&items, |&i| {
            if i % 7 == 0 {
                // Burn some cycles so claim order scrambles.
                let mut acc = 0_u64;
                for k in 0..20_000 {
                    acc = acc.wrapping_mul(31).wrapping_add(k ^ i as u64);
                }
                std::hint::black_box(acc);
            }
            i * 3
        });
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn try_par_map_dynamic_isolates_a_panicking_item() {
        quietly(|| {
            let items: Vec<usize> = (0..29).collect();
            let out = try_par_map_dynamic(&items, |&i| {
                assert!(i != 17, "dynamic failure on {i}");
                i + 5
            });
            for (i, r) in out.iter().enumerate() {
                if i == 17 {
                    assert!(r.as_ref().unwrap_err().contains("dynamic failure on 17"));
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i + 5));
                }
            }
        });
    }

    #[test]
    fn par_chunks_concatenates_in_order() {
        let items: Vec<usize> = (0..37).collect();
        let out = par_chunks(&items, |c| c.iter().map(|&i| i + 1).collect());
        assert_eq!(out, (1..38).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 21 * 2, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    /// Capture-less hook swap so the panic tests don't spray backtraces
    /// into the test output; restores the default on drop.
    fn quietly<R>(f: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn try_par_map_isolates_a_panicking_item() {
        quietly(|| {
            let items: Vec<usize> = (0..23).collect();
            let out = try_par_map(&items, |&i| {
                assert!(i != 13, "injected failure on {i}");
                i * 2
            });
            assert_eq!(out.len(), 23);
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("injected failure on 13"), "{msg}");
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i * 2));
                }
            }
        });
    }

    #[test]
    fn try_par_chunks_reports_per_chunk() {
        quietly(|| {
            let items: Vec<usize> = (0..10).collect();
            let out = try_par_chunks(&items, |c| {
                assert!(!c.contains(&3), "chunk holds 3");
                c.iter().map(|&i| i + 1).collect()
            });
            let ok: Vec<usize> = out
                .iter()
                .filter_map(|r| r.as_ref().ok())
                .flatten()
                .copied()
                .collect();
            let failed = out.iter().filter(|r| r.is_err()).count();
            assert_eq!(failed, 1, "{out:?}");
            // Every item outside the poisoned chunk survived.
            assert!(ok.iter().all(|&v| (1..=10).contains(&v)));
            assert!(try_par_chunks::<usize, usize, _>(&[], |_| Vec::new()).is_empty());
        });
    }

    #[test]
    fn try_join_keeps_the_surviving_side() {
        quietly(|| {
            let (a, b) = try_join(|| 1 + 1, || -> usize { panic!("right side down") });
            assert_eq!(a, Ok(2));
            assert!(b.unwrap_err().contains("right side down"));
        });
    }

    #[test]
    fn panicking_apis_still_panic_with_the_message() {
        quietly(|| {
            let err =
                std::panic::catch_unwind(|| par_map(&[1, 2], |&i| -> usize { panic!("item {i}") }))
                    .unwrap_err();
            assert!(panic_message(&*err).contains("item"));
        });
    }

    #[test]
    fn panic_message_handles_payload_kinds() {
        quietly(|| {
            let p = std::panic::catch_unwind(|| panic!("plain")).unwrap_err();
            assert_eq!(panic_message(&*p), "plain");
            let p = std::panic::catch_unwind(|| panic!("{} {}", "fmt", 1)).unwrap_err();
            assert_eq!(panic_message(&*p), "fmt 1");
            let p = std::panic::catch_unwind(|| std::panic::panic_any(42_i32)).unwrap_err();
            assert_eq!(panic_message(&*p), "non-string panic payload");
        });
    }
}
