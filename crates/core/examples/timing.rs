use kato::{BoSettings, Kato, Mode};
use kato_circuits::{TechNode, TwoStageOpAmp};
use std::time::Instant;

fn main() {
    let p = TwoStageOpAmp::new(TechNode::n180());
    let t0 = Instant::now();
    let mut s = BoSettings::quick(60, 1);
    s.n_init = 20;
    let h = Kato::new(s).run(&p, Mode::Constrained);
    println!(
        "KATO 60 sims: {:?}, best = {:?}",
        t0.elapsed(),
        h.best().map(|b| b.metrics.values().to_vec())
    );
    let curve = h.best_curve();
    println!("curve[20]={:.2} curve[59]={:.2}", curve[20], curve[59]);
}
