use crate::mace::{MaceProposer, MaceVariant};
use crate::model::{fit_source_gps, fom_specs, metric_columns};
use crate::{BoSettings, MetricModels, Mode, ModelConfig, RunBudget, RunHistory, StlWeights};
use kato_circuits::{random_design, FomSpec, Metrics, SizingProblem, Spec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Frozen source-circuit archive used for knowledge transfer: design
/// vectors plus one output column per modelled quantity (raw metrics in
/// constrained mode, FOM values in FOM mode).
#[derive(Debug, Clone)]
pub struct SourceData {
    /// Source design-space dimensionality.
    pub dim: usize,
    /// Source designs (unit cube of the *source* problem).
    pub xs: Vec<Vec<f64>>,
    /// Output columns, aligned by index with the target's modelled columns.
    pub columns: Vec<Vec<f64>>,
    /// Human-readable origin, e.g. `opamp2_180nm`.
    pub label: String,
}

impl SourceData {
    /// Samples `n` random designs on a source problem and records its raw
    /// metrics (constrained-mode transfer; paper §4.3 uses 200 samples).
    #[must_use]
    pub fn from_problem_random(problem: &dyn SizingProblem, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| random_design(problem.dim(), &mut rng))
            .collect();
        let metrics = crate::evaluate_batch_sharded(problem, &xs);
        let refs: Vec<&Metrics> = metrics.iter().collect();
        SourceData {
            dim: problem.dim(),
            xs,
            columns: metric_columns(&refs),
            label: problem.name(),
        }
    }

    /// Builds a source archive from a **completed run's trace** — the entry
    /// point the persistent knowledge bank uses to turn yesterday's
    /// optimisation into today's warm start.
    ///
    /// Non-finite output entries (NaN-imputed/infeasible rows a real run
    /// legitimately contains) are imputed pessimistically per `specs`
    /// column exactly like live training data (see `training_view`), so a
    /// persisted archive round-trips into the same surrogate inputs the
    /// original run would have produced.
    #[must_use]
    pub fn from_history(history: &RunHistory, specs: &[Spec]) -> Self {
        let refs: Vec<&Metrics> = history.evals.iter().map(|e| &e.metrics).collect();
        let mut columns = metric_columns(&refs);
        crate::kato_opt::sanitize_columns(&mut columns, specs);
        SourceData {
            dim: history.evals.first().map_or(0, |e| e.x.len()),
            xs: history.evals.iter().map(|e| e.x.clone()).collect(),
            columns,
            label: history.problem.clone(),
        }
    }

    /// Like [`SourceData::from_problem_random`] but records the source FOM
    /// (single column) for FOM-mode transfer.
    #[must_use]
    pub fn from_problem_random_fom(
        problem: &dyn SizingProblem,
        fom: &FomSpec,
        n: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| random_design(problem.dim(), &mut rng))
            .collect();
        let values: Vec<f64> = crate::evaluate_batch_sharded(problem, &xs)
            .iter()
            .map(|m| fom.fom(m))
            .collect();
        SourceData {
            dim: problem.dim(),
            xs,
            columns: vec![values],
            label: problem.name(),
        }
    }
}

/// The KATO optimizer (paper Algorithm 1).
///
/// Runs modified constrained MACE over a target-only NeukGP and — when a
/// [`SourceData`] is attached — a KAT-GP aligned from the source circuit,
/// splitting each batch between the two proposal sets with Selective
/// Transfer Learning weights (Eq. 14).
///
/// Without a source this degrades gracefully to "KATO w/o transfer": NeukGP
/// + modified MACE, the configuration used in the paper's Figs. 4–5.
#[derive(Debug, Clone)]
pub struct Kato {
    settings: BoSettings,
    source: Option<SourceData>,
    label: String,
    stl: bool,
    run_budget: Option<RunBudget>,
}

impl Kato {
    /// Creates a KATO optimizer without transfer.
    #[must_use]
    pub fn new(settings: BoSettings) -> Self {
        Kato {
            settings,
            source: None,
            label: "KATO".to_string(),
            stl: true,
            run_budget: None,
        }
    }

    /// Attaches a cooperative [`RunBudget`]: deadline, simulation cap
    /// and/or cancel flag, checked before every evaluation batch (and the
    /// cap additionally clamps each batch, so a capped run records exactly
    /// the capped count). A run whose budget trips returns the best-so-far
    /// history early (fewer evaluations than `settings.budget`) instead of
    /// hanging — the *degraded* outcome serving layers report to callers.
    #[must_use]
    pub fn with_run_budget(mut self, budget: RunBudget) -> Self {
        self.run_budget = Some(budget);
        self
    }

    /// `true` once the attached run budget (if any) is exhausted at
    /// `sims_done` completed simulations.
    fn budget_exhausted(&self, sims_done: usize) -> bool {
        self.run_budget
            .as_ref()
            .is_some_and(|b| b.exhausted(sims_done))
    }

    /// Clamps a desired batch size to the attached simulation cap (if any).
    fn clamp_to_allowance(&self, take: usize, sims_done: usize) -> usize {
        match self
            .run_budget
            .as_ref()
            .and_then(|b| b.remaining_sims(sims_done))
        {
            Some(allow) => take.min(allow),
            None => take,
        }
    }

    /// Attaches a source archive, enabling KAT-GP + STL.
    #[must_use]
    pub fn with_source(mut self, source: SourceData) -> Self {
        self.label = format!("KATO+TL[{}]", source.label);
        self.source = Some(source);
        self
    }

    /// Disables Selective Transfer Learning: with a source attached, every
    /// proposal comes from the KAT-GP ("forced transfer" — the §3.4 ablation
    /// showing why STL matters).
    #[must_use]
    pub fn with_forced_transfer(mut self) -> Self {
        self.stl = false;
        self
    }

    /// Overrides the method label used in run histories.
    #[must_use]
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Runs the optimisation and returns the full trace.
    #[must_use]
    pub fn run(&self, problem: &dyn SizingProblem, mode: Mode) -> RunHistory {
        let s = &self.settings;
        let mut history = RunHistory::new(&problem.name(), &self.label, s.seed);
        let mut rng = StdRng::seed_from_u64(s.seed);
        // Random init as one population: drawing every design up front
        // consumes the RNG in exactly the order the scalar loop did
        // (evaluation never touches the stream), and the batch path is
        // bitwise-identical to per-design evaluation, so seeded traces are
        // unchanged.
        let n_init = s.n_init.min(s.budget);
        if n_init > 0 {
            if self.budget_exhausted(history.len()) {
                return history;
            }
            let take = self.clamp_to_allowance(n_init, history.len());
            let designs: Vec<Vec<f64>> = (0..take)
                .map(|_| random_design(problem.dim(), &mut rng))
                .collect();
            history.evaluate_and_push_batch(problem, &mode, designs);
            if take < n_init {
                // The sim cap truncated the init population: exhausted.
                return history;
            }
        }
        self.resume_with_rng(problem, mode, history, rng)
    }

    /// Continues the optimisation from an **existing history** — the
    /// warm-start entry point.
    ///
    /// The evaluations already in `history` stand in for the cold random
    /// init: the BO loop fits its surrogates on them immediately and spends
    /// the remaining `budget − history.len()` simulations on model-guided
    /// proposals. Callers that hold an external archive (the serving
    /// bank's flow) typically record a handful of probe simulations into
    /// `history`, attach the best-aligned archive via
    /// [`Kato::with_source`], and resume — paying a fraction of `n_init`.
    ///
    /// `history` is returned unchanged when it already meets the budget.
    #[must_use]
    pub fn resume(
        &self,
        problem: &dyn SizingProblem,
        mode: Mode,
        history: RunHistory,
    ) -> RunHistory {
        // A fresh stream offset from the master seed: `run` consumed an
        // init-dependent amount of the seed stream before reaching the
        // loop, so the resume path derives its own.
        let rng = StdRng::seed_from_u64(self.settings.seed ^ 0x9E37_79B9_7F4A_7C15);
        self.resume_with_rng(problem, mode, history, rng)
    }

    fn resume_with_rng(
        &self,
        problem: &dyn SizingProblem,
        mode: Mode,
        mut history: RunHistory,
        mut rng: StdRng,
    ) -> RunHistory {
        let s = &self.settings;
        let dim = problem.dim();
        if history.len() >= s.budget {
            return history;
        }
        // The continued run is this optimiser's: its label replaces whatever
        // the probe/seed history carried (e.g. "KATO" → "KATO+bank[...]").
        history.method = self.label.clone();

        let model_cfg = ModelConfig {
            gp: s.gp.clone(),
            kat: s.kat.clone(),
            neuk: true,
            ..ModelConfig::default()
        };
        let specs = modelled_specs(problem, &mode);
        let (xs, cols) = training_view(&history, problem, &mode);
        let Ok(mut neuk_models) = MetricModels::fit_gp(dim, &xs, &cols, &specs, &model_cfg) else {
            return fill_random(
                history,
                problem,
                &mode,
                s,
                self.run_budget.as_ref(),
                &mut rng,
            );
        };

        // Optional transfer stack.
        let mut kat_models = self.source.as_ref().and_then(|src| {
            let gps = fit_source_gps(src.dim, &src.xs, &src.columns, &model_cfg).ok()?;
            MetricModels::fit_kat(dim, &gps, &xs, &cols, &specs, &model_cfg).ok()
        });
        let n_proposers = 1 + usize::from(kat_models.is_some());
        let mut weights = StlWeights::new(n_proposers, s.n_init.max(1) as f64);

        let proposer = MaceProposer::new(MaceVariant::Modified);
        let refit_cfg = ModelConfig {
            gp: kato_gp::GpConfig {
                train_iters: s.refit_iters,
                ..s.gp.clone()
            },
            kat: kato_gp::KatConfig {
                train_iters: s.refit_iters,
                ..s.kat.clone()
            },
            neuk: true,
            ..ModelConfig::default()
        };

        let mut iteration: u64 = 0;
        while history.len() < s.budget {
            // Cooperative cancellation point: a tripped deadline/cap/flag
            // ends the run here with the best-so-far trace.
            if self.budget_exhausted(history.len()) {
                break;
            }
            iteration += 1;
            let incumbent = acquisition_incumbent(&history, problem, &mode);
            let warm = warm_starts(&history, 5);

            // Proposal sets P1 (NeukGP) and P2 (KAT-GP), Algorithm 1 line 5.
            let n_take = s.batch.min(s.budget - history.len()).max(1);
            let counts = if self.stl || n_proposers == 1 {
                weights.split_batch(n_take)
            } else {
                // Forced transfer: the whole batch from the KAT-GP.
                vec![0, n_take]
            };
            // The per-proposer acquisition searches are independent (each
            // has its own derived NSGA/sampling seeds), so P1 and P2 run
            // concurrently on the kato_par pool; order-preserving par_map
            // keeps the trace identical across thread counts.
            let tasks: Vec<(usize, usize)> = counts.iter().copied().enumerate().collect();
            let batches: Vec<Vec<Vec<f64>>> = kato_par::par_map(&tasks, |&(i, count)| {
                if count == 0 {
                    return Vec::new();
                }
                let models: &MetricModels = if i == 0 {
                    &neuk_models
                } else {
                    kat_models.as_ref().expect("kat models present")
                };
                let front = proposer.pareto_front(
                    models,
                    dim,
                    incumbent,
                    s,
                    iteration * 7 + i as u64,
                    &warm,
                );
                let mut prop_rng =
                    StdRng::seed_from_u64(s.seed.wrapping_add(900 + iteration * 3 + i as u64));
                MaceProposer::sample_batch(&front, count, &mut prop_rng)
            });

            // Simulate and update STL weights (Eq. 14). Each proposer's
            // designs go through the batched evaluation path in one
            // population (sharded over the pool); the settings budget and
            // any sim cap clamp the batch, so a capped run still records
            // exactly the capped count.
            let incumbent_before = history.incumbent();
            for (i, batch) in batches.iter().enumerate() {
                let mut improvements = 0;
                let mut take = batch.len().min(s.budget.saturating_sub(history.len()));
                take = self.clamp_to_allowance(take, history.len());
                if take > 0 && !self.budget_exhausted(history.len()) {
                    let scores =
                        history.evaluate_and_push_batch(problem, &mode, batch[..take].to_vec());
                    improvements = scores
                        .iter()
                        .filter(|&&sc| sc > incumbent_before && sc > f64::NEG_INFINITY)
                        .count();
                }
                weights.reward(i, improvements);
            }

            // Refit surrogates on the grown archive.
            let (xs, cols) = training_view(&history, problem, &mode);
            let _ = neuk_models.update(&xs, &cols, &refit_cfg);
            if let Some(kat) = kat_models.as_mut() {
                let _ = kat.update(&xs, &cols, &refit_cfg);
            }
        }
        history
    }
}

/// The spec table the surrogates serve under a given mode.
pub(crate) fn modelled_specs(problem: &dyn SizingProblem, mode: &Mode) -> Vec<Spec> {
    match mode {
        Mode::Fom(_) => fom_specs(),
        Mode::Constrained => problem.specs().to_vec(),
    }
}

/// Training data view under a mode: raw metric columns (constrained) or the
/// single FOM column. Non-finite entries (a misbehaving simulator returning
/// NaN/±∞) are imputed pessimistically per column so surrogate training
/// never ingests NaN: the worst observed finite value in the column's spec
/// direction (finite minimum for maximised/`≥` columns, finite maximum for
/// minimised/`≤` ones), or `0.0` when the column has no finite entry at
/// all.
pub(crate) fn training_view(
    history: &RunHistory,
    problem: &dyn SizingProblem,
    mode: &Mode,
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let xs: Vec<Vec<f64>> = history.evals.iter().map(|e| e.x.clone()).collect();
    let mut cols = match mode {
        Mode::Fom(fom) => {
            vec![history.evals.iter().map(|e| fom.fom(&e.metrics)).collect()]
        }
        Mode::Constrained => {
            let refs: Vec<&Metrics> = history.evals.iter().map(|e| &e.metrics).collect();
            metric_columns(&refs)
        }
    };
    sanitize_columns(&mut cols, &modelled_specs(problem, mode));
    (xs, cols)
}

/// Replaces non-finite column entries with the worst finite value in the
/// column's spec direction (see [`training_view`]).
pub(crate) fn sanitize_columns(cols: &mut [Vec<f64>], specs: &[Spec]) {
    for (j, col) in cols.iter_mut().enumerate() {
        if col.iter().all(|v| v.is_finite()) {
            continue;
        }
        // "Worse" is larger for minimised / upper-bounded columns, smaller
        // for maximised / lower-bounded ones (the default when unspec'd).
        let larger_is_worse = specs.iter().any(|s| {
            s.metric == j
                && matches!(
                    s.kind,
                    kato_circuits::SpecKind::Objective(kato_circuits::Goal::Minimize)
                        | kato_circuits::SpecKind::LessEq(_)
                )
        });
        let finite = col.iter().copied().filter(|v| v.is_finite());
        let fill = if larger_is_worse {
            finite.fold(f64::NEG_INFINITY, f64::max)
        } else {
            finite.fold(f64::INFINITY, f64::min)
        };
        let fill = if fill.is_finite() { fill } else { 0.0 };
        for v in col.iter_mut() {
            if !v.is_finite() {
                *v = fill;
            }
        }
    }
}

/// Incumbent handed to EI/PI: the best score, or — before anything is
/// feasible in constrained mode — the best *soft* score
/// `objective − 10·violation`, so acquisitions stay informative.
pub(crate) fn acquisition_incumbent(
    history: &RunHistory,
    problem: &dyn SizingProblem,
    mode: &Mode,
) -> f64 {
    let inc = history.incumbent();
    if inc > f64::NEG_INFINITY {
        return inc;
    }
    match mode {
        Mode::Fom(_) => inc,
        Mode::Constrained => history
            .evals
            .iter()
            .map(|e| {
                e.metrics.objective(problem.specs()).unwrap_or(0.0)
                    - 10.0 * e.metrics.violation(problem.specs())
            })
            .fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Top-`k` designs by score (soft score when nothing is feasible), used to
/// warm-start the NSGA-II population.
pub(crate) fn warm_starts(history: &RunHistory, k: usize) -> Vec<Vec<f64>> {
    let mut scored: Vec<(f64, &Vec<f64>)> = history
        .evals
        .iter()
        .map(|e| {
            let s = if e.score > f64::NEG_INFINITY {
                e.score
            } else {
                -1e6
            };
            (s, &e.x)
        })
        .collect();
    scored.sort_by(|a, b| kato_linalg::cmp_nan_worst(&b.0, &a.0));
    scored.iter().take(k).map(|(_, x)| (*x).clone()).collect()
}

/// Fallback when surrogate fitting fails outright: spend the remaining
/// budget on random search rather than aborting the run (still honouring
/// an attached [`RunBudget`]).
pub(crate) fn fill_random(
    mut history: RunHistory,
    problem: &dyn SizingProblem,
    mode: &Mode,
    settings: &BoSettings,
    run_budget: Option<&RunBudget>,
    rng: &mut StdRng,
) -> RunHistory {
    // Batched in proposal-batch-sized chunks: big enough to amortise the
    // pool fan-out, small enough that deadline/cancel checks stay frequent.
    let chunk = settings.batch.max(1);
    while history.len() < settings.budget {
        if run_budget.is_some_and(|b| b.exhausted(history.len())) {
            break;
        }
        let mut take = chunk.min(settings.budget - history.len());
        if let Some(allow) = run_budget.and_then(|b| b.remaining_sims(history.len())) {
            take = take.min(allow);
        }
        if take == 0 {
            break;
        }
        let designs: Vec<Vec<f64>> = (0..take)
            .map(|_| random_design(problem.dim(), rng))
            .collect();
        history.evaluate_and_push_batch(problem, mode, designs);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato_circuits::{Goal, SpecKind, VarSpec};

    /// 2-D constrained toy: maximise `1−(x0−0.7)²−(x1−0.3)²` s.t. `x0 ≥ 0.4`.
    struct Toy {
        vars: Vec<VarSpec>,
        specs: Vec<Spec>,
    }

    impl Toy {
        fn new() -> Self {
            Toy {
                vars: vec![VarSpec::lin("a", 0.0, 1.0), VarSpec::lin("b", 0.0, 1.0)],
                specs: vec![
                    Spec {
                        metric: 0,
                        kind: SpecKind::Objective(Goal::Maximize),
                    },
                    Spec {
                        metric: 1,
                        kind: SpecKind::GreaterEq(0.4),
                    },
                ],
            }
        }
    }

    impl SizingProblem for Toy {
        fn name(&self) -> String {
            "toy_quad".into()
        }
        fn variables(&self) -> &[VarSpec] {
            &self.vars
        }
        fn metric_names(&self) -> &[&'static str] {
            &["obj", "con"]
        }
        fn specs(&self) -> &[Spec] {
            &self.specs
        }
        fn evaluate(&self, x: &[f64]) -> Metrics {
            let obj = 1.0 - (x[0] - 0.7).powi(2) - (x[1] - 0.3).powi(2);
            Metrics::new(vec![obj, x[0]])
        }
        fn expert_design(&self) -> Vec<f64> {
            vec![0.7, 0.3]
        }
    }

    #[test]
    fn kato_beats_its_own_random_init() {
        let toy = Toy::new();
        let settings = BoSettings::quick(35, 11);
        let h = Kato::new(settings).run(&toy, Mode::Constrained);
        assert_eq!(h.len(), 35);
        let curve = h.best_curve();
        let after_init = curve[9];
        let end = curve[34];
        assert!(
            end > after_init,
            "BO must improve over init: {after_init} vs {end}"
        );
        assert!(end > 0.9, "should approach the optimum, got {end}");
    }

    #[test]
    fn kato_with_source_runs_and_improves() {
        let toy = Toy::new();
        let source = SourceData::from_problem_random(&toy, 40, 5);
        let settings = BoSettings::quick(30, 3);
        let h = Kato::new(settings)
            .with_source(source)
            .run(&toy, Mode::Constrained);
        assert_eq!(h.len(), 30);
        assert!(h.method.contains("KATO+TL"));
        assert!(h.best().is_some());
    }

    #[test]
    fn resume_continues_an_existing_history() {
        let toy = Toy::new();
        let mut settings = BoSettings::quick(24, 6);
        settings.n_init = 6;
        // Pre-seed a probe history of 6 evaluations by hand.
        let mut probe = RunHistory::new(&toy.name(), "KATO", 6);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..6 {
            probe.evaluate_and_push(&toy, &Mode::Constrained, random_design(2, &mut rng));
        }
        let h = Kato::new(settings.clone()).resume(&toy, Mode::Constrained, probe.clone());
        assert_eq!(h.len(), 24);
        // The probe prefix is preserved verbatim.
        for (a, b) in h.evals.iter().zip(&probe.evals) {
            assert_eq!(a.x, b.x);
        }
        // A history already at budget comes back unchanged.
        let full =
            Kato::new(BoSettings::quick(6, 6)).resume(&toy, Mode::Constrained, probe.clone());
        assert_eq!(full.len(), 6);
        // Resume with a source archive attached (the bank's warm path).
        let source = SourceData::from_problem_random(&toy, 30, 1);
        let hw = Kato::new(settings)
            .with_source(source)
            .resume(&toy, Mode::Constrained, probe);
        assert_eq!(hw.len(), 24);
        assert!(hw.best().is_some());
    }

    #[test]
    fn from_history_sanitizes_non_finite_columns() {
        let problem = NanZone { inner: Toy::new() };
        let mut h = RunHistory::new("nan_zone", "t", 0);
        h.evaluate_and_push(&problem, &Mode::Constrained, vec![0.1, 0.5]); // NaN zone
        h.evaluate_and_push(&problem, &Mode::Constrained, vec![0.6, 0.4]);
        h.evaluate_and_push(&problem, &Mode::Constrained, vec![0.8, 0.2]);
        let src = SourceData::from_history(&h, problem.specs());
        assert_eq!(src.dim, 2);
        assert_eq!(src.xs.len(), 3);
        assert_eq!(src.label, "nan_zone");
        for col in &src.columns {
            assert!(col.iter().all(|v| v.is_finite()), "{:?}", src.columns);
        }
    }

    #[test]
    fn run_budget_degrades_instead_of_overrunning() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let toy = Toy::new();
        // Sim cap below the settings budget: the run returns early with
        // exactly the capped number of evaluations.
        let h = Kato::new(BoSettings::quick(30, 5))
            .with_run_budget(RunBudget::unlimited().with_sim_cap(13))
            .run(&toy, Mode::Constrained);
        assert_eq!(h.len(), 13);
        // A pre-set cancel flag stops the run before the first simulation.
        let flag = Arc::new(AtomicBool::new(true));
        let h = Kato::new(BoSettings::quick(30, 5))
            .with_run_budget(RunBudget::unlimited().with_cancel(flag))
            .run(&toy, Mode::Constrained);
        assert_eq!(h.len(), 0);
        // An already-expired deadline yields the same degraded-but-clean exit.
        let h = Kato::new(BoSettings::quick(30, 5))
            .with_run_budget(RunBudget::deadline_ms(0))
            .run(&toy, Mode::Constrained);
        assert!(h.len() < 30);
        // And an unlimited budget changes nothing.
        let full = Kato::new(BoSettings::quick(18, 5))
            .with_run_budget(RunBudget::unlimited())
            .run(&toy, Mode::Constrained);
        let plain = Kato::new(BoSettings::quick(18, 5)).run(&toy, Mode::Constrained);
        assert_eq!(full.len(), 18);
        for (a, b) in full.evals.iter().zip(&plain.evals) {
            assert_eq!(a.x, b.x);
        }
    }

    #[test]
    fn budget_is_respected_exactly() {
        let toy = Toy::new();
        let h = Kato::new(BoSettings::quick(17, 2)).run(&toy, Mode::Constrained);
        assert_eq!(h.len(), 17);
    }

    #[test]
    fn fom_mode_runs() {
        use kato_circuits::FomSpec;
        let toy = Toy::new();
        let fom = FomSpec::calibrate(&toy, 64, 1);
        let h = Kato::new(BoSettings::quick(25, 4)).run(&toy, Mode::Fom(fom));
        assert_eq!(h.len(), 25);
        // FOM scores are always finite → best exists from the start.
        assert!(h.best().is_some());
        let c = h.best_curve();
        assert!(c[24] >= c[9]);
    }

    #[test]
    fn incumbent_fallback_when_nothing_feasible() {
        let toy = Toy::new();
        let mut h = RunHistory::new("t", "m", 0);
        // Only infeasible points (x0 < 0.4).
        h.evaluate_and_push(&toy, &Mode::Constrained, vec![0.1, 0.5]);
        h.evaluate_and_push(&toy, &Mode::Constrained, vec![0.3, 0.5]);
        let inc = acquisition_incumbent(&h, &toy, &Mode::Constrained);
        assert!(inc.is_finite());
        // Closer to feasibility (0.3) has smaller violation → higher soft score.
        let soft_03 = toy.evaluate(&[0.3, 0.5]).objective(toy.specs()).unwrap()
            - 10.0 * toy.evaluate(&[0.3, 0.5]).violation(toy.specs());
        assert!((inc - soft_03).abs() < 1e-12);
    }

    /// Toy with a NaN "dead zone": the simulator returns NaN/∞ metrics for
    /// `x0 < 0.25` — a model of a simulator that fails to converge in part
    /// of the design space.
    struct NanZone {
        inner: Toy,
    }

    impl SizingProblem for NanZone {
        fn name(&self) -> String {
            "nan_zone".into()
        }
        fn variables(&self) -> &[VarSpec] {
            self.inner.variables()
        }
        fn metric_names(&self) -> &[&'static str] {
            self.inner.metric_names()
        }
        fn specs(&self) -> &[Spec] {
            self.inner.specs()
        }
        fn evaluate(&self, x: &[f64]) -> Metrics {
            if x[0] < 0.25 {
                Metrics::new(vec![f64::NAN, f64::INFINITY])
            } else {
                self.inner.evaluate(x)
            }
        }
        fn expert_design(&self) -> Vec<f64> {
            self.inner.expert_design()
        }
    }

    #[test]
    fn nan_subregion_never_panics_and_budget_completes() {
        // End-to-end regression for the NaN-safety fixes: the full KATO
        // loop (GP fits, MACE/NSGA-II acquisition search, STL splits,
        // incumbent tracking) must run its whole budget even though a
        // subregion of the simulator returns non-finite metrics.
        let problem = NanZone { inner: Toy::new() };
        let h = Kato::new(BoSettings::quick(28, 13)).run(&problem, Mode::Constrained);
        assert_eq!(h.len(), 28);
        assert!(h.evals.iter().all(|e| !e.score.is_nan()));
        // Designs in the dead zone are recorded as infeasible, not winners.
        for e in &h.evals {
            if e.x[0] < 0.25 {
                assert_eq!(e.score, f64::NEG_INFINITY);
                assert!(!e.feasible);
            }
        }
        // The optimizer still makes progress in the live region.
        assert!(h.incumbent().is_finite());
    }

    #[test]
    fn training_view_imputes_non_finite_pessimistically() {
        let problem = NanZone { inner: Toy::new() };
        let mut h = RunHistory::new("nan_zone", "t", 0);
        h.evaluate_and_push(&problem, &Mode::Constrained, vec![0.1, 0.5]); // NaN zone
        h.evaluate_and_push(&problem, &Mode::Constrained, vec![0.5, 0.5]);
        h.evaluate_and_push(&problem, &Mode::Constrained, vec![0.9, 0.1]);
        let (_, cols) = training_view(&h, &problem, &Mode::Constrained);
        for col in &cols {
            assert!(col.iter().all(|v| v.is_finite()), "{cols:?}");
        }
        // Maximised objective column: NaN imputed with the finite minimum.
        let min_obj = cols[0][1].min(cols[0][2]);
        assert_eq!(cols[0][0], min_obj);
    }

    #[test]
    fn sanitize_columns_direction_follows_spec() {
        use kato_circuits::{Goal, SpecKind};
        let specs = vec![
            Spec {
                metric: 0,
                kind: SpecKind::Objective(Goal::Minimize),
            },
            Spec {
                metric: 1,
                kind: SpecKind::GreaterEq(0.5),
            },
        ];
        let mut cols = vec![
            vec![1.0, f64::NAN, 3.0],
            vec![0.2, f64::INFINITY, 0.8],
            vec![f64::NAN, f64::NAN, f64::NAN],
        ];
        sanitize_columns(&mut cols, &specs);
        assert_eq!(cols[0][1], 3.0); // minimised → worst = finite max
        assert_eq!(cols[1][1], 0.2); // lower-bounded → worst = finite min
        assert_eq!(cols[2], vec![0.0, 0.0, 0.0]); // nothing finite → 0.0
    }

    #[test]
    fn source_data_shapes() {
        let toy = Toy::new();
        let s = SourceData::from_problem_random(&toy, 25, 9);
        assert_eq!(s.xs.len(), 25);
        assert_eq!(s.columns.len(), 2);
        assert_eq!(s.columns[0].len(), 25);
        assert_eq!(s.dim, 2);
    }
}
