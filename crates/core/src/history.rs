use crate::Mode;
use kato_circuits::{Metrics, SizingProblem};

/// One simulated design in a run.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    /// Unit-cube design vector.
    pub x: Vec<f64>,
    /// Simulator metrics.
    pub metrics: Metrics,
    /// Whether all constraints were met.
    pub feasible: bool,
    /// Scalar score of this design under the run's [`Mode`]: the FOM, or the
    /// signed objective (−∞ when infeasible in constrained mode).
    pub score: f64,
}

/// Complete trace of one optimisation run — the raw material for every
/// curve and table in the paper's evaluation.
#[derive(Debug, Clone)]
pub struct RunHistory {
    /// Problem name (e.g. `opamp2_180nm`).
    pub problem: String,
    /// Method label (e.g. `KATO`, `MACE`).
    pub method: String,
    /// Seed used for the run.
    pub seed: u64,
    /// Evaluations in simulation order.
    pub evals: Vec<EvalRecord>,
}

impl RunHistory {
    /// Creates an empty history.
    #[must_use]
    pub fn new(problem: &str, method: &str, seed: u64) -> Self {
        RunHistory {
            problem: problem.to_string(),
            method: method.to_string(),
            seed,
            evals: Vec::new(),
        }
    }

    /// Evaluates `x` on `problem`, scores it under `mode`, records and
    /// returns the record's score.
    ///
    /// A simulation whose metrics contain any non-finite value (NaN/±∞ from
    /// a misbehaving simulator) is recorded as infeasible with score `−∞`:
    /// it can never become the incumbent, never earns an STL reward, and
    /// surrogate training imputes its columns (see
    /// `kato_opt::training_view`) instead of ingesting NaN.
    pub fn evaluate_and_push(
        &mut self,
        problem: &dyn SizingProblem,
        mode: &Mode,
        x: Vec<f64>,
    ) -> f64 {
        let metrics = problem.evaluate(&x);
        self.push_evaluated(problem, mode, x, metrics)
    }

    /// Evaluates a whole population through the problem's batch path
    /// (sharded over the `kato_par` pool, see
    /// [`crate::evaluate_batch_sharded`]), records every design in input
    /// order and returns the per-design scores.
    ///
    /// Because `evaluate_batch` is contractually bitwise-identical to the
    /// scalar loop, the recorded trace is exactly what `xs.len()` calls to
    /// [`RunHistory::evaluate_and_push`] would have produced — at any
    /// thread count.
    pub fn evaluate_and_push_batch(
        &mut self,
        problem: &dyn SizingProblem,
        mode: &Mode,
        xs: Vec<Vec<f64>>,
    ) -> Vec<f64> {
        let metrics = crate::evaluate_batch_sharded(problem, &xs);
        xs.into_iter()
            .zip(metrics)
            .map(|(x, m)| self.push_evaluated(problem, mode, x, m))
            .collect()
    }

    /// Scores already-computed `metrics` for design `x` under `mode`,
    /// records the pair and returns the score — the shared tail of the
    /// scalar and batched evaluation entry points.
    pub fn push_evaluated(
        &mut self,
        problem: &dyn SizingProblem,
        mode: &Mode,
        x: Vec<f64>,
        metrics: Metrics,
    ) -> f64 {
        let clean = metrics.values().iter().all(|v| v.is_finite());
        let feasible = clean && metrics.feasible(problem.specs());
        let score = match mode {
            Mode::Fom(fom) => {
                let v = fom.fom(&metrics);
                if v.is_finite() {
                    v
                } else {
                    f64::NEG_INFINITY
                }
            }
            Mode::Constrained => {
                if feasible {
                    let v = metrics
                        .objective(problem.specs())
                        .unwrap_or(f64::NEG_INFINITY);
                    if v.is_finite() {
                        v
                    } else {
                        f64::NEG_INFINITY
                    }
                } else {
                    f64::NEG_INFINITY
                }
            }
        };
        self.evals.push(EvalRecord {
            x,
            metrics,
            feasible,
            score,
        });
        score
    }

    /// Number of simulations so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.evals.len()
    }

    /// `true` when no simulations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.evals.is_empty()
    }

    /// Best record so far (highest score; `None` when nothing scored above
    /// −∞, i.e. nothing feasible in constrained mode).
    #[must_use]
    pub fn best(&self) -> Option<&EvalRecord> {
        self.evals
            .iter()
            .filter(|e| e.score > f64::NEG_INFINITY)
            .max_by(|a, b| kato_linalg::cmp_nan_worst(&a.score, &b.score))
    }

    /// Incumbent score so far (−∞ if none).
    #[must_use]
    pub fn incumbent(&self) -> f64 {
        self.best().map_or(f64::NEG_INFINITY, |e| e.score)
    }

    /// Best-so-far score after each simulation (the y-axis of the paper's
    /// Figs. 4–6). Entries before the first scored design are −∞.
    #[must_use]
    pub fn best_curve(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.evals
            .iter()
            .map(|e| {
                if e.score > best {
                    best = e.score;
                }
                best
            })
            .collect()
    }

    /// First simulation count at which the best-so-far score reaches
    /// `threshold` (the paper's speed-up metric), or `None`.
    #[must_use]
    pub fn sims_to_reach(&self, threshold: f64) -> Option<usize> {
        self.best_curve()
            .iter()
            .position(|&s| s >= threshold)
            .map(|i| i + 1)
    }

    /// All evaluated designs as `(x, metrics)` pairs — the dataset handed to
    /// surrogates.
    #[must_use]
    pub fn dataset(&self) -> (Vec<Vec<f64>>, Vec<&Metrics>) {
        (
            self.evals.iter().map(|e| e.x.clone()).collect(),
            self.evals.iter().map(|e| &e.metrics).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato_circuits::{Goal, Spec, SpecKind, VarSpec};

    struct Toy {
        vars: Vec<VarSpec>,
        specs: Vec<Spec>,
    }

    impl Toy {
        fn new() -> Self {
            Toy {
                vars: vec![VarSpec::lin("a", 0.0, 1.0)],
                specs: vec![
                    Spec {
                        metric: 0,
                        kind: SpecKind::Objective(Goal::Maximize),
                    },
                    Spec {
                        metric: 1,
                        kind: SpecKind::GreaterEq(0.5),
                    },
                ],
            }
        }
    }

    impl SizingProblem for Toy {
        fn name(&self) -> String {
            "toy".into()
        }
        fn variables(&self) -> &[VarSpec] {
            &self.vars
        }
        fn metric_names(&self) -> &[&'static str] {
            &["obj", "con"]
        }
        fn specs(&self) -> &[Spec] {
            &self.specs
        }
        fn evaluate(&self, x: &[f64]) -> Metrics {
            Metrics::new(vec![x[0], 1.0 - x[0]])
        }
        fn expert_design(&self) -> Vec<f64> {
            vec![0.5]
        }
    }

    #[test]
    fn constrained_scoring_and_curve() {
        let toy = Toy::new();
        let mut h = RunHistory::new("toy", "test", 0);
        // x=0.8 infeasible (con=0.2<0.5), x=0.3 feasible score 0.3, x=0.45 better.
        h.evaluate_and_push(&toy, &Mode::Constrained, vec![0.8]);
        h.evaluate_and_push(&toy, &Mode::Constrained, vec![0.3]);
        h.evaluate_and_push(&toy, &Mode::Constrained, vec![0.45]);
        assert_eq!(h.len(), 3);
        assert!(!h.evals[0].feasible);
        let curve = h.best_curve();
        assert_eq!(curve[0], f64::NEG_INFINITY);
        assert!((curve[1] - 0.3).abs() < 1e-12);
        assert!((curve[2] - 0.45).abs() < 1e-12);
        assert_eq!(h.best().unwrap().x, vec![0.45]);
        assert_eq!(h.sims_to_reach(0.4), Some(3));
        assert_eq!(h.sims_to_reach(0.9), None);
    }

    #[test]
    fn non_finite_metrics_score_as_infeasible() {
        struct NanToy(Vec<VarSpec>, Vec<Spec>);
        impl SizingProblem for NanToy {
            fn name(&self) -> String {
                "nan_toy".into()
            }
            fn variables(&self) -> &[VarSpec] {
                &self.0
            }
            fn metric_names(&self) -> &[&'static str] {
                &["obj", "con"]
            }
            fn specs(&self) -> &[Spec] {
                &self.1
            }
            fn evaluate(&self, x: &[f64]) -> Metrics {
                if x[0] < 0.5 {
                    Metrics::new(vec![f64::NAN, f64::INFINITY])
                } else {
                    Metrics::new(vec![x[0], 1.0])
                }
            }
            fn expert_design(&self) -> Vec<f64> {
                vec![0.9]
            }
        }
        let toy = NanToy(
            vec![VarSpec::lin("a", 0.0, 1.0)],
            vec![
                Spec {
                    metric: 0,
                    kind: SpecKind::Objective(Goal::Maximize),
                },
                Spec {
                    metric: 1,
                    kind: SpecKind::GreaterEq(0.5),
                },
            ],
        );
        let mut h = RunHistory::new("nan_toy", "t", 0);
        let bad = h.evaluate_and_push(&toy, &Mode::Constrained, vec![0.2]);
        let good = h.evaluate_and_push(&toy, &Mode::Constrained, vec![0.8]);
        assert_eq!(bad, f64::NEG_INFINITY);
        assert!(!h.evals[0].feasible);
        assert!((good - 0.8).abs() < 1e-12);
        assert_eq!(h.best().unwrap().x, vec![0.8]);
        assert!(h.incumbent().is_finite());
        // FOM mode: a NaN FOM also scores −∞ rather than propagating.
        use kato_circuits::FomSpec;
        let fom = FomSpec::calibrate(&toy, 16, 3);
        let mut hf = RunHistory::new("nan_toy", "t", 0);
        let s = hf.evaluate_and_push(&toy, &Mode::Fom(fom), vec![0.2]);
        assert!(s == f64::NEG_INFINITY || s.is_finite());
        assert!(!s.is_nan());
    }

    #[test]
    fn batch_push_matches_scalar_pushes() {
        let toy = Toy::new();
        let xs = vec![vec![0.8], vec![0.3], vec![0.45]];
        let mut scalar = RunHistory::new("toy", "t", 0);
        let s_scores: Vec<f64> = xs
            .iter()
            .map(|x| scalar.evaluate_and_push(&toy, &Mode::Constrained, x.clone()))
            .collect();
        let mut batched = RunHistory::new("toy", "t", 0);
        let b_scores = batched.evaluate_and_push_batch(&toy, &Mode::Constrained, xs);
        assert_eq!(s_scores, b_scores);
        assert_eq!(scalar.len(), batched.len());
        for (a, b) in scalar.evals.iter().zip(&batched.evals) {
            assert_eq!(a.x, b.x);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.feasible, b.feasible);
            assert_eq!(a.score, b.score);
        }
    }

    #[test]
    fn empty_history_behaviour() {
        let h = RunHistory::new("toy", "t", 0);
        assert!(h.is_empty());
        assert!(h.best().is_none());
        assert_eq!(h.incumbent(), f64::NEG_INFINITY);
    }
}
