//! Selective Transfer Learning weights (paper §3.4, Eq. 14).
//!
//! STL maintains one weight per proposal model (KAT-GP and target-only
//! NeukGP in the paper). Each batch is split proportionally to the weights;
//! after simulation, each model's weight grows by the number of its
//! proposals that improved the incumbent. Models that keep producing
//! improvements earn a larger share; negative transfer starves itself out.

/// Bandit-style proposal weights for Selective Transfer Learning.
#[derive(Debug, Clone, PartialEq)]
pub struct StlWeights {
    weights: Vec<f64>,
}

impl StlWeights {
    /// Creates weights for `n` proposal models, initialised to `init`
    /// each. The paper initialises with the number of samples; any equal
    /// positive value yields the same initial 50/50 split.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `init <= 0`.
    #[must_use]
    pub fn new(n: usize, init: f64) -> Self {
        assert!(n > 0, "need at least one proposal model");
        assert!(init > 0.0, "initial weight must be positive");
        StlWeights {
            weights: vec![init; n],
        }
    }

    /// Number of proposal models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if there are no models (cannot happen post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current normalised share of model `i`: `wᵢ / Σw`.
    #[must_use]
    pub fn share(&self, i: usize) -> f64 {
        self.weights[i] / self.weights.iter().sum::<f64>()
    }

    /// Splits a batch of `n_batch` points across the models proportionally
    /// to the weights (Algorithm 1, line 6). Every model with positive
    /// weight gets at least the rounding honesty of largest-remainder
    /// allocation; the counts always sum to `n_batch`.
    #[must_use]
    pub fn split_batch(&self, n_batch: usize) -> Vec<usize> {
        let total: f64 = self.weights.iter().sum();
        let ideal: Vec<f64> = self
            .weights
            .iter()
            .map(|w| w / total * n_batch as f64)
            .collect();
        let mut counts: Vec<usize> = ideal.iter().map(|v| v.floor() as usize).collect();
        let mut assigned: usize = counts.iter().sum();
        // Largest remainder method.
        let mut rema: Vec<(usize, f64)> = ideal
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v - v.floor()))
            .collect();
        rema.sort_by(|a, b| kato_linalg::cmp_nan_worst(&b.1, &a.1));
        let mut k = 0;
        while assigned < n_batch {
            counts[rema[k % rema.len()].0] += 1;
            assigned += 1;
            k += 1;
        }
        counts
    }

    /// Eq. 14: `wᵢ ← wᵢ + |f(Aᵢ) > y†|` — adds the number of simulations
    /// from model `i`'s action set that beat the previous incumbent.
    pub fn reward(&mut self, i: usize, improvements: usize) {
        self.weights[i] += improvements as f64;
    }

    /// Raw weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_weights_split_evenly() {
        let w = StlWeights::new(2, 10.0);
        assert_eq!(w.split_batch(6), vec![3, 3]);
        assert!((w.share(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rewards_shift_the_split() {
        let mut w = StlWeights::new(2, 5.0);
        for _ in 0..4 {
            w.reward(0, 5);
        }
        // w = [25, 5] → shares 5/6 vs 1/6 → batch of 6 → 5 vs 1.
        assert_eq!(w.split_batch(6), vec![5, 1]);
    }

    #[test]
    fn zero_improvements_keep_weights() {
        let mut w = StlWeights::new(2, 3.0);
        w.reward(1, 0);
        assert_eq!(w.weights(), &[3.0, 3.0]);
    }

    #[test]
    fn starved_model_still_gets_occasional_slot_via_rounding() {
        let mut w = StlWeights::new(2, 1.0);
        w.reward(0, 50);
        let counts = w.split_batch(5);
        assert_eq!(counts.iter().sum::<usize>(), 5);
        // Model 1's share is 1/52 ≈ 0.02 → floor 0; it may legitimately get
        // zero here; the invariant is only the sum.
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_models_panics() {
        let _ = StlWeights::new(0, 1.0);
    }

    proptest! {
        #[test]
        fn prop_split_sums_to_batch(
            w0 in 1.0..100.0f64,
            w1 in 1.0..100.0f64,
            w2 in 1.0..100.0f64,
            n in 1usize..20,
        ) {
            let mut w = StlWeights::new(3, 1.0);
            w.reward(0, w0 as usize);
            w.reward(1, w1 as usize);
            w.reward(2, w2 as usize);
            let counts = w.split_batch(n);
            prop_assert_eq!(counts.iter().sum::<usize>(), n);
        }
    }
}
