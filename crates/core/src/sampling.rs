//! Space-filling initial designs.
//!
//! The paper initialises BO with uniform random simulations; Latin hypercube
//! sampling (LHS) is the standard upgrade — every axis is stratified into
//! `n` bins with exactly one sample per bin — and is exposed as an optional
//! initialisation through [`BoSettings`](crate::BoSettings)-driven drivers
//! and directly here.

use rand::seq::SliceRandom;
use rand::Rng;

/// Draws `n` Latin-hypercube samples in the unit cube `[0,1]^dim`.
///
/// Each dimension is divided into `n` equal strata; each stratum receives
/// exactly one point (uniformly placed inside it), and strata are permuted
/// independently per dimension.
///
/// # Panics
///
/// Panics if `n == 0` or `dim == 0`.
pub fn latin_hypercube<R: Rng + ?Sized>(n: usize, dim: usize, rng: &mut R) -> Vec<Vec<f64>> {
    assert!(n > 0 && dim > 0, "latin_hypercube needs n > 0 and dim > 0");
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(dim);
    for _ in 0..dim {
        let mut strata: Vec<usize> = (0..n).collect();
        strata.shuffle(rng);
        columns.push(
            strata
                .iter()
                .map(|&s| (s as f64 + rng.gen::<f64>()) / n as f64)
                .collect(),
        );
    }
    (0..n)
        .map(|i| columns.iter().map(|c| c[i]).collect())
        .collect()
}

/// Maximin-improved LHS: draws `restarts` Latin hypercubes and keeps the one
/// with the largest minimum pairwise distance — a cheap approximation of
/// maximin-optimal designs.
pub fn latin_hypercube_maximin<R: Rng + ?Sized>(
    n: usize,
    dim: usize,
    restarts: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    let mut best: Option<(f64, Vec<Vec<f64>>)> = None;
    for _ in 0..restarts.max(1) {
        let cand = latin_hypercube(n, dim, rng);
        let score = min_pairwise_distance(&cand);
        if best.as_ref().is_none_or(|(b, _)| score > *b) {
            best = Some((score, cand));
        }
    }
    best.expect("restarts >= 1").1
}

/// Smallest pairwise Euclidean distance in a point set (`inf` for < 2
/// points).
#[must_use]
pub fn min_pairwise_distance(points: &[Vec<f64>]) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d = kato_linalg::sq_dist(&points[i], &points[j]).sqrt();
            best = best.min(d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lhs_stratifies_every_dimension() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10;
        let pts = latin_hypercube(n, 3, &mut rng);
        assert_eq!(pts.len(), n);
        for d in 0..3 {
            let mut bins = vec![false; n];
            for p in &pts {
                let b = ((p[d] * n as f64).floor() as usize).min(n - 1);
                assert!(!bins[b], "two samples in stratum {b} of dim {d}");
                bins[b] = true;
            }
            assert!(bins.iter().all(|&b| b), "missing stratum in dim {d}");
        }
    }

    #[test]
    fn maximin_no_worse_than_single_draw() {
        let mut rng = StdRng::seed_from_u64(2);
        let single = latin_hypercube(12, 2, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(2);
        let multi = latin_hypercube_maximin(12, 2, 8, &mut rng2);
        assert!(min_pairwise_distance(&multi) >= min_pairwise_distance(&single) - 1e-12);
    }

    #[test]
    fn distance_edge_cases() {
        assert_eq!(min_pairwise_distance(&[]), f64::INFINITY);
        assert_eq!(min_pairwise_distance(&[vec![1.0]]), f64::INFINITY);
        assert_eq!(
            min_pairwise_distance(&[vec![0.0, 0.0], vec![3.0, 4.0]]),
            5.0
        );
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn zero_samples_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = latin_hypercube(0, 2, &mut rng);
    }

    proptest! {
        #[test]
        fn prop_lhs_in_unit_cube(n in 1usize..30, dim in 1usize..6, seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts = latin_hypercube(n, dim, &mut rng);
            for p in &pts {
                prop_assert_eq!(p.len(), dim);
                prop_assert!(p.iter().all(|&v| (0.0..1.0).contains(&v)));
            }
        }
    }
}
