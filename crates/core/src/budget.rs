//! Cooperative run cancellation: deadlines, simulation caps and cancel
//! flags checked between simulations.
//!
//! The optimiser loop is synchronous and CPU-bound, so cancellation has to
//! be *cooperative*: [`Kato`](crate::Kato) consults an attached
//! [`RunBudget`] before every simulation and at every BO iteration, and
//! when the budget is exhausted it stops proposing and returns the
//! best-so-far trace instead of hanging (or being killed from outside with
//! the partial trace lost). A run cut short this way is *degraded*, not
//! failed — detectable as `history.len() < settings.budget` — and serving
//! layers surface that to the caller rather than caching a partial result
//! as if it were complete.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Limits a run may not exceed, all optional and combinable.
///
/// An empty (default) budget never trips. The checks are cheap — one
/// `Instant::now()` and two loads — and are evaluated between evaluation
/// batches, so the granularity of deadline/cancel cancellation is one
/// proposal batch; the simulation cap additionally clamps each batch via
/// [`RunBudget::remaining_sims`] and is therefore still exact to the
/// simulation.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Wall-clock instant after which no further simulation starts.
    pub deadline: Option<Instant>,
    /// Hard cap on total simulations in the history (tighter than the
    /// settings budget; e.g. a load-shedding daemon degrading requests).
    pub sim_cap: Option<usize>,
    /// External cancel flag: set it from another thread (a connection
    /// drop, a shutdown signal) and the run winds down at the next check.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl RunBudget {
    /// A budget with no limits (never exhausted).
    #[must_use]
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// A budget that expires `ms` milliseconds from now.
    #[must_use]
    pub fn deadline_ms(ms: u64) -> Self {
        RunBudget {
            deadline: Some(Instant::now() + Duration::from_millis(ms)),
            ..RunBudget::default()
        }
    }

    /// Adds a simulation cap to this budget.
    #[must_use]
    pub fn with_sim_cap(mut self, cap: usize) -> Self {
        self.sim_cap = Some(cap);
        self
    }

    /// Adds a cancel flag to this budget (set the flag to cancel).
    #[must_use]
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Number of further simulations the cap still allows after
    /// `sims_done`, or `None` when no cap is attached. Batched evaluation
    /// clamps each population to this allowance so a capped run records
    /// *exactly* the capped count, same as the scalar per-simulation
    /// check did.
    #[must_use]
    pub fn remaining_sims(&self, sims_done: usize) -> Option<usize> {
        self.sim_cap.map(|cap| cap.saturating_sub(sims_done))
    }

    /// `true` once any attached limit is hit, given the number of
    /// simulations recorded so far.
    #[must_use]
    pub fn exhausted(&self, sims_done: usize) -> bool {
        if let Some(cap) = self.sim_cap {
            if sims_done >= cap {
                return true;
            }
        }
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = RunBudget::unlimited();
        assert!(!b.exhausted(0));
        assert!(!b.exhausted(usize::MAX));
    }

    #[test]
    fn sim_cap_trips_at_the_cap() {
        let b = RunBudget::unlimited().with_sim_cap(5);
        assert!(!b.exhausted(4));
        assert!(b.exhausted(5));
        assert!(b.exhausted(6));
    }

    #[test]
    fn remaining_sims_tracks_the_cap() {
        let b = RunBudget::unlimited().with_sim_cap(5);
        assert_eq!(b.remaining_sims(0), Some(5));
        assert_eq!(b.remaining_sims(3), Some(2));
        assert_eq!(b.remaining_sims(9), Some(0));
        assert_eq!(RunBudget::unlimited().remaining_sims(3), None);
    }

    #[test]
    fn cancel_flag_trips_when_set() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = RunBudget::unlimited().with_cancel(flag.clone());
        assert!(!b.exhausted(0));
        flag.store(true, Ordering::Relaxed);
        assert!(b.exhausted(0));
    }

    #[test]
    fn deadline_trips_once_passed() {
        let b = RunBudget::deadline_ms(0);
        // A zero-millisecond deadline is already in the past by the check.
        assert!(b.exhausted(0));
        let b = RunBudget::deadline_ms(60_000);
        assert!(!b.exhausted(0));
    }
}
