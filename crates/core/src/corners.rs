//! Corner-aware evaluation: PVT sweeps over registered scenarios.
//!
//! Silicon must meet spec at every process/temperature corner, not just at
//! the nominal point the optimizer sees. This module provides the two ways
//! the rest of the stack consumes a scenario's corner sweep:
//!
//! * [`corner_audit`] — re-evaluate a finished design at every corner of
//!   its scenario and report per-corner metrics/feasibility (the CLI's
//!   post-run corner table).
//! * [`WorstCaseProblem`] — a [`SizingProblem`] adapter that evaluates a
//!   design at **all** corners and reports the per-metric worst case in
//!   each spec's direction, so `Kato::run` optimises directly for
//!   across-corner robustness (`kato run <scenario> --corner worst`).

use kato_circuits::{
    Backend, Corner, Goal, Metrics, Scenario, ScenarioError, SizingProblem, Spec, SpecKind, VarSpec,
};

/// One corner's re-evaluation of a fixed design.
#[derive(Debug, Clone)]
pub struct CornerEval {
    /// The corner evaluated.
    pub corner: Corner,
    /// Metrics at that corner.
    pub metrics: Metrics,
    /// Whether the scenario's spec table is met at that corner.
    pub feasible: bool,
}

/// Evaluates a unit-cube design at every corner in the scenario's sweep.
///
/// # Errors
///
/// Propagates [`ScenarioError`] when `tech` is not registered for the
/// scenario.
///
/// # Panics
///
/// Panics (inside the problem) if `x.len()` does not match the scenario's
/// dimensionality.
pub fn corner_audit(
    scenario: &Scenario,
    tech: &str,
    x: &[f64],
) -> Result<Vec<CornerEval>, ScenarioError> {
    corner_audit_at(scenario, tech, x, None)
}

/// [`corner_audit`] with an explicit device backend (`None` = the
/// scenario's default). The corner instances are independent and
/// deterministic, so the design×corner sweep fans out over the `kato_par`
/// pool (order-preserving; identical result at any `KATO_THREADS`).
///
/// # Errors
///
/// Propagates [`ScenarioError`] when `tech` is not registered for the
/// scenario.
///
/// # Panics
///
/// Panics (inside the problem) if `x.len()` does not match the scenario's
/// dimensionality.
pub fn corner_audit_at(
    scenario: &Scenario,
    tech: &str,
    x: &[f64],
    backend: Option<Backend>,
) -> Result<Vec<CornerEval>, ScenarioError> {
    let mut problems = Vec::with_capacity(scenario.corners.len());
    for corner in &scenario.corners {
        problems.push(scenario.build_at(tech, corner, backend)?);
    }
    let per_corner = kato_par::par_map(&problems, |p| p.evaluate(x));
    Ok(scenario
        .corners
        .iter()
        .zip(problems.iter())
        .zip(per_corner)
        .map(|((corner, problem), metrics)| {
            let feasible =
                metrics.values().iter().all(|v| v.is_finite()) && metrics.feasible(problem.specs());
            CornerEval {
                corner: *corner,
                metrics,
                feasible,
            }
        })
        .collect())
}

/// A sizing problem that scores each design by its **worst corner**.
///
/// Wraps one problem instance per corner of a scenario's sweep. Each
/// evaluation runs every corner instance and assembles a synthetic metric
/// vector taking, per metric, the worst value in that metric's spec
/// direction (maximum for minimised/upper-bounded metrics, minimum for
/// maximised/lower-bounded ones). A design is feasible for the wrapper iff
/// it is feasible at every corner, which is exactly the robust-design
/// criterion sign-off uses.
///
/// Metrics that appear in no spec default to "smaller is worse" (minimum),
/// the conservative choice for report-only quantities.
pub struct WorstCaseProblem {
    name: String,
    problems: Vec<Box<dyn SizingProblem>>,
}

impl WorstCaseProblem {
    /// Builds the wrapper from a scenario's registered corner sweep.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioError`] for an unknown tech node; rejects
    /// scenarios with an empty corner list.
    pub fn new(scenario: &Scenario, tech: &str) -> Result<Self, ScenarioError> {
        Self::with_backend(scenario, tech, None)
    }

    /// Like [`WorstCaseProblem::new`] with an explicit device backend for
    /// every corner instance (`None` = the scenario's default).
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioError`] for an unknown tech node; rejects
    /// scenarios with an empty corner sweep.
    pub fn with_backend(
        scenario: &Scenario,
        tech: &str,
        backend: Option<Backend>,
    ) -> Result<Self, ScenarioError> {
        if scenario.corners.is_empty() {
            return Err(ScenarioError::BadCorner {
                scenario: scenario.name.to_string(),
                reason: "scenario has an empty corner sweep".to_string(),
            });
        }
        let mut problems = Vec::with_capacity(scenario.corners.len());
        for corner in &scenario.corners {
            problems.push(scenario.build_at(tech, corner, backend)?);
        }
        Ok(WorstCaseProblem {
            name: format!("{}_worstcase", problems[0].name()),
            problems,
        })
    }

    /// Number of corners evaluated per design.
    #[must_use]
    pub fn corner_count(&self) -> usize {
        self.problems.len()
    }

    fn larger_is_worse(&self, metric: usize) -> bool {
        self.problems[0].specs().iter().any(|s| {
            s.metric == metric
                && matches!(
                    s.kind,
                    SpecKind::Objective(Goal::Minimize) | SpecKind::LessEq(_)
                )
        })
    }

    /// Folds one design's per-corner metric vectors into the synthetic
    /// worst-case vector — the shared tail of the scalar and batched
    /// evaluation paths.
    fn fold_worst(&self, per_corner: &[&Metrics]) -> Metrics {
        let n = self.metric_names().len();
        let mut worst = Vec::with_capacity(n);
        for j in 0..n {
            let larger_is_worse = self.larger_is_worse(j);
            // A non-finite corner value (simulator breakdown the testbench
            // did not penalise itself) IS the worst case — it must not be
            // silently skipped by the fold the way f64::max/min drop NaN,
            // or a design that dies at one corner would be certified
            // robust. Surface it as ±∞ in the metric's "worse" direction;
            // the history layer then records the design as infeasible.
            let v = if per_corner.iter().any(|m| !m.get(j).is_finite()) {
                if larger_is_worse {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                }
            } else {
                let vals = per_corner.iter().map(|m| m.get(j));
                if larger_is_worse {
                    vals.fold(f64::NEG_INFINITY, f64::max)
                } else {
                    vals.fold(f64::INFINITY, f64::min)
                }
            };
            worst.push(v);
        }
        Metrics::new(worst)
    }
}

impl SizingProblem for WorstCaseProblem {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn variables(&self) -> &[VarSpec] {
        self.problems[0].variables()
    }

    fn metric_names(&self) -> &[&'static str] {
        self.problems[0].metric_names()
    }

    fn specs(&self) -> &[Spec] {
        self.problems[0].specs()
    }

    fn evaluate(&self, x: &[f64]) -> Metrics {
        // The corner instances are independent and deterministic, so they
        // fan out over the kato_par pool (order-preserving; identical
        // result at any KATO_THREADS).
        let per_corner: Vec<Metrics> = kato_par::par_map(&self.problems, |p| p.evaluate(x));
        let refs: Vec<&Metrics> = per_corner.iter().collect();
        self.fold_worst(&refs)
    }

    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<Metrics> {
        // The whole candidate×corner grid is one fan-out: each corner
        // instance evaluates the full population through its own batch
        // path, then the per-candidate worst-case fold runs over the
        // corner-major results. Bitwise identical to the scalar loop —
        // each inner `evaluate_batch` is contractually identical to its
        // scalar loop, and the fold is the same code.
        let per_corner: Vec<Vec<Metrics>> =
            kato_par::par_map(&self.problems, |p| p.evaluate_batch(xs));
        (0..xs.len())
            .map(|i| {
                let row: Vec<&Metrics> = per_corner.iter().map(|c| &c[i]).collect();
                self.fold_worst(&row)
            })
            .collect()
    }

    fn expert_design(&self) -> Vec<f64> {
        self.problems[0].expert_design()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato_circuits::ScenarioRegistry;

    #[test]
    fn audit_covers_every_registered_corner() {
        let reg = ScenarioRegistry::standard();
        let s = reg.get("opamp2").unwrap();
        let p = s.build_default();
        let evals = corner_audit(s, "180nm", &p.expert_design()).unwrap();
        assert_eq!(evals.len(), s.corners.len());
        assert!(evals
            .iter()
            .all(|e| e.metrics.values().iter().all(|v| v.is_finite())));
        // The nominal corner leads the standard sweep and the expert design
        // is feasible there.
        assert_eq!(evals[0].corner, Corner::tt());
        assert!(evals[0].feasible);
    }

    #[test]
    fn worst_case_is_no_better_than_nominal() {
        let reg = ScenarioRegistry::standard();
        let s = reg.get("opamp2").unwrap();
        let wc = WorstCaseProblem::new(s, "180nm").unwrap();
        let nominal = s.build_default();
        let x = nominal.expert_design();
        let m_nom = nominal.evaluate(&x);
        let m_wc = wc.evaluate(&x);
        // Objective (minimised current): worst ≥ nominal. Constraint
        // margins: worst-case margin ≤ nominal margin.
        assert!(m_wc.get(0) >= m_nom.get(0) - 1e-12, "{m_wc} vs {m_nom}");
        for spec in nominal.specs() {
            assert!(
                spec.margin(m_wc.get(spec.metric)) <= spec.margin(m_nom.get(spec.metric)) + 1e-12,
                "metric {}: wc {m_wc} nominal {m_nom}",
                spec.metric
            );
        }
    }

    #[test]
    fn worst_case_problem_delegates_shape() {
        let reg = ScenarioRegistry::standard();
        let s = reg.get("ldo").unwrap();
        let wc = WorstCaseProblem::new(s, "180nm").unwrap();
        let nominal = s.build_default();
        assert_eq!(wc.dim(), nominal.dim());
        assert_eq!(wc.metric_names(), nominal.metric_names());
        assert_eq!(wc.corner_count(), s.corners.len());
        assert!(wc.name().contains("worstcase"));
    }

    #[test]
    fn nan_at_one_corner_is_the_worst_case_not_dropped() {
        use kato_circuits::{Goal, Spec, SpecKind, TechNode, VarSpec};

        /// Toy whose simulator "dies" (returns NaN) above 100 °C ambient.
        struct HotDeath {
            temp_c: f64,
            vars: Vec<VarSpec>,
            specs: Vec<Spec>,
        }
        impl SizingProblem for HotDeath {
            fn name(&self) -> String {
                "hot_death".into()
            }
            fn variables(&self) -> &[VarSpec] {
                &self.vars
            }
            fn metric_names(&self) -> &[&'static str] {
                &["obj", "con"]
            }
            fn specs(&self) -> &[Spec] {
                &self.specs
            }
            fn evaluate(&self, x: &[f64]) -> Metrics {
                if self.temp_c > 100.0 {
                    Metrics::new(vec![f64::NAN, f64::NAN])
                } else {
                    Metrics::new(vec![x[0], 1.0])
                }
            }
            fn expert_design(&self) -> Vec<f64> {
                vec![0.5]
            }
        }
        fn build(node: TechNode) -> Box<dyn SizingProblem> {
            Box::new(HotDeath {
                temp_c: node.temp_c,
                vars: vec![VarSpec::lin("a", 0.0, 1.0)],
                specs: vec![
                    Spec {
                        metric: 0,
                        kind: SpecKind::Objective(Goal::Maximize),
                    },
                    Spec {
                        metric: 1,
                        kind: SpecKind::GreaterEq(0.5),
                    },
                ],
            })
        }
        let scenario = Scenario::new(
            "hot_death",
            "toy that dies above 100C",
            &["180nm"],
            "180nm",
            Corner::standard_sweep(), // includes two 125 °C corners
            build,
        );
        let wc = WorstCaseProblem::new(&scenario, "180nm").unwrap();
        let m = wc.evaluate(&[0.9]);
        // The hot corners return NaN, so the worst case must surface as
        // non-finite in the worse direction — not fold down to the finite
        // cold-corner values.
        assert_eq!(m.get(0), f64::NEG_INFINITY, "{m}");
        assert_eq!(m.get(1), f64::NEG_INFINITY, "{m}");
        assert!(!m.feasible(wc.specs()));
    }

    #[test]
    fn worst_case_batch_is_bitwise_identical_to_scalar_loop() {
        let reg = ScenarioRegistry::standard();
        for name in ["opamp2", "switch"] {
            let s = reg.get(name).unwrap();
            let wc = WorstCaseProblem::new(s, "180nm").unwrap();
            let xs: Vec<Vec<f64>> = (0..7)
                .map(|i| {
                    (0..wc.dim())
                        .map(|j| ((i * 13 + j * 5) % 10) as f64 / 10.0)
                        .collect()
                })
                .collect();
            let scalar: Vec<Metrics> = xs.iter().map(|x| wc.evaluate(x)).collect();
            assert_eq!(wc.evaluate_batch(&xs), scalar, "{name}");
        }
    }

    #[test]
    fn backend_aware_audit_and_worst_case() {
        use kato_circuits::Backend;
        let reg = ScenarioRegistry::standard();
        let s = reg.get("switch").unwrap();
        let x = s.build_default().expert_design();
        // The switch defaults to the LUT backend; forcing square-law gives
        // a (slightly) different but still feasible nominal audit.
        let lut = corner_audit_at(s, "180nm", &x, None).unwrap();
        let sq = corner_audit_at(s, "180nm", &x, Some(Backend::SquareLaw)).unwrap();
        assert_eq!(lut.len(), sq.len());
        assert!(lut[0].feasible && sq[0].feasible);
        assert_ne!(lut[0].metrics, sq[0].metrics);
        let wc_lut = WorstCaseProblem::with_backend(s, "180nm", None).unwrap();
        let wc_sq = WorstCaseProblem::with_backend(s, "180nm", Some(Backend::SquareLaw)).unwrap();
        assert_ne!(wc_lut.evaluate(&x), wc_sq.evaluate(&x));
    }

    #[test]
    fn unknown_tech_propagates() {
        let reg = ScenarioRegistry::standard();
        let s = reg.get("bandgap").unwrap();
        assert!(WorstCaseProblem::new(s, "40nm").is_err());
        assert!(corner_audit(s, "40nm", &[0.5; 6]).is_err());
    }
}
