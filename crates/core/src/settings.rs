use kato_circuits::FomSpec;
use kato_gp::{GpConfig, KatConfig};

/// Optimisation objective handed to every optimizer.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Single-objective Figure-of-Merit maximisation (paper §4.1, Eq. 2).
    Fom(FomSpec),
    /// Constrained optimisation of the problem's spec table (paper §4.2).
    Constrained,
}

/// Common budget/algorithm knobs shared by every optimizer in this crate.
#[derive(Debug, Clone)]
pub struct BoSettings {
    /// Total simulation budget, including the initial random designs.
    pub budget: usize,
    /// Number of initial random designs.
    pub n_init: usize,
    /// Batch size `N_B` per BO iteration (parallel simulations).
    pub batch: usize,
    /// Master seed (drives init sampling, surrogate seeds, NSGA-II).
    pub seed: u64,
    /// NSGA-II population for acquisition search.
    pub nsga_pop: usize,
    /// NSGA-II generations for acquisition search.
    pub nsga_gens: usize,
    /// UCB exploration weight β.
    pub ucb_beta: f64,
    /// GP (re)fit configuration.
    pub gp: GpConfig,
    /// KAT-GP (re)fit configuration.
    pub kat: KatConfig,
    /// Adam iterations for warm-started refits during the loop.
    pub refit_iters: usize,
}

impl BoSettings {
    /// Paper-scale defaults for a given budget and seed.
    #[must_use]
    pub fn paper(budget: usize, seed: u64) -> Self {
        BoSettings {
            budget,
            n_init: 10,
            batch: 5,
            seed,
            nsga_pop: 60,
            nsga_gens: 40,
            ucb_beta: 2.0,
            gp: GpConfig {
                seed,
                ..GpConfig::default()
            },
            kat: KatConfig {
                seed,
                ..KatConfig::default()
            },
            refit_iters: 15,
        }
    }

    /// A cheaper profile for tests, examples and the quick bench mode.
    #[must_use]
    pub fn quick(budget: usize, seed: u64) -> Self {
        BoSettings {
            budget,
            n_init: 10,
            batch: 5,
            seed,
            nsga_pop: 32,
            nsga_gens: 15,
            ucb_beta: 2.0,
            gp: GpConfig {
                seed,
                train_iters: 25,
                fit_subsample: 80,
                ..GpConfig::default()
            },
            kat: KatConfig {
                seed,
                train_iters: 20,
                source_subsample: 50,
                target_subsample: 80,
                ..KatConfig::default()
            },
            refit_iters: 8,
        }
    }

    /// Number of BO iterations implied by budget/init/batch.
    #[must_use]
    pub fn iterations(&self) -> usize {
        if self.budget <= self.n_init {
            0
        } else {
            (self.budget - self.n_init).div_ceil(self.batch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_count_rounds_up() {
        let s = BoSettings::quick(23, 0); // init 10, batch 5 → 13 left → 3 iters
        assert_eq!(s.iterations(), 3);
        let s = BoSettings::quick(10, 0);
        assert_eq!(s.iterations(), 0);
    }

    #[test]
    fn quick_is_cheaper_than_paper() {
        let q = BoSettings::quick(50, 0);
        let p = BoSettings::paper(50, 0);
        assert!(q.nsga_gens < p.nsga_gens);
        assert!(q.gp.train_iters < p.gp.train_iters);
    }
}
