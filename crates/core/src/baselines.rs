//! Baseline optimizers reproduced for the paper's comparisons: random
//! search, full six-objective MACE, SMAC-RF, MESMOC, USEMOC and TLMBO.
//!
//! MESMOC/USEMOC/TLMBO are practical re-implementations at the fidelity the
//! comparison needs (see DESIGN.md "Substitutions" for the documented
//! approximations).

use crate::acquisition::{expected_improvement, probability_of_feasibility};
use crate::kato_opt::{
    acquisition_incumbent, fill_random, modelled_specs, training_view, warm_starts,
};
use crate::mace::{MaceProposer, MaceVariant};
use crate::{BoSettings, MetricModels, Mode, ModelConfig, RunHistory};
use kato_circuits::{random_design, SizingProblem};
use kato_gp::GpConfig;
use kato_linalg::stats;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Pure random search (the paper's RS baseline).
#[derive(Debug, Clone)]
pub struct RandomSearch {
    settings: BoSettings,
}

impl RandomSearch {
    /// Creates the baseline.
    #[must_use]
    pub fn new(settings: BoSettings) -> Self {
        RandomSearch { settings }
    }

    /// Runs the search.
    #[must_use]
    pub fn run(&self, problem: &dyn SizingProblem, mode: Mode) -> RunHistory {
        let history = RunHistory::new(&problem.name(), "RS", self.settings.seed);
        let mut rng = StdRng::seed_from_u64(self.settings.seed);
        fill_random(history, problem, &mode, &self.settings, None, &mut rng)
    }
}

/// Classic MACE (Lyu et al. / Zhang et al.): ARD-RBF GPs and the full
/// six-objective acquisition ensemble.
#[derive(Debug, Clone)]
pub struct MaceOptimizer {
    settings: BoSettings,
    variant: MaceVariant,
    label: String,
}

impl MaceOptimizer {
    /// Creates the canonical MACE baseline (six objectives, ARD kernel).
    #[must_use]
    pub fn new(settings: BoSettings) -> Self {
        MaceOptimizer {
            settings,
            variant: MaceVariant::Full,
            label: "MACE".to_string(),
        }
    }

    /// Uses the modified three-objective ensemble instead (for the §3.3
    /// ablation).
    #[must_use]
    pub fn with_variant(mut self, variant: MaceVariant, label: &str) -> Self {
        self.variant = variant;
        self.label = label.to_string();
        self
    }

    /// Runs the optimisation.
    #[must_use]
    pub fn run(&self, problem: &dyn SizingProblem, mode: Mode) -> RunHistory {
        let s = &self.settings;
        let dim = problem.dim();
        let mut history = RunHistory::new(&problem.name(), &self.label, s.seed);
        let mut rng = StdRng::seed_from_u64(s.seed);
        for _ in 0..s.n_init.min(s.budget) {
            history.evaluate_and_push(problem, &mode, random_design(dim, &mut rng));
        }
        let model_cfg = ModelConfig {
            gp: s.gp.clone(),
            neuk: false, // plain ARD kernel for the classic baseline
            ..ModelConfig::default()
        };
        let specs = modelled_specs(problem, &mode);
        let (xs, cols) = training_view(&history, problem, &mode);
        let Ok(mut models) = MetricModels::fit_gp(dim, &xs, &cols, &specs, &model_cfg) else {
            return fill_random(history, problem, &mode, s, None, &mut rng);
        };
        let proposer = MaceProposer::new(self.variant);
        let refit_cfg = ModelConfig {
            gp: GpConfig {
                train_iters: s.refit_iters,
                ..s.gp.clone()
            },
            neuk: false,
            ..ModelConfig::default()
        };

        let mut iteration = 0u64;
        while history.len() < s.budget {
            iteration += 1;
            let incumbent = acquisition_incumbent(&history, problem, &mode);
            let warm = warm_starts(&history, 5);
            let front = proposer.pareto_front(&models, dim, incumbent, s, iteration, &warm);
            let mut prop_rng = StdRng::seed_from_u64(s.seed.wrapping_add(700 + iteration));
            let batch = MaceProposer::sample_batch(
                &front,
                s.batch.min(s.budget - history.len()).max(1),
                &mut prop_rng,
            );
            if batch.is_empty() {
                history.evaluate_and_push(problem, &mode, random_design(dim, &mut rng));
            }
            for x in batch {
                if history.len() >= s.budget {
                    break;
                }
                history.evaluate_and_push(problem, &mode, x);
            }
            let (xs, cols) = training_view(&history, problem, &mode);
            let _ = models.update(&xs, &cols, &refit_cfg);
        }
        history
    }
}

/// SMAC-style BO with a random-forest surrogate and EI·PF acquisition over
/// a random + local-perturbation candidate pool.
#[derive(Debug, Clone)]
pub struct SmacRf {
    settings: BoSettings,
    pool: usize,
}

impl SmacRf {
    /// Creates the baseline with a default candidate pool of 800.
    #[must_use]
    pub fn new(settings: BoSettings) -> Self {
        SmacRf {
            settings,
            pool: 800,
        }
    }

    /// Runs the optimisation.
    #[must_use]
    pub fn run(&self, problem: &dyn SizingProblem, mode: Mode) -> RunHistory {
        let s = &self.settings;
        let dim = problem.dim();
        let mut history = RunHistory::new(&problem.name(), "SMAC-RF", s.seed);
        let mut rng = StdRng::seed_from_u64(s.seed);
        for _ in 0..s.n_init.min(s.budget) {
            history.evaluate_and_push(problem, &mode, random_design(dim, &mut rng));
        }
        let specs = modelled_specs(problem, &mode);
        let model_cfg = ModelConfig::default();

        while history.len() < s.budget {
            let (xs, cols) = training_view(&history, problem, &mode);
            let models = MetricModels::fit_forest(&xs, &cols, &specs, &model_cfg);
            let incumbent = acquisition_incumbent(&history, problem, &mode);

            // Candidate pool: random + Gaussian perturbations of the best.
            let mut candidates: Vec<Vec<f64>> = (0..self.pool)
                .map(|_| random_design(dim, &mut rng))
                .collect();
            for base in warm_starts(&history, 3) {
                for _ in 0..40 {
                    let jittered: Vec<f64> = base
                        .iter()
                        .map(|&v| (v + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0))
                        .collect();
                    candidates.push(jittered);
                }
            }
            let objs = models.objective_posterior_batch(&candidates);
            let margins = models.margin_posteriors_batch(&candidates);
            let mut scored: Vec<(f64, usize)> = objs
                .iter()
                .zip(&margins)
                .enumerate()
                .map(|(i, (&(mu, var), m))| {
                    let pf = probability_of_feasibility(m);
                    (expected_improvement(mu, var, incumbent) * pf, i)
                })
                .collect();
            scored.sort_by(|a, b| kato_linalg::cmp_nan_worst(&b.0, &a.0));
            let take = s.batch.min(s.budget - history.len()).max(1);
            for &(_, i) in scored.iter().take(take) {
                history.evaluate_and_push(problem, &mode, candidates[i].clone());
            }
        }
        history
    }
}

/// MESMOC-style max-value entropy search with constraints: Gumbel-sampled
/// posterior maxima over a random grid, MES acquisition, multiplied by PF.
#[derive(Debug, Clone)]
pub struct Mesmoc {
    settings: BoSettings,
    pool: usize,
    n_max_samples: usize,
}

impl Mesmoc {
    /// Creates the baseline.
    #[must_use]
    pub fn new(settings: BoSettings) -> Self {
        Mesmoc {
            settings,
            pool: 600,
            n_max_samples: 8,
        }
    }

    /// Runs the optimisation.
    #[must_use]
    pub fn run(&self, problem: &dyn SizingProblem, mode: Mode) -> RunHistory {
        let s = &self.settings;
        let dim = problem.dim();
        let mut history = RunHistory::new(&problem.name(), "MESMOC", s.seed);
        let mut rng = StdRng::seed_from_u64(s.seed);
        for _ in 0..s.n_init.min(s.budget) {
            history.evaluate_and_push(problem, &mode, random_design(dim, &mut rng));
        }
        let specs = modelled_specs(problem, &mode);
        let model_cfg = ModelConfig {
            gp: s.gp.clone(),
            neuk: false,
            ..ModelConfig::default()
        };
        let (xs, cols) = training_view(&history, problem, &mode);
        let Ok(mut models) = MetricModels::fit_gp(dim, &xs, &cols, &specs, &model_cfg) else {
            return fill_random(history, problem, &mode, s, None, &mut rng);
        };
        let refit_cfg = ModelConfig {
            gp: GpConfig {
                train_iters: s.refit_iters,
                ..s.gp.clone()
            },
            neuk: false,
            ..ModelConfig::default()
        };

        while history.len() < s.budget {
            // Gumbel approximation of the posterior maximum distribution.
            let grid: Vec<Vec<f64>> = (0..200).map(|_| random_design(dim, &mut rng)).collect();
            let post: Vec<(f64, f64)> = models.objective_posterior_batch(&grid);
            let mean_best = post
                .iter()
                .map(|&(m, v)| m + 2.0 * v.sqrt())
                .fold(f64::NEG_INFINITY, f64::max);
            let spread =
                stats::std_dev(&post.iter().map(|&(m, _)| m).collect::<Vec<_>>()).max(1e-6);
            let maxima: Vec<f64> = (0..self.n_max_samples)
                .map(|_| {
                    let u: f64 = rng.gen_range(1e-6..1.0 - 1e-6);
                    mean_best - spread * (-(u.ln())).ln().min(3.0) * 0.5
                })
                .collect();

            let candidates: Vec<Vec<f64>> = (0..self.pool)
                .map(|_| random_design(dim, &mut rng))
                .collect();
            let objs = models.objective_posterior_batch(&candidates);
            let margins = models.margin_posteriors_batch(&candidates);
            let mut scored: Vec<(f64, usize)> = objs
                .iter()
                .zip(&margins)
                .enumerate()
                .map(|(i, (&(mu, var), m))| {
                    let sigma = var.max(1e-18).sqrt();
                    let mut mes = 0.0;
                    for &y_star in &maxima {
                        let gamma = (y_star - mu) / sigma;
                        let phi = stats::norm_pdf(gamma);
                        let cap = stats::norm_cdf(gamma).max(1e-12);
                        mes += gamma * phi / (2.0 * cap) - cap.ln();
                    }
                    let pf = probability_of_feasibility(m);
                    (mes * pf, i)
                })
                .collect();
            scored.sort_by(|a, b| kato_linalg::cmp_nan_worst(&b.0, &a.0));
            let take = s.batch.min(s.budget - history.len()).max(1);
            for &(_, i) in scored.iter().take(take) {
                history.evaluate_and_push(problem, &mode, candidates[i].clone());
            }
            let (xs, cols) = training_view(&history, problem, &mode);
            let _ = models.update(&xs, &cols, &refit_cfg);
        }
        history
    }
}

/// USEMOC-style uncertainty-aware search: among candidates predicted
/// feasible, pick maximum posterior uncertainty (σ·PF as the general score).
#[derive(Debug, Clone)]
pub struct Usemoc {
    settings: BoSettings,
    pool: usize,
}

impl Usemoc {
    /// Creates the baseline.
    #[must_use]
    pub fn new(settings: BoSettings) -> Self {
        Usemoc {
            settings,
            pool: 600,
        }
    }

    /// Runs the optimisation.
    #[must_use]
    pub fn run(&self, problem: &dyn SizingProblem, mode: Mode) -> RunHistory {
        let s = &self.settings;
        let dim = problem.dim();
        let mut history = RunHistory::new(&problem.name(), "USEMOC", s.seed);
        let mut rng = StdRng::seed_from_u64(s.seed);
        for _ in 0..s.n_init.min(s.budget) {
            history.evaluate_and_push(problem, &mode, random_design(dim, &mut rng));
        }
        let specs = modelled_specs(problem, &mode);
        let model_cfg = ModelConfig {
            gp: s.gp.clone(),
            neuk: false,
            ..ModelConfig::default()
        };
        let (xs, cols) = training_view(&history, problem, &mode);
        let Ok(mut models) = MetricModels::fit_gp(dim, &xs, &cols, &specs, &model_cfg) else {
            return fill_random(history, problem, &mode, s, None, &mut rng);
        };
        let refit_cfg = ModelConfig {
            gp: GpConfig {
                train_iters: s.refit_iters,
                ..s.gp.clone()
            },
            neuk: false,
            ..ModelConfig::default()
        };

        while history.len() < s.budget {
            let incumbent = acquisition_incumbent(&history, problem, &mode);
            let candidates: Vec<Vec<f64>> = (0..self.pool)
                .map(|_| random_design(dim, &mut rng))
                .collect();
            let objs = models.objective_posterior_batch(&candidates);
            let margins = models.margin_posteriors_batch(&candidates);
            let mut scored: Vec<(f64, usize)> = objs
                .iter()
                .zip(&margins)
                .enumerate()
                .map(|(i, (&(mu, var), m))| {
                    let pf = probability_of_feasibility(m);
                    let sigma = var.max(0.0).sqrt();
                    // Uncertainty-driven, feasibility-weighted, with a mild
                    // exploitation tie-break.
                    (sigma * pf + 0.05 * (mu - incumbent).max(0.0), i)
                })
                .collect();
            scored.sort_by(|a, b| kato_linalg::cmp_nan_worst(&b.0, &a.0));
            let take = s.batch.min(s.budget - history.len()).max(1);
            for &(_, i) in scored.iter().take(take) {
                history.evaluate_and_push(problem, &mode, candidates[i].clone());
            }
            let (xs, cols) = training_view(&history, problem, &mode);
            let _ = models.update(&xs, &cols, &refit_cfg);
        }
        history
    }
}

/// TLMBO-style transfer BO (Zhang et al., DAC 2022): Gaussian-copula
/// quantile alignment of the source outputs into the target output
/// distribution, appended as pseudo-observations. Only defined for
/// same-design (technology-node) transfer and FOM optimisation, as in the
/// paper.
#[derive(Debug, Clone)]
pub struct Tlmbo {
    settings: BoSettings,
    source_xs: Vec<Vec<f64>>,
    source_ys: Vec<f64>,
    max_source: usize,
}

impl Tlmbo {
    /// Creates the baseline from a source archive of `(x, fom)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the source archive is empty.
    #[must_use]
    pub fn new(settings: BoSettings, source_xs: Vec<Vec<f64>>, source_ys: Vec<f64>) -> Self {
        assert!(!source_xs.is_empty(), "TLMBO needs source data");
        Tlmbo {
            settings,
            source_xs,
            source_ys,
            max_source: 60,
        }
    }

    /// Copula-transforms the source outputs into the target distribution:
    /// `y' = Q_target(F_source(y))` via empirical CDF + target quantiles.
    fn transform_source(&self, target_ys: &[f64]) -> Vec<f64> {
        self.source_ys
            .iter()
            .map(|&y| {
                let p = stats::ecdf(&self.source_ys, y);
                stats::quantile(target_ys, p)
            })
            .collect()
    }

    /// Runs the optimisation (FOM mode expected).
    ///
    /// # Panics
    ///
    /// Panics if the source dimensionality differs from the problem's.
    #[must_use]
    pub fn run(&self, problem: &dyn SizingProblem, mode: Mode) -> RunHistory {
        let s = &self.settings;
        let dim = problem.dim();
        assert_eq!(
            self.source_xs[0].len(),
            dim,
            "TLMBO requires the same design space (node transfer)"
        );
        let mut history = RunHistory::new(&problem.name(), "TLMBO", s.seed);
        let mut rng = StdRng::seed_from_u64(s.seed);
        for _ in 0..s.n_init.min(s.budget) {
            history.evaluate_and_push(problem, &mode, random_design(dim, &mut rng));
        }
        let proposer = MaceProposer::new(MaceVariant::Modified);

        while history.len() < s.budget {
            let (mut xs, cols) = training_view(&history, problem, &mode);
            let mut ys = cols[0].clone();
            // Append copula-aligned source pseudo-observations.
            let aligned = self.transform_source(&ys);
            for (x, y) in self.source_xs.iter().zip(&aligned).take(self.max_source) {
                xs.push(x.clone());
                ys.push(*y);
            }
            let model_cfg = ModelConfig {
                gp: GpConfig {
                    train_iters: s.refit_iters.max(10),
                    ..s.gp.clone()
                },
                neuk: false,
                ..ModelConfig::default()
            };
            let Ok(models) =
                MetricModels::fit_gp(dim, &xs, &[ys], &crate::model::fom_specs(), &model_cfg)
            else {
                return fill_random(history, problem, &mode, s, None, &mut rng);
            };
            let incumbent = acquisition_incumbent(&history, problem, &mode);
            let warm = warm_starts(&history, 5);
            let front =
                proposer.pareto_front(&models, dim, incumbent, s, history.len() as u64, &warm);
            let mut prop_rng =
                StdRng::seed_from_u64(s.seed.wrapping_add(500 + history.len() as u64));
            let batch = MaceProposer::sample_batch(
                &front,
                s.batch.min(s.budget - history.len()).max(1),
                &mut prop_rng,
            );
            if batch.is_empty() {
                history.evaluate_and_push(problem, &mode, random_design(dim, &mut rng));
                continue;
            }
            for x in batch {
                if history.len() >= s.budget {
                    break;
                }
                history.evaluate_and_push(problem, &mode, x);
            }
        }
        history
    }
}

/// Fits a FOM-mode GP on a source problem and returns `(xs, fom)` pairs —
/// helper for building TLMBO inputs.
#[must_use]
pub fn source_fom_archive(
    problem: &dyn SizingProblem,
    fom: &kato_circuits::FomSpec,
    n: usize,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let x = random_design(problem.dim(), &mut rng);
        ys.push(fom.fom(&problem.evaluate(&x)));
        xs.push(x);
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato_circuits::{FomSpec, Goal, Metrics, Spec, SpecKind, VarSpec};

    struct Toy {
        vars: Vec<VarSpec>,
        specs: Vec<Spec>,
    }

    impl Toy {
        fn new() -> Self {
            Toy {
                vars: vec![VarSpec::lin("a", 0.0, 1.0), VarSpec::lin("b", 0.0, 1.0)],
                specs: vec![
                    Spec {
                        metric: 0,
                        kind: SpecKind::Objective(Goal::Maximize),
                    },
                    Spec {
                        metric: 1,
                        kind: SpecKind::GreaterEq(0.4),
                    },
                ],
            }
        }
    }

    impl SizingProblem for Toy {
        fn name(&self) -> String {
            "toy_b".into()
        }
        fn variables(&self) -> &[VarSpec] {
            &self.vars
        }
        fn metric_names(&self) -> &[&'static str] {
            &["obj", "con"]
        }
        fn specs(&self) -> &[Spec] {
            &self.specs
        }
        fn evaluate(&self, x: &[f64]) -> Metrics {
            let obj = 1.0 - (x[0] - 0.7).powi(2) - (x[1] - 0.3).powi(2);
            Metrics::new(vec![obj, x[0]])
        }
        fn expert_design(&self) -> Vec<f64> {
            vec![0.7, 0.3]
        }
    }

    #[test]
    fn random_search_fills_budget() {
        let toy = Toy::new();
        let h = RandomSearch::new(BoSettings::quick(20, 1)).run(&toy, Mode::Constrained);
        assert_eq!(h.len(), 20);
        assert_eq!(h.method, "RS");
    }

    #[test]
    fn mace_full_runs_and_improves() {
        let toy = Toy::new();
        let h = MaceOptimizer::new(BoSettings::quick(30, 2)).run(&toy, Mode::Constrained);
        assert_eq!(h.len(), 30);
        let c = h.best_curve();
        assert!(c[29] >= c[9]);
    }

    #[test]
    fn smac_rf_runs() {
        let toy = Toy::new();
        let h = SmacRf::new(BoSettings::quick(25, 3)).run(&toy, Mode::Constrained);
        assert_eq!(h.len(), 25);
        assert!(h.best().is_some());
    }

    #[test]
    fn mesmoc_runs() {
        let toy = Toy::new();
        let h = Mesmoc::new(BoSettings::quick(20, 4)).run(&toy, Mode::Constrained);
        assert_eq!(h.len(), 20);
    }

    #[test]
    fn usemoc_runs() {
        let toy = Toy::new();
        let h = Usemoc::new(BoSettings::quick(20, 5)).run(&toy, Mode::Constrained);
        assert_eq!(h.len(), 20);
    }

    #[test]
    fn tlmbo_runs_with_copula_source() {
        let toy = Toy::new();
        let fom = FomSpec::calibrate(&toy, 64, 7);
        let (sx, sy) = source_fom_archive(&toy, &fom, 40, 11);
        let h = Tlmbo::new(BoSettings::quick(22, 6), sx, sy).run(&toy, Mode::Fom(fom));
        assert_eq!(h.len(), 22);
        assert_eq!(h.method, "TLMBO");
    }

    #[test]
    fn copula_transform_maps_into_target_range() {
        let toy = Toy::new();
        let fom = FomSpec::calibrate(&toy, 64, 7);
        let (sx, sy) = source_fom_archive(&toy, &fom, 30, 13);
        let t = Tlmbo::new(BoSettings::quick(20, 6), sx, sy);
        let target_ys = vec![-2.0, -1.0, 0.0, 1.0, 2.0];
        let mapped = t.transform_source(&target_ys);
        for v in mapped {
            assert!((-2.0..=2.0).contains(&v), "mapped {v} outside target range");
        }
    }
}
