//! MACE batch-proposal machinery.
//!
//! [`MaceVariant::Full`] reproduces the original six-objective MACE
//! formulation [Zhang et al., TCAD 2021]; [`MaceVariant::Modified`] is
//! KATO's three-objective reduction (paper §3.3, Eq. 13):
//! `argmax {UCB(x), PI(x), EI(x)} · PF(x)`.

use crate::acquisition::{
    expected_improvement, probability_of_feasibility, probability_of_improvement,
    upper_confidence_bound,
};
use crate::{BoSettings, MetricModels};
use kato_nsga::{Nsga2, Nsga2Config, ParetoPoint};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which MACE acquisition ensemble to search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaceVariant {
    /// Six objectives: UCB, PI, EI, PF, −Σ max(0, −µᵢ), −Σ max(0, −µᵢ/σᵢ)
    /// (violation terms over constraint margins).
    Full,
    /// Three objectives: {UCB, PI, EI} · PF (paper Eq. 13).
    Modified,
}

impl MaceVariant {
    /// Number of Pareto objectives this variant searches.
    #[must_use]
    pub fn objective_count(self) -> usize {
        match self {
            MaceVariant::Full => 6,
            MaceVariant::Modified => 3,
        }
    }
}

/// NSGA-II-backed proposal generator over a [`MetricModels`] stack.
#[derive(Debug, Clone)]
pub struct MaceProposer {
    variant: MaceVariant,
}

impl MaceProposer {
    /// Creates a proposer for the given variant.
    #[must_use]
    pub fn new(variant: MaceVariant) -> Self {
        MaceProposer { variant }
    }

    /// Assembles the acquisition vector from already-computed posteriors.
    fn assemble(
        &self,
        (mu, var): (f64, f64),
        margins: &[(f64, f64)],
        incumbent: f64,
        beta: f64,
    ) -> Vec<f64> {
        let pf = probability_of_feasibility(margins);
        let ei = expected_improvement(mu, var, incumbent);
        let pi = probability_of_improvement(mu, var, incumbent);
        let ucb = upper_confidence_bound(mu, var, beta);
        match self.variant {
            MaceVariant::Modified => vec![ucb * pf, pi * pf, ei * pf],
            MaceVariant::Full => {
                let viol_mean: f64 = margins.iter().map(|&(m, _)| (-m).max(0.0)).sum();
                let viol_scaled: f64 = margins
                    .iter()
                    .map(|&(m, v)| ((-m) / v.max(1e-18).sqrt()).max(0.0))
                    .sum();
                vec![ucb, pi, ei, pf, -viol_mean, -viol_scaled]
            }
        }
    }

    /// The acquisition-vector for one candidate (exposed for the ablation
    /// bench).
    #[must_use]
    pub fn objectives(
        &self,
        models: &MetricModels,
        x: &[f64],
        incumbent: f64,
        beta: f64,
    ) -> Vec<f64> {
        self.assemble(
            models.objective_posterior(x),
            &models.margin_posteriors(x),
            incumbent,
            beta,
        )
    }

    /// Acquisition vectors for a whole candidate population at once: each
    /// surrogate runs a single batched posterior over the population
    /// ([`MetricModels::objective_posterior_batch`] /
    /// [`MetricModels::margin_posteriors_batch`]) instead of one `O(n²)`
    /// solve per point. This is what NSGA-II calls through
    /// [`kato_nsga::Nsga2::run_batch`] in [`MaceProposer::pareto_front`].
    #[must_use]
    pub fn objectives_batch(
        &self,
        models: &MetricModels,
        xs: &[Vec<f64>],
        incumbent: f64,
        beta: f64,
    ) -> Vec<Vec<f64>> {
        let objs = models.objective_posterior_batch(xs);
        let margins = models.margin_posteriors_batch(xs);
        objs.into_iter()
            .zip(&margins)
            .map(|(post, m)| self.assemble(post, m, incumbent, beta))
            .collect()
    }

    /// Runs the NSGA-II Pareto search and returns the front. Every
    /// generation scores its population through the batched acquisition
    /// path ([`MaceProposer::objectives_batch`]); results are identical to
    /// the point-wise path up to floating-point re-association.
    #[must_use]
    pub fn pareto_front(
        &self,
        models: &MetricModels,
        dim: usize,
        incumbent: f64,
        settings: &BoSettings,
        seed_offset: u64,
        warm_starts: &[Vec<f64>],
    ) -> Vec<ParetoPoint> {
        let nsga = Nsga2::new(Nsga2Config {
            dim,
            pop_size: settings.nsga_pop,
            generations: settings.nsga_gens,
            seed: settings.seed.wrapping_add(seed_offset),
            initial: warm_starts.to_vec(),
            ..Nsga2Config::default()
        });
        nsga.run_batch(|xs| self.objectives_batch(models, xs, incumbent, settings.ucb_beta))
    }

    /// Samples a batch of `n` candidate designs from a Pareto front
    /// (uniformly, as in Algorithm 1's action-set construction).
    #[must_use]
    pub fn sample_batch(front: &[ParetoPoint], n: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
        if front.is_empty() {
            return Vec::new();
        }
        let mut idx: Vec<usize> = (0..front.len()).collect();
        idx.shuffle(rng);
        (0..n)
            .map(|k| front[idx[k % idx.len()]].x.clone())
            .collect()
    }
}

/// Convenience: propose one batch with the modified constrained MACE.
#[must_use]
pub fn propose_batch(
    models: &MetricModels,
    dim: usize,
    incumbent: f64,
    settings: &BoSettings,
    iteration: u64,
    warm_starts: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    let proposer = MaceProposer::new(MaceVariant::Modified);
    let front = proposer.pareto_front(models, dim, incumbent, settings, iteration, warm_starts);
    let mut rng = StdRng::seed_from_u64(settings.seed.wrapping_add(1000 + iteration));
    MaceProposer::sample_batch(&front, settings.batch, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mode, RunHistory};
    use kato_circuits::{Goal, Metrics, SizingProblem, Spec, SpecKind, VarSpec};
    use kato_gp::{GpConfig, KatConfig};

    struct Quad {
        vars: Vec<VarSpec>,
        specs: Vec<Spec>,
    }

    impl Quad {
        fn new() -> Self {
            Quad {
                vars: vec![VarSpec::lin("a", 0.0, 1.0), VarSpec::lin("b", 0.0, 1.0)],
                specs: vec![
                    Spec {
                        metric: 0,
                        kind: SpecKind::Objective(Goal::Maximize),
                    },
                    Spec {
                        metric: 1,
                        kind: SpecKind::GreaterEq(0.25),
                    },
                ],
            }
        }
    }

    impl SizingProblem for Quad {
        fn name(&self) -> String {
            "quad".into()
        }
        fn variables(&self) -> &[VarSpec] {
            &self.vars
        }
        fn metric_names(&self) -> &[&'static str] {
            &["obj", "con"]
        }
        fn specs(&self) -> &[Spec] {
            &self.specs
        }
        fn evaluate(&self, x: &[f64]) -> Metrics {
            // Objective peaks at (0.7, 0.3); constraint requires x0 ≥ 0.25.
            let obj = 1.0 - (x[0] - 0.7).powi(2) - (x[1] - 0.3).powi(2);
            Metrics::new(vec![obj, x[0]])
        }
        fn expert_design(&self) -> Vec<f64> {
            vec![0.7, 0.3]
        }
    }

    fn fitted_models(n: usize) -> (Quad, MetricModels, f64) {
        let quad = Quad::new();
        let mut history = RunHistory::new("quad", "test", 0);
        for i in 0..n {
            let t = i as f64 / (n - 1) as f64;
            let x = vec![t, (t * 7.3) % 1.0];
            history.evaluate_and_push(&quad, &Mode::Constrained, x);
        }
        let (xs, ms) = history.dataset();
        let cols = crate::model::metric_columns(&ms);
        let cfg = crate::ModelConfig {
            gp: GpConfig::fast(),
            kat: KatConfig::fast(),
            ..Default::default()
        };
        let models = MetricModels::fit_gp(2, &xs, &cols, quad.specs(), &cfg).unwrap();
        (quad, models, history.incumbent())
    }

    #[test]
    fn objective_counts_match_variant() {
        let (_, models, inc) = fitted_models(12);
        let full = MaceProposer::new(MaceVariant::Full);
        let modified = MaceProposer::new(MaceVariant::Modified);
        assert_eq!(full.objectives(&models, &[0.5, 0.5], inc, 2.0).len(), 6);
        assert_eq!(modified.objectives(&models, &[0.5, 0.5], inc, 2.0).len(), 3);
        assert_eq!(MaceVariant::Full.objective_count(), 6);
        assert_eq!(MaceVariant::Modified.objective_count(), 3);
    }

    #[test]
    fn objectives_batch_matches_pointwise() {
        let (_, models, inc) = fitted_models(12);
        let queries: Vec<Vec<f64>> = (0..7)
            .map(|i| vec![i as f64 / 6.0, (i as f64 * 3.1) % 1.0])
            .collect();
        for variant in [MaceVariant::Modified, MaceVariant::Full] {
            let prop = MaceProposer::new(variant);
            let batch = prop.objectives_batch(&models, &queries, inc, 2.0);
            assert_eq!(batch.len(), queries.len());
            for (q, b) in queries.iter().zip(&batch) {
                let p = prop.objectives(&models, q, inc, 2.0);
                assert_eq!(p.len(), b.len());
                for (x, y) in p.iter().zip(b) {
                    assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn infeasible_region_is_penalised() {
        let (_, models, inc) = fitted_models(14);
        let prop = MaceProposer::new(MaceVariant::Modified);
        // x0=0.05 is deep in the infeasible region (needs x0 ≥ 0.25).
        let bad = prop.objectives(&models, &[0.05, 0.3], inc, 2.0);
        let good = prop.objectives(&models, &[0.7, 0.3], inc, 2.0);
        assert!(
            good[0] > bad[0],
            "feasible candidate must dominate UCB·PF: {good:?} vs {bad:?}"
        );
    }

    #[test]
    fn pareto_front_is_nonempty_and_in_bounds() {
        let (_, models, inc) = fitted_models(14);
        let prop = MaceProposer::new(MaceVariant::Modified);
        let settings = BoSettings::quick(30, 3);
        let front = prop.pareto_front(&models, 2, inc, &settings, 0, &[]);
        assert!(!front.is_empty());
        for p in &front {
            assert!(p.x.iter().all(|&g| (0.0..=1.0).contains(&g)));
        }
    }

    #[test]
    fn batch_sampling_sizes() {
        let (_, models, inc) = fitted_models(12);
        let prop = MaceProposer::new(MaceVariant::Modified);
        let settings = BoSettings::quick(30, 3);
        let front = prop.pareto_front(&models, 2, inc, &settings, 0, &[]);
        let mut rng = StdRng::seed_from_u64(1);
        let batch = MaceProposer::sample_batch(&front, 4, &mut rng);
        assert_eq!(batch.len(), 4);
        let empty = MaceProposer::sample_batch(&[], 4, &mut rng);
        assert!(empty.is_empty());
    }

    #[test]
    fn modified_mace_steers_toward_optimum() {
        // With a decent surrogate the proposal batch should concentrate
        // closer to the constrained optimum than random sampling.
        let (_, models, inc) = fitted_models(24);
        let settings = BoSettings::quick(30, 5);
        let batch = propose_batch(&models, 2, inc, &settings, 0, &[]);
        let mean_dist: f64 = batch
            .iter()
            .map(|x| ((x[0] - 0.7).powi(2) + (x[1] - 0.3).powi(2)).sqrt())
            .sum::<f64>()
            / batch.len() as f64;
        assert!(
            mean_dist < 0.55,
            "batch mean distance to optimum {mean_dist}"
        );
    }
}
