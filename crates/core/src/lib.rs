#![deny(missing_docs)]

//! KATO — Knowledge Alignment and Transfer Optimization for transistor
//! sizing (DAC 2024 reproduction).
//!
//! This crate assembles the paper's algorithm from the workspace substrates:
//!
//! * **Acquisition functions** (paper §2.3, Eq. 5–7): [`acquisition`]
//!   provides EI, PI, UCB and the probability of feasibility PF.
//! * **Modified constrained MACE** (paper §3.3, Eq. 13): [`mace`] searches
//!   the Pareto front of `{UCB, PI, EI}·PF` with NSGA-II — three objectives
//!   instead of MACE's six.
//! * **KATO with Selective Transfer Learning** (paper §3.4, Algorithm 1):
//!   [`Kato`] runs a target-only Neuk-GP and (optionally) a KAT-GP
//!   transferred from a source circuit, splits each batch between their
//!   proposal sets according to bandit weights, and updates the weights by
//!   the number of improvements each model produced (Eq. 14).
//! * **Baselines** for every figure of the paper: random search, full
//!   six-objective MACE, SMAC-RF, MESMOC, USEMOC and TLMBO
//!   ([`baselines`]).
//!
//! # Quickstart
//!
//! ```no_run
//! use kato::{BoSettings, Kato, Mode};
//! use kato_circuits::{SizingProblem, TechNode, TwoStageOpAmp};
//!
//! let problem = TwoStageOpAmp::new(TechNode::n180());
//! let settings = BoSettings::quick(40, 7);
//! let history = Kato::new(settings).run(&problem, Mode::Constrained);
//! if let Some(best) = history.best() {
//!     println!("best I_total: {:.1} µA", best.metrics.get(0));
//! }
//! ```

pub mod acquisition;
pub mod baselines;
mod batch;
mod budget;
pub mod corners;
mod history;
mod kato_opt;
pub mod mace;
mod model;
pub mod sampling;
mod settings;
pub mod stl;

pub use batch::evaluate_batch_sharded;
pub use budget::RunBudget;
// The incremental-fit surface the per-iteration model updates go through;
// re-exported so optimiser-level callers need only this crate root.
pub use corners::{corner_audit, corner_audit_at, CornerEval, WorstCaseProblem};
pub use history::{EvalRecord, RunHistory};
pub use kato_gp::{update_incremental, IncrementalFit};
pub use kato_opt::{Kato, SourceData};
pub use mace::{MaceProposer, MaceVariant};
pub use model::{fit_source_gps, fom_specs, metric_columns, MetricModels, Model, ModelConfig};
pub use settings::{BoSettings, Mode};
pub use stl::StlWeights;
