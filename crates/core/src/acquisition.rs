//! Acquisition functions (paper §2.3) over `(mean, variance)` posteriors.
//!
//! All functions take the posterior of an objective that is **maximised**.

use kato_linalg::stats::{norm_cdf, norm_pdf};

/// Probability of improvement over the incumbent `best` (Eq. 5).
#[must_use]
pub fn probability_of_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let sigma = var.max(1e-18).sqrt();
    norm_cdf((mean - best) / sigma)
}

/// Expected improvement over the incumbent `best` (Eq. 6).
#[must_use]
pub fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let sigma = var.max(1e-18).sqrt();
    let u = (mean - best) / sigma;
    ((mean - best) * norm_cdf(u) + sigma * norm_pdf(u)).max(0.0)
}

/// Upper confidence bound with exploration weight `beta` (Eq. 7).
#[must_use]
pub fn upper_confidence_bound(mean: f64, var: f64, beta: f64) -> f64 {
    mean + beta * var.max(0.0).sqrt()
}

/// Probability of feasibility over constraint-margin posteriors: each margin
/// is Gaussian `N(mean_i, var_i)` and the constraint is met when the margin
/// is non-negative, so `PF = Π Φ(mean_i/σ_i)` (paper §3.3).
#[must_use]
pub fn probability_of_feasibility(margins: &[(f64, f64)]) -> f64 {
    margins
        .iter()
        .map(|&(m, v)| norm_cdf(m / v.max(1e-18).sqrt()))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ei_zero_when_certain_and_worse() {
        assert!(expected_improvement(0.0, 1e-20, 1.0) < 1e-12);
    }

    #[test]
    fn ei_positive_with_uncertainty() {
        assert!(expected_improvement(0.0, 1.0, 1.0) > 0.0);
    }

    #[test]
    fn ei_grows_with_mean() {
        let lo = expected_improvement(0.0, 1.0, 1.0);
        let hi = expected_improvement(0.5, 1.0, 1.0);
        assert!(hi > lo);
    }

    #[test]
    fn ei_equals_gap_when_certain_and_better() {
        let ei = expected_improvement(2.0, 1e-20, 1.0);
        assert!((ei - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pi_is_half_at_incumbent() {
        assert!((probability_of_improvement(1.0, 1.0, 1.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn ucb_tradeoff() {
        assert_eq!(upper_confidence_bound(1.0, 4.0, 2.0), 5.0);
        assert_eq!(upper_confidence_bound(1.0, 4.0, 0.0), 1.0);
    }

    #[test]
    fn pf_product_and_extremes() {
        // Comfortably feasible on both constraints.
        let pf = probability_of_feasibility(&[(5.0, 1.0), (4.0, 1.0)]);
        assert!(pf > 0.99);
        // One hopeless constraint kills the product.
        let pf = probability_of_feasibility(&[(5.0, 1.0), (-8.0, 1.0)]);
        assert!(pf < 1e-6);
        // No constraints → certainty.
        assert_eq!(probability_of_feasibility(&[]), 1.0);
    }
}
