use kato_circuits::{Goal, Metrics, Spec, SpecKind};
use kato_forest::{ForestConfig, RandomForest};
use kato_gp::{update_incremental, Gp, GpConfig, GpError, KatConfig, KatGp, KernelSpec};

/// Configuration bundle for (re)fitting the per-output surrogates.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// GP fit configuration.
    pub gp: GpConfig,
    /// KAT-GP fit configuration.
    pub kat: KatConfig,
    /// Random-forest configuration (SMAC baseline).
    pub forest: ForestConfig,
    /// Use the Neural Kernel (`true`, KATO's NeukGP) or ARD-RBF (`false`,
    /// plain-GP baselines).
    pub neuk: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            gp: GpConfig::default(),
            kat: KatConfig::default(),
            forest: ForestConfig::default(),
            neuk: true,
        }
    }
}

/// One scalar surrogate: Neuk/ARD GP, transferred KAT-GP, or random forest.
#[derive(Debug, Clone)]
pub enum Model {
    /// Target-only Gaussian process.
    Gp(Box<Gp>),
    /// Knowledge-aligned transfer GP.
    Kat(Box<KatGp>),
    /// Random forest (SMAC surrogate).
    Forest(Box<RandomForest>),
}

impl Model {
    /// Posterior mean and variance at `x`.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        match self {
            Model::Gp(gp) => gp.predict(x),
            Model::Kat(kat) => kat.predict(x),
            Model::Forest(f) => f.predict(x),
        }
    }

    /// Posterior mean and variance at every query point — batched
    /// inference. GP-family surrogates share one Cholesky application
    /// across the whole batch ([`Gp::predict_batch`] /
    /// [`KatGp::predict_batch`]); forests fan the points out over the
    /// [`kato_par`] pool.
    #[must_use]
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        match self {
            Model::Gp(gp) => gp.predict_batch(xs),
            Model::Kat(kat) => kat.predict_batch(xs),
            Model::Forest(f) => kato_par::par_map(xs, |x| f.predict(x)),
        }
    }

    /// Updates the surrogate to an updated dataset. GP-family surrogates go
    /// through one [`kato_gp::IncrementalFit`] path
    /// ([`update_incremental`]): when the dataset is the stored training
    /// set plus new rows, the held Cholesky factor is extended by a rank-k
    /// update and hyperparameter optimisation is warm-started from (for a
    /// GP, possibly skipped at) the previous optimum; anything else falls
    /// back to a full refit. Forests have no incremental form and always
    /// refit.
    ///
    /// # Errors
    ///
    /// Propagates surrogate fitting failures.
    pub fn update(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &ModelConfig,
    ) -> Result<(), GpError> {
        match self {
            Model::Gp(gp) => update_incremental(gp.as_mut(), xs, ys, &config.gp),
            Model::Kat(kat) => update_incremental(kat.as_mut(), xs, ys, &config.kat),
            Model::Forest(f) => {
                **f = RandomForest::fit(xs, ys, &config.forest);
                Ok(())
            }
        }
    }
}

/// Extracts per-metric output columns from an archive of metric vectors.
#[must_use]
pub fn metric_columns(metrics: &[&Metrics]) -> Vec<Vec<f64>> {
    let n_outputs = metrics.first().map_or(0, |m| m.values().len());
    (0..n_outputs)
        .map(|j| metrics.iter().map(|m| m.get(j)).collect())
        .collect()
}

/// Per-output surrogate stack plus the spec table needed to turn output
/// posteriors into objective/constraint posteriors.
///
/// Every optimizer in this crate models raw output columns (one surrogate
/// per column) and derives the signed objective and constraint margins at
/// acquisition time, so the same models serve EI/PI/UCB and PF. In FOM mode
/// there is a single column (the FOM value) and a single maximise spec.
#[derive(Debug, Clone)]
pub struct MetricModels {
    models: Vec<Model>,
    specs: Vec<Spec>,
}

impl MetricModels {
    /// Fits target-only GPs (Neuk or ARD per `config.neuk`) for every
    /// column.
    ///
    /// # Errors
    ///
    /// Propagates GP fitting failures.
    pub fn fit_gp(
        dim: usize,
        xs: &[Vec<f64>],
        columns: &[Vec<f64>],
        specs: &[Spec],
        config: &ModelConfig,
    ) -> Result<MetricModels, GpError> {
        // Per-column fits are independent (each derives its own seed from
        // the column index), so they fan out over the kato_par pool.
        let idx: Vec<usize> = (0..columns.len()).collect();
        let fitted = kato_par::par_map(&idx, |&j| {
            let kernel = if config.neuk {
                KernelSpec::neuk(dim)
            } else {
                KernelSpec::ard_rbf(dim)
            };
            let mut cfg = config.gp.clone();
            cfg.seed = cfg.seed.wrapping_add(j as u64);
            Gp::fit(kernel, xs, &columns[j], &cfg)
        });
        let mut models = Vec::with_capacity(columns.len());
        for gp in fitted {
            models.push(Model::Gp(Box::new(gp?)));
        }
        Ok(MetricModels {
            models,
            specs: specs.to_vec(),
        })
    }

    /// Fits random forests for every column (SMAC baseline).
    #[must_use]
    pub fn fit_forest(
        xs: &[Vec<f64>],
        columns: &[Vec<f64>],
        specs: &[Spec],
        config: &ModelConfig,
    ) -> MetricModels {
        let idx: Vec<usize> = (0..columns.len()).collect();
        let models = kato_par::par_map(&idx, |&j| {
            let mut cfg = config.forest.clone();
            cfg.seed = cfg.seed.wrapping_add(j as u64);
            Model::Forest(Box::new(RandomForest::fit(xs, &columns[j], &cfg)))
        });
        MetricModels {
            models,
            specs: specs.to_vec(),
        }
    }

    /// Fits KAT-GPs transferred from per-column source GPs. Columns are
    /// aligned by index; target columns beyond the source's count fall back
    /// to target-only Neuk GPs.
    ///
    /// # Errors
    ///
    /// Propagates fitting failures.
    pub fn fit_kat(
        dim: usize,
        source: &[Gp],
        xs: &[Vec<f64>],
        columns: &[Vec<f64>],
        specs: &[Spec],
        config: &ModelConfig,
    ) -> Result<MetricModels, GpError> {
        let idx: Vec<usize> = (0..columns.len()).collect();
        let fitted = kato_par::par_map(&idx, |&j| {
            let ys = &columns[j];
            if let Some(src) = source.get(j) {
                let mut cfg = config.kat.clone();
                cfg.seed = cfg.seed.wrapping_add(j as u64);
                Ok::<Model, GpError>(Model::Kat(Box::new(KatGp::fit(src, xs, ys, &cfg)?)))
            } else {
                let mut cfg = config.gp.clone();
                cfg.seed = cfg.seed.wrapping_add(j as u64);
                Ok(Model::Gp(Box::new(Gp::fit(
                    KernelSpec::neuk(dim),
                    xs,
                    ys,
                    &cfg,
                )?)))
            }
        });
        let mut models = Vec::with_capacity(columns.len());
        for model in fitted {
            models.push(model?);
        }
        Ok(MetricModels {
            models,
            specs: specs.to_vec(),
        })
    }

    /// Updates every surrogate to the grown dataset — the per-BO-iteration
    /// path. Each column takes [`Model::update`]'s incremental route
    /// (rank-k factor extension + warm-started hyperparameters) whenever
    /// the archive only gained rows, which is the steady state of the BO
    /// loop; columns whose history was retro-imputed fall back to a full
    /// refit automatically.
    ///
    /// # Errors
    ///
    /// Propagates fitting failures.
    pub fn update(
        &mut self,
        xs: &[Vec<f64>],
        columns: &[Vec<f64>],
        config: &ModelConfig,
    ) -> Result<(), GpError> {
        let mut pairs: Vec<(&mut Model, &Vec<f64>)> = self.models.iter_mut().zip(columns).collect();
        let results = kato_par::par_map_mut(&mut pairs, |(model, ys)| model.update(xs, ys, config));
        results.into_iter().collect()
    }

    /// Posterior of the signed objective (larger = better) at `x`.
    #[must_use]
    pub fn objective_posterior(&self, x: &[f64]) -> (f64, f64) {
        for spec in &self.specs {
            if let SpecKind::Objective(goal) = spec.kind {
                let (m, v) = self.models[spec.metric].predict(x);
                return match goal {
                    Goal::Maximize => (m, v),
                    Goal::Minimize => (-m, v),
                };
            }
        }
        (0.0, 1.0)
    }

    /// Batched form of [`MetricModels::objective_posterior`]: the signed
    /// objective posterior at every query point, served by one
    /// [`Model::predict_batch`] call.
    #[must_use]
    pub fn objective_posterior_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        for spec in &self.specs {
            if let SpecKind::Objective(goal) = spec.kind {
                let preds = self.models[spec.metric].predict_batch(xs);
                return match goal {
                    Goal::Maximize => preds,
                    Goal::Minimize => preds.into_iter().map(|(m, v)| (-m, v)).collect(),
                };
            }
        }
        vec![(0.0, 1.0); xs.len()]
    }

    /// Batched form of [`MetricModels::margin_posteriors`]: one margin
    /// vector per query point (outer index = point, inner = constraint in
    /// spec order), with each constraint's surrogate invoked once for the
    /// whole batch.
    #[must_use]
    pub fn margin_posteriors_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<(f64, f64)>> {
        let mut out = vec![Vec::new(); xs.len()];
        for spec in &self.specs {
            match spec.kind {
                SpecKind::GreaterEq(b) => {
                    let preds = self.models[spec.metric].predict_batch(xs);
                    for (margins, (m, v)) in out.iter_mut().zip(preds) {
                        margins.push((m - b, v));
                    }
                }
                SpecKind::LessEq(b) => {
                    let preds = self.models[spec.metric].predict_batch(xs);
                    for (margins, (m, v)) in out.iter_mut().zip(preds) {
                        margins.push((b - m, v));
                    }
                }
                SpecKind::Objective(_) => {}
            }
        }
        out
    }

    /// Posteriors of every constraint margin (non-negative = satisfied).
    #[must_use]
    pub fn margin_posteriors(&self, x: &[f64]) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for spec in &self.specs {
            match spec.kind {
                SpecKind::GreaterEq(b) => {
                    let (m, v) = self.models[spec.metric].predict(x);
                    out.push((m - b, v));
                }
                SpecKind::LessEq(b) => {
                    let (m, v) = self.models[spec.metric].predict(x);
                    out.push((b - m, v));
                }
                SpecKind::Objective(_) => {}
            }
        }
        out
    }

    /// Access to the per-column models.
    #[must_use]
    pub fn models(&self) -> &[Model] {
        &self.models
    }

    /// The spec table these models serve.
    #[must_use]
    pub fn specs(&self) -> &[Spec] {
        &self.specs
    }
}

/// The spec table used in FOM mode: a single maximised column.
#[must_use]
pub fn fom_specs() -> Vec<Spec> {
    vec![Spec {
        metric: 0,
        kind: SpecKind::Objective(Goal::Maximize),
    }]
}

/// Fits one target-only Neuk GP per output column of a *source* archive —
/// the frozen knowledge bank handed to [`MetricModels::fit_kat`].
///
/// # Errors
///
/// Propagates GP fitting failures.
pub fn fit_source_gps(
    dim: usize,
    xs: &[Vec<f64>],
    columns: &[Vec<f64>],
    config: &ModelConfig,
) -> Result<Vec<Gp>, GpError> {
    let idx: Vec<usize> = (0..columns.len()).collect();
    kato_par::par_map(&idx, |&j| {
        let mut cfg = config.gp.clone();
        cfg.seed = cfg.seed.wrapping_add(100 + j as u64);
        Gp::fit(KernelSpec::neuk(dim), xs, &columns[j], &cfg)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato_gp::{GpConfig, KatConfig};

    fn toy_specs() -> Vec<Spec> {
        vec![
            Spec {
                metric: 0,
                kind: SpecKind::Objective(Goal::Minimize),
            },
            Spec {
                metric: 1,
                kind: SpecKind::GreaterEq(0.5),
            },
            Spec {
                metric: 2,
                kind: SpecKind::LessEq(0.8),
            },
        ]
    }

    /// Metrics: [x0+x1, x0, x1].
    fn toy_data(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                vec![t, (t * 3.7) % 1.0]
            })
            .collect();
        let columns = vec![
            xs.iter().map(|x| x[0] + x[1]).collect(),
            xs.iter().map(|x| x[0]).collect(),
            xs.iter().map(|x| x[1]).collect(),
        ];
        (xs, columns)
    }

    fn quick_cfg() -> ModelConfig {
        ModelConfig {
            gp: GpConfig::fast(),
            kat: KatConfig::fast(),
            ..ModelConfig::default()
        }
    }

    #[test]
    fn gp_models_predict_each_column() {
        let (xs, cols) = toy_data(14);
        let models = MetricModels::fit_gp(2, &xs, &cols, &toy_specs(), &quick_cfg()).unwrap();
        let (mean, _) = models.models()[1].predict(&[0.3, 0.7]);
        assert!((mean - 0.3).abs() < 0.2, "column-1 mean {mean}");
    }

    #[test]
    fn objective_posterior_is_signed() {
        let (xs, cols) = toy_data(14);
        let models = MetricModels::fit_gp(2, &xs, &cols, &toy_specs(), &quick_cfg()).unwrap();
        let (obj, _) = models.objective_posterior(&[0.5, 0.5]);
        // cost(0.5,0.5) = 1.0 → signed −1.
        assert!((obj + 1.0).abs() < 0.35, "signed objective {obj}");
    }

    #[test]
    fn margin_posteriors_follow_spec_sense() {
        let (xs, cols) = toy_data(14);
        let models = MetricModels::fit_gp(2, &xs, &cols, &toy_specs(), &quick_cfg()).unwrap();
        let margins = models.margin_posteriors(&[0.9, 0.1]);
        assert_eq!(margins.len(), 2);
        assert!((margins[0].0 - 0.4).abs() < 0.3, "{margins:?}");
        assert!((margins[1].0 - 0.7).abs() < 0.3, "{margins:?}");
    }

    #[test]
    fn forest_models_work_too() {
        let (xs, cols) = toy_data(30);
        let models = MetricModels::fit_forest(&xs, &cols, &toy_specs(), &quick_cfg());
        let (m, v) = models.objective_posterior(&[0.5, 0.5]);
        assert!(m.is_finite() && v > 0.0);
    }

    #[test]
    fn kat_models_with_index_alignment_and_fallback() {
        let (xs, cols) = toy_data(16);
        let cfg = quick_cfg();
        // Source has only 2 columns → third target column falls back to GP.
        let sources = fit_source_gps(2, &xs, &cols[..2], &cfg).unwrap();
        assert_eq!(sources.len(), 2);
        let models = MetricModels::fit_kat(2, &sources, &xs, &cols, &toy_specs(), &cfg).unwrap();
        assert!(matches!(models.models()[0], Model::Kat(_)));
        assert!(matches!(models.models()[2], Model::Gp(_)));
        let (m, v) = models.objective_posterior(&[0.4, 0.6]);
        assert!(m.is_finite() && v > 0.0);
    }

    #[test]
    fn batched_posteriors_match_pointwise() {
        let (xs, cols) = toy_data(14);
        let cfg = quick_cfg();
        let queries: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![i as f64 / 8.0, (i as f64 * 2.3) % 1.0])
            .collect();
        // GP stack, KAT stack, and forest stack all honour the batch API.
        let gp_models = MetricModels::fit_gp(2, &xs, &cols, &toy_specs(), &cfg).unwrap();
        let sources = fit_source_gps(2, &xs, &cols[..2], &cfg).unwrap();
        let kat_models =
            MetricModels::fit_kat(2, &sources, &xs, &cols, &toy_specs(), &cfg).unwrap();
        let forest_models = MetricModels::fit_forest(&xs, &cols, &toy_specs(), &cfg);
        for models in [&gp_models, &kat_models, &forest_models] {
            let obj = models.objective_posterior_batch(&queries);
            let margins = models.margin_posteriors_batch(&queries);
            assert_eq!(obj.len(), queries.len());
            assert_eq!(margins.len(), queries.len());
            for (i, q) in queries.iter().enumerate() {
                let (m, v) = models.objective_posterior(q);
                assert!((obj[i].0 - m).abs() <= 1e-10 * (1.0 + m.abs()), "{m}");
                assert!((obj[i].1 - v).abs() <= 1e-10 * (1.0 + v.abs()), "{v}");
                let pm = models.margin_posteriors(q);
                assert_eq!(margins[i].len(), pm.len());
                for (a, b) in margins[i].iter().zip(&pm) {
                    assert!((a.0 - b.0).abs() <= 1e-10 * (1.0 + b.0.abs()));
                    assert!((a.1 - b.1).abs() <= 1e-10 * (1.0 + b.1.abs()));
                }
            }
        }
        assert!(gp_models.objective_posterior_batch(&[]).is_empty());
    }

    #[test]
    fn update_refits_all() {
        let (xs, cols) = toy_data(10);
        let cfg = quick_cfg();
        let mut models = MetricModels::fit_gp(2, &xs, &cols, &toy_specs(), &cfg).unwrap();
        let (xs2, cols2) = toy_data(18);
        models.update(&xs2, &cols2, &cfg).unwrap();
        let (m, _) = models.objective_posterior(&[0.5, 0.5]);
        assert!(m.is_finite());
    }

    #[test]
    fn update_takes_append_path_on_grown_archive() {
        // Same prefix + new rows — the steady state of the BO loop. The
        // models must end up conditioned on all rows through the rank-k
        // append path (and the posterior must track the new region).
        let (xs, cols) = toy_data(12);
        let cfg = quick_cfg();
        let mut models = MetricModels::fit_gp(2, &xs, &cols, &toy_specs(), &cfg).unwrap();
        let mut xs2 = xs.clone();
        let mut cols2 = cols.clone();
        for i in 0..6 {
            let t = 1.0 + i as f64 * 0.05;
            xs2.push(vec![t, (t * 3.7) % 1.0]);
            let x = xs2.last().unwrap();
            cols2[0].push(x[0] + x[1]);
            cols2[1].push(x[0]);
            cols2[2].push(x[1]);
        }
        models.update(&xs2, &cols2, &cfg).unwrap();
        let q = [1.2, (1.2 * 3.7) % 1.0];
        let (m, _) = models.models()[1].predict(&q);
        assert!((m - 1.2).abs() < 0.3, "column-1 tracks appended rows: {m}");
    }

    #[test]
    fn fom_specs_single_maximise() {
        let s = fom_specs();
        assert_eq!(s.len(), 1);
        assert!(matches!(s[0].kind, SpecKind::Objective(Goal::Maximize)));
    }

    #[test]
    fn metric_columns_transpose() {
        use kato_circuits::Metrics;
        let m1 = Metrics::new(vec![1.0, 2.0]);
        let m2 = Metrics::new(vec![3.0, 4.0]);
        let cols = metric_columns(&[&m1, &m2]);
        assert_eq!(cols, vec![vec![1.0, 3.0], vec![2.0, 4.0]]);
    }
}
