use kato_circuits::{Goal, Metrics, Spec, SpecKind};
use kato_forest::{ForestConfig, RandomForest};
use kato_gp::{Gp, GpConfig, GpError, KatConfig, KatGp, KernelSpec};

/// Configuration bundle for (re)fitting the per-output surrogates.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// GP fit configuration.
    pub gp: GpConfig,
    /// KAT-GP fit configuration.
    pub kat: KatConfig,
    /// Random-forest configuration (SMAC baseline).
    pub forest: ForestConfig,
    /// Use the Neural Kernel (`true`, KATO's NeukGP) or ARD-RBF (`false`,
    /// plain-GP baselines).
    pub neuk: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            gp: GpConfig::default(),
            kat: KatConfig::default(),
            forest: ForestConfig::default(),
            neuk: true,
        }
    }
}

/// One scalar surrogate: Neuk/ARD GP, transferred KAT-GP, or random forest.
#[derive(Debug, Clone)]
pub enum Model {
    /// Target-only Gaussian process.
    Gp(Box<Gp>),
    /// Knowledge-aligned transfer GP.
    Kat(Box<KatGp>),
    /// Random forest (SMAC surrogate).
    Forest(Box<RandomForest>),
}

impl Model {
    /// Posterior mean and variance at `x`.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        match self {
            Model::Gp(gp) => gp.predict(x),
            Model::Kat(kat) => kat.predict(x),
            Model::Forest(f) => f.predict(x),
        }
    }

    /// Refits on an updated dataset (warm-started where supported).
    ///
    /// # Errors
    ///
    /// Propagates surrogate fitting failures.
    pub fn update(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &ModelConfig,
    ) -> Result<(), GpError> {
        match self {
            Model::Gp(gp) => gp.refit(xs, ys, &config.gp),
            Model::Kat(kat) => kat.refit(xs, ys, &config.kat),
            Model::Forest(f) => {
                **f = RandomForest::fit(xs, ys, &config.forest);
                Ok(())
            }
        }
    }
}

/// Extracts per-metric output columns from an archive of metric vectors.
#[must_use]
pub fn metric_columns(metrics: &[&Metrics]) -> Vec<Vec<f64>> {
    let n_outputs = metrics.first().map_or(0, |m| m.values().len());
    (0..n_outputs)
        .map(|j| metrics.iter().map(|m| m.get(j)).collect())
        .collect()
}

/// Per-output surrogate stack plus the spec table needed to turn output
/// posteriors into objective/constraint posteriors.
///
/// Every optimizer in this crate models raw output columns (one surrogate
/// per column) and derives the signed objective and constraint margins at
/// acquisition time, so the same models serve EI/PI/UCB and PF. In FOM mode
/// there is a single column (the FOM value) and a single maximise spec.
#[derive(Debug, Clone)]
pub struct MetricModels {
    models: Vec<Model>,
    specs: Vec<Spec>,
}

impl MetricModels {
    /// Fits target-only GPs (Neuk or ARD per `config.neuk`) for every
    /// column.
    ///
    /// # Errors
    ///
    /// Propagates GP fitting failures.
    pub fn fit_gp(
        dim: usize,
        xs: &[Vec<f64>],
        columns: &[Vec<f64>],
        specs: &[Spec],
        config: &ModelConfig,
    ) -> Result<MetricModels, GpError> {
        let mut models = Vec::with_capacity(columns.len());
        for (j, ys) in columns.iter().enumerate() {
            let kernel = if config.neuk {
                KernelSpec::neuk(dim)
            } else {
                KernelSpec::ard_rbf(dim)
            };
            let mut cfg = config.gp.clone();
            cfg.seed = cfg.seed.wrapping_add(j as u64);
            models.push(Model::Gp(Box::new(Gp::fit(kernel, xs, ys, &cfg)?)));
        }
        Ok(MetricModels {
            models,
            specs: specs.to_vec(),
        })
    }

    /// Fits random forests for every column (SMAC baseline).
    #[must_use]
    pub fn fit_forest(
        xs: &[Vec<f64>],
        columns: &[Vec<f64>],
        specs: &[Spec],
        config: &ModelConfig,
    ) -> MetricModels {
        let mut models = Vec::with_capacity(columns.len());
        for (j, ys) in columns.iter().enumerate() {
            let mut cfg = config.forest.clone();
            cfg.seed = cfg.seed.wrapping_add(j as u64);
            models.push(Model::Forest(Box::new(RandomForest::fit(xs, ys, &cfg))));
        }
        MetricModels {
            models,
            specs: specs.to_vec(),
        }
    }

    /// Fits KAT-GPs transferred from per-column source GPs. Columns are
    /// aligned by index; target columns beyond the source's count fall back
    /// to target-only Neuk GPs.
    ///
    /// # Errors
    ///
    /// Propagates fitting failures.
    pub fn fit_kat(
        dim: usize,
        source: &[Gp],
        xs: &[Vec<f64>],
        columns: &[Vec<f64>],
        specs: &[Spec],
        config: &ModelConfig,
    ) -> Result<MetricModels, GpError> {
        let mut models = Vec::with_capacity(columns.len());
        for (j, ys) in columns.iter().enumerate() {
            if let Some(src) = source.get(j) {
                let mut cfg = config.kat.clone();
                cfg.seed = cfg.seed.wrapping_add(j as u64);
                models.push(Model::Kat(Box::new(KatGp::fit(src, xs, ys, &cfg)?)));
            } else {
                let mut cfg = config.gp.clone();
                cfg.seed = cfg.seed.wrapping_add(j as u64);
                models.push(Model::Gp(Box::new(Gp::fit(
                    KernelSpec::neuk(dim),
                    xs,
                    ys,
                    &cfg,
                )?)));
            }
        }
        Ok(MetricModels {
            models,
            specs: specs.to_vec(),
        })
    }

    /// Refits every surrogate on the updated dataset.
    ///
    /// # Errors
    ///
    /// Propagates fitting failures.
    pub fn update(
        &mut self,
        xs: &[Vec<f64>],
        columns: &[Vec<f64>],
        config: &ModelConfig,
    ) -> Result<(), GpError> {
        for (model, ys) in self.models.iter_mut().zip(columns) {
            model.update(xs, ys, config)?;
        }
        Ok(())
    }

    /// Posterior of the signed objective (larger = better) at `x`.
    #[must_use]
    pub fn objective_posterior(&self, x: &[f64]) -> (f64, f64) {
        for spec in &self.specs {
            if let SpecKind::Objective(goal) = spec.kind {
                let (m, v) = self.models[spec.metric].predict(x);
                return match goal {
                    Goal::Maximize => (m, v),
                    Goal::Minimize => (-m, v),
                };
            }
        }
        (0.0, 1.0)
    }

    /// Posteriors of every constraint margin (non-negative = satisfied).
    #[must_use]
    pub fn margin_posteriors(&self, x: &[f64]) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for spec in &self.specs {
            match spec.kind {
                SpecKind::GreaterEq(b) => {
                    let (m, v) = self.models[spec.metric].predict(x);
                    out.push((m - b, v));
                }
                SpecKind::LessEq(b) => {
                    let (m, v) = self.models[spec.metric].predict(x);
                    out.push((b - m, v));
                }
                SpecKind::Objective(_) => {}
            }
        }
        out
    }

    /// Access to the per-column models.
    #[must_use]
    pub fn models(&self) -> &[Model] {
        &self.models
    }

    /// The spec table these models serve.
    #[must_use]
    pub fn specs(&self) -> &[Spec] {
        &self.specs
    }
}

/// The spec table used in FOM mode: a single maximised column.
#[must_use]
pub fn fom_specs() -> Vec<Spec> {
    vec![Spec {
        metric: 0,
        kind: SpecKind::Objective(Goal::Maximize),
    }]
}

/// Fits one target-only Neuk GP per output column of a *source* archive —
/// the frozen knowledge bank handed to [`MetricModels::fit_kat`].
///
/// # Errors
///
/// Propagates GP fitting failures.
pub fn fit_source_gps(
    dim: usize,
    xs: &[Vec<f64>],
    columns: &[Vec<f64>],
    config: &ModelConfig,
) -> Result<Vec<Gp>, GpError> {
    let mut out = Vec::with_capacity(columns.len());
    for (j, ys) in columns.iter().enumerate() {
        let mut cfg = config.gp.clone();
        cfg.seed = cfg.seed.wrapping_add(100 + j as u64);
        out.push(Gp::fit(KernelSpec::neuk(dim), xs, ys, &cfg)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato_gp::{GpConfig, KatConfig};

    fn toy_specs() -> Vec<Spec> {
        vec![
            Spec {
                metric: 0,
                kind: SpecKind::Objective(Goal::Minimize),
            },
            Spec {
                metric: 1,
                kind: SpecKind::GreaterEq(0.5),
            },
            Spec {
                metric: 2,
                kind: SpecKind::LessEq(0.8),
            },
        ]
    }

    /// Metrics: [x0+x1, x0, x1].
    fn toy_data(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                vec![t, (t * 3.7) % 1.0]
            })
            .collect();
        let columns = vec![
            xs.iter().map(|x| x[0] + x[1]).collect(),
            xs.iter().map(|x| x[0]).collect(),
            xs.iter().map(|x| x[1]).collect(),
        ];
        (xs, columns)
    }

    fn quick_cfg() -> ModelConfig {
        ModelConfig {
            gp: GpConfig::fast(),
            kat: KatConfig::fast(),
            ..ModelConfig::default()
        }
    }

    #[test]
    fn gp_models_predict_each_column() {
        let (xs, cols) = toy_data(14);
        let models = MetricModels::fit_gp(2, &xs, &cols, &toy_specs(), &quick_cfg()).unwrap();
        let (mean, _) = models.models()[1].predict(&[0.3, 0.7]);
        assert!((mean - 0.3).abs() < 0.2, "column-1 mean {mean}");
    }

    #[test]
    fn objective_posterior_is_signed() {
        let (xs, cols) = toy_data(14);
        let models = MetricModels::fit_gp(2, &xs, &cols, &toy_specs(), &quick_cfg()).unwrap();
        let (obj, _) = models.objective_posterior(&[0.5, 0.5]);
        // cost(0.5,0.5) = 1.0 → signed −1.
        assert!((obj + 1.0).abs() < 0.35, "signed objective {obj}");
    }

    #[test]
    fn margin_posteriors_follow_spec_sense() {
        let (xs, cols) = toy_data(14);
        let models = MetricModels::fit_gp(2, &xs, &cols, &toy_specs(), &quick_cfg()).unwrap();
        let margins = models.margin_posteriors(&[0.9, 0.1]);
        assert_eq!(margins.len(), 2);
        assert!((margins[0].0 - 0.4).abs() < 0.3, "{margins:?}");
        assert!((margins[1].0 - 0.7).abs() < 0.3, "{margins:?}");
    }

    #[test]
    fn forest_models_work_too() {
        let (xs, cols) = toy_data(30);
        let models = MetricModels::fit_forest(&xs, &cols, &toy_specs(), &quick_cfg());
        let (m, v) = models.objective_posterior(&[0.5, 0.5]);
        assert!(m.is_finite() && v > 0.0);
    }

    #[test]
    fn kat_models_with_index_alignment_and_fallback() {
        let (xs, cols) = toy_data(16);
        let cfg = quick_cfg();
        // Source has only 2 columns → third target column falls back to GP.
        let sources = fit_source_gps(2, &xs, &cols[..2], &cfg).unwrap();
        assert_eq!(sources.len(), 2);
        let models = MetricModels::fit_kat(2, &sources, &xs, &cols, &toy_specs(), &cfg).unwrap();
        assert!(matches!(models.models()[0], Model::Kat(_)));
        assert!(matches!(models.models()[2], Model::Gp(_)));
        let (m, v) = models.objective_posterior(&[0.4, 0.6]);
        assert!(m.is_finite() && v > 0.0);
    }

    #[test]
    fn update_refits_all() {
        let (xs, cols) = toy_data(10);
        let cfg = quick_cfg();
        let mut models = MetricModels::fit_gp(2, &xs, &cols, &toy_specs(), &cfg).unwrap();
        let (xs2, cols2) = toy_data(18);
        models.update(&xs2, &cols2, &cfg).unwrap();
        let (m, _) = models.objective_posterior(&[0.5, 0.5]);
        assert!(m.is_finite());
    }

    #[test]
    fn fom_specs_single_maximise() {
        let s = fom_specs();
        assert_eq!(s.len(), 1);
        assert!(matches!(s[0].kind, SpecKind::Objective(Goal::Maximize)));
    }

    #[test]
    fn metric_columns_transpose() {
        use kato_circuits::Metrics;
        let m1 = Metrics::new(vec![1.0, 2.0]);
        let m2 = Metrics::new(vec![3.0, 4.0]);
        let cols = metric_columns(&[&m1, &m2]);
        assert_eq!(cols, vec![vec![1.0, 3.0], vec![2.0, 4.0]]);
    }
}
