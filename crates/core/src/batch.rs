//! Population-level evaluation: sharding [`SizingProblem::evaluate_batch`]
//! over the `kato_par` pool, with a streaming path for uneven workloads.
//!
//! Everything the optimizer simulates — random init, MACE proposal
//! batches, source archives, corner sweeps — arrives as a *population*,
//! not a single design. This module is the one place those populations
//! meet the thread pool, and it picks between two schedules:
//!
//! * **Chunked** (the default): contiguous shards of the population go to
//!   [`SizingProblem::evaluate_batch`], one shard per worker, and the
//!   per-shard outputs are concatenated in input order. Best locality and
//!   one sync point — right when every candidate costs about the same.
//! * **Streaming** (when [`SizingProblem::streaming_hint`] is `true`):
//!   candidates flow one at a time through `kato_par::par_map_dynamic` —
//!   each worker claims the next unevaluated candidate the moment it
//!   finishes its current one. Right when per-candidate cost is heavily
//!   data-dependent, e.g. Monte-Carlo yield with early abort, where an
//!   infeasible candidate stops after its first spec kill while a feasible
//!   one consumes the full `corners × samples` budget. Under chunking,
//!   one shard that happens to collect the expensive candidates becomes
//!   the critical path and every other worker idles behind it; streaming
//!   turns that worst case into near-ideal load balance.
//!
//! Either way the result is **bitwise identical** to evaluating the
//! population serially, for *any* `KATO_THREADS`: `evaluate_batch` is
//! contractually identical to the scalar `evaluate` loop, both `kato_par`
//! entry points re-assemble results in input order, and problems are pure
//! functions of the design vector. Seeded run traces therefore depend on
//! neither the machine's core count nor the schedule the hint selects —
//! `tests/integration_pipeline.rs` pins this equivalence.

use kato_circuits::{Metrics, SizingProblem};

/// Evaluates a population across the `kato_par` pool, routed by the
/// problem's [`SizingProblem::streaming_hint`]: contiguous chunked shards
/// for uniform-cost problems, dynamic per-candidate streaming for
/// uneven-cost ones (see the module docs).
///
/// Single-design (and empty) populations skip the pool entirely — the
/// spawn/join overhead would dwarf one simulator call.
///
/// # Panics
///
/// Panics (inside the problem) if any design's length does not match
/// `problem.dim()`.
pub fn evaluate_batch_sharded(problem: &dyn SizingProblem, xs: &[Vec<f64>]) -> Vec<Metrics> {
    if xs.len() <= 1 {
        return problem.evaluate_batch(xs);
    }
    if problem.streaming_hint() {
        return kato_par::par_map_dynamic(xs, |x| problem.evaluate(x));
    }
    kato_par::par_chunks(xs, |chunk| problem.evaluate_batch(chunk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato_circuits::{ScenarioRegistry, YieldSettings};

    #[test]
    fn sharded_matches_scalar_loop_bitwise() {
        let reg = ScenarioRegistry::standard();
        for name in ["opamp2", "switch", "varactor"] {
            let p = reg.build(name, None, None).unwrap();
            let xs: Vec<Vec<f64>> = (0..17)
                .map(|i| {
                    (0..p.dim())
                        .map(|j| ((i * 31 + j * 7) % 100) as f64 / 100.0)
                        .collect()
                })
                .collect();
            let scalar: Vec<Metrics> = xs.iter().map(|x| p.evaluate(x)).collect();
            assert_eq!(evaluate_batch_sharded(p.as_ref(), &xs), scalar, "{name}");
        }
    }

    #[test]
    fn streaming_route_matches_scalar_loop_bitwise() {
        let reg = ScenarioRegistry::standard();
        let s = reg.get("switch").unwrap();
        let y = s
            .build_yield(
                "180nm",
                None,
                YieldSettings {
                    samples: 4,
                    threshold: 0.5,
                    seed: 9,
                    ..YieldSettings::default()
                },
            )
            .unwrap();
        assert!(y.streaming_hint());
        let xs: Vec<Vec<f64>> = (0..9)
            .map(|i| {
                (0..y.dim())
                    .map(|j| ((i * 13 + j * 5) % 10) as f64 / 10.0)
                    .collect()
            })
            .collect();
        let scalar: Vec<Metrics> = xs.iter().map(|x| y.evaluate(x)).collect();
        assert_eq!(evaluate_batch_sharded(&y, &xs), scalar);
    }

    #[test]
    fn degenerate_populations() {
        let reg = ScenarioRegistry::standard();
        let p = reg.build("switch", None, None).unwrap();
        assert!(evaluate_batch_sharded(p.as_ref(), &[]).is_empty());
        let one = vec![vec![0.5, 0.5]];
        assert_eq!(
            evaluate_batch_sharded(p.as_ref(), &one),
            vec![p.evaluate(&one[0])]
        );
    }
}
