//! Population-level evaluation: sharding [`SizingProblem::evaluate_batch`]
//! over the `kato_par` pool.
//!
//! Everything the optimizer simulates — random init, MACE proposal
//! batches, source archives, corner sweeps — arrives as a *population*,
//! not a single design. This module is the one place those populations
//! meet the thread pool: contiguous shards of the population go to
//! [`SizingProblem::evaluate_batch`], one shard per worker, and the
//! per-shard outputs are concatenated in input order.
//!
//! Because `evaluate_batch` is contractually bitwise-identical to the
//! scalar `evaluate` loop, and `kato_par::par_chunks` re-assembles shards
//! in input order, the sharded result is bitwise-identical to evaluating
//! the population serially — for *any* `KATO_THREADS`. Seeded run traces
//! therefore do not depend on the machine's core count.

use kato_circuits::{Metrics, SizingProblem};

/// Evaluates a population through the problem's batch path, sharded across
/// the `kato_par` pool.
///
/// Single-design (and empty) populations skip the pool entirely — the
/// spawn/join overhead would dwarf one simulator call.
///
/// # Panics
///
/// Panics (inside the problem) if any design's length does not match
/// `problem.dim()`.
pub fn evaluate_batch_sharded(problem: &dyn SizingProblem, xs: &[Vec<f64>]) -> Vec<Metrics> {
    if xs.len() <= 1 {
        return problem.evaluate_batch(xs);
    }
    kato_par::par_chunks(xs, |chunk| problem.evaluate_batch(chunk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kato_circuits::ScenarioRegistry;

    #[test]
    fn sharded_matches_scalar_loop_bitwise() {
        let reg = ScenarioRegistry::standard();
        for name in ["opamp2", "switch", "varactor"] {
            let p = reg.build(name, None, None).unwrap();
            let xs: Vec<Vec<f64>> = (0..17)
                .map(|i| {
                    (0..p.dim())
                        .map(|j| ((i * 31 + j * 7) % 100) as f64 / 100.0)
                        .collect()
                })
                .collect();
            let scalar: Vec<Metrics> = xs.iter().map(|x| p.evaluate(x)).collect();
            assert_eq!(evaluate_batch_sharded(p.as_ref(), &xs), scalar, "{name}");
        }
    }

    #[test]
    fn degenerate_populations() {
        let reg = ScenarioRegistry::standard();
        let p = reg.build("switch", None, None).unwrap();
        assert!(evaluate_batch_sharded(p.as_ref(), &[]).is_empty());
        let one = vec![vec![0.5, 0.5]];
        assert_eq!(
            evaluate_batch_sharded(p.as_ref(), &one),
            vec![p.evaluate(&one[0])]
        );
    }
}
