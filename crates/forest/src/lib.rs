#![warn(missing_docs)]

//! Random-forest regression with cross-tree uncertainty — the surrogate
//! behind the SMAC-RF baseline of the KATO paper (§4.1 compares against
//! SMAC).
//!
//! A [`RandomForest`] is a bagged ensemble of CART regression trees with
//! variance-reduction splits and per-split feature subsampling. The ensemble
//! mean is the prediction; the spread across trees provides the uncertainty
//! estimate that SMAC's expected-improvement acquisition consumes.
//!
//! # Example
//!
//! ```
//! use kato_forest::{ForestConfig, RandomForest};
//!
//! let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
//! let forest = RandomForest::fit(&xs, &ys, &ForestConfig::default());
//! let (mean, var) = forest.predict(&[0.5]);
//! assert!((mean - 0.25).abs() < 0.1);
//! assert!(var >= 0.0);
//! ```

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration for [`RandomForest::fit`].
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Minimum samples in a leaf.
    pub min_leaf: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Fraction of features considered per split (`0 < f <= 1`).
    pub feature_fraction: f64,
    /// RNG seed for bootstrap and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 30,
            min_leaf: 2,
            max_depth: 16,
            feature_fraction: 0.8,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: &mut [usize],
        config: &ForestConfig,
        rng: &mut StdRng,
    ) -> Tree {
        let mut tree = Tree { nodes: Vec::new() };
        tree.build(xs, ys, idx, 0, config, rng);
        tree
    }

    fn build(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: &mut [usize],
        depth: usize,
        config: &ForestConfig,
        rng: &mut StdRng,
    ) -> usize {
        let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64;
        if idx.len() < 2 * config.min_leaf || depth >= config.max_depth {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let dim = xs[0].len();
        let n_try = ((dim as f64 * config.feature_fraction).ceil() as usize).clamp(1, dim);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let total_sq: f64 = idx.iter().map(|&i| (ys[i] - mean) * (ys[i] - mean)).sum();

        // Random feature subset (partial Fisher-Yates).
        let mut feats: Vec<usize> = (0..dim).collect();
        for i in 0..n_try {
            let j = rng.gen_range(i..dim);
            feats.swap(i, j);
        }
        for &f in &feats[..n_try] {
            // NaN feature values sort last instead of aborting the fit.
            idx.sort_by(|&a, &b| kato_linalg::cmp_nan_last(&xs[a][f], &xs[b][f]));
            let total_sum: f64 = idx.iter().map(|&i| ys[i]).sum();
            let total_sqs: f64 = idx.iter().map(|&i| ys[i] * ys[i]).sum();
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for k in 0..idx.len() - 1 {
                let y = ys[idx[k]];
                left_sum += y;
                left_sq += y * y;
                if (k + 1) < config.min_leaf || (idx.len() - k - 1) < config.min_leaf {
                    continue;
                }
                if xs[idx[k]][f] == xs[idx[k + 1]][f] {
                    continue;
                }
                let nl = (k + 1) as f64;
                let nr = (idx.len() - k - 1) as f64;
                let right_sum = total_sum - left_sum;
                let right_sq = total_sqs - left_sq;
                let sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                let gain = total_sq - sse;
                if best.is_none_or(|(b, _, _)| gain > b) && gain > 1e-12 {
                    let thr = 0.5 * (xs[idx[k]][f] + xs[idx[k + 1]][f]);
                    best = Some((gain, f, thr));
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };
        let split_at = stable_partition(idx, |&i| xs[i][feature] <= threshold);
        if split_at == 0 || split_at == idx.len() {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        // Reserve the parent slot, then build children.
        self.nodes.push(Node::Leaf { value: mean });
        let slot = self.nodes.len() - 1;
        let (left_idx, right_idx) = idx.split_at_mut(split_at);
        let left = self.build(xs, ys, left_idx, depth + 1, config, rng);
        let right = self.build(xs, ys, right_idx, depth + 1, config, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    fn predict(&self, x: &[f64], root: usize) -> f64 {
        let mut node = root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Stable in-place partition; returns how many elements satisfy the
/// predicate (they end up first).
fn stable_partition<T: Copy, F: Fn(&T) -> bool>(slice: &mut [T], pred: F) -> usize {
    let mut keep: Vec<T> = Vec::with_capacity(slice.len());
    let mut rest: Vec<T> = Vec::with_capacity(slice.len());
    for &v in slice.iter() {
        if pred(&v) {
            keep.push(v);
        } else {
            rest.push(v);
        }
    }
    let k = keep.len();
    slice[..k].copy_from_slice(&keep);
    slice[k..].copy_from_slice(&rest);
    k
}

/// Bagged random-forest regressor with cross-tree variance.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<(Tree, usize)>,
    dim: usize,
}

impl RandomForest {
    /// Fits the ensemble on `(xs, ys)` with bootstrap resampling.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty, ragged, or its length differs from `ys`.
    #[must_use]
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: &ForestConfig) -> RandomForest {
        assert!(!xs.is_empty(), "RandomForest::fit on empty data");
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        let dim = xs[0].len();
        assert!(xs.iter().all(|r| r.len() == dim), "ragged inputs");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = xs.len();
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            let mut idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let tree = Tree::fit(xs, ys, &mut idx, config, &mut rng);
            // The top-level build call always creates its node first, so the
            // root is index 0... except children are pushed after the parent
            // slot is reserved — the root slot is the first node created.
            trees.push((tree, 0));
        }
        RandomForest { trees, dim }
    }

    /// Ensemble mean and cross-tree variance at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.dim, "predict: dimension mismatch");
        let preds: Vec<f64> = self
            .trees
            .iter()
            .map(|(t, root)| t.predict(x, *root))
            .collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / preds.len() as f64;
        (mean, var.max(1e-12))
    }

    /// Number of trees.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// `true` if the ensemble has no trees.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 59.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] < 0.5 { 1.0 } else { 3.0 })
            .collect();
        (xs, ys)
    }

    #[test]
    fn learns_step_function() {
        let (xs, ys) = step_data();
        let f = RandomForest::fit(&xs, &ys, &ForestConfig::default());
        assert!((f.predict(&[0.2]).0 - 1.0).abs() < 0.3);
        assert!((f.predict(&[0.8]).0 - 3.0).abs() < 0.3);
    }

    #[test]
    fn uncertainty_peaks_at_discontinuity() {
        let (xs, ys) = step_data();
        let f = RandomForest::fit(&xs, &ys, &ForestConfig::default());
        let (_, v_edge) = f.predict(&[0.5]);
        let (_, v_flat) = f.predict(&[0.1]);
        assert!(v_edge > v_flat, "edge {v_edge} vs flat {v_flat}");
    }

    #[test]
    fn multivariate_ignores_irrelevant_feature() {
        let xs: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![(i % 10) as f64 / 9.0, (i / 10) as f64 / 7.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x[0]).collect();
        let f = RandomForest::fit(&xs, &ys, &ForestConfig::default());
        let a = f.predict(&[0.3, 0.1]).0;
        let b = f.predict(&[0.3, 0.9]).0;
        assert!((a - b).abs() < 0.8, "{a} vs {b}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = step_data();
        let a = RandomForest::fit(&xs, &ys, &ForestConfig::default());
        let b = RandomForest::fit(&xs, &ys, &ForestConfig::default());
        assert_eq!(a.predict(&[0.37]), b.predict(&[0.37]));
    }

    #[test]
    fn single_point_dataset() {
        let f = RandomForest::fit(&[vec![0.5]], &[2.0], &ForestConfig::default());
        assert_eq!(f.predict(&[0.1]).0, 2.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let (xs, ys) = step_data();
        let f = RandomForest::fit(&xs, &ys, &ForestConfig::default());
        let _ = f.predict(&[0.1, 0.2]);
    }

    #[test]
    fn partition_helper_is_stable() {
        let mut v = [1, 5, 2, 6, 3];
        let k = stable_partition(&mut v, |&x| x < 4);
        assert_eq!(k, 3);
        assert_eq!(&v[..3], &[1, 2, 3]);
        assert_eq!(&v[3..], &[5, 6]);
    }

    proptest! {
        #[test]
        fn prop_prediction_within_target_range(
            ys in proptest::collection::vec(-10.0..10.0f64, 10..40),
            q in 0.0..1.0f64,
        ) {
            let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64 / ys.len() as f64]).collect();
            let f = RandomForest::fit(&xs, &ys, &ForestConfig { n_trees: 10, ..ForestConfig::default() });
            let (m, _) = f.predict(&[q]);
            let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }
}
