use crate::netlist::{diode_iv, mos_iv, Circuit, Element, MosType, NodeId};
use crate::{DcSolution, MnaError};
use kato_linalg::{Complex64, ComplexLu};

/// A logarithmic frequency grid for AC analysis.
///
/// # Example
///
/// ```
/// use kato_mna::AcSweep;
///
/// let sweep = AcSweep::log(1.0, 1e6, 7);
/// assert_eq!(sweep.freqs().len(), 7);
/// assert!((sweep.freqs()[1] - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AcSweep {
    freqs: Vec<f64>,
}

impl AcSweep {
    /// Geometrically spaced frequencies from `f_start` to `f_stop` Hz.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f_start <= f_stop` and `points >= 2`.
    #[must_use]
    pub fn log(f_start: f64, f_stop: f64, points: usize) -> Self {
        assert!(
            f_start > 0.0 && f_stop >= f_start && points >= 2,
            "invalid AC sweep specification"
        );
        let l0 = f_start.ln();
        let l1 = f_stop.ln();
        let freqs = (0..points)
            .map(|i| (l0 + (l1 - l0) * i as f64 / (points - 1) as f64).exp())
            .collect();
        AcSweep { freqs }
    }

    /// The frequency grid, Hz.
    #[must_use]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }
}

/// Frequency response `H(jω)` at one observation node.
#[derive(Debug, Clone)]
pub struct BodeData {
    freqs: Vec<f64>,
    response: Vec<Complex64>,
}

impl BodeData {
    /// Creates Bode data from parallel frequency/response arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays differ in length or are empty.
    #[must_use]
    pub fn new(freqs: Vec<f64>, response: Vec<Complex64>) -> Self {
        assert_eq!(freqs.len(), response.len(), "bode arrays length mismatch");
        assert!(!freqs.is_empty(), "bode data must be non-empty");
        BodeData { freqs, response }
    }

    /// Frequency grid, Hz.
    #[must_use]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Complex response samples.
    #[must_use]
    pub fn response(&self) -> &[Complex64] {
        &self.response
    }

    /// Magnitude in dB at sample `i`.
    #[must_use]
    pub fn mag_db(&self, i: usize) -> f64 {
        20.0 * self.response[i].abs().max(1e-300).log10()
    }

    /// All magnitudes in dB.
    #[must_use]
    pub fn mags_db(&self) -> Vec<f64> {
        (0..self.freqs.len()).map(|i| self.mag_db(i)).collect()
    }

    /// Gain at the lowest swept frequency, dB.
    #[must_use]
    pub fn dc_gain_db(&self) -> f64 {
        self.mag_db(0)
    }

    /// Phase in degrees, unwrapped so consecutive samples never jump by more
    /// than 180°.
    #[must_use]
    pub fn phases_deg_unwrapped(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.response.len());
        let mut prev = self.response[0].arg().to_degrees();
        out.push(prev);
        for z in &self.response[1..] {
            let mut p = z.arg().to_degrees();
            while p - prev > 180.0 {
                p -= 360.0;
            }
            while p - prev < -180.0 {
                p += 360.0;
            }
            out.push(p);
            prev = p;
        }
        out
    }

    /// Magnitude (dB) at an arbitrary frequency by log-frequency linear
    /// interpolation; clamps outside the sweep range.
    #[must_use]
    pub fn interpolate_mag_db(&self, f: f64) -> f64 {
        interp_log_f(&self.freqs, &self.mags_db(), f)
    }

    /// Unwrapped phase (deg) at an arbitrary frequency; clamps outside the
    /// sweep range.
    #[must_use]
    pub fn interpolate_phase_deg(&self, f: f64) -> f64 {
        interp_log_f(&self.freqs, &self.phases_deg_unwrapped(), f)
    }
}

/// Linear interpolation of `(freqs, ys)` in log-frequency, clamped at the
/// grid edges.
pub(crate) fn interp_log_f(freqs: &[f64], ys: &[f64], f: f64) -> f64 {
    if f <= freqs[0] {
        return ys[0];
    }
    if f >= *freqs.last().expect("non-empty") {
        return *ys.last().expect("non-empty");
    }
    let lf = f.ln();
    for i in 1..freqs.len() {
        if f <= freqs[i] {
            let l0 = freqs[i - 1].ln();
            let l1 = freqs[i].ln();
            let t = (lf - l0) / (l1 - l0);
            return ys[i - 1] * (1.0 - t) + ys[i] * t;
        }
    }
    *ys.last().expect("non-empty")
}

impl Circuit {
    /// Small-signal transfer function from the circuit's AC sources to
    /// `out`, over `sweep`. For nonlinear circuits the DC operating point is
    /// computed first.
    ///
    /// # Errors
    ///
    /// Propagates DC convergence failures and singular AC systems.
    pub fn ac_transfer(&self, out: NodeId, sweep: &AcSweep) -> Result<BodeData, MnaError> {
        let dc = if self.is_nonlinear() {
            Some(self.dc()?)
        } else {
            None
        };
        self.ac_transfer_at(dc.as_ref(), out, sweep)
    }

    /// Like [`Circuit::ac_transfer`] but reusing a previously computed DC
    /// operating point (required when the caller also needs DC data, avoids
    /// a second Newton solve).
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::SingularSystem`] if the small-signal matrix is
    /// singular at some frequency.
    pub fn ac_transfer_at(
        &self,
        dc: Option<&DcSolution>,
        out: NodeId,
        sweep: &AcSweep,
    ) -> Result<BodeData, MnaError> {
        let n_nodes = self.node_count() - 1;
        let n_branch = self.branch_count();
        let dim = n_nodes + n_branch;
        let (g, c, rhs) = self.assemble_small_signal(dc, n_nodes, dim);

        let mut response = Vec::with_capacity(sweep.freqs().len());
        for &f in sweep.freqs() {
            let omega = 2.0 * std::f64::consts::PI * f;
            let mut a: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; dim]; dim];
            for i in 0..dim {
                for j in 0..dim {
                    let gij = g[i][j];
                    let cij = c[i][j];
                    if gij != 0.0 || cij != 0.0 {
                        a[i][j] = Complex64::new(gij, omega * cij);
                    }
                }
            }
            let lu = ComplexLu::new(a).map_err(|_| MnaError::SingularSystem { freq_hz: f })?;
            let x = lu.solve(&rhs);
            let h = if out.is_ground() {
                Complex64::ZERO
            } else {
                x[out.index() - 1]
            };
            response.push(h);
        }
        Ok(BodeData::new(sweep.freqs().to_vec(), response))
    }

    /// Builds the real conductance matrix `G`, capacitance matrix `C` and the
    /// AC excitation vector.
    #[allow(clippy::type_complexity)]
    fn assemble_small_signal(
        &self,
        dc: Option<&DcSolution>,
        n_nodes: usize,
        dim: usize,
    ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<Complex64>) {
        let mut g = vec![vec![0.0; dim]; dim];
        let mut c = vec![vec![0.0; dim]; dim];
        let mut rhs = vec![Complex64::ZERO; dim];
        let temp = self.temperature();

        let vdc = |node: NodeId| -> f64 {
            match dc {
                Some(sol) => sol.voltage(node),
                None => 0.0,
            }
        };
        let idx = |node: NodeId| -> Option<usize> {
            if node.is_ground() {
                None
            } else {
                Some(node.index() - 1)
            }
        };
        // Conductance stamp between two nodes.
        let stamp_g = |m: &mut Vec<Vec<f64>>, a: Option<usize>, b: Option<usize>, val: f64| {
            if let Some(i) = a {
                m[i][i] += val;
                if let Some(j) = b {
                    m[i][j] -= val;
                }
            }
            if let Some(i) = b {
                m[i][i] += val;
                if let Some(j) = a {
                    m[i][j] -= val;
                }
            }
        };
        // VCCS stamp: gm from (cp,cn) into (p out, n in).
        let stamp_gm = |m: &mut Vec<Vec<f64>>,
                        p: Option<usize>,
                        n: Option<usize>,
                        cp: Option<usize>,
                        cn: Option<usize>,
                        gm: f64| {
            for (out, sign) in [(p, 1.0), (n, -1.0)] {
                if let Some(i) = out {
                    if let Some(j) = cp {
                        m[i][j] += sign * gm;
                    }
                    if let Some(j) = cn {
                        m[i][j] -= sign * gm;
                    }
                }
            }
        };

        // Small leak to ground keeps structurally-floating AC nodes solvable.
        for i in 0..n_nodes {
            g[i][i] += 1e-12;
        }

        let mut branch = n_nodes;
        for e in self.elements() {
            match e {
                Element::Resistor { a, b, ohms, tc1 } => {
                    let r = ohms * (1.0 + tc1 * (temp - Circuit::TNOM));
                    stamp_g(&mut g, idx(*a), idx(*b), 1.0 / r.max(1e-3));
                }
                Element::Capacitor { a, b, farads } => {
                    stamp_g(&mut c, idx(*a), idx(*b), *farads);
                }
                Element::Vsource { p, n, ac_mag, .. } => {
                    let br = branch;
                    branch += 1;
                    if let Some(i) = idx(*p) {
                        g[i][br] += 1.0;
                        g[br][i] += 1.0;
                    }
                    if let Some(i) = idx(*n) {
                        g[i][br] -= 1.0;
                        g[br][i] -= 1.0;
                    }
                    rhs[br] = Complex64::from_re(*ac_mag);
                }
                Element::Isource { .. } => { /* open in small-signal */ }
                Element::Vccs { p, n, cp, cn, gm } => {
                    stamp_gm(&mut g, idx(*p), idx(*n), idx(*cp), idx(*cn), *gm);
                }
                Element::Diode { p, n, model } => {
                    let vd = vdc(*p) - vdc(*n);
                    let (_, gd) = diode_iv(model, vd, temp);
                    stamp_g(&mut g, idx(*p), idx(*n), gd);
                }
                Element::Mos {
                    d,
                    g: gate,
                    s,
                    mos_type,
                    model,
                    w,
                    l,
                } => {
                    let (vgs, vds) = match mos_type {
                        MosType::Nmos => (vdc(*gate) - vdc(*s), vdc(*d) - vdc(*s)),
                        MosType::Pmos => (vdc(*s) - vdc(*gate), vdc(*s) - vdc(*d)),
                    };
                    let (_, gm, gds) = mos_iv(model, *w, *l, vgs, vds, temp);
                    // Small-signal stamps are polarity-independent:
                    // i_d = gm·v_gs + gds·v_ds for both device types.
                    stamp_gm(&mut g, idx(*d), idx(*s), idx(*gate), idx(*s), gm);
                    stamp_g(&mut g, idx(*d), idx(*s), gds);
                    // Device capacitances: Cgs = 2/3·W·L·Cox + overlap,
                    // Cgd = overlap (0.3 fF/µm of width).
                    let c_ov = 0.3e-9 * w;
                    let cgs = 2.0 / 3.0 * w * l * model.cox + c_ov;
                    let cgd = c_ov;
                    stamp_g(&mut c, idx(*gate), idx(*s), cgs);
                    stamp_g(&mut c, idx(*gate), idx(*d), cgd);
                }
            }
        }
        (g, c, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_grid_is_geometric() {
        let s = AcSweep::log(1.0, 100.0, 3);
        let f = s.freqs();
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[1] - 10.0).abs() < 1e-9);
        assert!((f[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid AC sweep")]
    fn sweep_rejects_bad_range() {
        let _ = AcSweep::log(100.0, 1.0, 5);
    }

    #[test]
    fn rc_lowpass_has_minus3db_corner_and_phase() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.vsource_ac(vin, Circuit::GND, 0.0, 1.0);
        ckt.resistor(vin, vout, 1_000.0);
        ckt.capacitor(vout, Circuit::GND, 1e-6);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1_000.0 * 1e-6);
        let bode = ckt
            .ac_transfer(vout, &AcSweep::log(fc / 100.0, fc * 100.0, 201))
            .unwrap();
        assert!((bode.interpolate_mag_db(fc) + 3.01).abs() < 0.05);
        assert!((bode.interpolate_phase_deg(fc) + 45.0).abs() < 1.0);
        assert!(bode.dc_gain_db().abs() < 0.01);
    }

    #[test]
    fn rc_highpass_blocks_dc() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.vsource_ac(vin, Circuit::GND, 0.0, 1.0);
        ckt.capacitor(vin, vout, 1e-6);
        ckt.resistor(vout, Circuit::GND, 1_000.0);
        let bode = ckt.ac_transfer(vout, &AcSweep::log(0.1, 1e6, 141)).unwrap();
        assert!(bode.mag_db(0) < -40.0);
        assert!(bode.mags_db().last().unwrap().abs() < 0.1);
    }

    #[test]
    fn vccs_gain_stage_flat_response() {
        // gm=2mS into 5kΩ: gain −10 → 20 dB, phase 180°.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.vsource_ac(vin, Circuit::GND, 0.0, 1.0);
        ckt.vccs(vout, Circuit::GND, vin, Circuit::GND, 2e-3);
        ckt.resistor(vout, Circuit::GND, 5_000.0);
        let bode = ckt.ac_transfer(vout, &AcSweep::log(1.0, 1e3, 4)).unwrap();
        assert!((bode.dc_gain_db() - 20.0).abs() < 0.01);
        let ph = bode.phases_deg_unwrapped()[0].abs();
        assert!((ph - 180.0).abs() < 0.01);
    }

    #[test]
    fn single_pole_gain_stage_rolls_off_20db_per_decade() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.vsource_ac(vin, Circuit::GND, 0.0, 1.0);
        ckt.vccs(vout, Circuit::GND, vin, Circuit::GND, 1e-3);
        ckt.resistor(vout, Circuit::GND, 100_000.0); // A0 = 100 = 40 dB
        ckt.capacitor(vout, Circuit::GND, 1e-9); // fp ≈ 1.59 kHz
        let bode = ckt
            .ac_transfer(vout, &AcSweep::log(10.0, 1e7, 121))
            .unwrap();
        let m1 = bode.interpolate_mag_db(100e3);
        let m2 = bode.interpolate_mag_db(1e6);
        assert!(((m1 - m2) - 20.0).abs() < 0.5, "rolloff {}", m1 - m2);
    }

    #[test]
    fn mos_common_source_ac_gain_matches_gm_ro() {
        use crate::netlist::{MosModel, MosType};
        // Common-source with ideal current-source load: |A| = gm·ro.
        let mut ckt = Circuit::new();
        let gate = ckt.node("g");
        let drain = ckt.node("d");
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GND, 1.8);
        ckt.vsource_ac(gate, Circuit::GND, 0.9, 1.0);
        ckt.resistor(vdd, drain, 20_000.0);
        ckt.mos(
            MosType::Nmos,
            drain,
            gate,
            Circuit::GND,
            MosModel::generic(),
            20e-6,
            1e-6,
        );
        let dc = ckt.dc().unwrap();
        let bode = ckt
            .ac_transfer_at(Some(&dc), drain, &AcSweep::log(1.0, 100.0, 3))
            .unwrap();
        // Compute expected gain from the linearised model directly.
        let vgs = 0.9 - 0.0;
        let vds = dc.voltage(drain);
        let (_, gm, gds) =
            crate::netlist::mos_iv(&MosModel::generic(), 20e-6, 1e-6, vgs, vds, 27.0);
        let expected = gm / (gds + 1.0 / 20_000.0);
        let measured = 10f64.powf(bode.dc_gain_db() / 20.0);
        assert!(
            (measured - expected).abs() / expected < 0.02,
            "measured {measured}, expected {expected}"
        );
    }

    #[test]
    fn interp_log_f_clamps_and_interpolates() {
        let freqs = [1.0, 10.0, 100.0];
        let ys = [0.0, 10.0, 20.0];
        assert_eq!(interp_log_f(&freqs, &ys, 0.1), 0.0);
        assert_eq!(interp_log_f(&freqs, &ys, 1e4), 20.0);
        let mid = interp_log_f(&freqs, &ys, 10f64.sqrt()); // halfway in log space
        assert!((mid - 5.0).abs() < 1e-9);
    }
}
